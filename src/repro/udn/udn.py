"""The User Dynamic Network: per-core hardware message queues.

Semantics follow Sections 2 and 5.1 of the paper precisely:

* Each core owns a hardware message buffer of ``udn_buffer_words`` 64-bit
  words (118 on the TILE-Gx), 4-way demultiplexed into independent FIFO
  queues, so up to four threads can share a core and still have an
  exclusive queue (oversubscription, Section 6).
* ``send(dst, words)`` is **asynchronous**: the sender pays only a small
  injection cost and continues; the words appear in the destination
  queue after the mesh transit delay, *in order* (``v1 .. vn``).
  Messages between the same (src, dst) pair never reorder.
* Messages are never dropped.  If the destination buffer is full the
  message backs up into the network and **the sender blocks** until
  space frees (Section 5.1 / Section 6).  We model this by reserving
  destination buffer space at send time; an unavailable reservation
  blocks the sender on a per-destination-core condition.
* ``receive(k)`` blocks until ``k`` words are available in the caller's
  own queue and returns them; popping a non-empty local queue costs a
  couple of cycles and **no coherence stalls** -- this locality is the
  core of the paper's performance argument.
* ``is_queue_empty()`` is a cheap local probe.

Endpoints are *thread ids*; the fabric keeps the tid -> (core, demux
queue) registration, mirroring the TILE-Gx requirement that a thread be
pinned and registered to use the UDN.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Generator, List, Optional, Sequence, Tuple

from repro.machine.config import MachineConfig
from repro.machine.core import Core
from repro.noc.topology import Mesh
from repro.sim.engine import Event, Simulator
from repro.sim.resources import Condition

__all__ = ["UdnFabric"]


class _CoreBuffer:
    """The hardware message buffer of one core (shared by its demux queues)."""

    __slots__ = ("free_words", "space_cond")

    def __init__(self, sim: Simulator, capacity: int):
        self.free_words = capacity
        self.space_cond = Condition(sim)


class _Queue:
    """One demultiplexed FIFO of 64-bit words."""

    __slots__ = ("words", "arrival_cond")

    def __init__(self, sim: Simulator):
        self.words: Deque[int] = deque()
        self.arrival_cond = Condition(sim)


class UdnFabric:
    """All hardware message queues of the chip plus the transit network."""

    def __init__(self, sim: Simulator, cfg: MachineConfig, mesh: Mesh, cores: List[Core],
                 contended_mesh=None):
        if not cfg.has_udn:
            raise ValueError(f"machine profile {cfg.name!r} has no hardware message passing")
        self.sim = sim
        self.cfg = cfg
        self.mesh = mesh
        self.cores = cores
        self.contended = contended_mesh  # optional ContendedMesh
        self._buffers = [_CoreBuffer(sim, cfg.udn_buffer_words) for _ in cores]
        self._queues = [
            [_Queue(sim) for _ in range(cfg.udn_demux_queues)] for _ in cores
        ]
        # thread id -> (core id, demux queue index)
        self._endpoints: Dict[int, Tuple[int, int]] = {}
        #: total messages delivered (stats)
        self.messages_delivered = 0
        #: total cycles senders spent blocked on backpressure (stats)
        self.backpressure_cycles = 0

    # -- registration -------------------------------------------------------
    def register(self, tid: int, core_id: int, demux: int = 0) -> None:
        """Pin thread ``tid``'s receive endpoint to (core, demux queue)."""
        if not (0 <= core_id < len(self.cores)):
            raise ValueError(f"no core {core_id}")
        if not (0 <= demux < self.cfg.udn_demux_queues):
            raise ValueError(f"demux queue {demux} out of range")
        for other_tid, (c, d) in self._endpoints.items():
            if other_tid != tid and (c, d) == (core_id, demux):
                raise ValueError(f"queue ({core_id},{demux}) already registered to thread {other_tid}")
        self._endpoints[tid] = (core_id, demux)

    def unregister(self, tid: int) -> None:
        q = self._queue_of(tid)
        if q.words:
            raise RuntimeError(f"thread {tid} unregistering with {len(q.words)} words pending")
        del self._endpoints[tid]

    def endpoint(self, tid: int) -> Tuple[int, int]:
        try:
            return self._endpoints[tid]
        except KeyError:
            raise KeyError(f"thread {tid} is not registered with the UDN") from None

    def _queue_of(self, tid: int) -> _Queue:
        core_id, demux = self.endpoint(tid)
        return self._queues[core_id][demux]

    def queue_depth(self, tid: int) -> int:
        """Words currently queued for ``tid`` (test/debug hook)."""
        return len(self._queue_of(tid).words)

    # -- operations ----------------------------------------------------------
    def send(self, core: Core, dst_tid: int, words: Sequence[int]) -> Generator[Any, Any, None]:
        """Asynchronous send of ``words`` to thread ``dst_tid``.

        Returns as soon as the message is injected; blocks only when the
        destination buffer has no room (backpressure).
        """
        if not words:
            raise ValueError("empty message")
        n = len(words)
        cfg = self.cfg
        dst_core_id, demux = self.endpoint(dst_tid)
        if n > cfg.udn_buffer_words:
            raise ValueError(
                f"{n}-word message can never fit a {cfg.udn_buffer_words}-word buffer (deadlock)"
            )
        buf = self._buffers[dst_core_id]
        # Reserve space; block while the buffer is full (messages back up
        # into the network and stall the sender).
        t0 = self.sim.now
        while buf.free_words < n:
            yield from buf.space_cond.wait()
        blocked = self.sim.now - t0
        if blocked:
            core.wait += blocked
            self.backpressure_cycles += blocked
        buf.free_words -= n

        inject = cfg.udn_send_base + cfg.udn_send_per_word * n
        core.busy += inject
        core.msgs_sent += 1
        yield inject

        payload = [w for w in words]
        if self.contended is not None:
            self.sim.spawn(
                self._contended_delivery(core.node, dst_core_id, demux, payload),
                name=f"udn-pkt->{dst_tid}",
            )
        else:
            transit = self.mesh.latency(core.node, self.cores[dst_core_id].node, n)
            self.sim.call_after(transit, lambda: self._deliver(dst_core_id, demux, payload))

    def _contended_delivery(self, src_node: int, dst_core_id: int, demux: int,
                            payload: List[int]) -> Generator[Any, Any, None]:
        yield from self.contended.transit(src_node, self.cores[dst_core_id].node, len(payload))
        self._deliver(dst_core_id, demux, payload)

    def _deliver(self, dst_core_id: int, demux: int, payload: List[int]) -> None:
        q = self._queues[dst_core_id][demux]
        q.words.extend(payload)
        self.messages_delivered += 1
        q.arrival_cond.notify_all()

    def receive(self, core: Core, tid: int, k: int = 1) -> Generator[Any, Any, List[int]]:
        """Blocking receive of ``k`` words from ``tid``'s own queue.

        Time spent blocked on an empty queue is ``wait`` (idle), not
        stall; draining a non-empty queue costs a few busy cycles per
        word and touches no shared memory.
        """
        if k < 1:
            raise ValueError("must receive at least one word")
        q = self._queue_of(tid)
        t0 = self.sim.now
        while len(q.words) < k:
            yield from q.arrival_cond.wait()
        waited = self.sim.now - t0
        if waited:
            core.wait += waited
        cost = self.cfg.udn_recv_base + self.cfg.udn_recv_per_word * k
        core.busy += cost
        core.msgs_received += 1
        yield cost
        out = [q.words.popleft() for _ in range(k)]
        # space frees at the *core buffer* of the receiving endpoint
        core_id, _ = self.endpoint(tid)
        buf = self._buffers[core_id]
        buf.free_words += k
        buf.space_cond.notify_all()
        return out

    def is_queue_empty(self, core: Core, tid: int) -> Generator[Any, Any, bool]:
        """Local probe of ``tid``'s queue (cheap, no blocking)."""
        cost = self.cfg.udn_probe_cost
        core.busy += cost
        yield cost
        return not self._queue_of(tid).words
