"""The User Dynamic Network: per-core hardware message queues.

Semantics follow Sections 2 and 5.1 of the paper precisely:

* Each core owns a hardware message buffer of ``udn_buffer_words`` 64-bit
  words (118 on the TILE-Gx), 4-way demultiplexed into independent FIFO
  queues, so up to four threads can share a core and still have an
  exclusive queue (oversubscription, Section 6).
* ``send(dst, words)`` is **asynchronous**: the sender pays only a small
  injection cost and continues; the words appear in the destination
  queue after the mesh transit delay, *in order* (``v1 .. vn``).
  Messages between the same (src, dst) pair never reorder.
* Messages are never dropped.  If the destination buffer is full the
  message backs up into the network and **the sender blocks** until
  space frees (Section 5.1 / Section 6).  We model this by reserving
  destination buffer space at send time; an unavailable reservation
  queues the sender on a strict-FIFO per-destination-core reservation
  list, so buffer space is granted in arrival order (a late sender can
  never barge past an earlier blocked one).
* ``receive(k)`` blocks until ``k`` words are available in the caller's
  own queue and returns them; popping a non-empty local queue costs a
  couple of cycles and **no coherence stalls** -- this locality is the
  core of the paper's performance argument.
* ``is_queue_empty()`` is a cheap local probe.

Robustness extensions (fault-injection layer):

* ``send`` and ``receive`` accept ``timeout=`` (cycles).  A timed
  operation that cannot complete in time raises :class:`SendTimeout` /
  :class:`ReceiveTimeout` without side effects (no space reserved, no
  words popped).  The timers are built on generation-guarded interrupts
  (:class:`~repro.sim.engine.WaitTimer`), so a timeout racing a
  same-cycle message arrival deterministically loses to the arrival.
* ``transit_jitter`` (installed by :class:`repro.faults.FaultInjector`)
  adds bounded, seeded jitter to per-message transit delays.

Endpoints are *thread ids*; the fabric keeps the tid -> (core, demux
queue) registration, mirroring the TILE-Gx requirement that a thread be
pinned and registered to use the UDN.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, Generator, List, Optional, Sequence, Tuple

from repro.machine.config import MachineConfig
from repro.machine.core import Core
from repro.noc.topology import Mesh
from repro.sim.engine import Event, Interrupt, Simulator, WaitTimer
from repro.sim.resources import Condition

__all__ = ["UdnFabric", "UdnTimeout", "SendTimeout", "ReceiveTimeout"]


class UdnTimeout(Exception):
    """Base class of timed-operation expiries; ``waited`` is in cycles."""

    def __init__(self, message: str, waited: int):
        super().__init__(message)
        self.waited = waited


class SendTimeout(UdnTimeout):
    """A timed ``send`` could not reserve destination buffer space in time."""


class ReceiveTimeout(UdnTimeout):
    """A timed ``receive`` did not see enough words arrive in time."""


class _CoreBuffer:
    """The hardware message buffer of one core (shared by its demux queues).

    Space is granted to blocked senders in strict FIFO order: a
    reservation that cannot be satisfied immediately joins ``_waiters``
    and all later reservations queue behind it, even if they are smaller
    than the currently free space.
    """

    __slots__ = ("sim", "free_words", "label", "_waiters")

    def __init__(self, sim: Simulator, capacity: int, label: str):
        self.sim = sim
        self.free_words = capacity
        self.label = label
        # each entry: [event, words_needed, granted?]
        self._waiters: Deque[list] = deque()

    def reserve(self, n: int) -> Generator[Any, Any, None]:
        """Acquire ``n`` words of buffer space, FIFO among blocked senders."""
        if not self._waiters and self.free_words >= n:
            self.free_words -= n
            return
        entry = [Event(self.sim, label=self.label), n, False]
        self._waiters.append(entry)
        try:
            yield entry[0]
        except BaseException:
            # Interrupted (timeout / fault) while queued: withdraw without
            # side effects; if the grant already happened, give it back.
            if entry[2]:
                self.release(n)
            else:
                self._waiters.remove(entry)
            raise

    def release(self, k: int) -> None:
        """Return ``k`` words and hand freed space to queued senders in order."""
        self.free_words += k
        while self._waiters and self._waiters[0][1] <= self.free_words:
            entry = self._waiters.popleft()
            self.free_words -= entry[1]
            entry[2] = True
            entry[0].trigger()


class _Queue:
    """One demultiplexed FIFO of 64-bit words."""

    __slots__ = ("words", "arrival_cond")

    def __init__(self, sim: Simulator, label: str):
        self.words: Deque[int] = deque()
        self.arrival_cond = Condition(sim, label=label)


class UdnFabric:
    """All hardware message queues of the chip plus the transit network."""

    def __init__(self, sim: Simulator, cfg: MachineConfig, mesh: Mesh, cores: List[Core],
                 contended_mesh=None):
        if not cfg.has_udn:
            raise ValueError(f"machine profile {cfg.name!r} has no hardware message passing")
        self.sim = sim
        self.cfg = cfg
        self.mesh = mesh
        self.cores = cores
        self.contended = contended_mesh  # optional ContendedMesh
        self._buffers = [
            _CoreBuffer(sim, cfg.udn_buffer_words, label=f"udn buffer space of core {c.cid}")
            for c in cores
        ]
        self._queues = [
            [
                _Queue(sim, label=f"udn message arrival at core {c.cid} queue {d}")
                for d in range(cfg.udn_demux_queues)
            ]
            for c in cores
        ]
        # thread id -> (core id, demux queue index)
        self._endpoints: Dict[int, Tuple[int, int]] = {}
        #: monotonically increasing message id (tags ``udn.send`` /
        #: ``udn.deliver`` events so the causal tracer can match a send to
        #: its delivery -- pure observability, never read by protocols)
        self._next_msg_id = 0
        #: total messages delivered (stats)
        self.messages_delivered = 0
        #: cycles each *sender core* spent blocked on backpressure,
        #: indexed by core id.  Overload blame attribution needs to name
        #: the congested sender, not just know that congestion existed;
        #: the machine-global aggregate survives as the
        #: :attr:`backpressure_cycles` property.
        self.backpressure_by_core: List[int] = [0] * len(cores)
        #: optional per-message transit-delay jitter (src_node, dst_node,
        #: n_words) -> extra cycles; installed by the fault injector
        self.transit_jitter: Optional[Callable[[int, int, int], int]] = None
        #: exploration seam bookkeeping: last scheduled arrival cycle per
        #: (src_node, dst_core, demux) stream.  Policy-chosen extra delays
        #: are clamped so a message never arrives before an earlier one of
        #: the same stream -- the per-pair FIFO guarantee survives any
        #: policy (used only when ``sim.policy`` is installed).
        self._policy_last_arrival: Dict[Tuple[int, int, int], int] = {}
        #: spatial-atlas hot-path hooks (see repro.obs.spatial): when an
        #: atlas is attached these are its accumulator dicts and sends /
        #: deliveries are counted inline -- one dict update, no Python
        #: call per event, which is what keeps the atlas inside the
        #: sampling-overhead budget.  ``None`` (the default) costs one
        #: attribute load + is-None test per send/deliver.  Pure
        #: observation: never read by the fabric itself.
        self.spatial_sends: Optional[Dict[Tuple[int, int], List[int]]] = None
        self.spatial_delivers: Optional[Dict[int, List[int]]] = None

    @property
    def backpressure_cycles(self) -> int:
        """Total cycles all senders spent blocked on backpressure.

        Aggregate view of :attr:`backpressure_by_core`, kept for
        backward compatibility with pre-existing stats consumers.
        """
        return sum(self.backpressure_by_core)

    def buffer_occupancy_words(self) -> int:
        """Words currently occupying (or reserved in) receive buffers.

        The UDN-occupancy telemetry gauge: buffer space is reserved at
        send time and released as words are popped, so this is the
        chip-wide count of message words in flight or waiting to be
        received.  O(cores) arithmetic, no queue walking.
        """
        cap = self.cfg.udn_buffer_words
        return sum(cap - b.free_words for b in self._buffers)

    # -- registration -------------------------------------------------------
    def register(self, tid: int, core_id: int, demux: int = 0) -> None:
        """Pin thread ``tid``'s receive endpoint to (core, demux queue)."""
        if not (0 <= core_id < len(self.cores)):
            raise ValueError(f"no core {core_id}")
        if not (0 <= demux < self.cfg.udn_demux_queues):
            raise ValueError(f"demux queue {demux} out of range")
        for other_tid, (c, d) in self._endpoints.items():
            if other_tid != tid and (c, d) == (core_id, demux):
                raise ValueError(f"queue ({core_id},{demux}) already registered to thread {other_tid}")
        self._endpoints[tid] = (core_id, demux)

    def unregister(self, tid: int) -> None:
        q = self._queue_of(tid)
        if q.words:
            raise RuntimeError(f"thread {tid} unregistering with {len(q.words)} words pending")
        del self._endpoints[tid]

    def endpoint(self, tid: int) -> Tuple[int, int]:
        try:
            return self._endpoints[tid]
        except KeyError:
            raise KeyError(f"thread {tid} is not registered with the UDN") from None

    def _queue_of(self, tid: int) -> _Queue:
        core_id, demux = self.endpoint(tid)
        return self._queues[core_id][demux]

    def queue_depth(self, tid: int) -> int:
        """Words currently queued for ``tid`` (test/debug hook)."""
        return len(self._queue_of(tid).words)

    # -- operations ----------------------------------------------------------
    def send(self, core: Core, dst_tid: int, words: Sequence[int],
             timeout: Optional[int] = None) -> Generator[Any, Any, None]:
        """Asynchronous send of ``words`` to thread ``dst_tid``.

        Returns as soon as the message is injected; blocks only when the
        destination buffer has no room (backpressure).  With ``timeout``
        given, raises :class:`SendTimeout` if buffer space cannot be
        reserved within that many cycles (nothing is sent and no space
        is held).
        """
        if not words:
            raise ValueError("empty message")
        n = len(words)
        cfg = self.cfg
        dst_core_id, demux = self.endpoint(dst_tid)
        if n > cfg.udn_buffer_words:
            raise ValueError(
                f"{n}-word message can never fit a {cfg.udn_buffer_words}-word buffer (deadlock)"
            )
        buf = self._buffers[dst_core_id]
        # Reserve space; block while the buffer is full (messages back up
        # into the network and stall the sender).  FIFO among senders.
        t0 = self.sim.now
        if timeout is None:
            yield from buf.reserve(n)
        else:
            if timeout < 1:
                raise ValueError("timeout must be >= 1 cycle")
            timer = WaitTimer(self.sim, self.sim.current, self.sim.now + timeout)
            try:
                yield from buf.reserve(n)
            except Interrupt as exc:
                if exc.cause is timer:
                    waited = self.sim.now - t0
                    core.wait += waited
                    self.backpressure_by_core[core.cid] += waited
                    obs = self.sim.obs
                    if obs is not None:
                        obs.emit("udn.timeout", core=core.cid, op="send",
                                 waited=waited)
                    raise SendTimeout(
                        f"send of {n} words to thread {dst_tid} timed out after "
                        f"{waited} cycles of backpressure", waited
                    ) from None
                raise
            finally:
                timer.disarm()
        blocked = self.sim.now - t0
        if blocked:
            core.wait += blocked
            self.backpressure_by_core[core.cid] += blocked
        msg_id = self._next_msg_id
        self._next_msg_id += 1
        sp = self.spatial_sends
        if sp is not None:
            e = sp.get((core.cid, dst_core_id))
            if e is None:
                sp[(core.cid, dst_core_id)] = [1, n]
            else:
                e[0] += 1
                e[1] += n
        obs = self.sim.obs
        if obs is not None:
            if blocked:
                obs.emit("udn.backpressure", core=core.cid, cycles=blocked,
                         dst_core=dst_core_id, start=t0)
            obs.emit("udn.send", core=core.cid, dst_tid=dst_tid,
                     dst_core=dst_core_id, words=n, msg_id=msg_id)
        inject = cfg.udn_send_base + cfg.udn_send_per_word * n
        core.busy += inject
        core.msgs_sent += 1
        yield inject

        payload = [w for w in words]
        sent_at = self.sim.now
        if self.contended is not None:
            self.sim.spawn(
                self._contended_delivery(core.node, dst_core_id, demux, payload,
                                         sent_at, msg_id),
                name=f"udn-pkt->{dst_tid}",
            )
        else:
            transit = self.mesh.latency(core.node, self.cores[dst_core_id].node, n)
            if self.transit_jitter is not None:
                transit += int(self.transit_jitter(core.node, self.cores[dst_core_id].node, n))
            policy = self.sim.policy
            if policy is not None:
                # exploration seam: the policy may stretch this message's
                # transit, reordering deliveries *across* streams while the
                # clamp below keeps each (src, dst-queue) stream FIFO --
                # exactly the reorderings real mesh contention can produce.
                extra = int(policy.udn_delay(core.node, dst_core_id, demux,
                                             n, sent_at))
                key = (core.node, dst_core_id, demux)
                arrive = sent_at + transit + extra
                prev = self._policy_last_arrival.get(key, 0)
                if arrive < prev:
                    arrive = prev
                self._policy_last_arrival[key] = arrive
                transit = arrive - sent_at
            self.sim.call_after(
                transit, lambda: self._deliver(dst_core_id, demux, payload, sent_at, msg_id))

    def _contended_delivery(self, src_node: int, dst_core_id: int, demux: int,
                            payload: List[int], sent_at: int,
                            msg_id: Optional[int] = None) -> Generator[Any, Any, None]:
        yield from self.contended.transit(src_node, self.cores[dst_core_id].node,
                                          len(payload), msg_id=msg_id)
        if self.transit_jitter is not None:
            extra = int(self.transit_jitter(src_node, self.cores[dst_core_id].node, len(payload)))
            if extra:
                yield extra
        self._deliver(dst_core_id, demux, payload, sent_at, msg_id)

    def _deliver(self, dst_core_id: int, demux: int, payload: List[int],
                 sent_at: Optional[int] = None,
                 msg_id: Optional[int] = None) -> None:
        q = self._queues[dst_core_id][demux]
        q.words.extend(payload)
        self.messages_delivered += 1
        sp = self.spatial_delivers
        if sp is not None:
            e = sp.get(dst_core_id)
            lat = self.sim.now - (sent_at if sent_at is not None
                                  else self.sim.now)
            if e is None:
                sp[dst_core_id] = [1, len(payload), lat]
            else:
                e[0] += 1
                e[1] += len(payload)
                e[2] += lat
        obs = self.sim.obs
        if obs is not None:
            obs.emit("udn.deliver", core=dst_core_id, demux=demux,
                     words=len(payload),
                     latency=self.sim.now - (sent_at if sent_at is not None
                                             else self.sim.now),
                     msg_id=msg_id)
        q.arrival_cond.notify_all()

    def receive(self, core: Core, tid: int, k: int = 1,
                timeout: Optional[int] = None) -> Generator[Any, Any, List[int]]:
        """Blocking receive of ``k`` words from ``tid``'s own queue.

        Time spent blocked on an empty queue is ``wait`` (idle), not
        stall; draining a non-empty queue costs a few busy cycles per
        word and touches no shared memory.  With ``timeout`` given,
        raises :class:`ReceiveTimeout` if fewer than ``k`` words are
        available after that many cycles (no words are consumed).  A
        message arriving in the very cycle the timeout expires wins.
        """
        if k < 1:
            raise ValueError("must receive at least one word")
        q = self._queue_of(tid)
        t0 = self.sim.now
        if timeout is None:
            while len(q.words) < k:
                yield from q.arrival_cond.wait()
        else:
            if timeout < 1:
                raise ValueError("timeout must be >= 1 cycle")
            timer = WaitTimer(self.sim, self.sim.current, self.sim.now + timeout)
            try:
                while len(q.words) < k:
                    yield from q.arrival_cond.wait()
            except Interrupt as exc:
                if exc.cause is timer:
                    waited = self.sim.now - t0
                    core.wait += waited
                    obs = self.sim.obs
                    if obs is not None:
                        obs.emit("udn.timeout", core=core.cid, op="receive",
                                 waited=waited)
                    raise ReceiveTimeout(
                        f"receive of {k} words by thread {tid} timed out after "
                        f"{waited} cycles ({len(q.words)} words queued)", waited
                    ) from None
                raise
            finally:
                timer.disarm()
        waited = self.sim.now - t0
        if waited:
            core.wait += waited
        obs = self.sim.obs
        if obs is not None:
            obs.emit("udn.recv", core=core.cid, tid=tid, words=k,
                     waited=waited, start=t0)
        cost = self.cfg.udn_recv_base + self.cfg.udn_recv_per_word * k
        core.busy += cost
        core.msgs_received += 1
        yield cost
        out = [q.words.popleft() for _ in range(k)]
        # space frees at the *core buffer* of the receiving endpoint and is
        # handed to blocked senders in FIFO order
        core_id, _ = self.endpoint(tid)
        self._buffers[core_id].release(k)
        return out

    def is_queue_empty(self, core: Core, tid: int) -> Generator[Any, Any, bool]:
        """Local probe of ``tid``'s queue (cheap, no blocking)."""
        cost = self.cfg.udn_probe_cost
        core.busy += cost
        yield cost
        return not self._queue_of(tid).words
