"""Hardware message passing (the TILE-Gx User Dynamic Network).

See :mod:`repro.udn.udn` for the fabric model: per-core 4-way
demultiplexed hardware FIFO buffers, asynchronous ``send`` with
backpressure on overflow, blocking ``receive``, and ``is_queue_empty``.
Timed variants of ``send``/``receive`` raise :class:`SendTimeout` /
:class:`ReceiveTimeout`; see the module docs for the fault model.
"""

from repro.udn.udn import ReceiveTimeout, SendTimeout, UdnFabric, UdnTimeout

__all__ = ["ReceiveTimeout", "SendTimeout", "UdnFabric", "UdnTimeout"]
