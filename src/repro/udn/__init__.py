"""Hardware message passing (the TILE-Gx User Dynamic Network).

See :mod:`repro.udn.udn` for the fabric model: per-core 4-way
demultiplexed hardware FIFO buffers, asynchronous ``send`` with
backpressure on overflow, blocking ``receive``, and ``is_queue_empty``.
"""

from repro.udn.udn import UdnFabric

__all__ = ["UdnFabric"]
