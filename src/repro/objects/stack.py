"""Coarse-lock stack: "a sequential linked-list based stack, turned
concurrent using MP-SERVER, HYBCOMB, CC-SYNCH and SHM-SERVER" (§5.4).

Node layout: word 0 = value, word 1 = next.  Push and pop are each one
critical section; since a single servicing thread totally orders them,
no fences are needed in the bodies and the stack data stays resident in
the servicing core's cache -- which is why Figure 5b's numbers "nearly
match those given in Figure 5a for the single-lock MS queue".
"""

from __future__ import annotations

from typing import Any, Generator

from repro.core.api import SyncPrimitive
from repro.machine.machine import ThreadCtx
from repro.objects.base import EMPTY
from repro.objects.pool import NodePool

__all__ = ["LockedStack"]

_VALUE = 0
_NEXT = 1


class LockedStack:
    """A sequential linked stack under one critical section."""

    def __init__(self, prim: SyncPrimitive):
        self.prim = prim
        machine = prim.machine
        self.pool = NodePool(machine, node_words=2)
        self.top_addr = machine.mem.alloc(1, isolated=True)
        self._op_push = prim.optable.register(self._push_body, "s_push")
        self._op_pop = prim.optable.register(self._pop_body, "s_pop")

    def _push_body(self, ctx: ThreadCtx, value: int) -> Generator[Any, Any, int]:
        node = yield from self.pool.alloc(ctx)
        yield from ctx.store(node + _VALUE, value)
        top = yield from ctx.load(self.top_addr)
        yield from ctx.store(node + _NEXT, top)
        yield from ctx.store(self.top_addr, node)
        return 0

    def _pop_body(self, ctx: ThreadCtx, arg: int) -> Generator[Any, Any, int]:
        top = yield from ctx.load(self.top_addr)
        if top == 0:
            return EMPTY
        value = yield from ctx.load(top + _VALUE)
        nxt = yield from ctx.load(top + _NEXT)
        yield from ctx.store(self.top_addr, nxt)
        yield from self.pool.free(ctx, top)
        return value

    def push(self, ctx: ThreadCtx, value: int) -> Generator[Any, Any, None]:
        yield from self.prim.apply_op(ctx, self._op_push, value)

    def pop(self, ctx: ThreadCtx) -> Generator[Any, Any, int]:
        """Returns the newest value, or EMPTY."""
        return (yield from self.prim.apply_op(ctx, self._op_pop))

    def drain_to_list(self) -> list:
        """Top-to-bottom contents, read outside simulated time."""
        mem = self.prim.machine.mem
        out = []
        node = mem.peek(self.top_addr)
        while node != 0:
            out.append(mem.peek(node + _VALUE))
            node = mem.peek(node + _NEXT)
        return out
