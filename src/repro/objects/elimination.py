"""Elimination front-end for stacks (Section 5.4's orthogonal technique).

"One way to obviate its seemingly inherent sequential nature is to use
the elimination technique: if a push and pop operation are executed
concurrently, they can be eliminated to avoid accessing the stack. ...
we evaluate the performance of a non-elimination concurrent stack
(which, of course, can be used to back up an elimination-based stack)."

This module provides that backing arrangement as an extension: an
elimination array in coherent shared memory in front of *any* stack
exposing ``push``/``pop``.  A pusher parks its value in a random slot
for a short window; a concurrent popper claims it with CAS and both
finish without touching the stack.  On timeout (or a lost race) the
operation falls through to the backing stack.

Slot encoding (one 64-bit word per slot, each on its own line):

* ``0``                     -- empty
* ``PARKED | value``        -- a pusher is waiting (value < 2^32)
* ``TAKEN``                 -- a popper claimed the parked value
"""

from __future__ import annotations

from typing import Any, Generator, List

import numpy as np

from repro.machine.machine import Machine, ThreadCtx

__all__ = ["EliminationStack"]

PARKED = 1 << 62
TAKEN = 1 << 61
_VALUE_MASK = (1 << 32) - 1


class EliminationStack:
    """Elimination array in front of a backing stack."""

    MAX_VALUE = _VALUE_MASK

    def __init__(self, machine: Machine, backing, num_slots: int = 4,
                 window_cycles: int = 80, seed: int = 12345):
        if num_slots < 1:
            raise ValueError("need at least one elimination slot")
        if window_cycles < 1:
            raise ValueError("window must be positive")
        self.machine = machine
        self.backing = backing
        self.window_cycles = window_cycles
        self.slots: List[int] = [
            machine.mem.alloc(1, isolated=True) for _ in range(num_slots)
        ]
        self._rng = np.random.default_rng(seed)
        #: operations completed via elimination (pairs count twice)
        self.eliminated = 0
        #: operations that fell through to the backing stack
        self.fell_through = 0

    def _pick_slot(self) -> int:
        return self.slots[int(self._rng.integers(0, len(self.slots)))]

    def push(self, ctx: ThreadCtx, value: int) -> Generator[Any, Any, None]:
        if not (0 <= value <= self.MAX_VALUE):
            raise ValueError("elimination slots carry 32-bit values")
        slot = self._pick_slot()
        c = yield from ctx.load(slot)
        if c == 0:
            ok = yield from ctx.cas(slot, 0, PARKED | value)
            if ok:
                yield from ctx.work(self.window_cycles)  # the exchange window
                c2 = yield from ctx.load(slot)
                if c2 == TAKEN:
                    yield from ctx.store(slot, 0)
                    self.eliminated += 1
                    return
                ok = yield from ctx.cas(slot, PARKED | value, 0)
                if not ok:
                    # a popper claimed it between our load and the CAS
                    yield from ctx.store(slot, 0)
                    self.eliminated += 1
                    return
        self.fell_through += 1
        yield from self.backing.push(ctx, value)

    def pop(self, ctx: ThreadCtx) -> Generator[Any, Any, int]:
        slot = self._pick_slot()
        c = yield from ctx.load(slot)
        if c & PARKED:
            ok = yield from ctx.cas(slot, c, TAKEN)
            if ok:
                self.eliminated += 1
                return c & _VALUE_MASK
        self.fell_through += 1
        return (yield from self.backing.pop(ctx))

    @property
    def elimination_rate(self) -> float:
        total = self.eliminated + self.fell_through
        return self.eliminated / total if total else 0.0

    def drain_to_list(self) -> list:
        """Backing-stack contents plus any values still parked."""
        out = list(self.backing.drain_to_list())
        mem = self.machine.mem
        for slot in self.slots:
            c = mem.peek(slot)
            if c & PARKED:
                out.append(c & _VALUE_MASK)
        return out
