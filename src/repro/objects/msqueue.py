"""Michael & Scott's blocking queue [21], one-lock and two-lock variants.

The MS two-lock queue keeps a dummy-headed linked list with separate
head and tail locks so enqueues and dequeues proceed in parallel.  On
the TILE-Gx the paper finds that "the necessity of inserting fences far
outweighs the benefit from fine-grained access" (Section 5.4), so the
*one-lock* variant -- the same list under a single critical section --
wins, and that is what Figure 5a's best curves are built on.

Node layout: word 0 = value, word 1 = next pointer.

* :class:`OneLockMSQueue` -- enqueue and dequeue are each one CS of a
  single :class:`~repro.core.api.SyncPrimitive`; no fences needed inside
  the CS bodies because a single servicing thread totally orders them.
* :class:`TwoLockMSQueue` -- two primitives (two dedicated servers when
  used with MP-SERVER, as in the paper's "mp-server-2").  Because the
  two CSes run on *different* cores concurrently, the enqueue body must
  fence between initializing a node and publishing it, and the dequeue
  body between reading the link and releasing the node -- the fence cost
  the paper blames for the two-lock variant's defeat.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.core.api import SyncPrimitive
from repro.machine.machine import ThreadCtx
from repro.objects.base import EMPTY
from repro.objects.pool import NodePool

__all__ = ["OneLockMSQueue", "TwoLockMSQueue"]

_VALUE = 0
_NEXT = 1


class _MSQueueBase:
    """Shared list representation: dummy-headed singly-linked list."""

    def __init__(self, machine):
        self.machine = machine
        self.pool = NodePool(machine, node_words=2)
        mem = machine.mem
        dummy = mem.alloc(2, isolated=True)
        self.head_addr = mem.alloc(1, isolated=True)
        self.tail_addr = mem.alloc(1, isolated=True)
        mem.poke(self.head_addr, dummy)
        mem.poke(self.tail_addr, dummy)

    # -- debug helpers (zero simulated cost) --------------------------------
    def drain_to_list(self) -> list:
        """Read out the queue contents outside simulated time."""
        mem = self.machine.mem
        out = []
        node = mem.peek(mem.peek(self.head_addr) + _NEXT)
        while node != 0:
            out.append(mem.peek(node + _VALUE))
            node = mem.peek(node + _NEXT)
        return out


class OneLockMSQueue(_MSQueueBase):
    """The MS list under a single coarse critical section."""

    def __init__(self, prim: SyncPrimitive):
        super().__init__(prim.machine)
        self.prim = prim
        self._op_enq = prim.optable.register(self._enq_body, "q_enqueue")
        self._op_deq = prim.optable.register(self._deq_body, "q_dequeue")

    def _enq_body(self, ctx: ThreadCtx, value: int) -> Generator[Any, Any, int]:
        node = yield from self.pool.alloc(ctx)
        yield from ctx.store(node + _VALUE, value)
        yield from ctx.store(node + _NEXT, 0)
        tail = yield from ctx.load(self.tail_addr)
        yield from ctx.store(tail + _NEXT, node)
        yield from ctx.store(self.tail_addr, node)
        return 0

    def _deq_body(self, ctx: ThreadCtx, arg: int) -> Generator[Any, Any, int]:
        head = yield from ctx.load(self.head_addr)
        nxt = yield from ctx.load(head + _NEXT)
        if nxt == 0:
            return EMPTY
        value = yield from ctx.load(nxt + _VALUE)
        yield from ctx.store(self.head_addr, nxt)
        yield from self.pool.free(ctx, head)  # old dummy retires
        return value

    def enqueue(self, ctx: ThreadCtx, value: int) -> Generator[Any, Any, None]:
        yield from self.prim.apply_op(ctx, self._op_enq, value)

    def dequeue(self, ctx: ThreadCtx) -> Generator[Any, Any, int]:
        """Returns the oldest value, or EMPTY."""
        return (yield from self.prim.apply_op(ctx, self._op_deq))


class TwoLockMSQueue(_MSQueueBase):
    """The classic two-lock MS queue: separate head and tail CSes.

    ``enq_prim`` guards the tail, ``deq_prim`` the head.  With server
    approaches this consumes two dedicated cores per queue instance
    (the paper's "mp-server-2").
    """

    def __init__(self, enq_prim: SyncPrimitive, deq_prim: SyncPrimitive):
        if enq_prim.machine is not deq_prim.machine:
            raise ValueError("both primitives must live on the same machine")
        super().__init__(enq_prim.machine)
        self.enq_prim = enq_prim
        self.deq_prim = deq_prim
        self._op_enq = enq_prim.optable.register(self._enq_body, "q2_enqueue")
        self._op_deq = deq_prim.optable.register(self._deq_body, "q2_dequeue")

    def _enq_body(self, ctx: ThreadCtx, value: int) -> Generator[Any, Any, int]:
        node = yield from self.pool.alloc(ctx)
        yield from ctx.store(node + _VALUE, value)
        yield from ctx.store(node + _NEXT, 0)
        # publish only after the node is fully initialized: a concurrent
        # dequeuer (running under the *other* lock) may follow the link
        # immediately (Section 5.4's fence cost)
        yield from ctx.fence()
        tail = yield from ctx.load(self.tail_addr)
        yield from ctx.store(tail + _NEXT, node)
        yield from ctx.fence()
        yield from ctx.store(self.tail_addr, node)
        return 0

    def _deq_body(self, ctx: ThreadCtx, arg: int) -> Generator[Any, Any, int]:
        head = yield from ctx.load(self.head_addr)
        nxt = yield from ctx.load(head + _NEXT)
        if nxt == 0:
            return EMPTY
        value = yield from ctx.load(nxt + _VALUE)
        # order the value read before unlinking: the node becomes the new
        # dummy and its value word may be recycled by a parallel enqueue
        yield from ctx.fence()
        yield from ctx.store(self.head_addr, nxt)
        yield from self.pool.free(ctx, head)
        return value

    def enqueue(self, ctx: ThreadCtx, value: int) -> Generator[Any, Any, None]:
        yield from self.enq_prim.apply_op(ctx, self._op_enq, value)

    def dequeue(self, ctx: ThreadCtx) -> Generator[Any, Any, int]:
        return (yield from self.deq_prim.apply_op(ctx, self._op_deq))
