"""Linearizable concurrent objects (Section 5 of the paper).

Objects built on a :class:`~repro.core.api.SyncPrimitive` (any of the
four approaches):

* :class:`~repro.objects.counter.LockedCounter` -- the Section 5.3
  microbenchmark object (fetch-and-increment).
* :class:`~repro.objects.counter.ArrayCS` -- the variable-length CS of
  Figure 4c (increment ``k`` array elements per operation).
* :class:`~repro.objects.msqueue.OneLockMSQueue` /
  :class:`~repro.objects.msqueue.TwoLockMSQueue` -- Michael & Scott's
  blocking queue [21] with a single coarse CS or the classic two-lock
  split (head lock + tail lock, fences included as the TILE-Gx
  requires).
* :class:`~repro.objects.stack.LockedStack` -- sequential linked stack
  under one CS.

Extension (Section 5.4 mentions elimination as orthogonal; we provide
it as an optional front-end):

* :class:`~repro.objects.elimination.EliminationStack` -- an elimination
  array backed by any of the stacks above.

Direct (non-delegated) nonblocking baselines:

* :class:`~repro.objects.lcrq.LCRQ` -- Morrison & Afek's queue [22], as
  ported by the paper to the TILE-Gx (32-bit values via 64-bit CAS, BTAS
  replaced by a CAS loop).
* :class:`~repro.objects.treiber.TreiberStack` -- Treiber's stack [28].

All store 64-bit values (LCRQ: 32-bit, per the paper's port) and are
exercised by the workload drivers of :mod:`repro.workload`.
"""

from repro.objects.base import EMPTY
from repro.objects.counter import ArrayCS, LockedCounter
from repro.objects.elimination import EliminationStack
from repro.objects.lcrq import LCRQ
from repro.objects.msqueue import OneLockMSQueue, TwoLockMSQueue
from repro.objects.pool import NodePool
from repro.objects.stack import LockedStack
from repro.objects.treiber import TreiberStack

__all__ = [
    "EMPTY",
    "ArrayCS",
    "EliminationStack",
    "LCRQ",
    "LockedCounter",
    "LockedStack",
    "NodePool",
    "OneLockMSQueue",
    "TreiberStack",
    "TwoLockMSQueue",
]
