"""LCRQ -- Morrison & Afek's nonblocking FIFO queue [22], as ported by
the paper to the TILE-Gx (Section 5.4).

LCRQ is a linked list of CRQs (concurrent ring queues).  Within a CRQ,
enqueuers FAA a tail index and dequeuers FAA a head index; each index
maps to a ring cell that the winner claims with CAS.  When a ring
overflows (or an enqueuer starves), the ring is *closed* and a new CRQ
is appended.

The paper's porting notes, which we follow exactly:

* "the lacking bitwise test-and-set (BTAS) was replaced with a simple
  CAS loop" -- closing a ring here is a CAS loop on the tail word's
  CLOSED bit;
* "for lack of the 128-bit CAS (CAS2), we modified LCRQ to store 32-bit
  values, and used a 64-bit CAS" -- a cell packs ``(index << 32 | value)``
  into one 64-bit word, so values must fit in 31 bits (the upper
  value bit is reserved to distinguish the EMPTY32 marker).

Why it matters for the evaluation: every operation executes several
atomic instructions, and on the TILE-Gx those all serialize at the two
memory controllers -- the "false serialization" that makes LCRQ level
off early in Figure 5a despite its excellent x86 performance.

Cell encoding: ``cell = (idx << 32) | val`` where ``val == EMPTY32``
marks an empty cell awaiting round ``idx``; otherwise the cell holds
``val`` enqueued with index ``idx``.
"""

from __future__ import annotations

from typing import Any, Generator, List

from repro.machine.machine import Machine, ThreadCtx
from repro.objects.base import EMPTY

__all__ = ["LCRQ"]

#: in-cell empty marker (32-bit all-ones)
EMPTY32 = (1 << 32) - 1
#: closed bit on the CRQ tail word
CLOSED = 1 << 62

# CRQ header layout: head / tail / next each sit on their own cache
# line, as in the reference implementation (padding avoids false sharing
# between the enqueuer and dequeuer index streams -- and keeps the two
# FAA streams from sharing a memory controller's hot line).  Offsets are
# derived from the machine's line size at construction time.


def _pack(idx: int, val: int) -> int:
    return ((idx & 0xFFFFFFFF) << 32) | (val & 0xFFFFFFFF)


def _unpack(cell: int):
    return cell >> 32, cell & 0xFFFFFFFF


class LCRQ:
    """Linked list of concurrent ring queues (32-bit values)."""

    #: values must fit below the EMPTY32 marker
    MAX_VALUE = EMPTY32 - 1

    def __init__(self, machine: Machine, ring_size: int = 64,
                 starvation_limit: int = 8):
        if ring_size < 2:
            raise ValueError("ring_size must be >= 2")
        self.machine = machine
        self.ring_size = ring_size
        #: failed install attempts before an enqueuer closes the ring
        self.starvation_limit = starvation_limit
        lw = machine.cfg.line_words
        self._HEAD = 0
        self._TAIL = lw
        self._NEXT = 2 * lw
        self._RING = 3 * lw
        first = self._new_crq()
        mem = machine.mem
        self.q_head_addr = mem.alloc(1, isolated=True)
        self.q_tail_addr = mem.alloc(1, isolated=True)
        mem.poke(self.q_head_addr, first)
        mem.poke(self.q_tail_addr, first)
        #: rings appended over the run (stats)
        self.crqs_allocated = 1

    def _new_crq(self, seed_value: int | None = None) -> int:
        """Allocate and initialize a CRQ outside simulated time (node
        preparation happens thread-locally; only the publish is shared)."""
        mem = self.machine.mem
        crq = mem.alloc(self._RING + self.ring_size, isolated=True)
        for i in range(self.ring_size):
            mem.poke(crq + self._RING + i, _pack(i, EMPTY32))
        if seed_value is not None:
            mem.poke(crq + self._RING, _pack(0, seed_value))
            mem.poke(crq + self._TAIL, 1)
        return crq

    # -- CRQ-level operations ---------------------------------------------
    def _crq_close(self, ctx: ThreadCtx, crq: int) -> Generator[Any, Any, None]:
        """Set the CLOSED bit on the tail (the paper's CAS-loop port of BTAS)."""
        while True:
            t = yield from ctx.load(crq + self._TAIL)
            if t & CLOSED:
                return
            ok = yield from ctx.cas(crq + self._TAIL, t, t | CLOSED)
            if ok:
                return

    def _crq_enqueue(self, ctx: ThreadCtx, crq: int, value: int) -> Generator[Any, Any, bool]:
        """Try to enqueue into this ring; False means the ring is closed."""
        r = self.ring_size
        attempts = 0
        while True:
            t = yield from ctx.faa(crq + self._TAIL, 1)
            if t & CLOSED:
                return False
            cell_addr = crq + self._RING + (t % r)
            cell = yield from ctx.load(cell_addr)
            cidx, cval = _unpack(cell)
            if cval == EMPTY32 and cidx <= t:
                ok = yield from ctx.cas(cell_addr, cell, _pack(t, value))
                if ok:
                    return True
            # install failed: cell already skipped by a dequeuer, or stale
            attempts += 1
            h = yield from ctx.load(crq + self._HEAD)
            if t - h >= r or attempts >= self.starvation_limit:
                yield from self._crq_close(ctx, crq)
                return False

    def _crq_dequeue(self, ctx: ThreadCtx, crq: int) -> Generator[Any, Any, int]:
        """Dequeue from this ring; EMPTY means it has nothing (for now)."""
        r = self.ring_size
        while True:
            h = yield from ctx.faa(crq + self._HEAD, 1)
            cell_addr = crq + self._RING + (h % r)
            while True:
                cell = yield from ctx.load(cell_addr)
                cidx, cval = _unpack(cell)
                if cval != EMPTY32:
                    if cidx == h:
                        # claim the value; re-arm the cell for round h + r
                        ok = yield from ctx.cas(cell_addr, cell, _pack(h + r, EMPTY32))
                        if ok:
                            return cval
                        continue  # racing claim: re-read
                    # value belongs to a later round: our index was lost;
                    # fall through to the emptiness check
                    break
                # empty cell: mark our round as skipped so a slow enqueuer
                # with index h cannot install into the past
                ok = yield from ctx.cas(cell_addr, cell, _pack(h + r, EMPTY32))
                if ok:
                    break
            t = yield from ctx.load(crq + self._TAIL)
            if (t & ~CLOSED) <= h + 1:
                yield from self._fix_state(ctx, crq)
                return EMPTY

    def _fix_state(self, ctx: ThreadCtx, crq: int) -> Generator[Any, Any, None]:
        """Repair head > tail overshoot after empty dequeues (fixState)."""
        while True:
            h = yield from ctx.load(crq + self._HEAD)
            t = yield from ctx.load(crq + self._TAIL)
            if t & CLOSED or (t & ~CLOSED) >= h:
                return
            ok = yield from ctx.cas(crq + self._TAIL, t, h)
            if ok:
                return

    # -- public queue interface -----------------------------------------------
    def enqueue(self, ctx: ThreadCtx, value: int) -> Generator[Any, Any, None]:
        if not (0 <= value <= self.MAX_VALUE):
            raise ValueError(f"LCRQ stores 32-bit values; got {value}")
        while True:
            crq = yield from ctx.load(self.q_tail_addr)
            nxt = yield from ctx.load(crq + self._NEXT)
            if nxt != 0:
                # help swing the queue tail to the newest ring
                yield from ctx.cas(self.q_tail_addr, crq, nxt)
                continue
            ok = yield from self._crq_enqueue(ctx, crq, value)
            if ok:
                return
            # ring closed: append a fresh ring seeded with our value
            new_crq = self._new_crq(seed_value=value)
            self.crqs_allocated += 1
            yield from ctx.work(4)  # local ring initialization cost
            ok = yield from ctx.cas(crq + self._NEXT, 0, new_crq)
            if ok:
                yield from ctx.cas(self.q_tail_addr, crq, new_crq)
                return
            # someone else appended first; retry on their ring

    def dequeue(self, ctx: ThreadCtx) -> Generator[Any, Any, int]:
        """Returns the oldest value, or EMPTY."""
        while True:
            crq = yield from ctx.load(self.q_head_addr)
            v = yield from self._crq_dequeue(ctx, crq)
            if v != EMPTY:
                return v
            nxt = yield from ctx.load(crq + self._NEXT)
            if nxt == 0:
                return EMPTY
            # this ring is exhausted and has a successor: advance the head
            yield from ctx.cas(self.q_head_addr, crq, nxt)

    # -- debug ---------------------------------------------------------------
    def drain_to_list(self) -> List[int]:
        """Best-effort contents, head ring to tail ring (debug only)."""
        mem = self.machine.mem
        out = []
        crq = mem.peek(self.q_head_addr)
        while crq != 0:
            h = mem.peek(crq + self._HEAD)
            t = mem.peek(crq + self._TAIL) & ~CLOSED
            for idx in range(h, t):
                cidx, cval = _unpack(mem.peek(crq + self._RING + idx % self.ring_size))
                if cval != EMPTY32 and cidx == idx:
                    out.append(cval)
            crq = mem.peek(crq + self._NEXT)
        return out
