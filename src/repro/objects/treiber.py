"""Treiber's nonblocking stack [28] (the Figure 5b baseline).

Push and pop CAS the shared top pointer directly from the calling
thread.  "The head of the stack is accessed using CAS.  This causes
growing contention as concurrency increases, as most CAS operations
repeatedly fail" (Section 5.4) -- on the simulated TILE-Gx every retry
is another round trip to a memory controller, so the degradation is
even more pronounced than the line-bouncing story on x86.

ABA note: nodes are *not* recycled (``NodePool(recycle=False)``).  Real
deployments need counted pointers or hazard pointers to make recycling
safe; eliding reuse gives the same cost profile for finite runs without
modelling an ABA-safe reclamation scheme (documented in DESIGN.md).
"""

from __future__ import annotations

from typing import Any, Generator

from repro.machine.machine import Machine, ThreadCtx
from repro.objects.base import EMPTY
from repro.objects.pool import NodePool

__all__ = ["TreiberStack"]

_VALUE = 0
_NEXT = 1


class TreiberStack:
    """The lock-free stack: CAS on the top pointer with retry."""

    def __init__(self, machine: Machine):
        self.machine = machine
        self.pool = NodePool(machine, node_words=2, recycle=False)
        self.top_addr = machine.mem.alloc(1, isolated=True)

    def push(self, ctx: ThreadCtx, value: int) -> Generator[Any, Any, None]:
        node = yield from self.pool.alloc(ctx)
        yield from ctx.store(node + _VALUE, value)
        while True:
            top = yield from ctx.load(self.top_addr)
            yield from ctx.store(node + _NEXT, top)
            yield from ctx.fence()  # publish node contents before the CAS
            ok = yield from ctx.cas(self.top_addr, top, node)
            if ok:
                return

    def pop(self, ctx: ThreadCtx) -> Generator[Any, Any, int]:
        """Returns the newest value, or EMPTY."""
        while True:
            top = yield from ctx.load(self.top_addr)
            if top == 0:
                return EMPTY
            nxt = yield from ctx.load(top + _NEXT)
            ok = yield from ctx.cas(self.top_addr, top, nxt)
            if ok:
                value = yield from ctx.load(top + _VALUE)
                return value

    def drain_to_list(self) -> list:
        """Top-to-bottom contents, read outside simulated time."""
        mem = self.machine.mem
        out = []
        node = mem.peek(self.top_addr)
        while node != 0:
            out.append(mem.peek(node + _VALUE))
            node = mem.peek(node + _NEXT)
        return out
