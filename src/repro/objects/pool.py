"""Node pools for the linked concurrent objects.

The paper's C implementations preallocate and recycle list nodes from
per-thread pools, so node management never touches a shared allocator
and never appears as coherence traffic in the measurements.  We model
the same: ``alloc``/``free`` charge a small constant of local busy work
(pointer bump / freelist push), while the *node memory itself* lives in
the simulated address space so every access to node fields goes through
the coherence protocol.

``recycle=False`` disables reuse -- needed for Treiber's stack, where
recycling a node while another thread still holds a stale pointer to it
would expose the classic ABA problem (real implementations use counted
pointers or hazard pointers; we simply do not recycle, which has the
same cost profile for our finite runs and is documented in DESIGN.md).
"""

from __future__ import annotations

from typing import Any, Generator, List

from repro.machine.machine import Machine, ThreadCtx

__all__ = ["NodePool"]


class NodePool:
    """Recycling allocator of fixed-size node blocks in simulated memory."""

    def __init__(self, machine: Machine, node_words: int, *, alloc_cost: int = 3,
                 recycle: bool = True, isolate_nodes: bool = True):
        if node_words < 1:
            raise ValueError("node_words must be >= 1")
        self.machine = machine
        self.node_words = node_words
        self.alloc_cost = alloc_cost
        self.recycle = recycle
        self.isolate_nodes = isolate_nodes
        self._free: List[int] = []
        #: total nodes ever carved from the address space (stats)
        self.total_allocated = 0

    def alloc(self, ctx: ThreadCtx) -> Generator[Any, Any, int]:
        """Get a node; charges a constant of local work."""
        yield from ctx.work(self.alloc_cost)
        if self._free:
            return self._free.pop()
        self.total_allocated += 1
        return self.machine.mem.alloc(self.node_words, isolated=self.isolate_nodes)

    def free(self, ctx: ThreadCtx, addr: int) -> Generator[Any, Any, None]:
        """Return a node to the pool (no-op when recycling is off)."""
        yield from ctx.work(1)
        if self.recycle:
            self._free.append(addr)
