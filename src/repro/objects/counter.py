"""The microbenchmark objects of Section 5.3.

:class:`LockedCounter` is the concurrent counter of Figures 3 and 4a/4b:
one shared 64-bit word, fetch-and-increment in a critical section.

:class:`ArrayCS` is the variable-length critical section of Figure 4c:
"a CS in which the elements of an array are incremented in a loop (one
increment per iteration)"; the iteration count is the operation
argument, so one registered opcode covers the whole sweep.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.core.api import SyncPrimitive
from repro.machine.machine import ThreadCtx

__all__ = ["LockedCounter", "ArrayCS"]


class LockedCounter:
    """A linearizable counter on top of any synchronization approach.

    ``increment`` returns the pre-increment value, so concurrent
    increments return a permutation of ``0..N-1`` -- the property the
    test-suite uses as its linearizability probe.
    """

    def __init__(self, prim: SyncPrimitive):
        self.prim = prim
        machine = prim.machine
        self.addr = machine.mem.alloc(1, isolated=True)
        self._op_inc = prim.optable.register(self._inc_body, "counter_inc")
        self._op_read = prim.optable.register(self._read_body, "counter_read")

    def _inc_body(self, ctx: ThreadCtx, arg: int) -> Generator[Any, Any, int]:
        v = yield from ctx.load(self.addr)
        yield from ctx.store(self.addr, v + 1)
        return v

    def _read_body(self, ctx: ThreadCtx, arg: int) -> Generator[Any, Any, int]:
        v = yield from ctx.load(self.addr)
        return v

    def increment(self, ctx: ThreadCtx) -> Generator[Any, Any, int]:
        """Atomically increment; returns the previous value."""
        return (yield from self.prim.apply_op(ctx, self._op_inc))

    def read(self, ctx: ThreadCtx) -> Generator[Any, Any, int]:
        """Linearizable read of the current value."""
        return (yield from self.prim.apply_op(ctx, self._op_read))

    def value(self) -> int:
        """Zero-cost debug peek (outside simulated time)."""
        return self.prim.machine.mem.peek(self.addr)


class ArrayCS:
    """Figure 4c's critical section: increment ``k`` array elements.

    The array is sized to a handful of cache lines and stays resident in
    the servicing thread's cache, so the CS body cost is pure local work
    -- the "ideal" line of the figure is this body executed with no
    synchronization at all.
    """

    def __init__(self, prim: SyncPrimitive, array_words: int = 16):
        if array_words < 1:
            raise ValueError("array_words must be >= 1")
        self.prim = prim
        self.array_words = array_words
        machine = prim.machine
        self.base = machine.mem.alloc(array_words, isolated=True)
        self._op = prim.optable.register(self._body, "array_inc")

    def _body(self, ctx: ThreadCtx, iterations: int) -> Generator[Any, Any, int]:
        for i in range(iterations):
            a = self.base + (i % self.array_words)
            v = yield from ctx.load(a)
            yield from ctx.store(a, v + 1)
        return iterations

    def run(self, ctx: ThreadCtx, iterations: int) -> Generator[Any, Any, int]:
        """Execute one CS of ``iterations`` loop iterations."""
        return (yield from self.prim.apply_op(ctx, self._op, iterations))

    def total_increments(self) -> int:
        """Zero-cost debug sum of all array elements."""
        mem = self.prim.machine.mem
        return sum(mem.peek(self.base + i) for i in range(self.array_words))
