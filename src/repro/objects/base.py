"""Shared constants for the concurrent objects."""

#: sentinel returned by dequeue/pop on an empty container.  Matches the
#: all-ones 64-bit word, so user values must stay below 2^64 - 1.
EMPTY = (1 << 64) - 1
