"""FLAT COMBINING (Hendler, Incze, Shavit, Tzafrir [13]).

The paper's combining lineage runs Oyama [24] -> flat combining [13] ->
CC-SYNCH [11]; the evaluation uses CC-SYNCH as the strongest
shared-memory representative.  We provide flat combining as an
*additional baseline* so the lineage can be compared on the same
simulated machine (see ``benchmarks/test_bench_ablations.py``).

Structure (faithful to the original, minus record aging/cleanup, which
only matters for workloads where threads come and go):

* a global TTAS *combiner lock*;
* a *publication list*: per-thread records threads enlist into once
  (CAS on the list head) and then reuse;
* to apply an operation, a thread publishes it in its record
  (request + ``active`` flag), then alternates between spinning on its
  ``done`` flag and trying the combiner lock;
* whoever holds the lock scans the publication list ``scan_rounds``
  times, executing every active request it finds (reading the request
  is the familiar RMR; writing the response another).

Compared to CC-SYNCH the combiner revisits *every enlisted record* per
scan (not just pending ones), so sparse activity costs scan overhead --
one of the reasons CC-SYNCH superseded it.

Record layout (one isolated line): word 0 = active, 1 = opcode,
2 = arg, 3 = retval, 4 = done, 5 = next record.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List

from repro.core.api import NULL_ARG, OpTable, SyncPrimitive
from repro.machine.machine import Machine, ThreadCtx

__all__ = ["FlatCombining"]

_ACTIVE = 0
_OPCODE = 1
_ARG = 2
_RET = 3
_DONE = 4
_NEXT = 5


class FlatCombining(SyncPrimitive):
    """The flat-combining universal construction."""

    service_threads = 0
    name = "flat-combining"

    def __init__(self, machine: Machine, optable: OpTable, scan_rounds: int = 2):
        super().__init__(machine, optable)
        if scan_rounds < 1:
            raise ValueError("scan_rounds must be >= 1")
        self.scan_rounds = scan_rounds
        mem = machine.mem
        self.lock_addr = mem.alloc(1, isolated=True)
        self.head_addr = mem.alloc(1, isolated=True)
        self._record: Dict[int, int] = {}
        self._service_cores: List[int] = []

    def _record_of(self, ctx: ThreadCtx) -> Generator[Any, Any, int]:
        """Get (or enlist) this thread's publication record."""
        rec = self._record.get(ctx.tid)
        if rec is not None:
            return rec
        mem = self.machine.mem
        rec = mem.alloc(self.machine.cfg.line_words, isolated=True)
        self._record[ctx.tid] = rec
        # enlist at the head of the publication list (lock-free push)
        while True:
            head = yield from ctx.load(self.head_addr)
            yield from ctx.store(rec + _NEXT, head)
            yield from ctx.fence()  # record must be initialized before linking
            ok = yield from ctx.cas(self.head_addr, head, rec)
            if ok:
                return rec

    def apply_op(self, ctx: ThreadCtx, opcode: int, arg: int = NULL_ARG) -> Generator[Any, Any, int]:
        rec = yield from self._record_of(ctx)
        # publish the request (same-line stores: buffer keeps them ordered)
        yield from ctx.store(rec + _OPCODE, opcode)
        yield from ctx.store(rec + _ARG, arg)
        yield from ctx.store(rec + _DONE, 0)
        yield from ctx.store(rec + _ACTIVE, 1)
        while True:
            if ctx.sim.policy is not None:
                # exploration seam: the done-check / lock-try alternation
                # races the current combiner's scan
                yield from ctx.sched_point("flatcombining.poll")
            # is someone already combining?  spin a bit on our flag
            done = yield from ctx.load(rec + _DONE)
            if done:
                break
            lock = yield from ctx.load(self.lock_addr)
            if lock == 0:
                ok = yield from ctx.cas(self.lock_addr, 0, 1)
                if ok:
                    yield from self._combine(ctx)
                    yield from ctx.fence()
                    if ctx.sim.policy is not None:
                        # exploration seam: combiner-lock release window
                        yield from ctx.sched_point("flatcombining.unlock")
                    yield from ctx.store(self.lock_addr, 0)
                    # our own request was served during our combine
                    break
            else:
                # lock taken: spin briefly, then re-check both our flag
                # and the lock (the current combiner may have missed our
                # freshly-published record, so waiting on the flag alone
                # could hang -- the original FC also re-tries the lock)
                yield from ctx.work(15)
        retval = yield from ctx.load(rec + _RET)
        return retval

    def _combine(self, ctx: ThreadCtx) -> Generator[Any, Any, None]:
        if ctx.core.cid not in self._service_cores:
            self._service_cores.append(ctx.core.cid)
        self.current_combiner_core = ctx.core.cid
        execute = self.optable.execute
        served = 0
        for _round in range(self.scan_rounds):
            rec = yield from ctx.load(self.head_addr)
            while rec != 0:
                active = yield from ctx.load(rec + _ACTIVE)
                if active:
                    op = yield from ctx.load(rec + _OPCODE)
                    a = yield from ctx.load(rec + _ARG)
                    ret = yield from execute(ctx, op, a)
                    yield from ctx.store(rec + _RET, ret)
                    yield from ctx.store(rec + _ACTIVE, 0)
                    yield from ctx.store(rec + _DONE, 1)
                    served += 1
                rec = yield from ctx.load(rec + _NEXT)
        self.record_session(served)

    def servicing_cores(self) -> List[int]:
        return list(self._service_cores)
