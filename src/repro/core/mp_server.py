"""MP-SERVER (Section 4.1): the server approach over hardware messaging.

A dedicated server thread loops on its local hardware message queue:

* requests arrive as 3-word messages ``{client_tid, opcode, arg}``;
* ``receive`` reads from the *local* buffer -- no remote action, no
  stall (Figure 2, in contrast to Figure 1's SHM server);
* the CS body executes on the server core, so CS data stays in the
  server's cache;
* the 1-word response is sent *asynchronously* -- the server never waits
  for the transmission.

Under load the server's critical path is therefore stall-free, which is
the entire performance argument of the paper.

The client side is two lines: send the request, block on the response.
Section 6's deadlock argument holds here by construction: a client has
at most one outstanding request, so its queue holds at most one message,
and a client blocked sending a request (server buffer full) is
equivalent to its normal blocking receive.
"""

from __future__ import annotations

from typing import Any, Generator, List

from repro.core.api import NULL_ARG, OpTable, SyncPrimitive
from repro.machine.machine import Machine, ThreadCtx

__all__ = ["MPServer"]

#: request message layout: [client_tid, opcode, arg]
REQUEST_WORDS = 3


class MPServer(SyncPrimitive):
    """Mutual-exclusion server over hardware message passing."""

    service_threads = 1
    name = "mp-server"

    def __init__(self, machine: Machine, optable: OpTable, server_tid: int = 0,
                 server_core: int | None = None, nested_tid: int | None = None):
        """``nested_tid`` enables *nested critical sections* (the RCL
        feature the paper's simplified SHM-SERVER omits): it registers a
        second hardware queue (demux 1) on the server core under that
        thread id, exposed as :attr:`nested_ctx`.  A CS body running on
        this server may then invoke operations on *another* server
        through ``other_prim.apply_op(this_prim.nested_ctx, ...)`` --
        the nested response arrives on the alias queue and never mixes
        with this server's incoming requests.  Nesting must be acyclic
        across servers (A -> B is fine; A -> B -> A deadlocks, exactly
        as on real hardware)."""
        super().__init__(machine, optable)
        self.server_tid = server_tid
        self.server_ctx = machine.thread(server_tid, core_id=server_core)
        self.nested_ctx = None
        if nested_tid is not None:
            self.nested_ctx = machine.thread(
                nested_tid, core_id=self.server_ctx.core.cid, demux=1
            )
        #: requests served (stats)
        self.requests_served = 0

    def _start(self) -> None:
        self.machine.spawn(self.server_ctx, self._server_loop(), name=f"mp-server-{self.server_tid}")

    def _server_loop(self) -> Generator[Any, Any, None]:
        ctx = self.server_ctx
        execute = self.optable.execute
        while True:
            sender, opcode, arg = yield from ctx.receive(REQUEST_WORDS)
            retval = yield from execute(ctx, opcode, arg)
            yield from ctx.send(sender, [retval])
            self.requests_served += 1

    def apply_op(self, ctx: ThreadCtx, opcode: int, arg: int = NULL_ARG) -> Generator[Any, Any, int]:
        yield from ctx.send(self.server_tid, [ctx.tid, opcode, arg])
        words = yield from ctx.receive(1)
        return words[0]

    def servicing_cores(self) -> List[int]:
        return [self.server_ctx.core.cid]
