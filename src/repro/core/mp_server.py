"""MP-SERVER (Section 4.1): the server approach over hardware messaging.

A dedicated server thread loops on its local hardware message queue:

* requests arrive as 3-word messages ``{client_tid, opcode, arg}``;
* ``receive`` reads from the *local* buffer -- no remote action, no
  stall (Figure 2, in contrast to Figure 1's SHM server);
* the CS body executes on the server core, so CS data stays in the
  server's cache;
* the 1-word response is sent *asynchronously* -- the server never waits
  for the transmission.

Under load the server's critical path is therefore stall-free, which is
the entire performance argument of the paper.

The client side is two lines: send the request, block on the response.
Section 6's deadlock argument holds here by construction: a client has
at most one outstanding request, so its queue holds at most one message,
and a client blocked sending a request (server buffer full) is
equivalent to its normal blocking receive.

Fault tolerance (robustness extension)
--------------------------------------
The paper argues deadlock-freedom only for the healthy case: if the
server thread crashes, every client blocks forever.  Passing
``request_timeout`` (and optionally ``backup_tid``) enables a
fail-over protocol layered on the same message format ideas:

* requests carry a per-client **sequence number** --
  ``{client_tid, seq, opcode, arg}`` -- and responses echo it
  (``{seq, retval}``), so late or duplicated responses are discarded;
* each server records ``(last committed seq, retval)`` per client in a
  shared-memory **dedup table**.  Execution and the table update form an
  atomic commit (a crash shield); a retried request whose sequence
  number was already committed returns the recorded result without
  re-executing -- retries are therefore idempotent;
* clients use timed send/receive: on expiry they back off exponentially
  (bounded), fail over to the backup server, and retry the *same*
  sequence number.  Both servers share the dedup table, so at-most-once
  execution holds across the fail-over.

The protocol assumes fail-stop crashes (a crashed server executes
nothing more).  A server preempted for longer than the client timeout
can, like any lease-free primary/backup scheme, execute a request the
backup also executed -- keep preemption slices shorter than the timeout
(see :mod:`repro.faults`).

With fault tolerance disabled (the default), the legacy 3-word protocol
and its measured behaviour are bit-for-bit unchanged.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.core.api import NULL_ARG, DispatchTimeout, OpTable, SyncPrimitive
from repro.machine.machine import Machine, ThreadCtx
from repro.udn.udn import ReceiveTimeout, SendTimeout

__all__ = ["MPServer", "ServerUnavailable"]

#: legacy request message layout: [client_tid, opcode, arg]
REQUEST_WORDS = 3
#: fault-tolerant request layout: [client_tid, seq, opcode, arg]
FT_REQUEST_WORDS = 4
#: fault-tolerant response layout: [seq, retval]
FT_RESPONSE_WORDS = 2

#: dedup-table slot layout (one cache line per client)
_SLOT_SEQ = 0
_SLOT_RETVAL = 1


class ServerUnavailable(RuntimeError):
    """No configured server responded within the retry budget."""


class MPServer(SyncPrimitive):
    """Mutual-exclusion server over hardware message passing."""

    service_threads = 1
    name = "mp-server"

    def __init__(self, machine: Machine, optable: OpTable, server_tid: int = 0,
                 server_core: Optional[int] = None, nested_tid: Optional[int] = None,
                 backup_tid: Optional[int] = None, backup_core: Optional[int] = None,
                 request_timeout: Optional[int] = None,
                 backoff_base: int = 64, backoff_cap: int = 4096,
                 max_attempts: int = 16):
        """``nested_tid`` enables *nested critical sections* (the RCL
        feature the paper's simplified SHM-SERVER omits): it registers a
        second hardware queue (demux 1) on the server core under that
        thread id, exposed as :attr:`nested_ctx`.  A CS body running on
        this server may then invoke operations on *another* server
        through ``other_prim.apply_op(this_prim.nested_ctx, ...)`` --
        the nested response arrives on the alias queue and never mixes
        with this server's incoming requests.  Nesting must be acyclic
        across servers (A -> B is fine; A -> B -> A deadlocks, exactly
        as on real hardware).

        ``request_timeout`` (cycles) switches to the fault-tolerant
        protocol (see module docs); ``backup_tid``/``backup_core`` add a
        hot-standby server thread clients fail over to.  ``backoff_base``
        / ``backoff_cap`` bound the exponential retry backoff, and
        ``max_attempts`` bounds total attempts per operation before
        :class:`ServerUnavailable` is raised."""
        super().__init__(machine, optable)
        self.server_tid = server_tid
        self.server_ctx = machine.thread(server_tid, core_id=server_core)
        self.nested_ctx = None
        if nested_tid is not None:
            self.nested_ctx = machine.thread(
                nested_tid, core_id=self.server_ctx.core.cid, demux=1
            )
        # -- fault-tolerance configuration --------------------------------
        if backup_tid is not None and request_timeout is None:
            raise ValueError("a backup server requires request_timeout "
                             "(clients fail over on timeout)")
        self.fault_tolerant = request_timeout is not None
        # the legacy protocol can withdraw an un-injected request cleanly;
        # an FT retry relies on the dedup table instead (see apply_op_timed)
        self.abortable_dispatch = not self.fault_tolerant
        self.request_timeout = request_timeout
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.max_attempts = max_attempts
        self.backup_tid = backup_tid
        self.backup_ctx: Optional[ThreadCtx] = None
        self._server_tids = [server_tid]
        if backup_tid is not None:
            self.backup_ctx = machine.thread(backup_tid, core_id=backup_core)
            self._server_tids.append(backup_tid)
            self.service_threads = 2
        # shared-memory dedup table: one line per client, lazily allocated
        self._dedup_slots: Dict[int, int] = {}
        # client-local protocol state (thread-local in a real system)
        self._client_seq: Dict[int, int] = {}
        self._client_server: Dict[int, int] = {}
        #: requests served (stats)
        self.requests_served = 0
        #: retried requests after a timeout (stats)
        self.ops_retried = 0
        #: re-sent requests answered from the dedup table (stats)
        self.duplicates_suppressed = 0
        #: client fail-overs between servers (stats)
        self.failovers = 0
        #: (client_tid, cycles from first timeout to completed op)
        self.recoveries: List[Tuple[int, int]] = []

    # -- recovery metrics ---------------------------------------------------
    @property
    def recovery_stats(self) -> Dict[str, Any]:
        """Recovery counters consumed by :mod:`repro.workload.metrics`."""
        ttr = max((c for _tid, c in self.recoveries), default=None)
        return {
            "ops_retried": self.ops_retried,
            "duplicates_suppressed": self.duplicates_suppressed,
            "failovers": self.failovers,
            "time_to_recovery": ttr,
            "recoveries": list(self.recoveries),
        }

    def _slot_for(self, client_tid: int) -> int:
        slot = self._dedup_slots.get(client_tid)
        if slot is None:
            mem = self.machine.mem
            slot = mem.alloc(self.machine.cfg.line_words, isolated=True)
            mem.poke(slot + _SLOT_SEQ, 0)
            mem.poke(slot + _SLOT_RETVAL, 0)
            self._dedup_slots[client_tid] = slot
        return slot

    def _start(self) -> None:
        loop = self._ft_server_loop if self.fault_tolerant else self._server_loop
        self.machine.spawn(self.server_ctx, loop(self.server_ctx),
                           name=f"mp-server-{self.server_tid}", daemon=True)
        if self.backup_ctx is not None:
            self.machine.spawn(self.backup_ctx, self._ft_server_loop(self.backup_ctx),
                               name=f"mp-server-backup-{self.backup_tid}", daemon=True)

    # -- legacy (fault-free) protocol ---------------------------------------
    def _server_loop(self, ctx: ThreadCtx) -> Generator[Any, Any, None]:
        execute = self.optable.execute
        while True:
            if ctx.sim.policy is not None:
                # exploration seam: server poll -- a delay here backs up
                # client requests in the network
                yield from ctx.sched_point("mp_server.poll")
            sender, opcode, arg = yield from ctx.receive(REQUEST_WORDS)
            svc_start = ctx.sim.now
            obs = ctx.sim.obs
            if obs is not None:
                obs.emit("server.req", core=ctx.core.cid, client=sender,
                         prim=self.name)
            retval = yield from execute(ctx, opcode, arg)
            yield from ctx.send(sender, [retval])
            self.requests_served += 1
            if obs is not None:
                obs.emit("server.done", core=ctx.core.cid, client=sender,
                         prim=self.name, start=svc_start)

    # -- fault-tolerant protocol --------------------------------------------
    def _ft_server_loop(self, ctx: ThreadCtx) -> Generator[Any, Any, None]:
        proc = self.machine.sim.current
        execute = self.optable.execute
        while True:
            if ctx.sim.policy is not None:
                # exploration seam: server poll (outside the crash shield,
                # so a policy delay can widen the timeout/failover races)
                yield from ctx.sched_point("mp_server.poll")
            sender, seq, opcode, arg = yield from ctx.receive(FT_REQUEST_WORDS)
            svc_start = ctx.sim.now
            obs = ctx.sim.obs
            if obs is not None:
                obs.emit("server.req", core=ctx.core.cid, client=sender,
                         prim=self.name)
            slot = self._slot_for(sender)
            last = yield from ctx.load(slot + _SLOT_SEQ)
            if seq <= last:
                # a retry of an op this table already committed: answer
                # from the record, never re-execute (idempotence)
                retval = yield from ctx.load(slot + _SLOT_RETVAL)
                self.duplicates_suppressed += 1
            else:
                # execute + record commit atomically w.r.t. crashes: a
                # fail-stop kill inside the shield lands after the record,
                # so a client retry is either deduped or re-executed from
                # an untouched object -- never half of each
                proc.shield_begin()
                try:
                    retval = yield from execute(ctx, opcode, arg)
                    yield from ctx.store(slot + _SLOT_RETVAL, retval)
                    yield from ctx.store(slot + _SLOT_SEQ, seq)
                finally:
                    proc.shield_end()
            yield from ctx.send(sender, [seq, retval])
            self.requests_served += 1
            if obs is not None:
                obs.emit("server.done", core=ctx.core.cid, client=sender,
                         prim=self.name, start=svc_start)

    def apply_op(self, ctx: ThreadCtx, opcode: int, arg: int = NULL_ARG) -> Generator[Any, Any, int]:
        self.inflight += 1
        try:
            if not self.fault_tolerant:
                yield from ctx.send(self.server_tid, [ctx.tid, opcode, arg])
                words = yield from ctx.receive(1)
                return words[0]
            return (yield from self._ft_apply_op(ctx, opcode, arg))
        finally:
            self.inflight -= 1

    def apply_op_timed(self, ctx: ThreadCtx, opcode: int, arg: int = NULL_ARG,
                       timeout: Optional[int] = None) -> Generator[Any, Any, int]:
        """Timed dispatch: the deadline bounds *injection*, not service.

        Under overload the choke point of MP-SERVER is backpressure on
        the server's hardware buffer -- the send blocks until space
        frees.  A timed send that expires withdraws from the reservation
        FIFO with zero side effects (:class:`~repro.udn.udn.SendTimeout`
        semantics), so the op provably never reached the server and
        :class:`DispatchTimeout` is safe to retry.  Once injected the
        request *will* be served FIFO from a bounded hardware queue, so
        the response wait stays untimed: injection is the commit point.

        The fault-tolerant mode keeps its own per-attempt timeout /
        backoff / failover machinery (an FT retry may re-send an op that
        already executed and rely on the dedup table instead).
        """
        if timeout is None or self.fault_tolerant:
            return (yield from self.apply_op(ctx, opcode, arg))
        self.inflight += 1
        try:
            try:
                yield from ctx.send(self.server_tid, [ctx.tid, opcode, arg],
                                    timeout=timeout)
            except SendTimeout as exc:
                raise DispatchTimeout(
                    f"thread {ctx.tid}: request injection backpressured for "
                    f"{exc.waited} cycles (server hardware queue full)",
                    exc.waited) from None
            words = yield from ctx.receive(1)
            return words[0]
        finally:
            self.inflight -= 1

    def _ft_apply_op(self, ctx: ThreadCtx, opcode: int, arg: int) -> Generator[Any, Any, int]:
        tid = ctx.tid
        seq = self._client_seq.get(tid, 0) + 1
        self._client_seq[tid] = seq
        servers = self._server_tids
        self._client_server.setdefault(tid, 0)
        first_timeout_at: Optional[int] = None
        attempt = 0
        while True:
            target = servers[self._client_server[tid]]
            try:
                yield from ctx.send(target, [tid, seq, opcode, arg],
                                    timeout=self.request_timeout)
                while True:
                    rseq, retval = yield from ctx.receive(
                        FT_RESPONSE_WORDS, timeout=self.request_timeout)
                    if rseq == seq:
                        break
                    # a late response to a superseded attempt: discard
                if first_timeout_at is not None:
                    self.recoveries.append((tid, self.machine.now - first_timeout_at))
                return retval
            except (SendTimeout, ReceiveTimeout):
                attempt += 1
                self.ops_retried += 1
                obs = ctx.sim.obs
                if obs is not None:
                    obs.emit("fault.retry", core=ctx.core.cid, tid=tid,
                             prim=self.name)
                if first_timeout_at is None:
                    first_timeout_at = self.machine.now
                if attempt >= self.max_attempts:
                    raise ServerUnavailable(
                        f"thread {tid}: op seq {seq} got no response from "
                        f"servers {servers} after {attempt} attempts"
                    ) from None
                if len(servers) > 1:
                    self._client_server[tid] = (
                        self._client_server[tid] + 1) % len(servers)
                    self.failovers += 1
                    if obs is not None:
                        obs.emit("fault.failover", core=ctx.core.cid, tid=tid,
                                 prim=self.name)
                backoff = min(self.backoff_base << (attempt - 1), self.backoff_cap)
                ctx.core.wait += backoff
                yield backoff

    def servicing_cores(self) -> List[int]:
        cores = [self.server_ctx.core.cid]
        if self.backup_ctx is not None:
            cores.append(self.backup_ctx.core.cid)
        return cores
