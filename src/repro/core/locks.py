"""Classic spin locks over coherent shared memory.

These are the Section 3 background baselines: the test-and-test-and-set
lock, the ticket lock, and the MCS queue lock [19] with its O(1) RMR
local spinning.  The paper's evaluation focuses on the server/combiner
approaches, but the locks are used here (a) to implement lock-based
object variants the paper mentions (e.g. the two CSes of the two-lock
MS-Queue can be guarded by any mutual-exclusion mechanism), (b) in the
test-suite as simple mutual-exclusion references, and (c) in extension
benchmarks contrasting lock handover cost with combining.

Each lock exposes ``acquire(ctx)`` / ``release(ctx)`` generators, plus
an ``execute(ctx, optable, opcode, arg)`` convenience that runs a CS
body under the lock *on the calling thread* (lock-based execution has no
delegation: the data moves to the lock holder, not the other way
around).
"""

from __future__ import annotations

from typing import Any, Dict, Generator

from repro.core.api import NULL_ARG, OpTable
from repro.machine.machine import Machine, ThreadCtx

__all__ = ["TTASLock", "TicketLock", "MCSLock"]


class _LockBase:
    name = "?"

    def __init__(self, machine: Machine):
        self.machine = machine

    def acquire(self, ctx: ThreadCtx) -> Generator[Any, Any, None]:
        raise NotImplementedError

    def release(self, ctx: ThreadCtx) -> Generator[Any, Any, None]:
        raise NotImplementedError

    def execute(self, ctx: ThreadCtx, optable: OpTable, opcode: int,
                arg: int = NULL_ARG) -> Generator[Any, Any, int]:
        """Run a CS body under the lock, on the calling thread."""
        yield from self.acquire(ctx)
        try:
            retval = yield from optable.execute(ctx, opcode, arg)
        finally:
            pass
        yield from self.release(ctx)
        return retval


class TTASLock(_LockBase):
    """Test-and-test-and-set: spin reading, then CAS when free."""

    name = "ttas"

    def __init__(self, machine: Machine):
        super().__init__(machine)
        self.flag = machine.mem.alloc(1, isolated=True)

    def acquire(self, ctx: ThreadCtx) -> Generator[Any, Any, None]:
        while True:
            yield from ctx.spin_until(self.flag, lambda v: v == 0)
            ok = yield from ctx.cas(self.flag, 0, 1)
            if ok:
                return

    def release(self, ctx: ThreadCtx) -> Generator[Any, Any, None]:
        yield from ctx.fence()
        yield from ctx.store(self.flag, 0)


class TicketLock(_LockBase):
    """FIFO ticket lock: FAA a ticket, spin until now-serving matches."""

    name = "ticket"

    def __init__(self, machine: Machine):
        super().__init__(machine)
        self.next_ticket = machine.mem.alloc(1, isolated=True)
        self.now_serving = machine.mem.alloc(1, isolated=True)

    def acquire(self, ctx: ThreadCtx) -> Generator[Any, Any, None]:
        my = yield from ctx.faa(self.next_ticket, 1)
        yield from ctx.spin_until(self.now_serving, lambda v: v == my)

    def release(self, ctx: ThreadCtx) -> Generator[Any, Any, None]:
        yield from ctx.fence()
        serving = yield from ctx.load(self.now_serving)
        yield from ctx.store(self.now_serving, serving + 1)


class MCSLock(_LockBase):
    """The MCS queue lock [19]: O(1) RMRs, purely local spinning.

    Queue-node layout: word 0 = locked flag (spin target), word 1 = next.
    Each thread owns one reusable queue node per lock.
    """

    name = "mcs"
    _LOCKED = 0
    _NEXT = 1

    def __init__(self, machine: Machine):
        super().__init__(machine)
        self.tail = machine.mem.alloc(1, isolated=True)
        self._qnode: Dict[int, int] = {}

    def _node_of(self, tid: int) -> int:
        node = self._qnode.get(tid)
        if node is None:
            node = self.machine.mem.alloc(self.machine.cfg.line_words, isolated=True)
            self._qnode[tid] = node
        return node

    def acquire(self, ctx: ThreadCtx) -> Generator[Any, Any, None]:
        node = self._node_of(ctx.tid)
        yield from ctx.store(node + self._NEXT, 0)
        yield from ctx.store(node + self._LOCKED, 1)
        pred = yield from ctx.swap(self.tail, node)
        if pred == 0:
            return  # lock was free
        yield from ctx.store(pred + self._NEXT, node)
        yield from ctx.spin_until(node + self._LOCKED, lambda v: v == 0)

    def release(self, ctx: ThreadCtx) -> Generator[Any, Any, None]:
        node = self._node_of(ctx.tid)
        yield from ctx.fence()
        nxt = yield from ctx.load(node + self._NEXT)
        if nxt == 0:
            # no known successor: try to swing the tail back to free
            ok = yield from ctx.cas(self.tail, node, 0)
            if ok:
                return
            # a successor is linking itself in; wait for the link
            nxt = yield from ctx.spin_until(node + self._NEXT, lambda v: v != 0)
        yield from ctx.store(nxt + self._LOCKED, 0)
