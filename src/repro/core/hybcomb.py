"""HYBCOMB (Section 4.2, Algorithm 1): hybrid combining.

The paper's central contribution: a combining algorithm for *hybrid*
processors.  Hardware message passing carries requests and responses
between clients and the current combiner (so the combiner's critical
path is stall-free, like MP-SERVER's); cache-coherent shared memory
manages *combiner identity* (which would be "complex and probably
inefficient" over pure message passing).

Shared state:

* ``last_registered_combiner`` -- pointer to the node of the last thread
  that registered to combine (the tail of the logical CSqueue);
* ``departed_combiner`` -- pointer to the one extra node (n+1 nodes for n
  threads) left behind by the last combiner to finish;
* per-thread ``Node`` with fields ``thread_id``, ``n_ops`` and
  ``combining_done`` (each node on its own cache line; ``n_ops`` is the
  FAA target every client hits to register a request).

The line numbers in comments refer to Algorithm 1 of the paper.

Invariant checking: with ``machine.cfg.debug_checks`` the implementation
asserts the CSqueue invariants of the proof sketch (one active combiner
at a time -- Proposition 1 -- and that a client blocked at line 14 only
ever receives its 1-word response -- Proposition 2).

Combiner lease (robustness extension)
-------------------------------------
Algorithm 1 is blocking: a combiner that crashes (or is preempted
indefinitely) between registering and setting ``combining_done`` wedges
every client registered with it *and* its successor combiner.  Passing
``lease_cycles`` + ``request_timeout`` adds a lease/takeover protocol:

* each node gains a fourth word, a **lease timestamp** the owning
  combiner refreshes (at registration, per served op, and while waiting
  for its predecessor);
* a successor waiting at lines 19-20 polls ``combining_done`` *and* the
  lease: a predecessor whose lease went stale is presumed crashed and
  the successor **takes over** without waiting for ``done``;
* a client whose response times out checks its combiner's lease; if
  stale it CASes ``last_registered_combiner`` from the dead node to its
  own and becomes the recovery combiner (re-executing its own op at
  line 23); if the CAS loses, someone else recovered -- re-register;
* a combiner draining registered requests (lines 33-37) bounds each
  ``receive`` by ``request_timeout`` so a *client* crash between
  registering and sending cannot wedge the combiner.

Recovery is **at-least-once** for the operations caught in a crash: a
combiner that crashed after executing a request but before responding
leaves the client to retry it.  Workloads needing exactly-once should
use MP-SERVER's sequence-numbered fault-tolerant mode.  With
``lease_cycles=None`` (the default) Algorithm 1 runs verbatim.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Set, Tuple

from repro.core.api import NULL_ARG, OpTable, SyncPrimitive
from repro.machine.machine import Machine, ThreadCtx
from repro.udn.udn import ReceiveTimeout, SendTimeout

__all__ = ["HybComb"]

_THREAD_ID = 0
_N_OPS = 1
_DONE = 2
_LEASE = 3  # lease heartbeat timestamp (robustness extension)

#: sentinel thread id for the initial extra node (the paper's "bottom")
_NO_THREAD = (1 << 32) - 1

#: MAX_OPS for emulating a fixed combiner (Fig 4a: "equivalent to MAX_OPS = inf")
INFINITE = 1 << 40


class HybComb(SyncPrimitive):
    """Algorithm 1 of the paper, faithfully transcribed."""

    service_threads = 0
    name = "HybComb"

    def __init__(self, machine: Machine, optable: OpTable, max_ops: int = 200,
                 fixed_combiner_tid: Optional[int] = None,
                 swap_after_cas_failures: Optional[int] = None,
                 lease_cycles: Optional[int] = None,
                 request_timeout: Optional[int] = None):
        """``fixed_combiner_tid`` enables the Figure 4a measurement mode:
        that thread becomes a permanent combiner ("equivalent to setting
        MAX_OPS = inf", footnote 4) -- its node stays registered and open
        forever and it runs a pure receive/execute/respond loop, so its
        core's counters isolate the servicing critical path.

        ``swap_after_cas_failures`` implements the paper's suggested
        middle ground: "use SWAP only if CAS fails several times".
        After that many consecutive CAS failures within one apply_op, the
        thread registers unconditionally with SWAP -- trading possible
        single-op combining sessions for guaranteed registration progress
        (no starvation through repeated CAS failure).

        ``lease_cycles`` + ``request_timeout`` enable the combiner
        lease/takeover protocol (see module docs); both must be given
        together."""
        super().__init__(machine, optable)
        if max_ops < 1:
            raise ValueError("max_ops must be >= 1")
        if swap_after_cas_failures is not None and swap_after_cas_failures < 1:
            raise ValueError("swap_after_cas_failures must be >= 1")
        if (lease_cycles is None) != (request_timeout is None):
            raise ValueError("lease_cycles and request_timeout enable the "
                             "recovery protocol together; set both or neither")
        if lease_cycles is not None and lease_cycles < 1:
            raise ValueError("lease_cycles must be >= 1")
        self.lease_cycles = lease_cycles
        self.request_timeout = request_timeout
        self._recovery = lease_cycles is not None
        self._lease_poll = max(1, (lease_cycles or 0) // 8)
        self.swap_after_cas_failures = swap_after_cas_failures
        self.swap_registrations = 0  #: SWAP fallbacks taken (stats)
        self.takeovers = 0  #: stale-lease combiner takeovers (stats)
        self.ops_retried = 0  #: client ops retried after a response timeout (stats)
        self.combiner_recv_timeouts = 0  #: serve-loop receives abandoned (stats)
        #: (client_tid, cycles from first timeout to completed op)
        self.recoveries: List[Tuple[int, int]] = []
        self.fixed_combiner_tid = fixed_combiner_tid
        if fixed_combiner_tid is not None:
            max_ops = INFINITE  # registrations must never fail
            self.service_threads = 1
        self.max_ops = max_ops
        mem = machine.mem
        # Line 3: departed_combiner <- Node{_|_, MAX_OPS, true}
        extra = self._new_node(_NO_THREAD, n_ops=max_ops, done=1)
        self.departed_addr = mem.alloc(1, isolated=True)
        mem.poke(self.departed_addr, extra)
        # Line 4: last_registered_combiner <- departed_combiner
        self.lrc_addr = mem.alloc(1, isolated=True)
        mem.poke(self.lrc_addr, extra)
        # Line 5 (per thread): my_node <- Node{id, MAX_OPS, false}
        self._my_node: Dict[int, int] = {}
        self._service_cores: List[int] = []
        # debug: set of threads currently inside the combiner section
        self._active_combiners: Set[int] = set()
        self.requests_sent = 0
        self.self_combined = 0  #: ops executed by their own thread as combiner
        self._combiner_ctx = None
        if fixed_combiner_tid is not None:
            self._combiner_ctx = machine.thread(fixed_combiner_tid)
            node = self._new_node(fixed_combiner_tid, n_ops=0, done=0)
            self._my_node[fixed_combiner_tid] = node
            mem.poke(self.lrc_addr, node)  # permanently registered and open

    # -- recovery metrics ---------------------------------------------------
    @property
    def recovery_stats(self) -> Dict[str, Any]:
        """Recovery counters consumed by :mod:`repro.workload.metrics`."""
        ttr = max((c for _tid, c in self.recoveries), default=None)
        return {
            "ops_retried": self.ops_retried,
            "takeovers": self.takeovers,
            "combiner_recv_timeouts": self.combiner_recv_timeouts,
            "time_to_recovery": ttr,
            "recoveries": list(self.recoveries),
        }

    # -- node management ------------------------------------------------------
    def _new_node(self, tid: int, n_ops: int, done: int) -> int:
        mem = self.machine.mem
        node = mem.alloc(self.machine.cfg.line_words, isolated=True)
        mem.poke(node + _THREAD_ID, tid)
        mem.poke(node + _N_OPS, n_ops)
        mem.poke(node + _DONE, done)
        mem.poke(node + _LEASE, 0)
        return node

    def _node_of(self, tid: int) -> int:
        node = self._my_node.get(tid)
        if node is None:
            node = self._new_node(tid, n_ops=self.max_ops, done=0)
            self._my_node[tid] = node
        return node

    def _start(self) -> None:
        if self._combiner_ctx is not None:
            self.machine.spawn(self._combiner_ctx, self._fixed_loop(),
                               name=f"hybcomb-fixed-{self.fixed_combiner_tid}",
                               daemon=True)

    def _fixed_loop(self) -> Generator[Any, Any, None]:
        """Permanent combiner (Figure 4a): receive / execute / respond."""
        ctx = self._combiner_ctx
        self._service_cores.append(ctx.core.cid)
        self.current_combiner_core = ctx.core.cid
        execute = self.optable.execute
        # with the lease protocol on, heartbeat between requests so idle
        # periods are not mistaken for a crash
        hb_every = None if not self._recovery else max(1, self.lease_cycles // 2)
        while True:
            if hb_every is None:
                sender, fp, farg = yield from ctx.receive(3)
            else:
                yield from ctx.store(self._my_node[ctx.tid] + _LEASE,
                                     self.machine.now)
                try:
                    sender, fp, farg = yield from ctx.receive(3, timeout=hb_every)
                except ReceiveTimeout:
                    continue
            svc_start = self.machine.now
            obs = ctx.sim.obs
            if obs is not None:
                obs.emit("server.req", core=ctx.core.cid, client=sender,
                         prim=self.name)
            r = yield from execute(ctx, fp, farg)
            yield from ctx.send(sender, [r])
            if obs is not None:
                obs.emit("server.done", core=ctx.core.cid, client=sender,
                         prim=self.name, start=svc_start)

    # -- lease helpers ---------------------------------------------------------
    def _heartbeat(self, ctx: ThreadCtx, my_node: int) -> Generator[Any, Any, None]:
        yield from ctx.store(my_node + _LEASE, self.machine.now)

    def _lease_stale(self, ctx: ThreadCtx, node: int) -> Generator[Any, Any, bool]:
        lease = yield from ctx.load(node + _LEASE)
        return self.machine.now - lease > self.lease_cycles

    def _await_predecessor(self, ctx: ThreadCtx, my_node: int,
                           prev: int) -> Generator[Any, Any, None]:
        """Lines 19-20 with lease supervision: wait for ``prev.done``,
        taking over if the predecessor's lease goes stale."""
        if not self._recovery:
            yield from ctx.spin_until(prev + _DONE, lambda v: v == 1)
            return
        while True:
            done = yield from ctx.load(prev + _DONE)
            if done == 1:
                return
            stale = yield from self._lease_stale(ctx, prev)
            if stale:
                # presumed crashed mid-section: its registered clients
                # will recover through their own response timeouts
                prev_tid = yield from ctx.load(prev + _THREAD_ID)
                self._active_combiners.discard(prev_tid)
                self.takeovers += 1
                obs = ctx.sim.obs
                if obs is not None:
                    obs.emit("fault.takeover", core=ctx.core.cid, tid=ctx.tid,
                             prim=self.name)
                return
            yield from self._heartbeat(ctx, my_node)
            yield from ctx.work(self._lease_poll)

    # -- Algorithm 1 -----------------------------------------------------------
    def apply_op(self, ctx: ThreadCtx, opcode: int, arg: int = NULL_ARG) -> Generator[Any, Any, int]:
        self.inflight += 1
        try:
            return (yield from self._apply_op(ctx, opcode, arg))
        finally:
            self.inflight -= 1

    def _apply_op(self, ctx: ThreadCtx, opcode: int, arg: int) -> Generator[Any, Any, int]:
        tid = ctx.tid
        my_node = self._node_of(tid)
        cas_failures = 0
        first_timeout_at: Optional[int] = None
        # Lines 8-21
        while True:
            if ctx.sim.policy is not None:
                # exploration seam: the lrc read below races registration
                # CASes and combiner handoff
                yield from ctx.sched_point("hybcomb.register")
            # Line 9: last_reg <- last_registered_combiner
            last_reg = yield from ctx.load(self.lrc_addr)
            # Line 11: try to register with the last registered combiner
            old = yield from ctx.faa(last_reg + _N_OPS, 1)
            if old < self.max_ops:
                # Lines 12-14: success -- send request, await response
                combiner_tid = yield from ctx.load(last_reg + _THREAD_ID)
                if self.machine.cfg.debug_checks:
                    assert combiner_tid != _NO_THREAD, "registered with the bottom node"
                became_combiner = False
                try:
                    yield from ctx.send(combiner_tid, [tid, opcode, arg],
                                        timeout=self.request_timeout)
                    self.requests_sent += 1
                    while True:
                        try:
                            words = yield from ctx.receive(
                                1, timeout=self.request_timeout)
                            break
                        except ReceiveTimeout:
                            self.ops_retried += 1
                            obs = ctx.sim.obs
                            if obs is not None:
                                obs.emit("fault.retry", core=ctx.core.cid,
                                         tid=tid, prim=self.name)
                            if first_timeout_at is None:
                                first_timeout_at = self.machine.now
                            stale = yield from self._lease_stale(ctx, last_reg)
                            if not stale:
                                continue  # combiner alive, just backed up
                            # combiner presumed dead: try to unseat it and
                            # run recovery ourselves (our request died with
                            # it -- re-execute as our own op at line 23)
                            yield from self._heartbeat(ctx, my_node)
                            ok = yield from ctx.cas(self.lrc_addr, last_reg, my_node)
                            if ok:
                                became_combiner = True
                                yield from ctx.store(my_node + _N_OPS, 0)
                                yield from self._await_predecessor(
                                    ctx, my_node, last_reg)
                            raise
                except SendTimeout:
                    self.ops_retried += 1
                    obs = ctx.sim.obs
                    if obs is not None:
                        obs.emit("fault.retry", core=ctx.core.cid,
                                 tid=tid, prim=self.name)
                    if first_timeout_at is None:
                        first_timeout_at = self.machine.now
                    continue  # re-read lrc and re-register
                except ReceiveTimeout:
                    if became_combiner:
                        break  # fall through to the combiner section
                    continue  # someone else recovered; re-register
                if self.machine.cfg.debug_checks:
                    # Proposition 2: only the 1-word response can arrive here
                    assert len(words) == 1
                if first_timeout_at is not None:
                    self.recoveries.append(
                        (tid, self.machine.now - first_timeout_at))
                return words[0]
            # Lines 16-21: failure -- try to register as combiner
            if self._recovery:
                yield from self._heartbeat(ctx, my_node)
            if (self.swap_after_cas_failures is not None
                    and cas_failures >= self.swap_after_cas_failures):
                # the suggested middle ground: SWAP always succeeds
                last_reg = yield from ctx.swap(self.lrc_addr, my_node)
                self.swap_registrations += 1
                ok = True
            else:
                ok = yield from ctx.cas(self.lrc_addr, last_reg, my_node)
            if ok:
                # Line 18: open our node for registrations
                yield from ctx.store(my_node + _N_OPS, 0)
                # Lines 19-20: wait for the previous combiner to finish
                yield from self._await_predecessor(ctx, my_node, last_reg)
                break
            cas_failures += 1
        # ---- combiner section (lines 23-43, in mutual exclusion) ----
        if self.machine.cfg.debug_checks:
            self._active_combiners.add(tid)
            assert len(self._active_combiners) == 1, (
                f"mutual exclusion violated: combiners {self._active_combiners}"
            )
        if ctx.core.cid not in self._service_cores:
            self._service_cores.append(ctx.core.cid)
        self.current_combiner_core = ctx.core.cid
        self.session_begin(ctx)
        execute = self.optable.execute
        if self._recovery:
            yield from self._heartbeat(ctx, my_node)
        obs = ctx.sim.obs
        # Line 23: own operation first
        svc_start = self.machine.now
        retval = yield from execute(ctx, opcode, arg)
        self.self_combined += 1
        if obs is not None:
            obs.emit("server.done", core=ctx.core.cid, client=tid,
                     prim=self.name, start=svc_start)
        if ctx.sim.policy is not None:
            # exploration seam: mid-section preemption here is what a
            # stale-lease takeover races against
            yield from ctx.sched_point("hybcomb.combine")
        # Lines 25-28: drain the message queue while it is not empty
        ops_completed = 0
        while True:
            empty = yield from ctx.is_queue_empty()
            if empty:
                break
            sender, fp, farg = yield from ctx.receive(3)
            svc_start = self.machine.now
            r = yield from execute(ctx, fp, farg)
            yield from ctx.send(sender, [r])
            ops_completed += 1
            if obs is not None:
                obs.emit("server.done", core=ctx.core.cid, client=sender,
                         prim=self.name, start=svc_start)
            if self._recovery:
                yield from self._heartbeat(ctx, my_node)
        # Lines 29-32: close combining for new requests
        total_ops = yield from ctx.swap(my_node + _N_OPS, self.max_ops)
        if total_ops > self.max_ops:
            total_ops = self.max_ops
        # Lines 33-37: serve the remaining registered requests.  With the
        # lease on, a registered client that crashed before sending must
        # not wedge us: bound the receive and move on.
        while ops_completed < total_ops:
            try:
                sender, fp, farg = yield from ctx.receive(
                    3, timeout=self.request_timeout)
            except ReceiveTimeout:
                self.combiner_recv_timeouts += 1
                ops_completed += 1
                yield from self._heartbeat(ctx, my_node)
                continue
            svc_start = self.machine.now
            r = yield from execute(ctx, fp, farg)
            yield from ctx.send(sender, [r])
            ops_completed += 1
            if obs is not None:
                obs.emit("server.done", core=ctx.core.cid, client=sender,
                         prim=self.name, start=svc_start)
            if self._recovery:
                yield from self._heartbeat(ctx, my_node)
        # Lines 38-42: exchange nodes with the departed-combiner slot,
        # then release the next combiner.  (The paper notes the SWAP at
        # line 39 is "only for brevity; an atomic operation is not needed
        # since these lines are executed in mutual exclusion" -- we use
        # the cheap load+store pair accordingly.)
        old_node = my_node
        new_node = yield from ctx.load(self.departed_addr)
        yield from ctx.store(self.departed_addr, old_node)
        self._my_node[tid] = new_node
        yield from ctx.store(new_node + _DONE, 0)        # line 40
        yield from ctx.store(new_node + _THREAD_ID, tid)  # line 41
        yield from ctx.fence()
        if self.machine.cfg.debug_checks:
            self._active_combiners.discard(tid)
        self.record_session(1 + ops_completed)
        if ctx.sim.policy is not None:
            # exploration seam: the node exchange above is published to the
            # successor only by the store below (combiner handoff window)
            yield from ctx.sched_point("hybcomb.handoff")
        yield from ctx.store(old_node + _DONE, 1)        # line 42
        if first_timeout_at is not None:
            self.recoveries.append((tid, self.machine.now - first_timeout_at))
        return retval                                     # line 43

    def servicing_cores(self) -> List[int]:
        return list(self._service_cores)
