"""SHM-SERVER (Section 3 / Section 5.2): an RCL-style server over shared
memory.

This is the paper's pure-shared-memory server baseline, "a simplified
version of RCL, since it implements the same core mechanism (an array of
cache lines, one for each client), but lacks support for some advanced
features, such as nested critical sections (note that this
simplification does not decrease performance)".

Each client owns one cache line used as a bidirectional channel:

====== ==================================================
word   meaning
====== ==================================================
0      request sequence number (written by the client)
1      opcode
2      argument
3      response sequence number (written by the server)
4      return value
====== ==================================================

Client: write opcode/arg, then bump word 0; spin locally on word 3.
Server: scan all channels round-robin; a channel whose word 0 advanced
carries a fresh request.  Figure 1's cost analysis falls out of the
coherence protocol: the server's read of a freshly-written channel is an
RMR (R(i), dark grey stall), and its response write invalidates the
spinning client's copy (W(i), a second RMR) -- two stalls on the critical
path of every CS, which is exactly what MP-SERVER eliminates.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Sequence

from repro.core.api import NULL_ARG, OpTable, SyncPrimitive
from repro.machine.machine import Machine, ThreadCtx

__all__ = ["ShmServer"]

_REQ_SEQ = 0
_OPCODE = 1
_ARG = 2
_RESP_SEQ = 3
_RETVAL = 4


class ShmServer(SyncPrimitive):
    """Mutual-exclusion server over cache-line channels (RCL-style)."""

    service_threads = 1
    name = "shm-server"

    def __init__(self, machine: Machine, optable: OpTable, server_tid: int = 0,
                 client_tids: Sequence[int] = (), server_core: int | None = None):
        super().__init__(machine, optable)
        self.server_tid = server_tid
        self.server_ctx = machine.thread(server_tid, core_id=server_core)
        # one isolated cache line per client (the RCL channel array)
        self._channels: Dict[int, int] = {}
        self._client_order: List[int] = []
        for tid in client_tids:
            self.add_client(tid)
        # client-local request sequence numbers (thread-local state)
        self._client_seq: Dict[int, int] = {}
        # server-local record of the last sequence number served per client
        self._served_seq: Dict[int, int] = {}
        self.requests_served = 0
        self._stopped = False

    def add_client(self, tid: int) -> None:
        """Allocate a channel line for client ``tid`` (before start)."""
        if tid in self._channels:
            raise ValueError(f"client {tid} already has a channel")
        self._channels[tid] = self.machine.mem.alloc(
            self.machine.cfg.line_words, isolated=True
        )
        self._client_order.append(tid)

    def stop(self) -> None:
        """Ask the polling server loop to exit (lets the simulation drain)."""
        self._stopped = True

    def _start(self) -> None:
        self.machine.spawn(self.server_ctx, self._server_loop(),
                           name=f"shm-server-{self.server_tid}", daemon=True)

    def _server_loop(self) -> Generator[Any, Any, None]:
        """Round-robin scan of all client channels (the RCL server loop)."""
        ctx = self.server_ctx
        execute = self.optable.execute
        served = self._served_seq
        order = self._client_order
        n = len(order)
        while not self._stopped:
            if ctx.sim.policy is not None:
                # exploration seam: delay the scan so requests pile up and
                # get served in scan order rather than arrival order
                yield from ctx.sched_point("shm_server.scan")
            for i, tid in enumerate(order):
                ch = self._channels[tid]
                svc_start = ctx.sim.now
                seq = yield from ctx.load(ch + _REQ_SEQ)       # R(i): RMR when fresh
                if seq == served.get(tid, 0):
                    continue
                opcode = yield from ctx.load(ch + _OPCODE)     # same line: hits
                arg = yield from ctx.load(ch + _ARG)
                obs = ctx.sim.obs
                if obs is not None:
                    obs.emit("server.req", core=ctx.core.cid, client=tid,
                             prim=self.name)
                # software-pipeline the next channel read behind this CS
                # (the paper: RMRs "get partially overlapped with the CS
                # execution" -- the O3-compiled server hoists the next
                # channel's load above the critical section)
                if n > 1:
                    nxt = self._channels[order[(i + 1) % n]]
                    yield from ctx.prefetch(nxt + _REQ_SEQ)
                retval = yield from execute(ctx, opcode, arg)
                yield from ctx.store(ch + _RETVAL, retval)     # W(i): invalidates client
                yield from ctx.store(ch + _RESP_SEQ, seq)
                served[tid] = seq
                self.requests_served += 1
                if obs is not None:
                    obs.emit("server.done", core=ctx.core.cid, client=tid,
                             prim=self.name, start=svc_start)
            # loop-closing branch of the scan
            yield from ctx.work(1)

    def apply_op(self, ctx: ThreadCtx, opcode: int, arg: int = NULL_ARG) -> Generator[Any, Any, int]:
        tid = ctx.tid
        ch = self._channels.get(tid)
        if ch is None:
            raise KeyError(f"thread {tid} has no channel; call add_client({tid}) before start")
        seq = self._client_seq.get(tid, 0) + 1
        self._client_seq[tid] = seq
        # publish the request on our own channel line; all three stores
        # share the channel line, so the merging store buffer keeps the
        # sequence bump ordered after the payload without a fence
        yield from ctx.store(ch + _OPCODE, opcode)
        yield from ctx.store(ch + _ARG, arg)
        yield from ctx.store(ch + _REQ_SEQ, seq)
        # local spin until the server's response sequence catches up
        yield from ctx.spin_until(ch + _RESP_SEQ, lambda v: v == seq)
        retval = yield from ctx.load(ch + _RETVAL)
        return retval

    def servicing_cores(self) -> List[int]:
        return [self.server_ctx.core.cid]
