"""SHM-SERVER (Section 3 / Section 5.2): an RCL-style server over shared
memory.

This is the paper's pure-shared-memory server baseline, "a simplified
version of RCL, since it implements the same core mechanism (an array of
cache lines, one for each client), but lacks support for some advanced
features, such as nested critical sections (note that this
simplification does not decrease performance)".

Each client owns one cache line used as a bidirectional channel:

====== ==================================================
word   meaning
====== ==================================================
0      request sequence number (written by the client)
1      opcode
2      argument
3      response sequence number (written by the server)
4      return value
====== ==================================================

Client: write opcode/arg, then bump word 0; spin locally on word 3.
Server: scan all channels round-robin; a channel whose word 0 advanced
carries a fresh request.  Figure 1's cost analysis falls out of the
coherence protocol: the server's read of a freshly-written channel is an
RMR (R(i), dark grey stall), and its response write invalidates the
spinning client's copy (W(i), a second RMR) -- two stalls on the critical
path of every CS, which is exactly what MP-SERVER eliminates.

Overload extension (opt-in, ``cancellable=True``): word 5 becomes a
*claim* word so a client can withdraw a request the server has not
committed to yet.  The client posts ``CLAIM = seq`` with the request;
the server takes ownership with ``CAS(CLAIM, seq, TAKEN+seq)`` before
executing, and a timed-out client withdraws with ``CAS(CLAIM, seq,
GONE+seq)``.  Exactly one of the two CASes can win, so a withdrawn
request provably never executes and a claimed request always completes
-- the linchpin of :class:`~repro.core.api.DispatchTimeout`'s
exactly-once contract.  Because the server CAS expects the *exact*
sequence number it just read, it can never claim a stale request after
the client has moved on to the next one.  The default mode stores and
CASes nothing extra and is cycle-identical to the paper's protocol.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Sequence, Tuple

from repro.core.api import DispatchTimeout, NULL_ARG, OpTable, SyncPrimitive
from repro.machine.machine import Machine, ThreadCtx
from repro.sim.engine import Interrupt, WaitTimer

__all__ = ["ShmServer"]

_REQ_SEQ = 0
_OPCODE = 1
_ARG = 2
_RESP_SEQ = 3
_RETVAL = 4
_CLAIM = 5

# claim-word states (offsets keep the original seq visible for debugging)
_TAKEN = 1 << 40   #: CLAIM == _TAKEN + seq: the server owns request seq
_GONE = 1 << 41    #: CLAIM == _GONE + seq: the client withdrew request seq


class ShmServer(SyncPrimitive):
    """Mutual-exclusion server over cache-line channels (RCL-style)."""

    service_threads = 1
    name = "shm-server"

    def __init__(self, machine: Machine, optable: OpTable, server_tid: int = 0,
                 client_tids: Sequence[int] = (), server_core: int | None = None,
                 cancellable: bool = False):
        super().__init__(machine, optable)
        if cancellable and machine.cfg.line_words <= _CLAIM:
            raise ValueError(
                f"cancellable mode needs {_CLAIM + 1} words per channel line, "
                f"but {machine.cfg.name!r} lines hold {machine.cfg.line_words}")
        #: opt-in withdrawable-request protocol (see the module docs);
        #: off by default so the baseline stays cycle-identical
        self.cancellable = cancellable
        self.abortable_dispatch = cancellable
        #: requests withdrawn by a timed-out client before the server
        #: claimed them (cancellable mode only)
        self.requests_cancelled = 0
        self.server_tid = server_tid
        self.server_ctx = machine.thread(server_tid, core_id=server_core)
        # one isolated cache line per client (the RCL channel array)
        self._channels: Dict[int, int] = {}
        self._client_order: List[int] = []
        for tid in client_tids:
            self.add_client(tid)
        # client-local request sequence numbers (thread-local state)
        self._client_seq: Dict[int, int] = {}
        # server-local record of the last sequence number served per client
        self._served_seq: Dict[int, int] = {}
        self.requests_served = 0
        self._stopped = False

    def add_client(self, tid: int) -> None:
        """Allocate a channel line for client ``tid`` (before start)."""
        if tid in self._channels:
            raise ValueError(f"client {tid} already has a channel")
        self._channels[tid] = self.machine.mem.alloc(
            self.machine.cfg.line_words, isolated=True
        )
        self._client_order.append(tid)

    def stop(self) -> None:
        """Ask the polling server loop to exit (lets the simulation drain)."""
        self._stopped = True

    def _start(self) -> None:
        self.machine.spawn(self.server_ctx, self._server_loop(),
                           name=f"shm-server-{self.server_tid}", daemon=True)

    def _server_loop(self) -> Generator[Any, Any, None]:
        """Round-robin scan of all client channels (the RCL server loop)."""
        ctx = self.server_ctx
        execute = self.optable.execute
        served = self._served_seq
        order = self._client_order
        n = len(order)
        while not self._stopped:
            if ctx.sim.policy is not None:
                # exploration seam: delay the scan so requests pile up and
                # get served in scan order rather than arrival order
                yield from ctx.sched_point("shm_server.scan")
            for i, tid in enumerate(order):
                ch = self._channels[tid]
                svc_start = ctx.sim.now
                seq = yield from ctx.load(ch + _REQ_SEQ)       # R(i): RMR when fresh
                if seq == served.get(tid, 0):
                    continue
                if self.cancellable:
                    # Commit point: own this exact request before running
                    # it.  A failed CAS means the client either withdrew
                    # seq or already posted a newer one -- either way seq
                    # must never execute, so just mark it scanned.
                    taken = yield from ctx.cas(ch + _CLAIM, seq, _TAKEN + seq)
                    if not taken:
                        served[tid] = seq
                        self.requests_cancelled += 1
                        continue
                opcode = yield from ctx.load(ch + _OPCODE)     # same line: hits
                arg = yield from ctx.load(ch + _ARG)
                obs = ctx.sim.obs
                if obs is not None:
                    obs.emit("server.req", core=ctx.core.cid, client=tid,
                             prim=self.name)
                # software-pipeline the next channel read behind this CS
                # (the paper: RMRs "get partially overlapped with the CS
                # execution" -- the O3-compiled server hoists the next
                # channel's load above the critical section)
                if n > 1:
                    nxt = self._channels[order[(i + 1) % n]]
                    yield from ctx.prefetch(nxt + _REQ_SEQ)
                retval = yield from execute(ctx, opcode, arg)
                yield from ctx.store(ch + _RETVAL, retval)     # W(i): invalidates client
                yield from ctx.store(ch + _RESP_SEQ, seq)
                served[tid] = seq
                self.requests_served += 1
                if obs is not None:
                    obs.emit("server.done", core=ctx.core.cid, client=tid,
                             prim=self.name, start=svc_start)
            # loop-closing branch of the scan
            yield from ctx.work(1)

    def _post_request(self, ctx: ThreadCtx, opcode: int, arg: int) -> Generator[Any, Any, "Tuple[int, int]"]:
        """Publish a request on the caller's channel; returns ``(ch, seq)``.

        All the stores share the channel line, so the merging store
        buffer keeps the sequence bump ordered after the payload without
        a fence.
        """
        tid = ctx.tid
        ch = self._channels.get(tid)
        if ch is None:
            raise KeyError(f"thread {tid} has no channel; call add_client({tid}) before start")
        seq = self._client_seq.get(tid, 0) + 1
        self._client_seq[tid] = seq
        yield from ctx.store(ch + _OPCODE, opcode)
        yield from ctx.store(ch + _ARG, arg)
        if self.cancellable:
            # arm the claim word before the bump so the server's CAS on
            # it always sees this request's own sequence number
            yield from ctx.store(ch + _CLAIM, seq)
        yield from ctx.store(ch + _REQ_SEQ, seq)
        return ch, seq

    def apply_op(self, ctx: ThreadCtx, opcode: int, arg: int = NULL_ARG) -> Generator[Any, Any, int]:
        self.inflight += 1
        try:
            ch, seq = yield from self._post_request(ctx, opcode, arg)
            # local spin until the server's response sequence catches up
            yield from ctx.spin_until(ch + _RESP_SEQ, lambda v: v == seq)
            retval = yield from ctx.load(ch + _RETVAL)
            return retval
        finally:
            self.inflight -= 1

    def apply_op_timed(self, ctx: ThreadCtx, opcode: int, arg: int = NULL_ARG,
                       timeout: Optional[int] = None) -> Generator[Any, Any, int]:
        """Timed dispatch: withdraw the request if the server does not
        claim it within ``timeout`` cycles.

        The deadline bounds the *unclaimed* wait only.  When it expires
        the client races the server for the claim word: winning proves
        the request never executed (:class:`DispatchTimeout`); losing
        means the server committed, so the client finishes the spin and
        returns the (late) result -- the op happened, dropping it now
        would double-execute on retry.
        """
        if timeout is None or not self.cancellable:
            return (yield from self.apply_op(ctx, opcode, arg))
        if timeout < 1:
            raise ValueError("timeout must be >= 1 cycle")
        self.inflight += 1
        try:
            ch, seq = yield from self._post_request(ctx, opcode, arg)
            sim = ctx.sim
            t0 = sim.now
            timer = WaitTimer(sim, sim.current, t0 + timeout)
            try:
                yield from ctx.spin_until(ch + _RESP_SEQ, lambda v: v == seq)
            except Interrupt as exc:
                if exc.cause is not timer:
                    raise
                waited = sim.now - t0
                gone = yield from ctx.cas(ch + _CLAIM, seq, _GONE + seq)
                if gone:
                    obs = sim.obs
                    if obs is not None:
                        obs.emit("dispatch.timeout", core=ctx.core.cid,
                                 tid=ctx.tid, prim=self.name, waited=waited)
                    raise DispatchTimeout(
                        f"thread {ctx.tid}: request unclaimed by the server "
                        f"after {waited} cycles", waited) from None
                # lost the race: the server owns the request; see it through
                yield from ctx.spin_until(ch + _RESP_SEQ, lambda v: v == seq)
            finally:
                timer.disarm()
            retval = yield from ctx.load(ch + _RETVAL)
            return retval
        finally:
            self.inflight -= 1

    def servicing_cores(self) -> List[int]:
        return [self.server_ctx.core.cid]
