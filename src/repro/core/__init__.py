"""The paper's synchronization algorithms (the core contribution).

Four ways to execute contended critical sections, all sharing one
interface (:class:`~repro.core.api.SyncPrimitive`):

* :class:`~repro.core.mp_server.MPServer` -- Section 4.1: a dedicated
  server thread receives CS requests over *hardware message passing*
  and executes them; no coherence stalls remain on its critical path.
* :class:`~repro.core.hybcomb.HybComb` -- Section 4.2, Algorithm 1: the
  novel hybrid combining algorithm.  Message passing moves requests and
  responses; cache-coherent shared memory manages combiner identity.
* :class:`~repro.core.shm_server.ShmServer` -- Section 3 / RCL [17]:
  the same server idea implemented purely over shared memory with one
  cache-line channel per client (the paper's SHM-SERVER baseline).
* :class:`~repro.core.ccsynch.CCSynch` -- Section 3 / Fatourou &
  Kallimanis [11]: the state-of-the-art shared-memory combining
  algorithm (the paper's CC-SYNCH baseline).

Plus flat combining (:mod:`repro.core.flatcombining`, the [13] ancestor
of CC-SYNCH, as an extension baseline) and classic spin locks
(:mod:`repro.core.locks`) used by some object baselines and extension
benchmarks.

Critical-section bodies are registered in an :class:`~repro.core.api.OpTable`
and referenced by opcode, mirroring the paper's optimization of sending
"a unique opcode of the CS to the servicing thread, rather than a
function pointer" so calls can be inlined.
"""

from repro.core.api import OpTable, SyncPrimitive
from repro.core.ccsynch import CCSynch
from repro.core.flatcombining import FlatCombining
from repro.core.hybcomb import HybComb
from repro.core.locks import MCSLock, TicketLock, TTASLock
from repro.core.mp_server import MPServer
from repro.core.shm_server import ShmServer

#: the four approaches of the evaluation, in the paper's legend order
ALL_APPROACHES = {
    "mp-server": MPServer,
    "HybComb": HybComb,
    "shm-server": ShmServer,
    "CC-Synch": CCSynch,
}

__all__ = [
    "ALL_APPROACHES",
    "CCSynch",
    "FlatCombining",
    "HybComb",
    "MCSLock",
    "MPServer",
    "OpTable",
    "ShmServer",
    "SyncPrimitive",
    "TTASLock",
    "TicketLock",
]
