"""CC-SYNCH (Fatourou & Kallimanis, PPoPP 2012): shared-memory combining.

The paper's state-of-the-art pure-shared-memory baseline.  Threads link
request nodes into a queue with a single SWAP on a shared tail pointer;
the thread at the head acts as combiner, walking the list and executing
up to ``MAX_OPS`` requests before handing the combiner role to the next
waiting thread.

Node layout (one isolated cache line per node):

====== ============================================
word   meaning
====== ============================================
0      opcode of the pending request
1      argument
2      return value
3      wait flag (spin target of the node's owner)
4      completed flag
5      next pointer
====== ============================================

Protocol per ``apply_op`` (each thread owns a recycled spare node):

1. prepare the spare node as the new shared dummy (wait=1, completed=0,
   next=0) and SWAP it into the tail;
2. write the request into the node returned by the SWAP (our ``cur``),
   then publish it by linking ``cur.next`` to the new dummy (fence in
   between on the weakly-ordered TILE-Gx);
3. spin locally on ``cur.wait``;
4. if ``cur.completed``: a combiner did our job -- return ``cur.ret``.
   Otherwise we are the combiner: walk the list executing published
   requests until the dummy or MAX_OPS, then set ``wait=0`` on the node
   we stopped at (combiner handover).

While combining, each served request costs the combiner one RMR to read
the request fields written by their owner and another (partially hidden)
RMR to release the owner's spin -- the same 2-RMR critical path as the
RCL server, which is why Figures 3a/4a show CC-SYNCH and SHM-SERVER
performing almost identically.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional

from repro.core.api import NULL_ARG, OpTable, SyncPrimitive
from repro.machine.machine import Machine, ThreadCtx

__all__ = ["CCSynch"]

_OPCODE = 0
_ARG = 1
_RET = 2
_WAIT = 3
_COMPLETED = 4
_NEXT = 5

#: MAX_OPS value used to emulate a fixed combiner (Figure 4a methodology:
#: "we modified HYBCOMB and CC-SYNCH to have a fixed combiner for the
#: whole run, which is equivalent to setting MAX_OPS = inf")
INFINITE = 1 << 40


class CCSynch(SyncPrimitive):
    """The CC-Synch combining algorithm over coherent shared memory."""

    service_threads = 0
    name = "CC-Synch"

    def __init__(self, machine: Machine, optable: OpTable, max_ops: int = 200,
                 fixed_combiner_tid: Optional[int] = None):
        """``fixed_combiner_tid`` enables the Figure 4a measurement mode:
        that thread walks the request list forever ("equivalent to
        setting MAX_OPS = inf", footnote 4) and application threads never
        inherit the combiner role."""
        super().__init__(machine, optable)
        if max_ops < 1:
            raise ValueError("max_ops must be >= 1")
        self.max_ops = max_ops
        self.fixed_combiner_tid = fixed_combiner_tid
        mem = machine.mem
        dummy = self._new_node()
        if fixed_combiner_tid is None:
            # initial dummy: wait=0 so the first arriver combines immediately
            mem.poke(dummy + _WAIT, 0)
        self._initial_dummy = dummy
        self.tail_addr = mem.alloc(1, isolated=True)
        mem.poke(self.tail_addr, dummy)
        # thread-local spare nodes
        self._spare: Dict[int, int] = {}
        #: node address -> tid whose request currently occupies it (pure
        #: Python bookkeeping for observability; never read by the
        #: protocol, costs no simulated cycles)
        self._node_owner: Dict[int, int] = {}
        self._service_cores: List[int] = []
        self._combiner_ctx = None
        if fixed_combiner_tid is not None:
            self.service_threads = 1
            self._combiner_ctx = machine.thread(fixed_combiner_tid)

    def _new_node(self) -> int:
        node = self.machine.mem.alloc(self.machine.cfg.line_words, isolated=True)
        self.machine.mem.poke(node + _WAIT, 1)
        return node

    def _spare_of(self, tid: int) -> int:
        node = self._spare.get(tid)
        if node is None:
            node = self._new_node()
            self._spare[tid] = node
        return node

    def _start(self) -> None:
        if self._combiner_ctx is not None:
            self.machine.spawn(self._combiner_ctx, self._fixed_loop(),
                               name=f"ccsynch-fixed-{self.fixed_combiner_tid}",
                               daemon=True)

    def _fixed_loop(self) -> Generator[Any, Any, None]:
        """Permanent combiner (Figure 4a): walk the list forever."""
        ctx = self._combiner_ctx
        self._service_cores.append(ctx.core.cid)
        self.current_combiner_core = ctx.core.cid
        execute = self.optable.execute
        tmp = self._initial_dummy
        while True:
            nxt = yield from ctx.spin_until(tmp + _NEXT, lambda v: v != 0)
            svc_start = ctx.sim.now
            op = yield from ctx.load(tmp + _OPCODE)
            a = yield from ctx.load(tmp + _ARG)
            obs = ctx.sim.obs
            client = self._node_owner.get(tmp)
            if obs is not None:
                obs.emit("server.req", core=ctx.core.cid, client=client,
                         prim=self.name)
            ret = yield from execute(ctx, op, a)
            yield from ctx.store(tmp + _RET, ret)
            yield from ctx.store(tmp + _COMPLETED, 1)
            yield from ctx.store(tmp + _WAIT, 0)
            if obs is not None:
                obs.emit("server.done", core=ctx.core.cid, client=client,
                         prim=self.name, start=svc_start)
            tmp = nxt

    def apply_op(self, ctx: ThreadCtx, opcode: int, arg: int = NULL_ARG) -> Generator[Any, Any, int]:
        self.inflight += 1
        try:
            return (yield from self._apply_op(ctx, opcode, arg))
        finally:
            self.inflight -= 1

    def _apply_op(self, ctx: ThreadCtx, opcode: int, arg: int) -> Generator[Any, Any, int]:
        mynode = self._spare_of(ctx.tid)
        # 1. prepare the new dummy and enter the queue
        yield from ctx.store(mynode + _WAIT, 1)
        yield from ctx.store(mynode + _COMPLETED, 0)
        yield from ctx.store(mynode + _NEXT, 0)
        cur = yield from ctx.swap(self.tail_addr, mynode)
        if ctx.sim.policy is not None:
            # exploration seam: between the SWAP and the link store the
            # node is enqueued but unpublished (combiners see next == 0)
            yield from ctx.sched_point("ccsynch.publish")
        # 2. write our request into cur and publish it.  All three stores
        # hit the same cache line, so the merging store buffer keeps them
        # ordered and no fence is needed before the link becomes visible.
        yield from ctx.store(cur + _OPCODE, opcode)
        yield from ctx.store(cur + _ARG, arg)
        yield from ctx.store(cur + _NEXT, mynode)
        self._spare[ctx.tid] = cur
        self._node_owner[cur] = ctx.tid
        # 3. local spin
        yield from ctx.spin_until(cur + _WAIT, lambda v: v == 0)
        done = yield from ctx.load(cur + _COMPLETED)
        if done:
            retval = yield from ctx.load(cur + _RET)
            return retval
        # 4. we are the combiner
        retval = yield from self._combine(ctx, cur)
        return retval

    def _combine(self, ctx: ThreadCtx, cur: int) -> Generator[Any, Any, int]:
        execute = self.optable.execute
        if ctx.core.cid not in self._service_cores:
            self._service_cores.append(ctx.core.cid)
        self.current_combiner_core = ctx.core.cid
        self.session_begin(ctx)
        obs = ctx.sim.obs
        own_ret = 0
        tmp = cur
        count = 0
        while count < self.max_ops:
            svc_start = ctx.sim.now
            nxt = yield from ctx.load(tmp + _NEXT)   # RMR: owner wrote the link
            if nxt == 0:
                break
            count += 1
            op = yield from ctx.load(tmp + _OPCODE)
            a = yield from ctx.load(tmp + _ARG)
            # overlap the fetch of the next request with this CS (the
            # same software pipelining the RCL-style server uses)
            yield from ctx.prefetch(nxt + _OPCODE)
            ret = yield from execute(ctx, op, a)
            if tmp == cur:
                own_ret = ret
            else:
                # ret / completed / wait share the node's line; the
                # merging store buffer keeps them ordered without a fence
                yield from ctx.store(tmp + _RET, ret)
                yield from ctx.store(tmp + _COMPLETED, 1)
            yield from ctx.store(tmp + _WAIT, 0)
            if obs is not None:
                obs.emit("server.done", core=ctx.core.cid,
                         client=self._node_owner.get(tmp),
                         prim=self.name, start=svc_start)
            tmp = nxt
        if ctx.sim.policy is not None:
            # exploration seam: combiner handover window
            yield from ctx.sched_point("ccsynch.handoff")
        # handover: release whoever owns the node we stopped at
        yield from ctx.store(tmp + _WAIT, 0)
        self.record_session(count)
        return own_ret

    def servicing_cores(self) -> List[int]:
        return list(self._service_cores)
