"""Common interface of all synchronization approaches.

An :class:`OpTable` registers critical-section bodies and hands out the
integer opcodes that travel in requests (the paper's inlining
optimization: a "unique opcode of the CS" instead of a function
pointer).  A CS body is a generator ``fn(ctx, arg) -> int``: it runs
*on the servicing thread's context*, so the shared data it touches is
charged to -- and cached at -- the servicing core.  That is precisely the
data-locality effect the server/combiner approaches exploit.

A :class:`SyncPrimitive` executes opcodes in mutual exclusion via
``apply_op``.  Server-based primitives additionally occupy dedicated
threads (``service_threads``/``start``).
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional, Tuple

from repro.machine.machine import Machine, ThreadCtx

__all__ = ["DispatchTimeout", "OpTable", "SyncPrimitive", "NULL_ARG"]

#: placeholder argument for zero-argument operations
NULL_ARG = 0

OpFn = Callable[[ThreadCtx, int], Generator[Any, Any, int]]


class DispatchTimeout(Exception):
    """A timed dispatch expired *before the operation was committed*.

    Raised only by :meth:`SyncPrimitive.apply_op_timed` implementations
    that can abandon cleanly: when this escapes, the operation has
    executed **zero** effects anywhere in the machine, so retrying it is
    always safe (exactly-once is preserved by construction).  Primitives
    that cannot withdraw an in-flight request never raise it -- once the
    request is committed they complete it, even past the deadline.
    ``waited`` is the cycles spent before giving up.
    """

    def __init__(self, message: str, waited: int = 0):
        super().__init__(message)
        self.waited = waited


class OpTable:
    """Registry of critical-section bodies, dispatched by opcode.

    ``dispatch_cost`` models the indirect branch / inlined-switch the
    servicing thread executes per request (a couple of cycles).
    """

    def __init__(self, dispatch_cost: int = 1):
        self.dispatch_cost = dispatch_cost
        self._ops: List[Tuple[str, OpFn]] = []

    def register(self, fn: OpFn, name: Optional[str] = None) -> int:
        """Register a CS body; returns its opcode."""
        opcode = len(self._ops)
        self._ops.append((name or fn.__name__, fn))
        return opcode

    def name_of(self, opcode: int) -> str:
        return self._ops[opcode][0]

    def __len__(self) -> int:
        return len(self._ops)

    def execute(self, ctx: ThreadCtx, opcode: int, arg: int) -> Generator[Any, Any, int]:
        """Run the CS body for ``opcode`` on ``ctx`` (the servicing thread)."""
        try:
            _name, fn = self._ops[opcode]
        except IndexError:
            raise ValueError(f"unknown opcode {opcode}") from None
        if self.dispatch_cost:
            yield from ctx.work(self.dispatch_cost)
        retval = yield from fn(ctx, arg)
        return int(retval) if retval is not None else 0


class SyncPrimitive:
    """Base class: execute registered opcodes in mutual exclusion.

    Life cycle: construct with the machine and an op table, call
    :meth:`start` once (spawns any dedicated server threads), then any
    number of application threads call ``yield from
    prim.apply_op(ctx, opcode, arg)`` concurrently.

    ``service_threads`` is the number of *dedicated* (non-application)
    threads the primitive consumes -- the cost the combining approaches
    exist to avoid (1 per server for the server approaches, 0 for
    combiners and locks).
    """

    #: number of dedicated threads this primitive needs
    service_threads: int = 0
    #: human-readable name used in figures/legends
    name: str = "?"

    #: True when :meth:`apply_op_timed` can actually abandon a dispatch
    #: that missed its deadline (see the method docs); False means the
    #: deadline is best-effort and admission-queue bounding is the only
    #: overload control for this primitive
    abortable_dispatch: bool = False

    def __init__(self, machine: Machine, optable: OpTable):
        self.machine = machine
        self.optable = optable
        self._started = False
        #: application threads currently inside ``apply_op`` (the
        #: delegation-layer queue depth: registered-but-unserved plus
        #: in-service requests).  Pure Python bookkeeping sampled by the
        #: open-loop driver's queue-depth series; costs no simulated
        #: cycles and is never read by protocols.  A fail-stop crash
        #: abandons the generator without unwinding, so a crashed
        #: caller's increment leaks -- the gauge is a stat, not an
        #: invariant.
        self.inflight = 0
        #: (end_time, ops_combined) per combining session -- combiners only
        self.combining_sessions: List[Tuple[int, int]] = []
        #: core of the most recent combiner (combiners only; used by the
        #: fixed-combiner measurement of Figure 4a)
        self.current_combiner_core: Optional[int] = None
        # start time of the combining session currently open (obs span)
        self._session_t0: Optional[int] = None
        self._session_ctx: Optional[ThreadCtx] = None

    def start(self) -> None:
        """Spawn dedicated threads (if any).  Idempotence is an error."""
        if self._started:
            raise RuntimeError(f"{self.name} already started")
        self._started = True
        self._start()

    def _start(self) -> None:
        """Hook for subclasses with dedicated threads."""

    def apply_op(self, ctx: ThreadCtx, opcode: int, arg: int = NULL_ARG) -> Generator[Any, Any, int]:
        """Execute ``opcode(arg)`` in mutual exclusion; returns its result."""
        raise NotImplementedError

    def apply_op_timed(self, ctx: ThreadCtx, opcode: int, arg: int = NULL_ARG,
                       timeout: Optional[int] = None) -> Generator[Any, Any, int]:
        """``apply_op`` with an admission deadline (overload robustness).

        Semantics contract:

        * raises :class:`DispatchTimeout` only while abandonment is still
          side-effect free -- the op provably executed nowhere, so the
          caller may shed or retry it without breaking exactly-once;
        * past the primitive's *commit point* (request injected into the
          server's hardware queue, node linked into a combining list,
          channel claimed by the server) the deadline is ignored and the
          op completes normally, however late.

        The default implementation has no pre-commit wait at all
        (combining approaches commit with one wait-free SWAP/FAA), so it
        simply delegates to :meth:`apply_op`; bounding the *admission
        queue* in front of the client is then the only overload control
        (see :mod:`repro.workload.openloop`).  Server primitives override
        this with a genuinely timed pre-commit wait.
        """
        return (yield from self.apply_op(ctx, opcode, arg))

    # -- metrics hooks -----------------------------------------------------
    def servicing_cores(self) -> List[int]:
        """Core ids whose cycle counters represent the servicing thread
        (the server core, or every app core for combining approaches)."""
        raise NotImplementedError

    def session_begin(self, ctx: ThreadCtx) -> None:
        """Mark ``ctx`` as opening a combining session (obs span start)."""
        self._session_t0 = self.machine.now
        self._session_ctx = ctx
        obs = self.machine.sim.obs
        if obs is not None:
            obs.emit("combiner.open", core=ctx.core.cid, tid=ctx.tid,
                     prim=self.name)

    def record_session(self, ops: int) -> None:
        self.combining_sessions.append((self.machine.now, ops))
        obs = self.machine.sim.obs
        if obs is not None and self._session_ctx is not None:
            ctx = self._session_ctx
            obs.emit("combiner.close", core=ctx.core.cid, tid=ctx.tid,
                     prim=self.name, ops=ops,
                     start=self._session_t0 if self._session_t0 is not None
                     else self.machine.now)
        self._session_t0 = None
        self._session_ctx = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


class DirectExec(SyncPrimitive):
    """No synchronization at all: run the CS body on the calling thread.

    Only correct single-threaded.  Used to produce the "ideal" reference
    line of Figure 4c (the CS body with zero synchronization overhead)
    and as a baseline in tests.
    """

    service_threads = 0
    name = "ideal"

    def apply_op(self, ctx: ThreadCtx, opcode: int, arg: int = NULL_ARG):
        return (yield from self.optable.execute(ctx, opcode, arg))

    def servicing_cores(self) -> List[int]:
        return []
