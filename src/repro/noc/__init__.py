"""Network-on-chip model: 2D mesh topology, XY routing, latency/contention.

The TILE-Gx routes both cache-coherence traffic and User Dynamic Network
(UDN) messages over a 2D mesh.  This package provides:

* :class:`~repro.noc.topology.Mesh` -- node coordinates, XY routes, hop
  distances, and the analytic latency model used by default.
* :class:`~repro.noc.router.ContendedMesh` -- an optional heavier model
  where packets occupy per-link FIFO resources hop by hop, for ablation
  studies of link contention.
"""

from repro.noc.topology import Mesh
from repro.noc.router import ContendedMesh

__all__ = ["Mesh", "ContendedMesh"]
