"""Link-contention mesh model (ablation substrate).

:class:`ContendedMesh` wraps a :class:`~repro.noc.topology.Mesh` and adds
a FIFO :class:`~repro.sim.resources.Resource` per directed link.  A
packet traverses its XY route hop by hop, occupying each link for
``link_occupancy`` cycles per word (cut-through switching: the head
pays the hop latency, the body streams behind it).

This model is deliberately coarse -- one resource per link, no virtual
channels -- because its purpose is the ablation in the discussion
experiments: showing that for the synchronization workloads studied here
the analytic model and the contended model agree, i.e. the mesh is not
the bottleneck (the paper attributes all effects to coherence stalls and
memory-controller serialization, never to NoC congestion).
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Tuple

from repro.noc.topology import Mesh
from repro.sim.engine import Simulator
from repro.sim.resources import Resource

__all__ = ["ContendedMesh"]


class ContendedMesh:
    """Hop-by-hop packet transport with per-link FIFO arbitration."""

    def __init__(self, sim: Simulator, mesh: Mesh, *, link_occupancy: int = 1):
        self.sim = sim
        self.mesh = mesh
        self.link_occupancy = link_occupancy
        self._links: Dict[Tuple[int, int], Resource] = {}
        #: total packets fully delivered (stats)
        self.packets_delivered = 0
        #: total cycles packets spent queued at links (stats)
        self.total_link_wait = 0
        #: total link-busy cycles across all links (the telemetry flit
        #: gauge: a running aggregate of the per-link ``flit_cycles``
        #: perf-counter registers, maintained whether or not obs is on)
        self.total_flit_cycles = 0

    def _link(self, a: int, b: int) -> Resource:
        res = self._links.get((a, b))
        if res is None:
            res = Resource(self.sim, capacity=1)
            self._links[(a, b)] = res
        return res

    def transit(self, src: int, dst: int, words: int = 1,
                msg_id: Any = None) -> Generator[Any, Any, int]:
        """Move a packet from ``src`` to ``dst``; returns total transit cycles.

        Must be driven by a simulator process (``yield from``).  The
        caller decides what "delivery" means (e.g. appending to a UDN
        buffer) once this generator returns.  ``msg_id`` is pure
        observability: it tags the emitted ``noc.link`` events so the
        spatial atlas can attribute per-hop queueing back to one UDN
        message; protocols never read it.
        """
        t0 = self.sim.now
        mesh = self.mesh
        if src != dst:
            occupancy = self.link_occupancy * words
            for hop, (a, b) in enumerate(mesh.links(src, dst)):
                link = self._link(a, b)
                w0 = self.sim.now
                yield from link.acquire()
                wait = self.sim.now - w0
                self.total_link_wait += wait
                self.total_flit_cycles += max(occupancy, mesh.per_hop)
                obs = self.sim.obs
                if obs is not None:
                    obs.emit("noc.link", a=a, b=b, wait=wait,
                             busy=max(occupancy, mesh.per_hop),
                             hop=hop, msg_id=msg_id)
                try:
                    yield mesh.per_hop
                finally:
                    # The link stays busy while the packet body streams through.
                    if occupancy > mesh.per_hop:
                        self.sim.call_after(occupancy - mesh.per_hop, link.release)
                    else:
                        link.release()
        # Router pipeline / injection+ejection overhead.
        yield mesh.base + mesh.per_word * (words - 1)
        self.packets_delivered += 1
        obs = self.sim.obs
        if obs is not None:
            obs.emit("noc.packet", src=src, dst=dst, words=words,
                     cycles=self.sim.now - t0)
        return self.sim.now - t0
