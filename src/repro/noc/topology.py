"""2D mesh topology with dimension-ordered (XY) routing.

Nodes are numbered row-major: node ``n`` sits at ``(x, y) = (n % width,
n // width)``.  XY routing first moves along X to the destination column,
then along Y -- deadlock-free on a mesh and what Tilera's iMesh uses.

The default latency model is *analytic*: a message of ``words`` 64-bit
words from ``src`` to ``dst`` takes::

    base + per_hop * hops(src, dst) + per_word * max(0, words - 1)

cycles of in-flight time.  This ignores link contention (see
:mod:`repro.noc.router` for the contended variant) which is accurate for
the traffic patterns in this paper's workloads: the mesh is provisioned
far above what synchronization traffic generates, and the paper never
attributes effects to NoC congestion.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

__all__ = ["Mesh"]


class Mesh:
    """A ``width x height`` mesh of nodes with XY routing."""

    __slots__ = ("width", "height", "base", "per_hop", "per_word", "_x", "_y")

    def __init__(self, width: int, height: int, *, base: int = 4, per_hop: int = 1, per_word: int = 1):
        if width < 1 or height < 1:
            raise ValueError("mesh dimensions must be positive")
        self.width = width
        self.height = height
        self.base = base
        self.per_hop = per_hop
        self.per_word = per_word
        # hops() sits on the hot path of every memory/atomic/message
        # latency computation, but a precomputed N x N distance table is
        # O(n^2) memory -- 1 M entries at 1024 nodes.  Per-node coordinate
        # arrays keep the lookup allocation-free and O(n) total.
        n = width * height
        self._x = [a % width for a in range(n)]
        self._y = [a // width for a in range(n)]

    @property
    def num_nodes(self) -> int:
        return self.width * self.height

    def coords(self, node: int) -> Tuple[int, int]:
        """Return ``(x, y)`` of ``node`` (row-major numbering)."""
        self._check(node)
        return node % self.width, node // self.width

    def node_at(self, x: int, y: int) -> int:
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise ValueError(f"({x},{y}) outside {self.width}x{self.height} mesh")
        return y * self.width + x

    def hops(self, src: int, dst: int) -> int:
        """Manhattan distance between two nodes (analytic XY)."""
        if src < 0 or dst < 0:
            raise ValueError(f"node ids must be non-negative: {src}, {dst}")
        try:
            x, y = self._x, self._y
            return abs(x[src] - x[dst]) + abs(y[src] - y[dst])
        except IndexError:
            self._check(src)
            self._check(dst)
            raise

    def latency(self, src: int, dst: int, words: int = 1) -> int:
        """Analytic in-flight latency (cycles) for a ``words``-word packet."""
        if words < 1:
            raise ValueError("packet must carry at least one word")
        return self.base + self.per_hop * self.hops(src, dst) + self.per_word * (words - 1)

    def route(self, src: int, dst: int) -> List[int]:
        """XY route as the list of nodes visited, inclusive of endpoints."""
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        path = [self.node_at(sx, sy)]
        x, y = sx, sy
        while x != dx:
            x += 1 if dx > x else -1
            path.append(self.node_at(x, y))
        while y != dy:
            y += 1 if dy > y else -1
            path.append(self.node_at(x, y))
        return path

    def links(self, src: int, dst: int) -> Iterator[Tuple[int, int]]:
        """Directed links traversed by the XY route from ``src`` to ``dst``."""
        path = self.route(src, dst)
        return zip(path, path[1:])

    def nearest(self, node: int, candidates: List[int]) -> int:
        """The candidate node closest (in hops) to ``node``; ties -> lowest id."""
        if not candidates:
            raise ValueError("no candidates")
        return min(candidates, key=lambda c: (self.hops(node, c), c))

    def _check(self, node: int) -> None:
        if not (0 <= node < self.num_nodes):
            raise ValueError(f"node {node} outside mesh of {self.num_nodes} nodes")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Mesh({self.width}x{self.height}, base={self.base}, per_hop={self.per_hop})"
