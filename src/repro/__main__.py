"""``python -m repro`` -- top-level command-line interface.

Subcommands:

* ``info``        -- package, machine profiles, experiment registry
* ``quickstart``  -- the counter shootout at one concurrency level
* ``experiments`` -- forwarded to ``repro.experiments`` (all flags work)
* ``explore``     -- forwarded to ``repro.explore.cli`` (schedule search)
"""

from __future__ import annotations

import argparse
import sys


def cmd_info(_args) -> int:
    import repro
    from repro.experiments import EXPERIMENTS
    from repro.machine import scc_like, tile_gx, x86_like

    print(f"repro {repro.__version__} -- reproduction of Petrovic et al., "
          f"PPoPP 2014")
    print("\nmachine profiles:")
    for cfg in (tile_gx(), x86_like(), scc_like()):
        feats = []
        if cfg.has_udn:
            feats.append("hw message passing")
        if cfg.has_coherent_shm:
            feats.append("coherent shm")
        feats.append(f"atomics@{cfg.atomic_at}")
        print(f"  {cfg.name:<12s} {cfg.num_cores:>3d} cores @ "
              f"{cfg.clock_mhz} MHz   [{', '.join(feats)}]")
    print("\nexperiments (python -m repro experiments <id> [--full]):")
    for exp_id in EXPERIMENTS:
        print(f"  {exp_id}")
    print("\napproaches: mp-server, HybComb, shm-server, CC-Synch")
    print("objects: counter, MS-Queue (1/2-lock), LCRQ, stack, Treiber, "
          "elimination stack")
    return 0


def cmd_quickstart(args) -> int:
    from repro.workload import WorkloadSpec, run_counter_benchmark

    spec = WorkloadSpec()
    print(f"concurrent counter, {args.threads} threads, simulated "
          f"TILE-Gx @ 1.2 GHz")
    for approach in ("mp-server", "HybComb", "shm-server", "CC-Synch"):
        r = run_counter_benchmark(approach, args.threads, spec=spec)
        print(f"  {approach:>11s}: {r.throughput_mops:6.1f} Mops/s   "
              f"latency {r.mean_latency_cycles:6.0f} cycles")
    return 0


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # forward `experiments` / `explore` wholesale so their flags keep working
    if argv and argv[0] == "experiments":
        from repro.experiments.registry import main as exp_main
        return exp_main(argv[1:])
    if argv and argv[0] == "explore":
        from repro.explore.cli import main as explore_main
        return explore_main(argv[1:])

    parser = argparse.ArgumentParser(prog="python -m repro")
    sub = parser.add_subparsers(dest="cmd")
    sub.add_parser("info", help="package and registry overview")
    q = sub.add_parser("quickstart", help="counter shootout")
    q.add_argument("threads", nargs="?", type=int, default=20)
    sub.add_parser("experiments", help="run figure reproductions "
                                       "(see python -m repro.experiments -h)")
    sub.add_parser("explore", help="adversarial schedule search "
                                   "(see python -m repro explore -h)")
    args = parser.parse_args(argv)
    if args.cmd == "info" or args.cmd is None:
        return cmd_info(args)
    if args.cmd == "quickstart":
        return cmd_quickstart(args)
    parser.print_help()
    return 1


if __name__ == "__main__":
    sys.exit(main())
