"""``python -m repro`` -- top-level command-line interface.

Subcommands:

* ``info``        -- package, machine profiles, experiment registry
* ``quickstart``  -- the counter shootout at one concurrency level
* ``report``      -- run experiments under continuous telemetry and
  render self-contained HTML dashboards (+ terminal summary); SLO
  monitors and the flight recorder dump incident bundles on the way,
  and the spatial atlas adds a mesh heatmap / SVG per experiment
* ``diff``        -- compare two benchmark records (``BENCH_*.json`` or
  figure JSON) metric by metric; deterministic verdict, optional gate
* ``bench``       -- run one experiment as a host-performance benchmark
  (wall time + simulator events/sec); ``--profile`` wraps the run in
  cProfile and prints the hottest functions, which is how the engine-v3
  hot-path work was located and is the supported way to profile any
  experiment series
* ``experiments`` -- forwarded to ``repro.experiments`` (all flags work)
* ``explore``     -- forwarded to ``repro.explore.cli`` (schedule search)
"""

from __future__ import annotations

import argparse
import os
import sys


def cmd_info(_args) -> int:
    import repro
    from repro.experiments import EXPERIMENTS
    from repro.machine import scc_like, tile_gx, x86_like

    print(f"repro {repro.__version__} -- reproduction of Petrovic et al., "
          f"PPoPP 2014")
    print("\nmachine profiles:")
    for cfg in (tile_gx(), x86_like(), scc_like()):
        feats = []
        if cfg.has_udn:
            feats.append("hw message passing")
        if cfg.has_coherent_shm:
            feats.append("coherent shm")
        feats.append(f"atomics@{cfg.atomic_at}")
        print(f"  {cfg.name:<12s} {cfg.num_cores:>3d} cores @ "
              f"{cfg.clock_mhz} MHz   [{', '.join(feats)}]")
    print("\nexperiments (python -m repro experiments <id> [--full]):")
    for exp_id in EXPERIMENTS:
        print(f"  {exp_id}")
    print("\napproaches: mp-server, HybComb, shm-server, CC-Synch")
    print("objects: counter, MS-Queue (1/2-lock), LCRQ, stack, Treiber, "
          "elimination stack")
    return 0


def cmd_quickstart(args) -> int:
    from repro.workload import WorkloadSpec, run_counter_benchmark

    spec = WorkloadSpec()
    print(f"concurrent counter, {args.threads} threads, simulated "
          f"TILE-Gx @ 1.2 GHz")
    for approach in ("mp-server", "HybComb", "shm-server", "CC-Synch"):
        r = run_counter_benchmark(approach, args.threads, spec=spec)
        print(f"  {approach:>11s}: {r.throughput_mops:6.1f} Mops/s   "
              f"latency {r.mean_latency_cycles:6.0f} cycles")
    return 0


def _slos_for(exp_id: str):
    """Default SLO set monitored by ``report`` for one experiment."""
    if exp_id == "overload":
        from repro.experiments.overload import overload_slos
        return overload_slos()
    from repro.obs import SLO
    # closed-loop figures: a loose op-latency objective that healthy
    # runs satisfy -- a breach here means the run itself went sideways
    return (SLO("op-p99", kind="latency", target=100_000.0),)


def cmd_report(args) -> int:
    """Run experiments with continuous telemetry; write dashboards."""
    import repro.obs as obs_mod
    from repro.analysis.dashboard import render_dashboard_text, write_dashboard
    from repro.experiments.registry import EXPERIMENTS, run_experiment

    exps = args.experiments or ["fig3a", "overload"]
    unknown = [e for e in exps if e not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s) {unknown}; choose from "
              f"{sorted(EXPERIMENTS)}", file=sys.stderr)
        return 2
    # layer flags narrow the default everything-on telemetry stack
    any_layer = args.timeseries or args.slo or args.flight
    timeseries = args.timeseries or not any_layer
    slo = args.slo or not any_layer
    flight = args.flight or not any_layer
    for exp_id in exps:
        incident_dir = (os.path.join(args.out, "incidents", exp_id)
                        if flight else None)
        with obs_mod.observed(
                timeseries=timeseries,
                sample_every=args.sample_every,
                slos=_slos_for(exp_id) if slo else (),
                flight=flight, incident_dir=incident_dir,
                spatial=True, spatial_hops=True) as session:
            fig = run_experiment(exp_id, quick=not args.full, jobs=1)
        title = f"{exp_id}: {fig.title}"
        print(render_dashboard_text(session, title=title))
        path = write_dashboard(
            os.path.join(args.out, f"{exp_id}-dashboard.html"),
            session, title=title, notes=fig.notes)
        print(f"[dashboard written to {path}]")
        spatial = session.spatial_summary()
        if spatial is not None and spatial.get("tiles"):
            from repro.analysis.dashboard import write_mesh_svg
            mesh_path = write_mesh_svg(
                os.path.join(args.out, f"{exp_id}-mesh.svg"),
                spatial, title=f"{exp_id}: NoC congestion atlas")
            print(f"[mesh heatmap written to {mesh_path}]")
        dumped = [p for ob in session.machines if ob.flight is not None
                  for p in ob.flight.paths]
        if dumped:
            print(f"[{len(dumped)} incident bundle(s) under "
                  f"{os.path.join(args.out, 'incidents', exp_id)}]")
    return 0


def cmd_bench(args) -> int:
    """Run one experiment for host-perf numbers, optionally profiled."""
    import time

    from repro.experiments.registry import EXPERIMENTS, run_experiment

    if args.experiment not in EXPERIMENTS:
        print(f"unknown experiment {args.experiment!r}; choose from "
              f"{sorted(EXPERIMENTS)}", file=sys.stderr)
        return 2

    def go():
        # jobs pinned to 1: the numbers (and the profile) must cover the
        # work itself, not the idle wait on a pool of worker processes
        return run_experiment(args.experiment, quick=not args.full, jobs=1)

    prof = None
    t0 = time.perf_counter()
    if args.profile:
        import cProfile
        prof = cProfile.Profile()
        fig = prof.runcall(go)
    else:
        fig = go()
    wall = time.perf_counter() - t0

    points = [r for s in fig.series.values() for _x, r in s.points]
    events = sum(r.host_events_processed for r in points)
    line = (f"{args.experiment}: {len(points)} points, "
            f"{events} simulator events in {wall:.2f}s wall")
    if wall > 0 and events:
        line += f" ({events / wall / 1e6:.2f}M events/sec)"
    if args.profile:
        line += "  [under cProfile: expect ~2x slowdown]"
    print(line)
    if prof is not None:
        import pstats
        stats = pstats.Stats(prof, stream=sys.stdout)
        stats.strip_dirs().sort_stats(args.sort).print_stats(args.top)
    return 0


def cmd_diff(args) -> int:
    """Compare two benchmark/figure records; print a structured verdict."""
    from repro.analysis.diff import (diff_records, diff_to_json, load_record,
                                     render_diff_text)

    try:
        a = load_record(args.a)
        b = load_record(args.b)
    except (OSError, KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    gate = tuple(args.gate) if args.gate else ()
    diff = diff_records(a, b, threshold=args.threshold, gate=gate)
    if args.json:
        print(diff_to_json(diff))
    else:
        print(render_diff_text(diff, show_unchanged=args.show_unchanged))
    if args.html:
        from repro.analysis.dashboard import render_diff_html
        d = os.path.dirname(args.html)
        if d:
            os.makedirs(d, exist_ok=True)
        with open(args.html, "w") as f:
            f.write(render_diff_html(
                diff, title=f"repro diff: {a['label']} vs {b['label']}"))
        print(f"[diff page written to {args.html}]", file=sys.stderr)
    if gate and diff["gate_failures"]:
        return 1
    return 0


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # forward `experiments` / `explore` wholesale so their flags keep working
    if argv and argv[0] == "experiments":
        from repro.experiments.registry import main as exp_main
        return exp_main(argv[1:])
    if argv and argv[0] == "run":
        # `python -m repro run scale` -- alias for `experiments`, reading
        # the way the quickstart docs phrase it
        from repro.experiments.registry import main as exp_main
        return exp_main(argv[1:])
    if argv and argv[0] == "explore":
        from repro.explore.cli import main as explore_main
        return explore_main(argv[1:])

    parser = argparse.ArgumentParser(prog="python -m repro")
    sub = parser.add_subparsers(dest="cmd")
    sub.add_parser("info", help="package and registry overview")
    q = sub.add_parser("quickstart", help="counter shootout")
    q.add_argument("threads", nargs="?", type=int, default=20)
    rep = sub.add_parser(
        "report",
        help="run experiments under continuous telemetry and write "
             "self-contained HTML dashboards (default: fig3a overload)")
    rep.add_argument("experiments", nargs="*", default=[],
                     help="experiment ids (default: fig3a overload)")
    rep.add_argument("--full", action="store_true",
                     help="use the large windows/sweeps (slow)")
    rep.add_argument("--out", metavar="DIR", default="report",
                     help="output directory for dashboards and incident "
                          "bundles (default: report)")
    rep.add_argument("--sample-every", type=int, default=512, metavar="CYC",
                     help="telemetry sample cadence in cycles (default: 512)")
    rep.add_argument("--timeseries", action="store_true",
                     help="only the time-series layer (default: all layers)")
    rep.add_argument("--slo", action="store_true",
                     help="only SLO monitoring (default: all layers)")
    rep.add_argument("--flight", action="store_true",
                     help="only the flight recorder (default: all layers)")
    ben = sub.add_parser(
        "bench",
        help="run one experiment as a host-performance benchmark; "
             "--profile prints the cProfile hot spots")
    ben.add_argument("experiment",
                     help="experiment id (see python -m repro info)")
    ben.add_argument("--full", action="store_true",
                     help="use the large windows/sweeps (slow)")
    ben.add_argument("--profile", action="store_true",
                     help="run under cProfile and print the top functions")
    ben.add_argument("--top", type=int, default=25, metavar="N",
                     help="profile rows to print (default: 25)")
    ben.add_argument("--sort", choices=("cumulative", "tottime", "ncalls"),
                     default="tottime",
                     help="profile sort order (default: tottime -- self "
                          "time, where the hot loop shows up)")
    dif = sub.add_parser(
        "diff",
        help="compare two benchmark records (BENCH_*.json or figure "
             "JSON) metric by metric with a deterministic verdict")
    dif.add_argument("a", metavar="A[:SERIES]",
                     help="baseline record; append :SERIES to pick one "
                          "curve of a multi-series benchmark file")
    dif.add_argument("b", metavar="B[:SERIES]", help="candidate record")
    dif.add_argument("--threshold", type=float, default=0.05, metavar="FRAC",
                     help="relative change below which a metric counts as "
                          "unchanged (default: 0.05)")
    dif.add_argument("--json", action="store_true",
                     help="emit the full structured diff as JSON")
    dif.add_argument("--html", metavar="PATH",
                     help="also write a side-by-side HTML diff page")
    dif.add_argument("--gate", action="append", metavar="METRIC",
                     help="exit 1 if METRIC regressed anywhere (repeatable, "
                          "e.g. --gate throughput_mops)")
    dif.add_argument("--show-unchanged", action="store_true",
                     help="list unchanged metrics too in the text report")
    sub.add_parser("experiments", help="run figure reproductions "
                                       "(see python -m repro.experiments -h)")
    sub.add_parser("run", help="alias for `experiments` "
                               "(e.g. python -m repro run scale)")
    sub.add_parser("explore", help="adversarial schedule search "
                                   "(see python -m repro explore -h)")
    args = parser.parse_args(argv)
    if args.cmd == "info" or args.cmd is None:
        return cmd_info(args)
    if args.cmd == "quickstart":
        return cmd_quickstart(args)
    if args.cmd == "report":
        return cmd_report(args)
    if args.cmd == "bench":
        return cmd_bench(args)
    if args.cmd == "diff":
        return cmd_diff(args)
    parser.print_help()
    return 1


if __name__ == "__main__":
    sys.exit(main())
