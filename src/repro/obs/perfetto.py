"""Chrome/Perfetto trace export of observability events.

:class:`TraceCollector` subscribes to the event bus and records spans
and instants in the Chrome Trace Event format (the JSON flavour both
``chrome://tracing`` and https://ui.perfetto.dev open directly).

Track layout (one traced machine = one "process"):

* one thread track per core (``tid`` = core id) carrying coherence
  stalls, atomic round trips, receive waits, combining sessions and
  served requests;
* a ``udn`` track for message deliveries;
* one track per *used* mesh link (allocated lazily) carrying link
  occupancy spans;
* a ``sim`` track for process lifecycle / fault events.

Timestamps are simulated cycles written into the ``ts``/``dur``
microsecond fields -- the absolute unit is meaningless for a simulator,
the relative scale is what matters.  Events are sorted by timestamp at
export, so the file always satisfies the monotonicity the viewers
expect.  The collector caps recorded events (``limit``) and counts what
it drops, so tracing a long run degrades to a truncated trace instead
of unbounded memory.
"""

from __future__ import annotations

import json
import logging
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = ["TraceCollector", "counter_events", "write_chrome_trace"]

log = logging.getLogger(__name__)


class TraceCollector:
    """Record bus events as Chrome trace events (see module docs)."""

    def __init__(self, num_cores: int, limit: int = 500_000):
        self.num_cores = num_cores
        self.limit = limit
        self.dropped = 0
        #: recorded events: (ts, dur_or_None, tid, name, cat, args)
        self.records: List[Tuple[int, Optional[int], int, str, str, Dict[str, Any]]] = []
        #: flow-event bindings: (ts, tid, flow_id, phase) with phase one
        #: of "s"/"t"/"f" -- links one op's spans across core tracks
        self.flows: List[Tuple[int, int, int, str]] = []
        #: per-thread current op id (from ``op.begin``), so service spans
        #: can join the issuing op's flow
        self._cur_op: Dict[int, int] = {}
        self.sim_track = num_cores
        self.udn_track = num_cores + 1
        self._link_tracks: Dict[str, int] = {}
        self._next_track = num_cores + 2

    # -- recording ----------------------------------------------------------
    def _add(self, ts: int, dur: Optional[int], tid: int, name: str,
             cat: str, args: Dict[str, Any]) -> None:
        if len(self.records) >= self.limit:
            if self.dropped == 0:
                log.warning(
                    "trace collector hit its %d-event cap; subsequent "
                    "events are dropped and the exported trace will be "
                    "marked truncated", self.limit,
                )
            self.dropped += 1
            return
        self.records.append((ts, dur, tid, name, cat, args))

    def _add_flow(self, ts: int, tid: int, flow_id: int, phase: str) -> None:
        if len(self.flows) >= self.limit:
            self.dropped += 1
            return
        self.flows.append((ts, tid, flow_id, phase))

    def _link_track(self, a: int, b: int) -> int:
        key = f"{a}->{b}"
        tid = self._link_tracks.get(key)
        if tid is None:
            tid = self._next_track
            self._next_track += 1
            self._link_tracks[key] = tid
        return tid

    def on_event(self, t: int, kind: str, f: Dict[str, Any]) -> None:
        if kind == "cache.stall":
            self._add(f["start"], f["cycles"], f["core"],
                      "stall:" + f["why"], "cache", {"line": f.get("line")})
        elif kind == "fence.stall":
            self._add(f["start"], f["cycles"], f["core"],
                      "stall:" + f["why"], "cache", {})
        elif kind == "cache.miss":
            self._add(t, None, f["core"],
                      f"miss:{f['op']}:{f['transition']}", "cache",
                      {"line": f["line"], "latency": f["latency"]})
        elif kind == "atomic.stall":
            self._add(f["start"], f["cycles"], f["core"], "atomic", "atomic",
                      {"line": f["line"]})
        elif kind == "atomic.cas_fail":
            self._add(t, None, f["core"], "cas-fail", "atomic",
                      {"line": f["line"]})
        elif kind == "udn.send":
            self._add(t, None, f["core"], f"send->t{f['dst_tid']}", "udn",
                      {"words": f["words"], "dst_core": f["dst_core"]})
        elif kind == "udn.backpressure":
            self._add(f["start"], f["cycles"], f["core"], "backpressure",
                      "udn", {"dst_core": f["dst_core"]})
        elif kind == "udn.recv":
            self._add(f["start"], f["waited"], f["core"], "recv", "udn",
                      {"words": f["words"], "tid": f["tid"]})
        elif kind == "udn.deliver":
            self._add(t, None, self.udn_track, f"deliver@c{f['core']}", "udn",
                      {"words": f["words"], "latency": f["latency"]})
        elif kind == "udn.timeout":
            self._add(t, None, f["core"], f"timeout:{f['op']}", "fault",
                      {"waited": f["waited"]})
        elif kind == "noc.link":
            self._add(t, f["busy"], self._link_track(f["a"], f["b"]),
                      f"link {f['a']}->{f['b']}", "noc", {"wait": f["wait"]})
        elif kind == "combiner.close":
            self._add(f["start"], t - f["start"], f["core"], "combine",
                      "combiner", {"ops": f["ops"], "prim": f["prim"]})
        elif kind == "server.req":
            self._add(t, None, f["core"], "req", "server",
                      {"client": f["client"], "prim": f["prim"]})
        elif kind == "op.begin":
            self._cur_op[f["tid"]] = f["op"]
            self._add_flow(t, f["core"], f["op"], "s")
        elif kind == "op.end":
            self._add(f["start"], t - f["start"], f["core"], "op", "op",
                      {"op": f["op"], "tid": f["tid"],
                       "measured": f["measured"]})
            self._add_flow(t, f["core"], f["op"], "f")
        elif kind == "server.done":
            self._add(f["start"], t - f["start"], f["core"], "svc", "server",
                      {"client": f["client"], "prim": f["prim"]})
            op = self._cur_op.get(f["client"])
            if op is not None:
                self._add_flow(f["start"], f["core"], op, "t")
        elif kind in ("proc.kill", "proc.interrupt"):
            self._add(t, None, self.sim_track, kind, "fault",
                      {"name": f["name"]})

    # -- export -------------------------------------------------------------
    def track_names(self) -> Dict[int, str]:
        names = {cid: f"core {cid}" for cid in range(self.num_cores)}
        names[self.sim_track] = "sim"
        names[self.udn_track] = "udn"
        for key, tid in self._link_tracks.items():
            names[tid] = f"link {key}"
        return names

    def trace_events(self, pid: int) -> List[Dict[str, Any]]:
        """This collector's records as Chrome trace-event dicts."""
        used = {rec[2] for rec in self.records}
        out: List[Dict[str, Any]] = []
        for tid, name in sorted(self.track_names().items()):
            if tid in used:
                out.append({"name": "thread_name", "ph": "M", "pid": pid,
                            "tid": tid, "args": {"name": name}})
        for ts, dur, tid, name, cat, args in sorted(self.records,
                                                    key=lambda r: (r[0], r[2])):
            ev: Dict[str, Any] = {"name": name, "cat": cat, "pid": pid,
                                  "tid": tid, "ts": ts, "args": args}
            if dur is None:
                ev["ph"] = "i"
                ev["s"] = "t"
            else:
                ev["ph"] = "X"
                ev["dur"] = dur
            out.append(ev)
        for ts, tid, flow_id, phase in sorted(self.flows,
                                              key=lambda r: (r[2], r[0])):
            ev = {"name": "op-flow", "cat": "op", "pid": pid, "tid": tid,
                  "ts": ts, "ph": phase, "id": flow_id}
            if phase == "f":
                ev["bp"] = "e"
            out.append(ev)
        return out


def counter_events(pid: int, sampler) -> List[Dict[str, Any]]:
    """A sampler's ring series as Chrome counter-track events (``ph: C``).

    Perfetto renders one counter track per (pid, series name); each
    bucket of the ring becomes one sample at the bucket's start cycle.
    The trace viewer thus reads exactly the data the HTML dashboard
    charts -- same rings, same downsampling.
    """
    out: List[Dict[str, Any]] = []
    for name in sorted(sampler.series):
        ts = sampler.series[name]
        label = f"{name} ({ts.unit})" if ts.unit else name
        for t, v in ts.points():
            out.append({"name": label, "cat": "telemetry", "ph": "C",
                        "pid": pid, "tid": 0, "ts": t,
                        "args": {"value": v}})
    return out


def write_chrome_trace(collectors: Sequence[Tuple[str, TraceCollector]],
                       path: str,
                       counters: Sequence[Tuple[str, Any]] = ()) -> int:
    """Write labelled collectors as one Chrome trace JSON file.

    Each (label, collector) pair becomes one "process" in the trace, so
    several benchmark runs can be compared side by side in Perfetto.
    ``counters`` pairs labels with :class:`~repro.obs.timeseries.Sampler`
    instances whose series are emitted as counter tracks on the
    matching process (labels not matching any collector get their own
    process).  Returns the number of trace events written.
    """
    events: List[Dict[str, Any]] = []
    dropped = 0
    pid_of: Dict[str, int] = {}
    for pid, (label, col) in enumerate(collectors):
        pid_of.setdefault(label, pid)
        events.append({"name": "process_name", "ph": "M", "pid": pid,
                       "args": {"name": label}})
        events.extend(col.trace_events(pid))
        dropped += col.dropped
    next_pid = len(collectors)
    for label, sampler in counters:
        pid = pid_of.get(label)
        if pid is None:
            pid = next_pid
            next_pid += 1
            pid_of[label] = pid
            events.append({"name": "process_name", "ph": "M", "pid": pid,
                           "args": {"name": label}})
        events.extend(counter_events(pid, sampler))
    other: Dict[str, Any] = {"unit": "simulated cycles"}
    if dropped:
        log.warning("trace %s is truncated: %d events were dropped at the "
                    "collector cap", path, dropped)
        other["truncated"] = True
        other["dropped_events"] = dropped
    doc = {"traceEvents": events, "displayTimeUnit": "ns",
           "otherData": other}
    with open(path, "w") as fh:
        json.dump(doc, fh)
    return len(events)
