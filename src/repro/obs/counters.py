"""Hardware performance counters derived from the observability bus.

:class:`PerfCounters` is the "perf counter file" of the simulated chip:
a set of monotonically increasing registers maintained from
:class:`~repro.obs.bus.EventBus` events plus the cores' own cycle
registers.  Like real PMUs it is queried with before/after snapshots::

    before = machine.obs.counters.snapshot()
    ...  # run a measurement window
    delta = machine.obs.counters.delta(before)
    delta["core"][3]["miss.load.M->S"]   # misses by coherence transition
    delta["line"][17]["stall_cycles"]    # per-cache-line contention
    delta["link"]["4->5"]["flit_cycles"] # mesh link occupancy
    delta["udn_hist"][6]                 # deliveries with latency in [32,64)

Register groups
---------------
``core``      per-core: misses by transition (``miss.load.M->S``,
              ``miss.store.inv``, ...), ``invalidations_received``,
              ``cas_failures``, event-derived stall cycles
              (``stall_mem`` / ``stall_atomic`` / ``stall_fence``), UDN
              words/messages sent and received, backpressure cycles.
``line``      per-cache-line: ``misses``, ``invalidations``,
              ``stall_cycles``, ``atomics``, ``cas_failures`` -- the raw
              material of the contention heatmap.
``link``      per directed mesh link (``"a->b"`` keys): ``flit_cycles``
              (occupancy) and ``wait_cycles`` (queueing).
``udn_hist``  histogram of message delivery latencies; bucket ``k``
              counts deliveries with latency in ``[2^(k-1), 2^k)``
              cycles (bucket 0 is latency 0).
``global``    chip-wide: combining sessions/ops, process lifecycle
              counts, timeouts, retries.
``hw``        the per-core cycle registers (``busy``, ``stall_*``,
              ``wait``, ``rmr``, op counts) read straight from
              :class:`~repro.machine.core.Core` -- the registers the
              paper's own Figure 4a methodology reads.
``source``    externally registered scalar sources
              (:meth:`PerfCounters.register_source`).

Every register group is **baselined at enable time**: the ``hw``
registers subtract the core snapshots taken when this PerfCounters was
constructed, and a ``source`` registered mid-run subtracts its value at
registration.  Without that, observability enabled after warm-up (or a
source registered after the first snapshot) would fold pre-enable
totals into the first window's delta -- a garbage baseline.

The event-derived ``stall_*`` registers in ``core`` must always equal
the ``hw`` stall registers: both are incremented at the same sites with
the same values, and a test holds them together (the guard against
double-counting when the accounting is refactored).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Callable, Dict

import numpy as np

__all__ = ["PerfCounters", "counters_csv", "merge_counters", "latency_bucket"]

# Fixed register slots for the UDN event handlers -- the four
# highest-frequency bus events under the Figure 3 workloads (every
# message send/deliver/receive fires one).  These registers live in a
# (cores x slots) int64 array instead of the nested str-keyed dicts the
# cold handlers use: a fixed-slot write with no string hashing, and a
# layout the compiled engine core's hook can feed without boxing.
# snapshot() folds them back into the plain-dict register shape, so the
# query surface is unchanged.
(_U_MSGS_SENT, _U_WORDS_SENT, _U_MSGS_RECV, _U_WORDS_RECV,
 _U_WAIT, _U_BP_CYCLES, _U_BP_EVENTS) = range(7)
_U_SLOTS = 7

#: udn_hist buckets; bucket k is latency bit_length (64-bit cycle
#: counts fit with room to spare)
_U_HIST = 80


def latency_bucket(latency: int) -> int:
    """Histogram bucket for a latency: 0, then ``[2^(k-1), 2^k)`` -> k."""
    if latency <= 0:
        return 0
    return max(1, latency.bit_length())


def _nested() -> Dict[Any, Dict[str, int]]:
    return defaultdict(lambda: defaultdict(int))


def merge_counters(into: Dict[str, Any], frm: Dict[str, Any]) -> Dict[str, Any]:
    """Accumulate one snapshot/delta dict into another (for aggregation)."""
    for group in ("core", "line", "link", "hw"):
        dst = into.setdefault(group, {})
        for key, regs in frm.get(group, {}).items():
            d = dst.setdefault(key, {})
            for name, v in regs.items():
                d[name] = d.get(name, 0) + v
    for group in ("udn_hist", "global", "source"):
        dst = into.setdefault(group, {})
        for key, v in frm.get(group, {}).items():
            dst[key] = dst.get(key, 0) + v
    return into


class PerfCounters:
    """Monotonic counter registers fed by bus events (see module docs)."""

    def __init__(self, machine):
        self.machine = machine
        self.core = _nested()       # cid -> register -> value
        self.line = _nested()       # line no -> register -> value
        self.link = _nested()       # "a->b" -> register -> value
        self.global_: Dict[str, int] = defaultdict(int)
        # hot UDN registers: numpy-backed, folded into the dict shape at
        # snapshot time (see the slot constants at module top)
        ncores = 1 + max((c.cid for c in machine.cores), default=-1)
        self._udn_core = np.zeros((ncores, _U_SLOTS), dtype=np.int64)
        self._udn_hist = np.zeros(_U_HIST, dtype=np.int64)
        # hw registers are reported relative to enable time: without the
        # baseline, enabling observability mid-run would make the first
        # delta() include every pre-enable cycle
        self._hw_base = {c.cid: c.snapshot() for c in machine.cores}
        self._sources: Dict[str, Callable[[], float]] = {}
        self._source_base: Dict[str, float] = {}

    def register_source(self, name: str, fn: Callable[[], float]) -> None:
        """Expose external scalar ``fn()`` as register ``source/<name>``.

        Baselined at registration: the register reads 0 now and tracks
        increments from here on, so sources registered after a first
        :meth:`snapshot` still produce correct :meth:`delta` values.
        """
        if name in self._sources:
            raise ValueError(f"source {name!r} already registered")
        self._sources[name] = fn
        self._source_base[name] = fn()

    # -- event ingestion ----------------------------------------------------
    def on_event(self, t: int, kind: str, f: Dict[str, Any]) -> None:
        handler = _HANDLERS.get(kind)
        if handler is not None:
            handler(self, t, f)

    def _on_cache_miss(self, t, f):
        c = self.core[f["core"]]
        c["miss." + f["op"] + "." + f["transition"]] += 1
        c["misses"] += 1
        ln = self.line[f["line"]]
        ln["misses"] += 1
        ln["miss_latency_cycles"] += f["latency"]

    def _on_cache_stall(self, t, f):
        self.core[f["core"]]["stall_mem"] += f["cycles"]
        line = f.get("line")
        if line is not None:
            self.line[line]["stall_cycles"] += f["cycles"]

    def _on_cache_inval(self, t, f):
        self.core[f["core"]]["invalidations_received"] += 1
        self.line[f["line"]]["invalidations"] += 1

    def _on_fence_stall(self, t, f):
        self.core[f["core"]]["stall_fence"] += f["cycles"]

    def _on_atomic_exec(self, t, f):
        c = self.core[f["core"]]
        c["atomics"] += 1
        if f.get("cold"):
            c["atomics_cold"] += 1
        ln = self.line[f["line"]]
        ln["atomics"] += 1
        self.global_["atomic_service_cycles"] += f.get("service", 0)

    def _on_atomic_stall(self, t, f):
        self.core[f["core"]]["stall_atomic"] += f["cycles"]
        self.line[f["line"]]["stall_cycles"] += f["cycles"]

    def _on_cas_fail(self, t, f):
        self.core[f["core"]]["cas_failures"] += 1
        self.line[f["line"]]["cas_failures"] += 1

    def _on_udn_send(self, t, f):
        row = self._udn_core[f["core"]]
        row[_U_MSGS_SENT] += 1
        row[_U_WORDS_SENT] += f["words"]

    def _on_udn_backpressure(self, t, f):
        row = self._udn_core[f["core"]]
        row[_U_BP_CYCLES] += f["cycles"]
        row[_U_BP_EVENTS] += 1

    def _on_udn_deliver(self, t, f):
        self._udn_hist[latency_bucket(f["latency"])] += 1

    def _on_udn_recv(self, t, f):
        row = self._udn_core[f["core"]]
        row[_U_MSGS_RECV] += 1
        row[_U_WORDS_RECV] += f["words"]
        row[_U_WAIT] += f["waited"]

    @property
    def udn_hist(self) -> Dict[int, int]:
        """Delivery-latency histogram as a plain dict (buckets hit)."""
        return {k: int(v) for k, v in enumerate(self._udn_hist) if v}

    def _on_udn_timeout(self, t, f):
        self.global_["udn_timeouts"] += 1

    def _on_noc_link(self, t, f):
        lk = self.link[f"{f['a']}->{f['b']}"]
        lk["flit_cycles"] += f["busy"]
        lk["wait_cycles"] += f["wait"]

    def _on_noc_packet(self, t, f):
        self.global_["noc_packets"] += 1
        self.global_["noc_packet_cycles"] += f["cycles"]

    def _on_combiner_close(self, t, f):
        self.global_["combining_sessions"] += 1
        self.global_["combined_ops"] += f["ops"]

    def _on_server_req(self, t, f):
        self.core[f["core"]]["requests_served"] += 1
        self.global_["requests_served"] += 1

    def _on_server_done(self, t, f):
        self.core[f["core"]]["service_cycles"] += t - f["start"]
        self.global_["ops_serviced"] += 1

    def _on_proc(self, t, f, key):
        self.global_[key] += 1

    def _on_fault(self, t, f, key):
        self.global_[key] += 1

    # -- snapshots ----------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Plain-dict copy of every register, including the core hw ones."""
        base = self._hw_base
        core = {cid: dict(regs) for cid, regs in self.core.items()}
        # fold the numpy-backed UDN registers into the dict shape; a
        # register is present iff its triggering event ever fired for
        # that core (matching the old key-on-first-increment semantics)
        for cid, row in enumerate(self._udn_core.tolist()):
            if not any(row):
                continue
            regs = core.setdefault(cid, {})
            if row[_U_MSGS_SENT]:
                regs["udn_msgs_sent"] = row[_U_MSGS_SENT]
                regs["udn_words_sent"] = row[_U_WORDS_SENT]
            if row[_U_BP_EVENTS]:
                regs["backpressure_cycles"] = row[_U_BP_CYCLES]
            if row[_U_MSGS_RECV]:
                regs["udn_msgs_received"] = row[_U_MSGS_RECV]
                regs["udn_words_received"] = row[_U_WORDS_RECV]
                regs["udn_wait_cycles"] = row[_U_WAIT]
        glob = dict(self.global_)
        deliveries = int(self._udn_hist.sum())
        if deliveries:
            glob["udn_deliveries"] = deliveries
        bp_events = int(self._udn_core[:, _U_BP_EVENTS].sum())
        if bp_events:
            glob["backpressure_events"] = bp_events
        return {
            "core": core,
            "line": {ln: dict(regs) for ln, regs in self.line.items()},
            "link": {lk: dict(regs) for lk, regs in self.link.items()},
            "udn_hist": self.udn_hist,
            "global": glob,
            "hw": {
                c.cid: {
                    name: v - base[c.cid][name]
                    for name, v in c.snapshot().items()
                }
                for c in self.machine.cores
            },
            "source": {
                name: fn() - self._source_base[name]
                for name, fn in self._sources.items()
            },
        }

    def delta(self, since: Dict[str, Any]) -> Dict[str, Any]:
        """Register increments since a :meth:`snapshot` (same shape)."""
        now = self.snapshot()
        out: Dict[str, Any] = {}
        for group in ("core", "line", "link", "hw"):
            g: Dict[Any, Dict[str, int]] = {}
            base = since.get(group, {})
            for key, regs in now[group].items():
                b = base.get(key, {})
                d = {name: v - b.get(name, 0) for name, v in regs.items()}
                d = {name: v for name, v in d.items() if v}
                if d:
                    g[key] = d
            out[group] = g
        for group in ("udn_hist", "global", "source"):
            base = since.get(group, {})
            out[group] = {
                k: v - base.get(k, 0)
                for k, v in now[group].items()
                if v - base.get(k, 0)
            }
        return out

    # -- derived views ------------------------------------------------------
    def service_breakdown(self, core_ids, since: Dict[str, Any]) -> Dict[str, float]:
        """Event-derived stall and hw busy cycles over a window.

        Returns ``{"busy": ..., "stall": ...}`` summed over ``core_ids``
        -- the raw material of Figure 4a, reconstructed from the perf
        counter file instead of the driver's ad-hoc accounting.
        """
        d = self.delta(since)
        stall = busy = 0
        for cid in core_ids:
            regs = d["core"].get(cid, {})
            stall += (regs.get("stall_mem", 0) + regs.get("stall_atomic", 0)
                      + regs.get("stall_fence", 0))
            busy += d["hw"].get(cid, {}).get("busy", 0)
        return {"busy": float(busy), "stall": float(stall)}


def counters_csv(agg: Dict[str, Any]) -> str:
    """Render an aggregated snapshot/delta as long-format CSV."""
    lines = ["scope,id,counter,value"]
    for group in ("core", "line", "link", "hw"):
        for key in sorted(agg.get(group, {}), key=str):
            for name in sorted(agg[group][key]):
                v = agg[group][key][name]
                if v:
                    lines.append(f"{group},{key},{name},{v}")
    for k in sorted(agg.get("udn_hist", {})):
        lines.append(f"udn_hist,{k},deliveries,{agg['udn_hist'][k]}")
    for name in sorted(agg.get("global", {})):
        lines.append(f"global,,{name},{agg['global'][name]}")
    for name in sorted(agg.get("source", {})):
        lines.append(f"source,,{name},{agg['source'][name]}")
    return "\n".join(lines) + "\n"


_HANDLERS = {
    "cache.miss": PerfCounters._on_cache_miss,
    "cache.stall": PerfCounters._on_cache_stall,
    "cache.inval": PerfCounters._on_cache_inval,
    "fence.stall": PerfCounters._on_fence_stall,
    "atomic.exec": PerfCounters._on_atomic_exec,
    "atomic.stall": PerfCounters._on_atomic_stall,
    "atomic.cas_fail": PerfCounters._on_cas_fail,
    "udn.send": PerfCounters._on_udn_send,
    "udn.backpressure": PerfCounters._on_udn_backpressure,
    "udn.deliver": PerfCounters._on_udn_deliver,
    "udn.recv": PerfCounters._on_udn_recv,
    "udn.timeout": PerfCounters._on_udn_timeout,
    "noc.link": PerfCounters._on_noc_link,
    "noc.packet": PerfCounters._on_noc_packet,
    "combiner.close": PerfCounters._on_combiner_close,
    "server.req": PerfCounters._on_server_req,
    "server.done": PerfCounters._on_server_done,
    "proc.kill": lambda self, t, f: self._on_proc(t, f, "proc_kills"),
    "proc.interrupt": lambda self, t, f: self._on_proc(t, f, "proc_interrupts"),
    "fault.retry": lambda self, t, f: self._on_fault(t, f, "ops_retried"),
    "fault.failover": lambda self, t, f: self._on_fault(t, f, "failovers"),
    "fault.takeover": lambda self, t, f: self._on_fault(t, f, "takeovers"),
}
