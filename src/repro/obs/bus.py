"""The machine-wide observability event bus.

Every hardware model (cache directory, atomics controllers, UDN fabric,
NoC links, the engine itself) and every delegation core publishes
structured events to one :class:`EventBus` hung off the simulator.  The
bus is *opt-in per machine*: :attr:`Simulator.obs` is ``None`` unless
observability was enabled, and every publish site guards with::

    obs = self.sim.obs
    if obs is not None:
        obs.emit("cache.miss", core=cid, line=line_no, ...)

so a run without observability pays exactly one attribute load and a
``None`` comparison per would-be event -- no allocation, no call.

Event taxonomy
--------------
Events are ``(cycle, kind, fields)`` triples.  ``kind`` is a dotted
string naming the subsystem and occurrence; ``fields`` is a small dict.
The kinds emitted by the simulator (fields in parentheses; ``start`` is
the first cycle of a span, the emit time is its end):

=====================  =====================================================
kind                   meaning
=====================  =====================================================
``cache.miss``         a coherence miss was resolved (core, line, op,
                       transition, latency)
``cache.stall``        a core finished stalling on the coherence protocol
                       (core, cycles, why, line, start)
``cache.inval``        a core's cached copy was invalidated
                       (core = the victim, line, by = writer core or
                       None for a memory-controller atomic)
``fence.stall``        fence pipeline cost or store-buffer drain
                       (core, cycles, why, start)
``atomic.exec``        an RMW executed (core, line, ctrl, cold, service)
``atomic.stall``       the issuing core's full RMW round trip
                       (core, cycles, line, start)
``atomic.cas_fail``    a CAS observed an unexpected value (core, line)
``udn.send``           a message was injected (core, dst_tid, dst_core,
                       words, msg_id)
``udn.backpressure``   a sender finished blocking on a full destination
                       buffer (core, dst_core, cycles, start)
``udn.deliver``        words landed in a receive queue (core, demux,
                       words, latency, msg_id)
``udn.recv``           a receive completed (core, tid, words, waited,
                       start)
``udn.timeout``        a timed send/receive expired (core, op, waited)
``noc.link``           a packet occupied one mesh link (a, b, wait, busy,
                       hop = index along the route, msg_id = the UDN
                       message carried, or None for non-UDN packets)
``noc.packet``         a packet fully traversed the contended mesh
                       (src, dst, words, cycles)
``proc.spawn``         a simulator process started (name)
``proc.exit``          a process finished normally (name)
``proc.kill``          a process was fail-stop crashed (name)
``proc.interrupt``     a process was interrupted (name)
``combiner.open``      a thread entered a combining session (core, tid,
                       prim)
``combiner.close``     a combining session ended (core, tid, prim, ops,
                       start)
``server.req``         a dedicated servicing thread completed one request
                       (core, client, prim)
``server.done``        a service span ended: one client request executed
                       and its response issued (core, client, prim,
                       start)
``op.begin``           an application thread issued an operation
                       (core, tid, op = run-unique op id, prim)
``op.end``             the operation completed on the issuing thread
                       (core, tid, op, start, measured = in the
                       measurement window)
``fault.retry``        a client retried an operation after a timeout
                       (core, tid, prim)
``fault.failover``     a client switched servers (core, tid, prim)
``fault.takeover``     a successor seized a stale combiner lease
                       (core, tid, prim)
=====================  =====================================================

Subscribers are plain callables ``fn(cycle, kind, fields)``; they must
treat events as read-only and must not touch simulation state (the bus
is an observer, never an actor -- enabling it cannot change an
execution).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Dict, Iterable, List, Optional

__all__ = ["EventBus"]

Subscriber = Callable[[int, str, Dict[str, Any]], None]


class EventBus:
    """Fan-out of structured observability events to subscribers."""

    __slots__ = ("sim", "events_emitted", "_subs", "recent",
                 "_recent_append", "_kind_subs")

    def __init__(self, sim):
        self.sim = sim
        #: total events published (cheap health metric)
        self.events_emitted = 0
        self._subs: List[Subscriber] = []
        #: bounded ring of the most recent events (see :meth:`keep_recent`)
        self.recent: Optional[deque] = None
        self._recent_append = None
        self._kind_subs: Optional[Dict[str, List[Subscriber]]] = None

    def subscribe(self, fn: Subscriber) -> None:
        """Register ``fn(cycle, kind, fields)`` for every event."""
        self._subs.append(fn)

    def unsubscribe(self, fn: Subscriber) -> None:
        self._subs.remove(fn)

    def subscribe_kinds(self, kinds: Iterable[str], fn: Subscriber) -> None:
        """Register ``fn`` for the listed kinds only.

        Kind-filtered subscribers cost one dict probe per event instead
        of a Python call -- the difference between "can leave it on" and
        "10% tax" for consumers that care about a handful of kinds (SLO
        monitors want ``op.end``, the flight recorder wants its trigger
        kinds).  They run *after* every full subscriber, so a filtered
        handler always observes counter/monitor state already updated
        for the triggering event.
        """
        if self._kind_subs is None:
            self._kind_subs = {}
        for kind in kinds:
            self._kind_subs.setdefault(kind, []).append(fn)

    def keep_recent(self, limit: int) -> deque:
        """Keep a bounded ring of the last ``limit`` events on the bus.

        The append rides inside :meth:`emit` (a C-level deque append,
        no extra Python frame), which is what keeps the flight
        recorder's always-on cost negligible.  Returns the ring.
        """
        if limit < 1:
            raise ValueError(f"event ring limit must be >= 1, got {limit}")
        self.recent = deque(maxlen=limit)
        self._recent_append = self.recent.append
        return self.recent

    def emit(self, kind: str, **fields: Any) -> None:
        """Publish one event at the current cycle."""
        self.events_emitted += 1
        t = self.sim.now
        ra = self._recent_append
        if ra is not None:
            ra((t, kind, fields))
        for fn in self._subs:
            fn(t, kind, fields)
        ks = self._kind_subs
        if ks is not None:
            fns = ks.get(kind)
            if fns is not None:
                for fn in fns:
                    fn(t, kind, fields)
