"""Spatial NoC observability: the per-link / per-tile congestion atlas.

The paper's central claim is that routing synchronization over the
on-chip network changes *where* cycles are spent on the mesh; every
collector before this one was aspatial (per-core registers, per-link
totals with no geometry).  :class:`SpatialAtlas` folds the existing bus
signals into mesh-shaped aggregates:

* ``udn.send``      -- analytic traffic: each message's XY route is
  charged to every directed link it crosses (msgs + words);
* ``noc.link``      -- measured occupancy on the contended mesh: busy
  cycles, queueing cycles and packet counts per directed link;
* ``udn.deliver``   -- per-destination-tile delivery counts/latency;
* ``udn.backpressure`` -- per-sender-tile cycles blocked on a full
  destination buffer.

The atlas is a pure observer, and its hot path is priced like the
fabric's own stats registers rather than like a bus subscriber:
``udn.send`` / ``udn.deliver`` make up more than half of all bus
events in a message-passing workload, so even a kind-filtered Python
handler per event would bust the sampling-overhead budget.  Instead
the atlas hands its accumulator dicts to the
:class:`~repro.udn.udn.UdnFabric` (``spatial_sends`` /
``spatial_delivers``) and the fabric counts inline -- one dict update,
no Python call, ``None``-checked exactly like ``sim.obs`` so the
disabled cost is one attribute test.  Only the rare kinds ride the bus
(``udn.backpressure``, ``noc.link``, plus send/deliver when the
per-message hop ledger is on).  Routes are expanded into links
*lazily* (route cache shared across flushes) at sampling ticks and at
:meth:`summary` time, never per message.

With a :class:`~repro.obs.timeseries.Sampler` attached the atlas also
publishes per-link and per-tile ring series (``spatial.link.a>b``,
``spatial.tile.n``) -- created lazily for links that actually carried
traffic, capped at ``max_series`` so a 1024-core mesh cannot allocate
4k rings behind your back.

Hop-by-hop latency attribution (``hops=True``) keeps one bounded record
per delivered message splitting its end-to-end ``udn.deliver`` latency
into per-hop *queueing* (measured link-acquire waits on the contended
mesh, zero on the analytic one) and *transit* (``per_hop`` each), plus
the injection/ejection overhead ``base + per_word * (words - 1)`` and
an explicit ``skew`` residual (transit jitter / policy delays).  With
no jitter installed the attribution **conserves exactly**::

    sum(queue_i + transit_i) + eject + skew == end-to-end latency,
    skew == 0

which the conservation tests assert message by message against the UDN
latency histogram.  Note that backpressure is *not* part of delivery
latency by construction: a sender blocks before ``sent_at`` is taken
(see :mod:`repro.udn.udn`), so the atlas books it per sender tile
instead.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

__all__ = ["SpatialAtlas", "SPATIAL_KINDS", "merge_spatial_summaries",
           "render_hotspots", "causal_link_flows"]

#: the bus kinds the atlas always consumes (kind-filtered subscription;
#: send/deliver are counted inline in the fabric instead, and only join
#: the subscription when the hop ledger needs per-message events --
#: see :meth:`SpatialAtlas.bus_kinds`)
SPATIAL_KINDS = ("udn.backpressure", "noc.link")

#: summary schema version (bump when the dict shape changes)
SUMMARY_FORMAT = 1

#: spatial series record one point every this-many sampler ticks.  A
#: mesh has O(100) active links versus O(10) scalar sources, so
#: recording them at full tick cadence would triple the sampler's tick
#: cost; congestion geometry also moves far slower than scalar
#: counters, so the coarser cadence loses nothing the heatmap can show.
TICK_DECIMATION = 4


def _link_key(a: int, b: int) -> str:
    return f"{a}>{b}"


class _MsgRecord:
    """Hop-by-hop attribution of one delivered message."""

    __slots__ = ("msg_id", "src", "dst", "words", "latency", "hops",
                 "queue", "transit", "eject", "skew")

    def __init__(self, msg_id, src, dst, words, latency, hops,
                 queue, transit, eject, skew):
        self.msg_id = msg_id
        self.src = src          # source node
        self.dst = dst          # destination node
        self.words = words
        self.latency = latency  # end-to-end udn.deliver latency
        self.hops = hops        # [(a, b, queue_cycles, transit_cycles)]
        self.queue = queue      # sum of per-hop queueing
        self.transit = transit  # sum of per-hop transit
        self.eject = eject      # injection/ejection overhead
        self.skew = skew        # latency - queue - transit - eject

    def to_dict(self) -> Dict[str, Any]:
        return {"msg_id": self.msg_id, "src": self.src, "dst": self.dst,
                "words": self.words, "latency": self.latency,
                "queue": self.queue, "transit": self.transit,
                "eject": self.eject, "skew": self.skew,
                "hops": [list(h) for h in self.hops]}


class SpatialAtlas:
    """Mesh-shaped aggregation of NoC/UDN bus signals (see module docs)."""

    def __init__(self, machine, *, hops: bool = False,
                 hop_limit: int = 100_000, max_series: int = 160):
        self.mesh = machine.mesh
        self.width = self.mesh.width
        self.height = self.mesh.height
        #: core id -> mesh node (tiles host cores; spatial keys are nodes)
        self._node_of = [c.node for c in machine.cores]
        self.contended = machine.contended_mesh is not None
        self.record_hops = hops
        self.hop_limit = hop_limit
        self.max_series = max_series

        # -- hot-path accumulators (one inline dict update per event) ----
        # (src_core, dst_core) -> [msgs, words] since the last flush;
        # written inline by UdnFabric.send (installed below), mapped to
        # node pairs and expanded into links at flush time only
        self._fresh_pairs: Dict[Tuple[int, int], List[int]] = {}
        # cumulative (src_node, dst_node) -> [msgs, words]
        self._pairs: Dict[Tuple[int, int], List[int]] = {}
        # measured contended-mesh occupancy: (a, b) -> [busy, wait, pkts]
        self._measured: Dict[Tuple[int, int], List[int]] = {}
        self._fresh_measured: Dict[Tuple[int, int], List[int]] = {}
        # destination *core* -> [msgs, words, latency_total]; written
        # inline by UdnFabric._deliver, mapped to nodes at summary time
        self._deliver: Dict[int, List[int]] = {}
        # sender node -> blocked cycles
        self._backpressure: Dict[int, int] = {}
        # hand the fabric the accumulators (see module docs); a machine
        # without hardware message passing simply has nothing to count
        udn = machine.udn
        if udn is not None:
            udn.spatial_sends = self._fresh_pairs
            udn.spatial_delivers = self._deliver

        # -- lazily expanded views ----------------------------------------
        # directed link -> [msgs, words] of analytic (route-charged) traffic
        self._traffic: Dict[Tuple[int, int], List[int]] = {}
        self._route_cache: Dict[Tuple[int, int], Tuple[Tuple[int, int], ...]] = {}

        # -- optional per-message hop ledger ------------------------------
        # msg_id -> [src_node, dst_node, words, [(a, b, wait), ...]]
        self._open: Dict[int, list] = {}
        self.records: List[_MsgRecord] = []
        self.records_dropped = 0
        self.hop_totals = {"messages": 0, "latency": 0, "queue": 0,
                           "transit": 0, "eject": 0, "skew": 0}

        # -- sampler integration ------------------------------------------
        self._sampler = None
        self._series: Dict[str, Any] = {}
        self.series_dropped = 0

        self.messages = 0
        self.words = 0

    def bus_kinds(self) -> Tuple[str, ...]:
        """The kinds this atlas wants from the bus.

        Send/deliver aggregation happens inline in the fabric; the bus
        only carries them here when the hop ledger needs per-message
        identity (``hops=True``).
        """
        if self.record_hops:
            return SPATIAL_KINDS + ("udn.send", "udn.deliver")
        return SPATIAL_KINDS

    # -- bus handlers (hot path) ------------------------------------------
    def on_event(self, t: int, kind: str, f: Dict[str, Any]) -> None:
        if kind == "udn.send":
            # hops mode only: open this message's ledger entry (the
            # pair/word aggregation already happened inline in the fabric)
            self._open[f["msg_id"]] = [self._node_of[f["core"]],
                                       self._node_of[f["dst_core"]],
                                       f["words"], []]
        elif kind == "noc.link":
            link = (f["a"], f["b"])
            e = self._fresh_measured.get(link)
            if e is None:
                self._fresh_measured[link] = [f["busy"], f["wait"], 1]
            else:
                e[0] += f["busy"]
                e[1] += f["wait"]
                e[2] += 1
            if self.record_hops:
                entry = self._open.get(f.get("msg_id"))
                if entry is not None:
                    entry[3].append((f["a"], f["b"], f["wait"]))
        elif kind == "udn.deliver":
            # hops mode only (aggregation is inline in the fabric)
            entry = self._open.pop(f.get("msg_id"), None)
            if entry is not None:
                self._close_record(f["msg_id"], entry, f["latency"])
        elif kind == "udn.backpressure":
            node = self._node_of[f["core"]]
            self._backpressure[node] = (
                self._backpressure.get(node, 0) + f["cycles"])

    def _route_links(self, src: int, dst: int) -> Tuple[Tuple[int, int], ...]:
        links = self._route_cache.get((src, dst))
        if links is None:
            links = tuple(self.mesh.links(src, dst))
            self._route_cache[(src, dst)] = links
        return links

    def _close_record(self, msg_id: int, entry: list, latency: int) -> None:
        src, dst, words, waits = entry
        mesh = self.mesh
        per_hop = mesh.per_hop
        if waits:
            # contended mesh: queueing measured per link-acquire
            hops = [(a, b, w, per_hop) for a, b, w in waits]
        else:
            # analytic mesh (or src == dst): no queueing anywhere
            hops = [(a, b, 0, per_hop) for a, b in self._route_links(src, dst)]
        queue = sum(h[2] for h in hops)
        transit = per_hop * len(hops)
        eject = mesh.base + mesh.per_word * (words - 1)
        skew = latency - queue - transit - eject
        tot = self.hop_totals
        tot["messages"] += 1
        tot["latency"] += latency
        tot["queue"] += queue
        tot["transit"] += transit
        tot["eject"] += eject
        tot["skew"] += skew
        if len(self.records) < self.hop_limit:
            self.records.append(_MsgRecord(msg_id, src, dst, words, latency,
                                           hops, queue, transit, eject, skew))
        else:
            self.records_dropped += 1

    # -- lazy expansion -----------------------------------------------------
    def flush(self) -> Tuple[Dict[Tuple[int, int], int],
                             Dict[Tuple[int, int], int]]:
        """Fold fresh pair/link counters into the cumulative views.

        Returns ``(analytic word deltas, measured busy deltas)`` per
        directed link -- what the sampler tick records into the per-link
        series.  Called at every sampling tick and before summaries; a
        run without a sampler pays exactly one flush at the end.
        """
        traffic_delta: Dict[Tuple[int, int], int] = {}
        if self._fresh_pairs:
            traffic = self._traffic
            pairs = self._pairs
            node_of = self._node_of
            for (sc, dc), (m, w) in self._fresh_pairs.items():
                self.messages += m
                self.words += w
                s, d = node_of[sc], node_of[dc]
                cum = pairs.get((s, d))
                if cum is None:
                    pairs[(s, d)] = [m, w]
                else:
                    cum[0] += m
                    cum[1] += w
                for link in self._route_links(s, d):
                    t = traffic.get(link)
                    if t is None:
                        traffic[link] = [m, w]
                    else:
                        t[0] += m
                        t[1] += w
                    traffic_delta[link] = traffic_delta.get(link, 0) + w
            self._fresh_pairs.clear()
        busy_delta: Dict[Tuple[int, int], int] = {}
        if self._fresh_measured:
            measured = self._measured
            for link, (busy, wait, pkts) in self._fresh_measured.items():
                cum = measured.get(link)
                if cum is None:
                    measured[link] = [busy, wait, pkts]
                else:
                    cum[0] += busy
                    cum[1] += wait
                    cum[2] += pkts
                busy_delta[link] = busy
            self._fresh_measured.clear()
        return traffic_delta, busy_delta

    # -- sampler integration -------------------------------------------------
    def attach_sampler(self, sampler) -> None:
        """Publish per-link/per-tile ring series through ``sampler``.

        Series are created lazily on the first tick a link carries
        traffic, so an idle mesh costs nothing; on the contended mesh
        the link series carry measured busy cycles, otherwise analytic
        route-charged words.  Points land every
        :data:`TICK_DECIMATION` sampler ticks (see its docs).
        """
        self._sampler = sampler
        self._tick_no = 0
        sampler.subscribe(self._on_tick)

    def _series_for(self, name: str, unit: str):
        ts = self._series.get(name)
        if ts is None:
            if len(self._series) >= self.max_series:
                self.series_dropped += 1
                return None
            sampler = self._sampler
            ts = sampler.series.get(name)
            if ts is None:
                from repro.obs.timeseries import TimeSeries
                ts = TimeSeries(name, kind="counter", buckets=sampler.buckets,
                                bucket_cycles=sampler.every * TICK_DECIMATION,
                                unit=unit)
                sampler.adopt(ts)
            self._series[name] = ts
        return ts

    def _on_tick(self, now: int) -> None:
        self._tick_no += 1
        if self._tick_no % TICK_DECIMATION:
            return
        traffic_delta, busy_delta = self.flush()
        unit = "cyc" if self.contended else "words"
        link_delta = busy_delta if self.contended else traffic_delta
        tile_delta: Dict[int, int] = {}
        for (a, b), v in link_delta.items():
            if not v:
                continue
            ts = self._series_for(f"spatial.link.{_link_key(a, b)}", unit)
            if ts is not None:
                ts.record(now, v)
            tile_delta[a] = tile_delta.get(a, 0) + v
        for node, v in tile_delta.items():
            ts = self._series_for(f"spatial.tile.{node}", unit)
            if ts is not None:
                ts.record(now, v)

    # -- views ----------------------------------------------------------------
    def summary(self) -> Dict[str, Any]:
        """JSON-ready atlas: the shared data model of heatmaps, hotspot
        reports, dashboards and ``repro diff``."""
        self.flush()
        links: Dict[str, Dict[str, Any]] = {}
        for (a, b), (m, w) in self._traffic.items():
            links[_link_key(a, b)] = {"msgs": m, "words": w,
                                      "busy": 0, "wait": 0, "packets": 0}
        for (a, b), (busy, wait, pkts) in self._measured.items():
            e = links.setdefault(_link_key(a, b),
                                 {"msgs": 0, "words": 0, "busy": 0,
                                  "wait": 0, "packets": 0})
            e["busy"] = busy
            e["wait"] = wait
            e["packets"] = pkts
        # occupancy share: measured busy cycles when the contended mesh
        # ran, analytic route-charged words otherwise
        basis = "busy" if self.contended else "words"
        total = sum(e[basis] for e in links.values())
        for e in links.values():
            e["share"] = (e[basis] / total) if total else 0.0

        tiles: Dict[str, Dict[str, Any]] = {}

        def tile(node: int) -> Dict[str, Any]:
            key = str(node)
            e = tiles.get(key)
            if e is None:
                e = tiles[key] = {"out": 0, "in_msgs": 0, "in_words": 0,
                                  "deliver_latency": 0, "backpressure": 0}
            return e

        src_basis = self._measured if self.contended else self._traffic
        for (a, b), vals in src_basis.items():
            tile(a)["out"] += vals[0] if self.contended else vals[1]
        for core_id, (m, w, lat) in self._deliver.items():
            e = tile(self._node_of[core_id])
            e["in_msgs"] += m
            e["in_words"] += w
            e["deliver_latency"] += lat
        for node, cyc in self._backpressure.items():
            tile(node)["backpressure"] += cyc
        out_total = sum(e["out"] for e in tiles.values())
        for e in tiles.values():
            e["share"] = (e["out"] / out_total) if out_total else 0.0

        out: Dict[str, Any] = {
            "format": SUMMARY_FORMAT,
            "mesh": {"width": self.width, "height": self.height},
            "contended": self.contended,
            "basis": basis,
            "messages": self.messages,
            "words": self.words,
            "links": {k: links[k] for k in sorted(links)},
            "tiles": {k: tiles[k] for k in sorted(tiles, key=int)},
            "series_dropped": self.series_dropped,
        }
        if self.record_hops:
            out["hops"] = dict(self.hop_totals)
            out["hops"]["records"] = len(self.records)
            out["hops"]["records_dropped"] = self.records_dropped
        return out

    def top_links(self, k: int = 5) -> List[Tuple[str, Dict[str, Any]]]:
        s = self.summary()
        return sorted(s["links"].items(),
                      key=lambda kv: (-kv[1]["share"], kv[0]))[:k]

    def top_tiles(self, k: int = 5) -> List[Tuple[str, Dict[str, Any]]]:
        s = self.summary()
        return sorted(s["tiles"].items(),
                      key=lambda kv: (-kv[1]["share"], int(kv[0])))[:k]


def merge_spatial_summaries(summaries) -> Optional[Dict[str, Any]]:
    """Sum atlas summaries of same-shaped meshes (a sweep's machines).

    Returns ``None`` for an empty input.  Mismatched mesh shapes raise:
    summing a 6x6 onto an 8x8 would silently misplace every tile.
    """
    summaries = [s for s in summaries if s is not None]
    if not summaries:
        return None
    first = summaries[0]
    out: Dict[str, Any] = {
        "format": SUMMARY_FORMAT,
        "mesh": dict(first["mesh"]),
        "contended": first["contended"],
        "basis": first["basis"],
        "messages": 0, "words": 0,
        "links": {}, "tiles": {},
        "series_dropped": 0,
        "machines": 0,
    }
    hops_tot: Optional[Dict[str, int]] = None
    for s in summaries:
        if s["mesh"] != out["mesh"]:
            raise ValueError(
                f"cannot merge atlases of different meshes: "
                f"{s['mesh']} vs {out['mesh']}")
        out["messages"] += s["messages"]
        out["words"] += s["words"]
        out["series_dropped"] += s.get("series_dropped", 0)
        out["machines"] += 1
        for key, e in s["links"].items():
            t = out["links"].setdefault(
                key, {"msgs": 0, "words": 0, "busy": 0, "wait": 0,
                      "packets": 0})
            for field in ("msgs", "words", "busy", "wait", "packets"):
                t[field] += e.get(field, 0)
        for key, e in s["tiles"].items():
            t = out["tiles"].setdefault(
                key, {"out": 0, "in_msgs": 0, "in_words": 0,
                      "deliver_latency": 0, "backpressure": 0})
            for field in ("out", "in_msgs", "in_words", "deliver_latency",
                          "backpressure"):
                t[field] += e.get(field, 0)
        h = s.get("hops")
        if h is not None:
            if hops_tot is None:
                hops_tot = {k: 0 for k in ("messages", "latency", "queue",
                                           "transit", "eject", "skew",
                                           "records", "records_dropped")}
            for k in hops_tot:
                hops_tot[k] += h.get(k, 0)
    basis = out["basis"]
    total = sum(e[basis] for e in out["links"].values())
    for e in out["links"].values():
        e["share"] = (e[basis] / total) if total else 0.0
    out_total = sum(e["out"] for e in out["tiles"].values())
    for e in out["tiles"].values():
        e["share"] = (e["out"] / out_total) if out_total else 0.0
    out["links"] = {k: out["links"][k] for k in sorted(out["links"])}
    out["tiles"] = {k: out["tiles"][k] for k in sorted(out["tiles"], key=int)}
    if hops_tot is not None:
        out["hops"] = hops_tot
    return out


def causal_link_flows(atlas: SpatialAtlas, causal) -> Dict[str, Any]:
    """Join link traffic to the ops that crossed each link.

    Walks a :class:`~repro.obs.causal.CausalCollector`'s event stream,
    tracking the current (tid, prim) op per core from ``op.begin`` and
    charging each ``udn.send``'s XY route to that op's flow.  Returns
    ``{link_key: {flow_label: msgs}}``.  Post-hoc and O(events): the
    hot path never pays for this join.
    """
    flows: Dict[str, Dict[str, int]] = {}
    cur: Dict[int, str] = {}  # core -> flow label of its current op
    node_of = atlas._node_of
    for _t, kind, f in causal.events:
        if kind == "op.begin":
            cur[f["core"]] = f"{f.get('prim', 'op')}/t{f['tid']}"
        elif kind == "udn.send":
            label = cur.get(f["core"], f"core{f['core']}")
            src, dst = node_of[f["core"]], node_of[f["dst_core"]]
            for a, b in atlas._route_links(src, dst):
                key = _link_key(a, b)
                per = flows.get(key)
                if per is None:
                    per = flows[key] = {}
                per[label] = per.get(label, 0) + 1
    return flows


def render_hotspots(summary: Dict[str, Any], *, k: int = 5,
                    flows: Optional[Dict[str, Dict[str, int]]] = None) -> str:
    """Top-K links and tiles by occupancy share, as a terminal report.

    ``flows`` (from :func:`causal_link_flows`) annotates each hot link
    with the ops whose messages crossed it.
    """
    if summary is None or not summary.get("links"):
        return "hotspots: no NoC traffic observed"
    basis = summary["basis"]
    lines = [f"hotspots (top {k} by {basis} share, "
             f"{summary['messages']} msgs / {summary['words']} words)"]
    top = sorted(summary["links"].items(),
                 key=lambda kv: (-kv[1]["share"], kv[0]))[:k]
    for key, e in top:
        extra = f", wait {e['wait']} cyc" if e.get("wait") else ""
        lines.append(f"  link {key:>7s}  {e['share']:6.1%}  "
                     f"{e['msgs']} msgs / {e['words']} words{extra}")
        if flows and key in flows:
            per = sorted(flows[key].items(),
                         key=lambda kv: (-kv[1], kv[0]))[:3]
            ops = ", ".join(f"{label} x{n}" for label, n in per)
            lines.append(f"           ops: {ops}")
    topt = sorted(summary["tiles"].items(),
                  key=lambda kv: (-kv[1]["share"], int(kv[0])))[:k]
    for key, e in topt:
        note = []
        if e["in_msgs"]:
            note.append(f"{e['in_msgs']} deliveries")
        if e["backpressure"]:
            note.append(f"{e['backpressure']} bp cyc")
        suffix = f"  ({', '.join(note)})" if note else ""
        lines.append(f"  tile {key:>3s}    {e['share']:6.1%}  "
                     f"out {e['out']}{suffix}")
    return "\n".join(lines)
