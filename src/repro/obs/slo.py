"""Declarative SLO monitors with multi-window burn-rate alerting.

An :class:`SLO` states an objective over the run's live telemetry:

* ``latency``  -- the ``quantile`` of op sojourn latencies completed in
  a sample window must stay <= ``target`` cycles (fed from ``op.end``
  bus events, so it needs no driver cooperation);
* ``goodput``  -- completed ops per second over the window must stay
  >= ``target`` Mops/s;
* ``qdepth``   -- the sampled queue-depth gauge (``metric``, default
  ``admit.qdepth``) must stay <= ``target``.

:class:`SLOMonitor` evaluates every SLO once per sampler tick and runs
the SRE-style **multi-window burn-rate** rule: each window is good (0)
or bad (1); the bad fraction over the last ``short_ticks`` windows and
over the last ``long_ticks`` windows is divided by the error ``budget``
to get short/long burn rates.  An alert fires -- published as an
``slo.breach`` bus event -- when the short burn reaches
``burn_threshold`` *and* the long burn reaches 1.0: the fast window
makes alerts prompt, the slow window keeps one bad blip from paging.
When the short burn falls back below 1.0 an ``slo.recover`` event is
published.  The short burn rate of every SLO is recorded as a
``slo.<name>.burn`` time series for the dashboard's burn chart.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.timeseries import TimeSeries

__all__ = ["SLO", "SLOMonitor"]

_KINDS = ("latency", "goodput", "qdepth")


@dataclass(frozen=True)
class SLO:
    """One service-level objective (see module docs)."""

    name: str
    kind: str                    #: "latency" | "goodput" | "qdepth"
    target: float                #: cycles / Mops/s floor / depth ceiling
    quantile: float = 0.99       #: latency only
    budget: float = 0.1          #: tolerated bad-window fraction
    burn_threshold: float = 2.0  #: short-window burn rate that alerts
    short_ticks: int = 6
    long_ticks: int = 30
    metric: str = "admit.qdepth"  #: sampled gauge (qdepth kind only)

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"kind must be one of {_KINDS}, got {self.kind!r}")
        if not 0.0 < self.quantile <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {self.quantile}")
        if not 0.0 < self.budget <= 1.0:
            raise ValueError(f"budget must be in (0, 1], got {self.budget}")
        if self.burn_threshold < 1.0:
            raise ValueError(
                f"burn_threshold must be >= 1.0, got {self.burn_threshold}")
        if self.short_ticks < 1 or self.long_ticks < self.short_ticks:
            raise ValueError(
                f"need 1 <= short_ticks <= long_ticks, got "
                f"{self.short_ticks}/{self.long_ticks}")


class _State:
    __slots__ = ("short", "long", "breached", "breaches", "last_value",
                 "burn_short", "burn_long")

    def __init__(self, slo: SLO):
        self.short: deque = deque(maxlen=slo.short_ticks)
        self.long: deque = deque(maxlen=slo.long_ticks)
        self.breached = False
        self.breaches = 0
        self.last_value: Optional[float] = None
        self.burn_short = 0.0
        self.burn_long = 0.0


class SLOMonitor:
    """Evaluates a set of SLOs per sample window (see module docs)."""

    def __init__(self, ob, slos):
        names = [s.name for s in slos]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SLO names in {names}")
        self.ob = ob
        self.slos: List[SLO] = list(slos)
        self._state = {s.name: _State(s) for s in self.slos}
        #: (cycle, "breach"|"recover", slo name) in emission order
        self.events: List[Tuple[int, str, str]] = []
        self._lat: List[int] = []    # op sojourns since the last tick
        self._ops = 0                # completions since the last tick
        self._started = False        # any op ever completed?
        self._last_tick = ob.machine.sim.now
        self.burn: Dict[str, TimeSeries] = {}
        sampler = ob.sampler
        for s in self.slos:
            ts = TimeSeries(f"slo.{s.name}.burn", kind="gauge",
                            buckets=sampler.buckets,
                            bucket_cycles=sampler.every,
                            t0=self._last_tick, unit="burn")
            self.burn[s.name] = sampler.adopt(ts)

    # -- bus subscriber ---------------------------------------------------
    def on_event(self, t: int, kind: str, f: Dict[str, Any]) -> None:
        if kind == "op.end":
            self._ops += 1
            self._started = True
            self._lat.append(t - f["start"])

    # -- sampler tick subscriber ------------------------------------------
    def on_tick(self, now: int) -> None:
        lats = self._lat
        ops = self._ops
        self._lat = []
        self._ops = 0
        elapsed = now - self._last_tick
        self._last_tick = now
        emit = self.ob.bus.emit
        for s in self.slos:
            st = self._state[s.name]
            bad = self._evaluate(s, st, lats, ops, elapsed)
            if bad is None:
                continue
            st.short.append(bad)
            st.long.append(bad)
            st.burn_short = sum(st.short) / len(st.short) / s.budget
            st.burn_long = sum(st.long) / len(st.long) / s.budget
            self.burn[s.name].record(now, st.burn_short)
            if (not st.breached and st.burn_short >= s.burn_threshold
                    and st.burn_long >= 1.0):
                st.breached = True
                st.breaches += 1
                self.events.append((now, "breach", s.name))
                emit("slo.breach", slo=s.name, objective=s.kind, target=s.target,
                     value=st.last_value, burn_short=st.burn_short,
                     burn_long=st.burn_long)
            elif st.breached and st.burn_short < 1.0:
                st.breached = False
                self.events.append((now, "recover", s.name))
                emit("slo.recover", slo=s.name, objective=s.kind, target=s.target,
                     value=st.last_value, burn_short=st.burn_short,
                     burn_long=st.burn_long)

    def _evaluate(self, s: SLO, st: _State, lats: List[int], ops: int,
                  elapsed: int) -> Optional[float]:
        """Badness of the window just closed: 1.0 / 0.0 / None (no data)."""
        if s.kind == "latency":
            if not lats:
                return None
            xs = sorted(lats)
            value = float(xs[min(len(xs) - 1, int(s.quantile * len(xs)))])
            st.last_value = value
            return 1.0 if value > s.target else 0.0
        if s.kind == "goodput":
            # no data until the workload completes its first op: the
            # sample windows that close while threads are still being
            # spawned would otherwise read goodput 0 and page instantly
            if not self._started or elapsed <= 0:
                return None
            clock = self.ob.machine.cfg.clock_mhz
            value = ops * clock / elapsed
            st.last_value = value
            return 1.0 if value < s.target else 0.0
        # qdepth: read the sampled gauge (present once a driver runs)
        series = self.ob.sampler.series.get(s.metric)
        if series is None or not series.samples:
            return None
        value = float(series.last_value)
        st.last_value = value
        return 1.0 if value > s.target else 0.0

    # -- reporting --------------------------------------------------------
    @property
    def breaches(self) -> int:
        return sum(st.breaches for st in self._state.values())

    def summary(self) -> List[Dict[str, Any]]:
        """JSON-ready per-SLO status (dashboards, incident bundles)."""
        out = []
        for s in self.slos:
            st = self._state[s.name]
            out.append({
                "name": s.name,
                "kind": s.kind,
                "target": s.target,
                "budget": s.budget,
                "burn_threshold": s.burn_threshold,
                "windows": [s.short_ticks, s.long_ticks],
                "breached": st.breached,
                "breaches": st.breaches,
                "burn_short": st.burn_short,
                "burn_long": st.burn_long,
                "last_value": st.last_value,
            })
        return out
