"""Causal event collection for per-op critical-path analysis.

:class:`CausalCollector` subscribes to the observability bus and keeps
the *raw* events the happens-before reconstruction needs -- operation
boundaries, service spans, message sends/deliveries, stalls and waits --
in emission order.  Unlike :class:`~repro.obs.perfetto.TraceCollector`
it performs no rendering and keeps the full field dicts, because the
analysis layer (:mod:`repro.analysis.critpath`) needs to re-join events
by ``op``/``msg_id``/``client`` after the run.

The collector is a pure observer: it never touches simulation state, so
enabling causal tracing cannot change an execution.  Memory is bounded
by ``limit`` (default two million events); past it the collector drops
events, counts them, and flags itself :attr:`truncated` so downstream
reports can say "partial data" instead of silently lying.
"""

from __future__ import annotations

import logging
from typing import Any, Dict, List, Tuple

__all__ = ["CausalCollector", "CAUSAL_KINDS"]

log = logging.getLogger(__name__)

#: the event kinds the happens-before reconstruction consumes; every
#: other kind is ignored at the subscription boundary
CAUSAL_KINDS = frozenset({
    "op.begin",
    "op.end",
    "server.done",
    "udn.send",
    "udn.deliver",
    "udn.recv",
    "udn.backpressure",
    "cache.stall",
    "atomic.stall",
    "fence.stall",
    "combiner.close",
})


class CausalCollector:
    """Keep the raw causal event stream of one machine (see module docs)."""

    def __init__(self, limit: int = 2_000_000):
        self.limit = limit
        self.dropped = 0
        #: (cycle, kind, fields) in emission order
        self.events: List[Tuple[int, str, Dict[str, Any]]] = []

    @property
    def truncated(self) -> bool:
        return self.dropped > 0

    def on_event(self, t: int, kind: str, f: Dict[str, Any]) -> None:
        if kind not in CAUSAL_KINDS:
            return
        if len(self.events) >= self.limit:
            if self.dropped == 0:
                log.warning(
                    "causal collector hit its %d-event cap; critical-path "
                    "reports for this run will be computed from partial data",
                    self.limit,
                )
            self.dropped += 1
            return
        # copy: the emitting site reuses field dicts on hot paths
        self.events.append((t, kind, dict(f)))
