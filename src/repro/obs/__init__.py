"""Machine-wide observability: event bus, counters, traces, telemetry.

Layers (see DESIGN.md §9 and §14):

* :class:`~repro.obs.bus.EventBus` -- the structured event stream every
  hardware model and delegation core publishes to.  Off by default;
  zero overhead when off.
* :class:`~repro.obs.counters.PerfCounters` -- the "perf counter file":
  per-core / per-cache-line / per-link registers and a UDN latency
  histogram, queryable as before/after snapshots.
* :class:`~repro.obs.perfetto.TraceCollector` -- Chrome/Perfetto trace
  recording (open the exported ``trace.json`` in
  https://ui.perfetto.dev or ``chrome://tracing``).
* :class:`~repro.obs.timeseries.Sampler` -- continuous telemetry: the
  engine clock snapshots counter/gauge sources into fixed-memory ring
  series every ``sample_every`` cycles (``timeseries=True``).
* :class:`~repro.obs.slo.SLOMonitor` -- declarative SLOs evaluated per
  sample window with burn-rate alerting (``slos=(...)``).
* :class:`~repro.obs.flightrec.FlightRecorder` -- bounded ring of
  recent events with automatic JSON incident bundles on deadlock,
  crash, timeout storm, or SLO breach (``flight=True``).
* :class:`~repro.obs.spatial.SpatialAtlas` -- mesh-shaped congestion
  atlas: per-link/per-tile traffic, occupancy and backpressure with
  optional hop-by-hop latency attribution (``spatial=True`` /
  ``spatial_hops=True``); feeds the heatmap renderers, the hotspot
  report and ``repro diff``.

Per machine::

    machine = Machine(tile_gx())
    obs = machine.enable_observability(trace=True, timeseries=True)
    ...  # run
    obs.export_chrome_trace("trace.json")
    obs.sampler.series["core.busy"].points()

Across machines (how ``python -m repro report`` observes every machine
a sweep builds internally)::

    with repro.obs.observed(timeseries=True, slos=my_slos) as session:
        result = run_counter_benchmark("mp-server", 10)
    session.aggregate()  # merged counters across all observed machines
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.bus import EventBus
from repro.obs.causal import CausalCollector
from repro.obs.counters import PerfCounters, counters_csv, latency_bucket, merge_counters
from repro.obs.flightrec import TRIGGERS as flightrec_triggers
from repro.obs.flightrec import FlightRecorder
from repro.obs.perfetto import TraceCollector, write_chrome_trace
from repro.obs.slo import SLO, SLOMonitor
from repro.obs.spatial import SPATIAL_KINDS, SpatialAtlas, merge_spatial_summaries
from repro.obs.timeseries import Sampler, TimeSeries, register_machine_sources

__all__ = [
    "CausalCollector",
    "EventBus",
    "FlightRecorder",
    "Observability",
    "ObsSession",
    "PerfCounters",
    "SLO",
    "SLOMonitor",
    "Sampler",
    "SpatialAtlas",
    "TimeSeries",
    "TraceCollector",
    "attach",
    "counters_csv",
    "disable",
    "enable",
    "latency_bucket",
    "merge_counters",
    "merge_spatial_summaries",
    "observed",
    "write_chrome_trace",
]


class Observability:
    """One machine's observability: bus + counters (+ optional layers)."""

    def __init__(self, machine, *, trace: bool = False,
                 trace_limit: int = 500_000, causal: bool = False,
                 causal_limit: int = 2_000_000, label: Optional[str] = None,
                 timeseries: bool = False, sample_every: int = 512,
                 ts_buckets: int = 256, slos: Sequence[SLO] = (),
                 flight: bool = False, flight_limit: int = 4096,
                 incident_dir: Optional[str] = None,
                 spatial: bool = False, spatial_hops: bool = False,
                 spatial_hop_limit: int = 100_000):
        if machine.sim.obs is not None:
            raise RuntimeError("observability already enabled on this machine")
        self.machine = machine
        #: free-form run label (process name in merged traces)
        self.label = label or machine.cfg.name
        self.bus = EventBus(machine.sim)
        self.counters = PerfCounters(machine)
        self.bus.subscribe(self.counters.on_event)
        self.trace: Optional[TraceCollector] = None
        if trace:
            self.trace = TraceCollector(num_cores=len(machine.cores),
                                        limit=trace_limit)
            self.bus.subscribe(self.trace.on_event)
        self.causal: Optional[CausalCollector] = None
        if causal:
            self.causal = CausalCollector(limit=causal_limit)
            self.bus.subscribe(self.causal.on_event)
        # spatial congestion atlas (DESIGN.md §15): send/deliver totals
        # are counted inline in the UDN fabric (installed by the atlas
        # constructor); the bus only carries the rare kinds -- plus
        # per-message send/deliver when the hop ledger is on
        self.spatial: Optional[SpatialAtlas] = None
        if spatial or spatial_hops:
            self.spatial = SpatialAtlas(machine, hops=spatial_hops,
                                        hop_limit=spatial_hop_limit)
            self.bus.subscribe_kinds(self.spatial.bus_kinds(),
                                     self.spatial.on_event)
        # continuous telemetry (DESIGN.md §14): sampler -> SLOs -> flight
        self.sampler: Optional[Sampler] = None
        self.slo: Optional[SLOMonitor] = None
        self.flight: Optional[FlightRecorder] = None
        if timeseries or slos:
            self.sampler = Sampler(machine.sim, every=sample_every,
                                   buckets=ts_buckets)
            register_machine_sources(self.sampler, machine, self.counters)
            machine.sim.set_sample_hook(sample_every, self.sampler.on_tick)
            if self.spatial is not None:
                self.spatial.attach_sampler(self.sampler)
        if slos:
            self.slo = SLOMonitor(self, slos)
            # kind-filtered: the monitor only consumes op completions
            self.bus.subscribe_kinds(("op.end",), self.slo.on_event)
            self.sampler.subscribe(self.slo.on_tick)
        if flight:
            # the recorder rides the bus's recent-events ring; its
            # trigger subscription is kind-filtered and registered last,
            # so a dump triggered by an event (slo.breach, proc.kill)
            # sees every earlier subscriber's state updated
            self.flight = FlightRecorder(self, limit=flight_limit,
                                         out_dir=incident_dir)
            self.bus.subscribe_kinds(sorted(flightrec_triggers),
                                     self.flight.on_trigger)
        machine.sim.obs = self.bus

    def export_chrome_trace(self, path: str) -> int:
        """Write this machine's trace as Chrome/Perfetto JSON.

        Sampled time series (when ``timeseries=True``) ride along as
        Perfetto counter tracks, so the trace viewer and the HTML
        dashboard read the same data.
        """
        if self.trace is None:
            raise RuntimeError("tracing was not enabled; pass trace=True")
        counters = [(self.label, self.sampler)] if self.sampler else []
        return write_chrome_trace([(self.label, self.trace)], path,
                                  counters=counters)


class ObsSession:
    """Observes every :class:`Machine` constructed while it is active."""

    def __init__(self, *, trace: bool = False, trace_limit: int = 500_000,
                 causal: bool = False, causal_limit: int = 2_000_000,
                 timeseries: bool = False, sample_every: int = 512,
                 ts_buckets: int = 256, slos: Sequence[SLO] = (),
                 flight: bool = False, flight_limit: int = 4096,
                 incident_dir: Optional[str] = None,
                 spatial: bool = False, spatial_hops: bool = False,
                 spatial_hop_limit: int = 100_000):
        self.trace = trace
        self.trace_limit = trace_limit
        self.causal = causal
        self.causal_limit = causal_limit
        self.timeseries = timeseries
        self.sample_every = sample_every
        self.ts_buckets = ts_buckets
        self.slos = tuple(slos)
        self.flight = flight
        self.flight_limit = flight_limit
        self.incident_dir = incident_dir
        self.spatial = spatial
        self.spatial_hops = spatial_hops
        self.spatial_hop_limit = spatial_hop_limit
        self.machines: List[Observability] = []

    def register(self, ob: Observability) -> None:
        self.machines.append(ob)

    def reset(self) -> None:
        """Forget observed machines (e.g. between experiments)."""
        self.machines.clear()

    def aggregate(self) -> Dict[str, Any]:
        """Counters snapshot merged across every observed machine."""
        agg: Dict[str, Any] = {}
        for ob in self.machines:
            merge_counters(agg, ob.counters.snapshot())
        return agg

    def metrics_csv(self) -> str:
        """The aggregated counters as long-format CSV."""
        return counters_csv(self.aggregate())

    def incidents(self) -> List[Dict[str, Any]]:
        """Flight-recorder incident bundles across observed machines."""
        out: List[Dict[str, Any]] = []
        for ob in self.machines:
            if ob.flight is not None:
                out.extend(ob.flight.incidents)
        return out

    def breaches(self) -> int:
        """Total SLO breaches across observed machines."""
        return sum(ob.slo.breaches for ob in self.machines
                   if ob.slo is not None)

    def spatial_summary(self) -> Optional[Dict[str, Any]]:
        """Atlas summaries merged across same-shaped observed machines.

        A sweep observes one machine per point; the merged atlas is the
        whole experiment's congestion picture.  Machines whose mesh
        shape differs from the first atlas-bearing machine are skipped
        (summing a 6x6 onto an 8x8 would misplace every tile) -- today
        every sweep builds same-profile machines, so this is purely
        defensive.  Returns ``None`` when no machine carried an atlas.
        """
        summaries = [ob.spatial.summary() for ob in self.machines
                     if ob.spatial is not None]
        if not summaries:
            return None
        shape = summaries[0]["mesh"]
        return merge_spatial_summaries(
            [s for s in summaries if s["mesh"] == shape])

    def export_chrome_trace(self, path: str) -> int:
        """Merge every observed machine's trace into one file.

        Each machine becomes one "process" in the trace, labelled with
        its run name, so a sweep's points sit side by side in Perfetto.
        """
        pairs: List[Tuple[str, TraceCollector]] = [
            (ob.label, ob.trace) for ob in self.machines if ob.trace is not None
        ]
        if not pairs:
            raise RuntimeError("no traced machines in this session")
        counters = [(ob.label, ob.sampler) for ob in self.machines
                    if ob.trace is not None and ob.sampler is not None]
        return write_chrome_trace(pairs, path, counters=counters)


#: the active session new machines auto-attach to (None = off)
_SESSION: Optional[ObsSession] = None


def enable(**options) -> ObsSession:
    """Start observing every machine constructed from now on.

    Keyword options are those of :class:`ObsSession` /
    :class:`Observability`: ``trace``, ``causal``, ``timeseries``,
    ``sample_every``, ``slos``, ``flight``, ``incident_dir``, ...
    """
    global _SESSION
    if _SESSION is not None:
        raise RuntimeError("an observability session is already active")
    _SESSION = ObsSession(**options)
    return _SESSION


def disable() -> None:
    """Stop auto-attaching observability to new machines."""
    global _SESSION
    _SESSION = None


@contextmanager
def observed(**options):
    """``with repro.obs.observed() as session:`` scoped session."""
    session = enable(**options)
    try:
        yield session
    finally:
        disable()


def attach(machine) -> Optional[Observability]:
    """Machine-constructor hook: join the active session, if any."""
    s = _SESSION
    if s is None:
        return None
    ob = Observability(machine, trace=s.trace, trace_limit=s.trace_limit,
                       causal=s.causal, causal_limit=s.causal_limit,
                       timeseries=s.timeseries, sample_every=s.sample_every,
                       ts_buckets=s.ts_buckets, slos=s.slos,
                       flight=s.flight, flight_limit=s.flight_limit,
                       incident_dir=s.incident_dir,
                       spatial=s.spatial, spatial_hops=s.spatial_hops,
                       spatial_hop_limit=s.spatial_hop_limit)
    s.register(ob)
    return ob
