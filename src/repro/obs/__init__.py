"""Machine-wide observability: event bus, perf counters, trace export.

Three layers (see DESIGN.md §9):

* :class:`~repro.obs.bus.EventBus` -- the structured event stream every
  hardware model and delegation core publishes to.  Off by default;
  zero overhead when off.
* :class:`~repro.obs.counters.PerfCounters` -- the "perf counter file":
  per-core / per-cache-line / per-link registers and a UDN latency
  histogram, queryable as before/after snapshots.
* :class:`~repro.obs.perfetto.TraceCollector` -- Chrome/Perfetto trace
  recording (open the exported ``trace.json`` in
  https://ui.perfetto.dev or ``chrome://tracing``).

Per machine::

    machine = Machine(tile_gx())
    obs = machine.enable_observability(trace=True)
    ...  # run
    obs.export_chrome_trace("trace.json")
    obs.counters.snapshot()

Across machines (how ``python -m repro.experiments --trace`` observes
every machine a scenario builds internally)::

    with repro.obs.observed(trace=True) as session:
        result = run_counter_benchmark("mp-server", 10)
    session.export_chrome_trace("trace.json")
    session.aggregate()  # merged counters across all observed machines
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.bus import EventBus
from repro.obs.causal import CausalCollector
from repro.obs.counters import PerfCounters, counters_csv, latency_bucket, merge_counters
from repro.obs.perfetto import TraceCollector, write_chrome_trace

__all__ = [
    "CausalCollector",
    "EventBus",
    "Observability",
    "ObsSession",
    "PerfCounters",
    "TraceCollector",
    "attach",
    "counters_csv",
    "disable",
    "enable",
    "latency_bucket",
    "merge_counters",
    "observed",
    "write_chrome_trace",
]


class Observability:
    """One machine's observability: bus + counters (+ trace collector)."""

    def __init__(self, machine, *, trace: bool = False,
                 trace_limit: int = 500_000, causal: bool = False,
                 causal_limit: int = 2_000_000, label: Optional[str] = None):
        if machine.sim.obs is not None:
            raise RuntimeError("observability already enabled on this machine")
        self.machine = machine
        #: free-form run label (process name in merged traces)
        self.label = label or machine.cfg.name
        self.bus = EventBus(machine.sim)
        self.counters = PerfCounters(machine)
        self.bus.subscribe(self.counters.on_event)
        self.trace: Optional[TraceCollector] = None
        if trace:
            self.trace = TraceCollector(num_cores=len(machine.cores),
                                        limit=trace_limit)
            self.bus.subscribe(self.trace.on_event)
        self.causal: Optional[CausalCollector] = None
        if causal:
            self.causal = CausalCollector(limit=causal_limit)
            self.bus.subscribe(self.causal.on_event)
        machine.sim.obs = self.bus

    def export_chrome_trace(self, path: str) -> int:
        """Write this machine's trace as Chrome/Perfetto JSON."""
        if self.trace is None:
            raise RuntimeError("tracing was not enabled; pass trace=True")
        return write_chrome_trace([(self.label, self.trace)], path)


class ObsSession:
    """Observes every :class:`Machine` constructed while it is active."""

    def __init__(self, *, trace: bool = False, trace_limit: int = 500_000,
                 causal: bool = False, causal_limit: int = 2_000_000):
        self.trace = trace
        self.trace_limit = trace_limit
        self.causal = causal
        self.causal_limit = causal_limit
        self.machines: List[Observability] = []

    def register(self, ob: Observability) -> None:
        self.machines.append(ob)

    def reset(self) -> None:
        """Forget observed machines (e.g. between experiments)."""
        self.machines.clear()

    def aggregate(self) -> Dict[str, Any]:
        """Counters snapshot merged across every observed machine."""
        agg: Dict[str, Any] = {}
        for ob in self.machines:
            merge_counters(agg, ob.counters.snapshot())
        return agg

    def metrics_csv(self) -> str:
        """The aggregated counters as long-format CSV."""
        return counters_csv(self.aggregate())

    def export_chrome_trace(self, path: str) -> int:
        """Merge every observed machine's trace into one file.

        Each machine becomes one "process" in the trace, labelled with
        its run name, so a sweep's points sit side by side in Perfetto.
        """
        pairs: List[Tuple[str, TraceCollector]] = [
            (ob.label, ob.trace) for ob in self.machines if ob.trace is not None
        ]
        if not pairs:
            raise RuntimeError("no traced machines in this session")
        return write_chrome_trace(pairs, path)


#: the active session new machines auto-attach to (None = off)
_SESSION: Optional[ObsSession] = None


def enable(*, trace: bool = False, trace_limit: int = 500_000,
           causal: bool = False, causal_limit: int = 2_000_000) -> ObsSession:
    """Start observing every machine constructed from now on."""
    global _SESSION
    if _SESSION is not None:
        raise RuntimeError("an observability session is already active")
    _SESSION = ObsSession(trace=trace, trace_limit=trace_limit,
                          causal=causal, causal_limit=causal_limit)
    return _SESSION


def disable() -> None:
    """Stop auto-attaching observability to new machines."""
    global _SESSION
    _SESSION = None


@contextmanager
def observed(*, trace: bool = False, trace_limit: int = 500_000,
             causal: bool = False, causal_limit: int = 2_000_000):
    """``with repro.obs.observed() as session:`` scoped session."""
    session = enable(trace=trace, trace_limit=trace_limit,
                     causal=causal, causal_limit=causal_limit)
    try:
        yield session
    finally:
        disable()


def attach(machine) -> Optional[Observability]:
    """Machine-constructor hook: join the active session, if any."""
    if _SESSION is None:
        return None
    ob = Observability(machine, trace=_SESSION.trace,
                       trace_limit=_SESSION.trace_limit,
                       causal=_SESSION.causal,
                       causal_limit=_SESSION.causal_limit)
    _SESSION.register(ob)
    return ob
