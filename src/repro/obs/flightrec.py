"""Flight recorder: a bounded ring of recent bus events + auto incident dumps.

The recorder asks the bus to keep the last ``limit`` events in a
bounded ring (``EventBus.keep_recent``: a C-level deque append inside
``emit``, no extra Python call per event) and registers a
kind-filtered subscriber for its trigger kinds only -- always-on cost
is one append plus a dict probe per event, memory is O(limit) no
matter how long the run.  When something goes wrong it **dumps an
incident bundle**: a single
JSON document holding the recent-event tail, the time-series tail, a
full perf-counter snapshot, the SLO status, and the machine-config
fingerprint, so a failure observed deep into a long run is diagnosable
(and, when a schedule-recording policy was installed, replayable)
without re-running it.

Automatic triggers:

* ``deadlock``       -- :class:`~repro.sim.engine.DeadlockError` raised
  from ``Machine.run`` (the machine hooks this recorder before
  re-raising);
* ``proc.kill``      -- a fault-plan crash landed (every injected crash
  kills its victim through ``Process.kill``);
* ``slo.breach``     -- an SLO monitor fired (see :mod:`repro.obs.slo`);
* ``timeout.storm``  -- >= ``storm_threshold`` dispatch/receive
  timeouts (``dispatch.timeout`` / ``udn.timeout`` / ``admit.retry``
  events) within ``storm_window`` cycles, at most one dump per window.

Bundles follow the explore repro-bundle conventions
(:mod:`repro.explore.bundle`): a ``format`` version, the
``config_fingerprint`` replay guard, and -- when ``sim.policy`` is a
recording policy -- the decision ``trace`` under a ``repro`` key, in
exactly the shape :class:`~repro.explore.policy.ReplayPolicy` consumes.
Files are written atomically (temp file + ``os.replace``), so a dump
raised from inside a crash handler can never leave a truncated JSON.
"""

from __future__ import annotations

import itertools
import json
import os
from collections import deque
from typing import Any, Dict, List, Optional

__all__ = ["FlightRecorder"]

#: incident bundle schema version (see DESIGN.md §14)
_FORMAT = 1

#: per-series point budget in a bundle's time-series tail
_TS_TAIL = 64

#: event kinds that can trigger an incident dump (the recorder's
#: kind-filtered bus subscription); every other kind only costs the
#: bus-ring append
TRIGGERS = frozenset(
    ("proc.kill", "slo.breach", "dispatch.timeout", "udn.timeout",
     "admit.retry"))

#: process-wide recorder ids -- many machines (a sweep builds one per
#: point) share one incident directory, so filenames carry the
#: recorder's creation rank to stay collision-free and deterministic
_RECORDER_IDS = itertools.count()


class FlightRecorder:
    """Bounded recent-event ring with automatic incident dumps."""

    def __init__(self, ob, *, limit: int = 4096,
                 out_dir: Optional[str] = None,
                 storm_threshold: int = 50, storm_window: int = 10_000,
                 max_incidents: int = 8):
        self.ob = ob
        self.rid = next(_RECORDER_IDS)
        #: the bus-owned bounded ring of recent events (validates limit)
        self.events: deque = ob.bus.keep_recent(limit)
        #: incident bundle dicts, in detection order (capped)
        self.incidents: List[Dict[str, Any]] = []
        #: paths written for them (when ``out_dir`` is set)
        self.paths: List[str] = []
        #: incidents detected, including ones past the ``max_incidents`` cap
        self.detected = 0
        self.out_dir = out_dir
        self.max_incidents = max_incidents
        self.storm_threshold = storm_threshold
        self.storm_window = storm_window
        self._storm: deque = deque()
        self._storm_quiet_until = -1

    # -- bus subscribers --------------------------------------------------
    def on_event(self, t: int, kind: str, f: Dict[str, Any]) -> None:
        """Manual feed for unwired recorders (tests, offline replay).

        A bus-wired recorder never takes this path: the ring append
        rides inside ``EventBus.emit`` and only :data:`TRIGGERS` kinds
        reach :meth:`on_trigger` through the kind-filtered subscription.
        """
        self.events.append((t, kind, f))
        if kind in TRIGGERS:
            self.on_trigger(t, kind, f)

    def on_trigger(self, t: int, kind: str, f: Dict[str, Any]) -> None:
        if kind == "proc.kill":
            self.record_incident("proc.kill",
                                 detail=str(f.get("name", "?")), cycle=t)
        elif kind == "slo.breach":
            self.record_incident("slo.breach",
                                 detail=str(f.get("slo", "?")), cycle=t)
        else:
            storm = self._storm
            storm.append(t)
            floor = t - self.storm_window
            while storm and storm[0] < floor:
                storm.popleft()
            if len(storm) >= self.storm_threshold and t >= self._storm_quiet_until:
                self._storm_quiet_until = t + self.storm_window
                self.record_incident(
                    "timeout.storm",
                    detail=f"{len(storm)} timeouts/retries in "
                           f"{self.storm_window} cycles", cycle=t)

    # -- dumping ----------------------------------------------------------
    def record_incident(self, reason: str, *, detail: str = "",
                        cycle: Optional[int] = None) -> Optional[Dict[str, Any]]:
        """Build (and, with ``out_dir`` set, write) one incident bundle."""
        self.detected += 1
        if len(self.incidents) >= self.max_incidents:
            return None  # keep a storm of triggers from flooding the disk
        ob = self.ob
        sim = ob.machine.sim
        doc: Dict[str, Any] = {
            "format": _FORMAT,
            "kind": "incident",
            "reason": reason,
            "detail": detail,
            "cycle": sim.now if cycle is None else cycle,
            "label": ob.label,
            "config_fingerprint": ob.machine.cfg.fingerprint(),
            "events": [[t, k, f] for t, k, f in self.events],
            "counters": _plain(ob.counters.snapshot()),
            "timeseries": (ob.sampler.dump(tail=_TS_TAIL)
                           if ob.sampler is not None else {}),
            "slo": ob.slo.summary() if ob.slo is not None else [],
        }
        policy = sim.policy
        trace = getattr(policy, "trace", None)
        if trace is not None:
            # the explore-bundle replay payload: the decision trace IS
            # the schedule (drive a fresh run with ReplayPolicy over it)
            doc["repro"] = {
                "trace": [[str(k), int(v)] for k, v in trace],
                "config_fingerprint": doc["config_fingerprint"],
            }
        self.incidents.append(doc)
        if self.out_dir is not None:
            self.paths.append(self._write(doc))
        return doc

    def _write(self, doc: Dict[str, Any]) -> str:
        os.makedirs(self.out_dir, exist_ok=True)
        name = (f"incident-r{self.rid:03d}-{len(self.paths):02d}-"
                f"{doc['reason'].replace('.', '-')}-c{doc['cycle']}.json")
        path = os.path.join(self.out_dir, name)
        # write-then-rename: a crash handler dumping mid-flight must
        # never leave a partially written (corrupt) bundle behind
        tmp = path + ".tmp"
        with open(tmp, "w") as f:
            json.dump(doc, f, indent=1, sort_keys=True, default=str)
            f.write("\n")
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)
        return path


def _plain(obj: Any) -> Any:
    """Deep-convert a counters snapshot to JSON-safe plain types."""
    if isinstance(obj, dict):
        return {str(k): _plain(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_plain(v) for v in obj]
    return obj
