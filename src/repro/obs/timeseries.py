"""Fixed-memory time series and the cycle-cadence sampler.

Post-mortem observability (counters, traces) answers *what* happened
over a run; this module answers *when*.  Two pieces:

* :class:`TimeSeries` -- a ring of time buckets with **2x
  downsample-on-wrap**: when a sample lands past the last bucket, every
  adjacent bucket pair is merged and the bucket width doubles, so the
  series always spans the whole run in at most ``buckets`` buckets.
  Memory is O(buckets) regardless of run length, core count, or sample
  rate -- the property that keeps continuous telemetry viable for the
  1024-core roadmap item.  Merging preserves the aggregates exactly:
  per-bucket ``sum``/``count``/``max`` compose, so the whole-series
  mean, total, and peak are independent of how often the ring wrapped.

* :class:`Sampler` -- snapshots registered **sources** on a fixed cycle
  cadence (driven by the engine's sample hook, see
  ``Simulator.set_sample_hook``).  A *gauge* source records its value
  as-is (queue depth, buffer occupancy); a *counter* source is a
  monotonically increasing total and records the delta since the
  previous tick (busy cycles, misses, flit cycles).  Counter sources
  are baselined **at registration**, so a source registered mid-run
  starts from zero instead of a garbage pre-registration total.

Sampling is pure observation: sources are read between simulator
events, no simulated state is touched and no events are scheduled, so
enabling telemetry cannot perturb a run (the determinism tests hold
figure fingerprints bit-identical with sampling on).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = ["TimeSeries", "Sampler", "register_machine_sources"]

_KINDS = ("gauge", "counter")


class TimeSeries:
    """One named series of time buckets (see module docs)."""

    __slots__ = ("name", "kind", "unit", "capacity", "bucket_cycles", "t0",
                 "sums", "counts", "maxes", "last_value", "last_cycle",
                 "wraps", "samples")

    def __init__(self, name: str, *, kind: str = "gauge", buckets: int = 256,
                 bucket_cycles: int = 1024, t0: int = 0, unit: str = ""):
        if kind not in _KINDS:
            raise ValueError(f"kind must be one of {_KINDS}, got {kind!r}")
        if buckets < 2:
            raise ValueError(f"need at least 2 buckets to downsample, got {buckets}")
        if bucket_cycles < 1:
            raise ValueError(f"bucket_cycles must be >= 1, got {bucket_cycles}")
        self.name = name
        self.kind = kind
        self.unit = unit
        self.capacity = buckets
        self.bucket_cycles = bucket_cycles
        self.t0 = t0
        self.sums: List[float] = []
        self.counts: List[int] = []
        self.maxes: List[float] = []
        self.last_value: float = 0.0
        self.last_cycle: int = t0
        #: how many times the ring wrapped (bucket width = initial * 2^wraps)
        self.wraps = 0
        #: total samples recorded (not bounded by the ring)
        self.samples = 0

    def record(self, cycle: int, value: float) -> None:
        """Fold one sample taken at ``cycle`` into its time bucket."""
        idx = (cycle - self.t0) // self.bucket_cycles
        if idx < 0:
            idx = 0
        while idx >= self.capacity:
            self._downsample()
            idx = (cycle - self.t0) // self.bucket_cycles
        sums, counts, maxes = self.sums, self.counts, self.maxes
        while len(sums) <= idx:
            sums.append(0.0)
            counts.append(0)
            maxes.append(0.0)
        if counts[idx] == 0 or value > maxes[idx]:
            maxes[idx] = value
        sums[idx] += value
        counts[idx] += 1
        self.last_value = value
        self.last_cycle = cycle
        self.samples += 1

    def _downsample(self) -> None:
        """Merge adjacent bucket pairs; the bucket width doubles."""
        sums, counts, maxes = self.sums, self.counts, self.maxes
        n = len(sums)
        new_sums: List[float] = []
        new_counts: List[int] = []
        new_maxes: List[float] = []
        for i in range(0, n, 2):
            if i + 1 < n:
                new_sums.append(sums[i] + sums[i + 1])
                new_counts.append(counts[i] + counts[i + 1])
                if counts[i] == 0:
                    new_maxes.append(maxes[i + 1])
                elif counts[i + 1] == 0:
                    new_maxes.append(maxes[i])
                else:
                    new_maxes.append(max(maxes[i], maxes[i + 1]))
            else:
                new_sums.append(sums[i])
                new_counts.append(counts[i])
                new_maxes.append(maxes[i])
        self.sums, self.counts, self.maxes = new_sums, new_counts, new_maxes
        self.bucket_cycles *= 2
        self.wraps += 1

    # -- aggregate views (exact under any number of wraps) ---------------
    def total(self) -> float:
        return sum(self.sums)

    def mean(self) -> float:
        n = sum(self.counts)
        return sum(self.sums) / n if n else 0.0

    def peak(self) -> float:
        return max(
            (m for m, c in zip(self.maxes, self.counts) if c), default=0.0)

    def points(self) -> List[Tuple[int, float]]:
        """(bucket start cycle, value) pairs.

        A gauge bucket's value is its sample mean (empty buckets are
        skipped: no sample is not depth zero); a counter bucket's value
        is its summed increments (empty buckets render as 0: nothing
        happened there).
        """
        out: List[Tuple[int, float]] = []
        w = self.bucket_cycles
        if self.kind == "counter":
            for i, s in enumerate(self.sums):
                out.append((self.t0 + i * w, s))
        else:
            for i, (s, c) in enumerate(zip(self.sums, self.counts)):
                if c:
                    out.append((self.t0 + i * w, s / c))
        return out

    def to_dict(self, *, tail: Optional[int] = None) -> Dict[str, Any]:
        """JSON-ready description (``tail`` keeps only the last N points)."""
        pts = [[t, v] for t, v in self.points()]
        if tail is not None and len(pts) > tail:
            pts = pts[-tail:]
        return {
            "name": self.name,
            "kind": self.kind,
            "unit": self.unit,
            "bucket_cycles": self.bucket_cycles,
            "t0": self.t0,
            "wraps": self.wraps,
            "samples": self.samples,
            "mean": self.mean(),
            "peak": self.peak(),
            "total": self.total(),
            "last": [self.last_cycle, self.last_value],
            "points": pts,
        }


class _Source:
    __slots__ = ("name", "kind", "fn", "last")

    def __init__(self, name: str, kind: str, fn: Callable[[], float]):
        self.name = name
        self.kind = kind
        self.fn = fn
        # counter sources are baselined at registration: a source added
        # mid-run reports increments from *now*, not its lifetime total
        self.last = fn() if kind == "counter" else 0.0


class Sampler:
    """Snapshots registered sources into ring-buffer series each tick."""

    def __init__(self, sim=None, *, every: int = 512, buckets: int = 256):
        if every < 1:
            raise ValueError(f"sample interval must be >= 1 cycle, got {every}")
        self.sim = sim
        self.every = every
        self.buckets = buckets
        self.series: Dict[str, TimeSeries] = {}
        self._sources: List[_Source] = []
        self._subs: List[Callable[[int], None]] = []
        self.ticks = 0

    def _now(self) -> int:
        return self.sim.now if self.sim is not None else 0

    def register(self, name: str, fn: Callable[[], float], *,
                 kind: str = "gauge", unit: str = "",
                 replace: bool = False) -> TimeSeries:
        """Add a source; its series ring starts at the current cycle.

        Registering a ``name`` that already exists raises
        :class:`ValueError` (two sources silently feeding one ring is
        always a bug) unless ``replace=True``, which discards the old
        source *and* its recorded series -- the idiom for workload
        drivers that re-register ``goodput`` per run on a reused
        machine.
        """
        if name in self.series:
            if not replace:
                raise ValueError(f"source {name!r} already registered")
            self._sources = [s for s in self._sources if s.name != name]
            del self.series[name]
        now = self._now()
        ts = TimeSeries(name, kind=kind, buckets=self.buckets,
                        bucket_cycles=self.every,
                        t0=now - (now % self.every), unit=unit)
        self.series[name] = ts
        self._sources.append(_Source(name, kind, fn))
        return ts

    def remove_source(self, name: str) -> bool:
        """Stop sampling ``name``; returns whether a source was removed.

        The already-recorded series is **kept** (it still appears in
        summaries and dashboards -- history does not vanish because its
        feed went away); only future ticks stop reading the source.
        Removing a name that was never registered, was already removed,
        or belongs to an adopted (externally-fed) series is a
        documented no-op returning ``False`` -- teardown paths may call
        this unconditionally.
        """
        kept = [s for s in self._sources if s.name != name]
        removed = len(kept) != len(self._sources)
        self._sources = kept
        return removed

    def adopt(self, ts: TimeSeries) -> TimeSeries:
        """Track an externally-fed series (e.g. SLO burn rates) so it
        appears in summaries and dashboards alongside sampled ones."""
        if ts.name in self.series:
            raise ValueError(f"series {ts.name!r} already registered")
        self.series[ts.name] = ts
        return ts

    def subscribe(self, cb: Callable[[int], None]) -> None:
        """Call ``cb(cycle)`` after each tick's sources are sampled."""
        self._subs.append(cb)

    def on_tick(self, now: int) -> None:
        """The engine sample hook: read every source once."""
        self.ticks += 1
        series = self.series
        for src in self._sources:
            v = src.fn()
            if src.kind == "counter":
                d = v - src.last
                src.last = v
                series[src.name].record(now, d)
            else:
                series[src.name].record(now, v)
        for cb in self._subs:
            cb(now)

    def summary(self) -> Dict[str, Any]:
        """Compact JSON-ready overview (aggregates, no point lists)."""
        out: Dict[str, Any] = {"every": self.every, "ticks": self.ticks,
                               "series": {}}
        for name in sorted(self.series):
            d = self.series[name].to_dict()
            del d["points"]
            out["series"][name] = d
        return out

    def dump(self, *, tail: Optional[int] = None) -> Dict[str, Any]:
        """Full JSON-ready dump, optionally only each series' tail."""
        return {
            "every": self.every,
            "ticks": self.ticks,
            "series": {name: self.series[name].to_dict(tail=tail)
                       for name in sorted(self.series)},
        }


def register_machine_sources(sampler: Sampler, machine, counters) -> None:
    """Wire the standard per-subsystem sources of one machine.

    Per-core cycle registers and cache misses aggregate over cores each
    tick (O(cores) time, O(buckets) memory); UDN occupancy reads the
    destination buffers' reserved words; NoC flits read the contended
    mesh's running occupancy total.  Workload drivers add ``goodput``
    and ``admit.qdepth`` on top when they run.
    """
    cores = machine.cores
    sampler.register(
        "core.busy", lambda: sum(c.busy for c in cores),
        kind="counter", unit="cyc")
    sampler.register(
        "core.stall",
        lambda: sum(c.stall_mem + c.stall_atomic + c.stall_fence
                    for c in cores),
        kind="counter", unit="cyc")
    sampler.register(
        "core.wait", lambda: sum(c.wait for c in cores),
        kind="counter", unit="cyc")
    pc_core = counters.core
    sampler.register(
        "cache.misses",
        lambda: sum(r.get("misses", 0) for r in pc_core.values()),
        kind="counter", unit="misses")
    udn = machine.udn
    if udn is not None:
        sampler.register(
            "udn.occupancy", udn.buffer_occupancy_words,
            kind="gauge", unit="words")
        sampler.register(
            "udn.backpressure", lambda: udn.backpressure_cycles,
            kind="counter", unit="cyc")
    cm = machine.contended_mesh
    if cm is not None:
        sampler.register(
            "noc.flits", lambda: cm.total_flit_cycles,
            kind="counter", unit="cyc")
        sampler.register(
            "noc.link_wait", lambda: cm.total_link_wait,
            kind="counter", unit="cyc")
