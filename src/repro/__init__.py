"""repro -- a full reproduction of "Leveraging Hardware Message Passing
for Efficient Thread Synchronization" (Petrović, Ropars, Schiper;
PPoPP 2014) on a simulated hybrid manycore.

The package layers as follows (bottom up):

* :mod:`repro.sim` -- deterministic discrete-event engine.
* :mod:`repro.noc` -- 2D-mesh network-on-chip.
* :mod:`repro.mem` -- directory-based cache-coherent memory with RMR and
  stall accounting, plus memory-controller atomics.
* :mod:`repro.udn` -- hardware message passing (TILE-Gx UDN semantics).
* :mod:`repro.machine` -- machine profiles and the simulated-thread API.
* :mod:`repro.core` -- the paper's synchronization algorithms:
  MP-SERVER, HYBCOMB (the contribution), SHM-SERVER (RCL-style) and
  CC-SYNCH (the shared-memory state of the art), plus baseline locks.
* :mod:`repro.objects` -- linearizable counters, queues and stacks built
  on those algorithms (MS-Queue, LCRQ, Treiber, coarse-lock stack).
* :mod:`repro.workload` -- the paper's benchmark methodology and metrics.
* :mod:`repro.experiments` -- one module per figure of the evaluation.

Quickstart::

    from repro.core import MPServer
    from repro.workload import run_counter_benchmark

    result = run_counter_benchmark(MPServer, num_threads=16)
    print(result.throughput_mops, "Mops/s")
"""

from repro.machine import Machine, MachineConfig, ThreadCtx, tile_gx, x86_like
from repro.sim import Simulator

__version__ = "1.0.0"

__all__ = [
    "Machine",
    "MachineConfig",
    "Simulator",
    "ThreadCtx",
    "tile_gx",
    "x86_like",
    "__version__",
]
