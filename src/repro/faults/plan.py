"""Declarative fault descriptions (what to break, when).

Each fault is an immutable dataclass; a :class:`FaultPlan` bundles a
tuple of them with a PRNG seed.  Plans carry no machine references --
they can be constructed in experiment configs, logged, and compared.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

__all__ = ["CrashThread", "FaultPlan", "PreemptThread", "SlowThread", "UdnJitter"]


@dataclass(frozen=True)
class CrashThread:
    """Fail-stop crash: kill every process of thread ``tid`` at ``at_cycle``.

    The killed generator is abandoned without unwinding (no ``finally``
    blocks run), modelling a core that simply stops executing.  Locks
    held, messages queued and shared-memory state are left exactly as
    they were -- recovering from that is the protocol's job.
    """

    tid: int
    at_cycle: int

    def __post_init__(self) -> None:
        if self.at_cycle < 0:
            raise ValueError("at_cycle must be >= 0")


@dataclass(frozen=True)
class PreemptThread:
    """Duty-cycle preemption: from ``start_cycle`` on, thread ``tid``
    repeatedly runs for ``run_cycles`` then loses the core for
    ``preempt_cycles`` (an OS time-slice pattern).  ``until_cycle``
    bounds the interference; ``None`` preempts for the whole run."""

    tid: int
    start_cycle: int
    run_cycles: int
    preempt_cycles: int
    until_cycle: Optional[int] = None

    def __post_init__(self) -> None:
        if self.run_cycles < 1 or self.preempt_cycles < 1:
            raise ValueError("run_cycles and preempt_cycles must be >= 1")
        if self.start_cycle < 0:
            raise ValueError("start_cycle must be >= 0")
        if self.until_cycle is not None and self.until_cycle <= self.start_cycle:
            raise ValueError("until_cycle must be > start_cycle")


@dataclass(frozen=True)
class SlowThread:
    """Core slowdown: between ``start_cycle`` and ``until_cycle``,
    thread ``tid`` advances only ``1/factor`` as fast -- modelled as a
    stall of ``(factor - 1) * quantum`` cycles injected every ``quantum``
    cycles of progress (DVFS throttling, SMT interference, ...)."""

    tid: int
    factor: float
    start_cycle: int = 0
    until_cycle: Optional[int] = None
    quantum: int = 200

    def __post_init__(self) -> None:
        if self.factor <= 1.0:
            raise ValueError("factor must be > 1 (1.0 is a healthy core)")
        if self.quantum < 1:
            raise ValueError("quantum must be >= 1")


@dataclass(frozen=True)
class UdnJitter:
    """Bounded random extra transit delay on every UDN message: uniform
    integer in ``[0, max_cycles]`` drawn from the plan's seeded PRNG."""

    max_cycles: int

    def __post_init__(self) -> None:
        if self.max_cycles < 1:
            raise ValueError("max_cycles must be >= 1")


Fault = Union[CrashThread, PreemptThread, SlowThread, UdnJitter]


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, ordered collection of faults for one run."""

    seed: int = 0
    faults: Tuple[Fault, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))

    @classmethod
    def none(cls) -> "FaultPlan":
        """The empty plan (installing it is a no-op)."""
        return cls()

    def __bool__(self) -> bool:
        return bool(self.faults)

    def of_type(self, kind: type) -> Tuple[Fault, ...]:
        return tuple(f for f in self.faults if isinstance(f, kind))
