"""Installing a :class:`~repro.faults.plan.FaultPlan` onto a machine.

The injector is pure scheduling glue: it translates declarative fault
descriptions into simulator callbacks (crashes, suspension patterns) and
a seeded jitter hook on the UDN fabric.  All scheduling happens through
``Simulator.call_at``, so faults interleave deterministically with the
workload under the engine's FIFO tie-breaking.

Install *after* the workload's threads exist (fault targets are looked
up lazily by thread id at fire time, so installing right before
``machine.run()`` also works) and *before* the run starts.
"""

from __future__ import annotations

from typing import Any, Dict, List

import numpy as np

from repro.faults.plan import (
    CrashThread,
    FaultPlan,
    PreemptThread,
    SlowThread,
    UdnJitter,
)
from repro.machine.machine import Machine

__all__ = ["FaultInjector"]


class FaultInjector:
    """Arms a fault plan against a machine.  One injector per run."""

    def __init__(self, machine: Machine, plan: FaultPlan):
        self.machine = machine
        self.plan = plan
        self._rng = np.random.default_rng(plan.seed)
        self._installed = False
        #: (cycle, tid, process-name) for every process actually killed
        self.crashes: List[tuple] = []

    def install(self) -> "FaultInjector":
        """Schedule every fault in the plan.  Idempotence-guarded."""
        if self._installed:
            raise RuntimeError("fault plan already installed")
        self._installed = True
        jitter_bound = 0
        for fault in self.plan.faults:
            if isinstance(fault, CrashThread):
                self._arm_crash(fault)
            elif isinstance(fault, PreemptThread):
                self._arm_duty_cycle(fault.tid, fault.start_cycle,
                                     fault.run_cycles, fault.preempt_cycles,
                                     fault.until_cycle)
            elif isinstance(fault, SlowThread):
                # a slowdown by ``factor`` is a duty cycle of ``quantum``
                # progress cycles followed by the matching stall
                stall = max(1, int(round((fault.factor - 1.0) * fault.quantum)))
                self._arm_duty_cycle(fault.tid, fault.start_cycle,
                                     fault.quantum, stall, fault.until_cycle)
            elif isinstance(fault, UdnJitter):
                jitter_bound = max(jitter_bound, fault.max_cycles)
            else:  # pragma: no cover - plan validates membership
                raise TypeError(f"unknown fault {fault!r}")
        if jitter_bound:
            self._arm_jitter(jitter_bound)
        return self

    # -- individual fault mechanisms --------------------------------------
    def _live_procs(self, tid: int) -> List[Any]:
        return [p for p in self.machine.procs_of(tid) if p.alive]

    def _arm_crash(self, fault: CrashThread) -> None:
        def fire() -> None:
            for proc in self._live_procs(fault.tid):
                proc.kill(fault)
                self.crashes.append((self.machine.now, fault.tid, proc.name))

        self.machine.sim.call_at(fault.at_cycle, fire)

    def _arm_duty_cycle(self, tid: int, start: int, run_cycles: int,
                        off_cycles: int, until: Any) -> None:
        sim = self.machine.sim

        def tick() -> None:
            now = sim.now
            if until is not None and now >= until:
                return
            victims = self._live_procs(tid)
            if not victims:
                return  # target finished or crashed: controller retires
            for proc in victims:
                proc.suspend_until(now + off_cycles)
            sim.call_at(now + off_cycles + run_cycles, tick)

        # the first preemption lands after one run slice
        sim.call_at(start + run_cycles, tick)

    def _arm_jitter(self, max_cycles: int) -> None:
        udn = self.machine.udn
        if udn is None:
            raise ValueError("UdnJitter requires a machine profile with "
                             "hardware message passing")
        if udn.transit_jitter is not None:
            raise RuntimeError("UDN transit jitter hook already installed")
        rng = self._rng

        def jitter(src_core: int, dst_core: int, n_words: int) -> int:
            return int(rng.integers(0, max_cycles + 1))

        udn.transit_jitter = jitter

    def summary(self) -> Dict[str, Any]:
        return {
            "seed": self.plan.seed,
            "faults": len(self.plan.faults),
            "crashes": list(self.crashes),
        }
