"""Deterministic fault injection for the simulated machine.

A :class:`FaultPlan` is a declarative, seeded description of the faults
to inject into one run -- thread crashes (fail-stop), duty-cycle
preemption, core slowdown, and bounded jitter on message-network transit
times.  A :class:`FaultInjector` installs a plan onto a
:class:`~repro.machine.machine.Machine` before the run starts.

Everything is driven by the simulation clock and a seeded PRNG, so a
given (plan, workload) pair replays identically: same crash cycles,
same preemption slices, same jitter per message.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    CrashThread,
    FaultPlan,
    PreemptThread,
    SlowThread,
    UdnJitter,
)

__all__ = [
    "CrashThread",
    "FaultInjector",
    "FaultPlan",
    "PreemptThread",
    "SlowThread",
    "UdnJitter",
]
