"""Core discrete-event simulation engine.

The engine executes *processes* -- Python generators -- against a global
clock measured in integer cycles.  A process interacts with the simulator
exclusively through the values it yields:

``yield n`` (a non-negative ``int``)
    Suspend the process for ``n`` simulated cycles.

``yield event`` (an :class:`Event`)
    Suspend until the event is triggered; ``event.value`` is sent back
    into the generator as the result of the ``yield`` expression.

Composite behaviours (acquiring a resource, performing a cache-coherent
load, receiving a hardware message, ...) are written as generators and
invoked with ``yield from``, so the engine itself never needs to know
about them.  This two-effect design keeps the trampoline small and fast,
which matters: a single benchmark point simulates hundreds of thousands
of events in pure Python.

Determinism
-----------
Events scheduled for the same cycle fire in FIFO order of scheduling, so
a given program produces the exact same execution every run.  All
randomness in higher layers flows from seeded generators.

Schedule exploration hooks into exactly one seam here: when
:attr:`Simulator.policy` is set (a ``repro.explore`` ``SchedulePolicy``),
each grabbed same-cycle chunk with more than one entry is offered to
``policy.reorder_lane(entries, now)`` before being swept.  Any
permutation the policy returns is a legal tie-break order, except that
entries whose ``pinned`` attribute is true (plain callbacks --
model-internal machinery) must keep their relative positions.  With
``policy`` left ``None`` -- the default -- the sweep takes the exact
pre-existing path, so default runs stay bit-identical (see
tests/test_parallel.py golden fingerprints).

Scheduler internals
-------------------
Since engine v3 the hot loop lives in :mod:`repro.sim._engine_core`
(typed, compiled-friendly; this module re-exports it and adds the cold
helpers).  Entries are processed in strict FIFO-per-cycle order across
two tiers (see DESIGN.md §11 and §16 for the invariants):

* the **same-cycle fast lane**: a plain list of entries due at the
  current cycle, swept in grabbed chunks.  Zero-delay resumes -- event
  triggers, ``yield 0``, store-buffer drains -- are the dominant
  scheduling class (>80% of pushes under the Figure 3 workloads), and
  the lane turns each one into a list append plus one loop iteration;
* **per-cycle buckets** keyed by due cycle, with a heap of the distinct
  cycles, for future work (hardware latencies, timeouts, watchdogs).
  Advancing the clock drains a whole cycle in one pass and jumps idle
  gaps in O(1) -- one heap pop per cycle, not per event.

Appends to the lane and to a bucket happen in scheduling order, so each
tier is internally FIFO; cross-tier ordering holds because everything a
bucket drain schedules for its own cycle lands in the lane, which is
swept next.

Fault semantics
---------------
A process has at most one live wakeup at any time, tracked by a flag on
the process itself; interrupting, killing or otherwise superseding it
zombies the queued entry, which the sweep drops.  This makes
:meth:`Process.interrupt` safe in every blocked state -- waiting on an
event, sleeping on an ``int`` delay, or already scheduled to run -- and
is what the fault-injection layer (:mod:`repro.faults`) builds on.
:meth:`Process.kill` models a fail-stop crash: the generator is
abandoned *without* running its ``finally`` blocks (a crashed thread
executes nothing).  When the pending-event set drains while live
non-daemon processes are still blocked, :meth:`Simulator.run` raises
:class:`DeadlockError` naming each blocked process and what it waits
on, instead of returning silently.
"""

from __future__ import annotations

from typing import Any, Generator, Iterable, List, Optional

from repro.sim._engine_core import (  # noqa: F401  (re-exported API)
    IS_COMPILED,
    DeadlockError,
    Event,
    Interrupt,
    Process,
    Simulator,
    _coerce_delay,
)

__all__ = [
    "DeadlockError",
    "Event",
    "Interrupt",
    "IS_COMPILED",
    "Process",
    "Simulator",
    "WaitTimer",
]


class WaitTimer:
    """A one-shot watchdog used to build timed blocking operations.

    Arms at construction: at ``deadline`` the timer interrupts ``proc``
    with *itself* as the :class:`Interrupt` cause -- but only if the
    process is still genuinely parked on an event *after every wakeup
    already queued for the deadline cycle has landed*.  An arrival
    scheduled for the same cycle therefore wins the race against the
    timeout, deterministically, regardless of which callback entered the
    queue first.  Callers must :meth:`disarm` when the guarded operation
    completes (typically in a ``finally``, before yielding again).

    While armed, the timer *watches* the process (``_watch`` refcount):
    the engine then counts the process's steps in ``_resume_gen``, which
    is how :meth:`_fire` tells "stepped since I last looked" (re-check
    now) from "still parked with its wakeup at a later cycle" (the
    timeout simply loses).  The count is released on :meth:`disarm` or
    on any terminal :meth:`_fire` outcome, so untimed hot paths never
    pay for it.
    """

    __slots__ = ("sim", "proc", "armed", "_deferred", "_gen_at_check",
                 "_watching")

    def __init__(self, sim: Simulator, proc: Process, deadline: int):
        self.sim = sim
        self.proc = proc
        self.armed = True
        #: True once the deadline-cycle re-check has been queued
        self._deferred = False
        #: proc resume generation at the last not-parked observation
        self._gen_at_check: Optional[int] = None
        #: True while this timer holds a ``_watch`` count on ``proc``
        self._watching = True
        proc._watch += 1
        proc._slow = True  # route resumes through the counting slow path
        sim.call_at(deadline, self._fire)

    def _unwatch(self) -> None:
        if self._watching:
            self._watching = False
            self.proc._watch -= 1
            # _slow clears itself lazily on the next slow resume once
            # nothing (suspension, deferred kill, watchers) needs it

    def _fire(self) -> None:
        if not self.armed or not self.proc.alive:
            self._unwatch()
            return
        if self.proc.blocked_event() is None:
            # Not parked: a wakeup (e.g. a same-cycle message arrival) is
            # in flight.  Re-check after the process has stepped; if it
            # has not stepped since the last look, its wakeup sits at a
            # later cycle and the timeout simply loses.
            if self.proc._resume_gen != self._gen_at_check:
                self._gen_at_check = self.proc._resume_gen
                self.sim.call_at(self.sim.now, self._fire)
            else:
                self._unwatch()
            return
        if self._deferred:
            self._unwatch()
            self.proc.interrupt(self)
        else:
            # Parked -- but a delivery queued earlier this same cycle may
            # still be behind us in the lane.  Look again after it.
            self._deferred = True
            self.sim.call_at(self.sim.now, self._fire)

    def disarm(self) -> None:
        self.armed = False
        self._unwatch()


def all_of(sim: Simulator, procs: Iterable[Process]) -> Generator[Any, Any, list]:
    """``yield from all_of(sim, procs)`` -- wait for all, return results in order."""
    results: List[Any] = []
    for p in procs:
        r = yield from p.join()
        results.append(r)
    return results
