"""Core discrete-event simulation engine.

The engine executes *processes* -- Python generators -- against a global
clock measured in integer cycles.  A process interacts with the simulator
exclusively through the values it yields:

``yield n`` (a non-negative ``int``)
    Suspend the process for ``n`` simulated cycles.

``yield event`` (an :class:`Event`)
    Suspend until the event is triggered; ``event.value`` is sent back
    into the generator as the result of the ``yield`` expression.

Composite behaviours (acquiring a resource, performing a cache-coherent
load, receiving a hardware message, ...) are written as generators and
invoked with ``yield from``, so the engine itself never needs to know
about them.  This two-effect design keeps the trampoline small and fast,
which matters: a single benchmark point simulates hundreds of thousands
of events in pure Python.

Determinism
-----------
Events scheduled for the same cycle fire in FIFO order of scheduling
(ties broken by a monotonically increasing sequence number), so a given
program produces the exact same execution every run.  All randomness in
higher layers flows from seeded generators.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = ["Event", "Interrupt", "Process", "Simulator"]


class Interrupt(Exception):
    """Raised inside a process that is interrupted via :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot condition that processes can wait on.

    An event starts un-triggered.  Any number of processes may wait on it
    (by yielding it); when :meth:`trigger` is called, all waiters are
    resumed at the current simulation time and receive ``value``.
    Processes that yield an already-triggered event resume immediately
    (zero-cycle delay) with the stored value.
    """

    __slots__ = ("sim", "triggered", "value", "_waiters")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.triggered = False
        self.value: Any = None
        self._waiters: List[Process] = []

    def trigger(self, value: Any = None) -> None:
        """Fire the event, waking every waiter at the current cycle."""
        if self.triggered:
            raise RuntimeError("Event triggered twice")
        self.triggered = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        schedule = self.sim._schedule_resume
        for proc in waiters:
            schedule(proc, value)

    # -- engine internal -------------------------------------------------
    def _add_waiter(self, proc: "Process") -> None:
        if self.triggered:
            self.sim._schedule_resume(proc, self.value)
        else:
            self._waiters.append(proc)

    def _discard_waiter(self, proc: "Process") -> None:
        try:
            self._waiters.remove(proc)
        except ValueError:
            pass


class Process:
    """A running generator inside the simulator.

    Created via :meth:`Simulator.spawn`.  The generator's ``return``
    value (carried by ``StopIteration``) becomes :attr:`result` and is
    delivered to anything waiting on :meth:`join`.  An uncaught exception
    in a process aborts the whole simulation run -- silent failures would
    otherwise corrupt benchmark results.
    """

    __slots__ = ("sim", "gen", "name", "alive", "result", "_done_event", "_waiting_on")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = "?"):
        self.sim = sim
        self.gen = gen
        self.name = name
        self.alive = True
        self.result: Any = None
        self._done_event = Event(sim)
        self._waiting_on: Optional[Event] = None

    def join(self) -> Generator[Any, Any, Any]:
        """``yield from proc.join()`` waits for termination, returns its result."""
        if self.alive:
            yield self._done_event
        return self.result

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current cycle.

        Only valid while the process is blocked on an event (the normal
        case for e.g. cancelling a blocked receive).  The interrupted
        process is removed from the event's waiter list.
        """
        if not self.alive:
            return
        if self._waiting_on is not None:
            self._waiting_on._discard_waiter(self)
            self._waiting_on = None
        self.sim._schedule_throw(self, Interrupt(cause))

    # -- engine internal -------------------------------------------------
    def _finish(self, result: Any) -> None:
        self.alive = False
        self.result = result
        self._done_event.trigger(result)


class Simulator:
    """The event loop.

    Typical use::

        sim = Simulator()
        proc = sim.spawn(my_generator())
        sim.run()
        print(sim.now, proc.result)
    """

    __slots__ = ("now", "_heap", "_seq", "_nevents", "max_events")

    def __init__(self, max_events: Optional[int] = None):
        self.now: int = 0
        self._heap: List[Any] = []
        self._seq: int = 0
        self._nevents: int = 0
        #: hard safety cap on processed events (None = unlimited)
        self.max_events = max_events

    # -- public API ------------------------------------------------------
    @property
    def events_processed(self) -> int:
        return self._nevents

    def spawn(self, gen: Generator, name: str = "?") -> Process:
        """Register ``gen`` as a process; it starts at the current cycle."""
        proc = Process(self, gen, name)
        self._schedule_resume(proc, None)
        return proc

    def event(self) -> Event:
        """Create a fresh (un-triggered) event bound to this simulator."""
        return Event(self)

    def call_at(self, when: int, fn: Callable[[], None]) -> None:
        """Run plain callback ``fn`` at absolute cycle ``when`` (>= now)."""
        if when < self.now:
            raise ValueError(f"cannot schedule in the past ({when} < {self.now})")
        self._push(when, fn, None, _CALLBACK)

    def call_after(self, delay: int, fn: Callable[[], None]) -> None:
        """Run plain callback ``fn`` after ``delay`` cycles."""
        self.call_at(self.now + delay, fn)

    def run(self, until: Optional[int] = None) -> None:
        """Process events until the heap is empty or ``now`` passes ``until``.

        With ``until`` given, the clock is left exactly at ``until`` when
        the horizon is hit (events at later cycles stay queued and can be
        processed by a subsequent :meth:`run` call).
        """
        heap = self._heap
        pop = heapq.heappop
        max_events = self.max_events
        while heap:
            when, _seq, proc, payload, kind = heap[0]
            if until is not None and when > until:
                self.now = until
                return
            pop(heap)
            self.now = when
            self._nevents += 1
            if max_events is not None and self._nevents > max_events:
                raise RuntimeError(f"simulation exceeded {max_events} events")
            if kind == _CALLBACK:
                proc()  # proc slot holds the callable for callbacks
                continue
            self._step(proc, payload, kind)
        if until is not None and self.now < until:
            self.now = until

    # -- internals ---------------------------------------------------------
    def _push(self, when: int, proc: Any, payload: Any, kind: int) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (when, self._seq, proc, payload, kind))

    def _schedule_resume(self, proc: Process, value: Any, delay: int = 0) -> None:
        self._push(self.now + delay, proc, value, _SEND)

    def _schedule_throw(self, proc: Process, exc: BaseException) -> None:
        self._push(self.now, proc, exc, _THROW)

    def _step(self, proc: Process, payload: Any, kind: int) -> None:
        if not proc.alive:
            return
        proc._waiting_on = None
        try:
            if kind == _THROW:
                effect = proc.gen.throw(payload)
            else:
                effect = proc.gen.send(payload)
        except StopIteration as stop:
            proc._finish(stop.value)
            return
        # Dispatch on the yielded effect.
        if type(effect) is int:
            self._schedule_resume(proc, None, effect)
        elif isinstance(effect, Event):
            proc._waiting_on = effect
            effect._add_waiter(proc)
        elif isinstance(effect, int):  # bools / numpy ints coerced
            self._schedule_resume(proc, None, int(effect))
        else:
            raise TypeError(
                f"process {proc.name!r} yielded unsupported effect {effect!r}; "
                "yield an int (delay) or an Event"
            )


# Event kinds in the heap.
_SEND = 0
_THROW = 1
_CALLBACK = 2


def all_of(sim: Simulator, procs: Iterable[Process]) -> Generator[Any, Any, list]:
    """``yield from all_of(sim, procs)`` -- wait for all, return results in order."""
    results = []
    for p in procs:
        r = yield from p.join()
        results.append(r)
    return results
