"""Execution tracing: record what simulated threads do, render timelines.

Zero-overhead when unused: instead of instrumenting the hot paths of the
memory/UDN models, a :class:`TracedCtx` *wraps* a
:class:`~repro.machine.machine.ThreadCtx` and records an interval for
every operation it forwards.  Algorithm code takes the wrapper
transparently (same generator API), so any thread can be put under the
microscope without touching the others.

The recorded :class:`Trace` renders as an ASCII Gantt timeline
(:func:`render_timeline`) -- one row per thread, one glyph category per
operation kind -- which makes protocol behaviour (who stalls where, how
the combiner pipelines) directly visible in a terminal.  See
``examples/trace_anatomy.py``.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional, Sequence

__all__ = ["Span", "Trace", "TracedCtx", "render_timeline"]

#: glyph per operation category in the timeline
GLYPHS = {
    "load": "r",
    "store": "w",
    "faa": "A",
    "swap": "A",
    "cas": "A",
    "fence": "F",
    "prefetch": "p",
    "spin": ".",
    "send": "s",
    "receive": "v",
    "probe": "?",
    "work": "#",
}


@dataclass(frozen=True)
class Span:
    """One recorded operation interval on one thread."""

    tid: int
    kind: str
    start: int
    end: int
    detail: Any = None

    @property
    def duration(self) -> int:
        return self.end - self.start


class Trace:
    """A collection of spans with simple query helpers."""

    def __init__(self) -> None:
        self.spans: List[Span] = []

    def add(self, tid: int, kind: str, start: int, end: int, detail: Any = None) -> None:
        self.spans.append(Span(tid, kind, start, end, detail))

    def __len__(self) -> int:
        return len(self.spans)

    def for_thread(self, tid: int) -> List[Span]:
        return [s for s in self.spans if s.tid == tid]

    def by_kind(self) -> Dict[str, int]:
        """Total cycles per operation kind (across all traced threads)."""
        out: Dict[str, int] = {}
        for s in self.spans:
            out[s.kind] = out.get(s.kind, 0) + s.duration
        return out

    def window(self, start: int, end: int) -> "Trace":
        """Spans overlapping [start, end), clipped to the window.

        Clipping matters: a span straddling a boundary contributes only
        its in-window portion, so :meth:`by_kind` totals over a window
        never exceed ``(end - start) * num_threads``.
        """
        t = Trace()
        for s in self.spans:
            lo = max(s.start, start)
            hi = min(s.end, end)
            zero_len = s.start == s.end and start <= s.start < end
            if lo < hi or zero_len:
                t.spans.append(Span(s.tid, s.kind, lo, hi, s.detail))
        return t


class TracedCtx:
    """A recording proxy around a ThreadCtx (same generator API)."""

    def __init__(self, ctx, trace: Trace):
        self._ctx = ctx
        self.trace = trace

    # expose the identity attributes unchanged
    @property
    def tid(self):
        return self._ctx.tid

    @property
    def core(self):
        return self._ctx.core

    @property
    def machine(self):
        return self._ctx.machine

    @property
    def sim(self):
        return self._ctx.sim

    def _span(self, kind: str, gen, detail: Any = None) -> Generator:
        t0 = self._ctx.sim.now
        result = yield from gen
        self.trace.add(self._ctx.tid, kind, t0, self._ctx.sim.now, detail)
        return result

    # -- forwarded operations ------------------------------------------------
    def work(self, cycles: int):
        return self._span("work", self._ctx.work(cycles), cycles)

    def load(self, addr: int):
        return self._span("load", self._ctx.load(addr), addr)

    def store(self, addr: int, value: int):
        return self._span("store", self._ctx.store(addr, value), addr)

    def faa(self, addr: int, delta: int):
        return self._span("faa", self._ctx.faa(addr, delta), addr)

    def swap(self, addr: int, value: int):
        return self._span("swap", self._ctx.swap(addr, value), addr)

    def cas(self, addr: int, expected: int, new: int):
        return self._span("cas", self._ctx.cas(addr, expected, new), addr)

    def fence(self):
        return self._span("fence", self._ctx.fence())

    def prefetch(self, addr: int):
        return self._span("prefetch", self._ctx.prefetch(addr), addr)

    def spin_until(self, addr: int, pred):
        return self._span("spin", self._ctx.spin_until(addr, pred), addr)

    def send(self, dst_tid: int, words, *, timeout=None):
        return self._span("send", self._ctx.send(dst_tid, words, timeout=timeout),
                          dst_tid)

    def receive(self, k: int = 1, *, timeout=None):
        return self._span("receive", self._ctx.receive(k, timeout=timeout), k)

    def is_queue_empty(self):
        return self._span("probe", self._ctx.is_queue_empty())


def render_timeline(trace: Trace, *, start: Optional[int] = None,
                    end: Optional[int] = None, width: int = 100,
                    tids: Optional[Sequence[int]] = None) -> str:
    """ASCII Gantt chart: one row per thread, one column per time bucket.

    Each bucket shows the glyph of the operation occupying most of it
    (idle buckets stay blank).  A legend and per-kind cycle totals
    follow the chart.
    """
    if not trace.spans:
        return "[empty trace]"
    t_lo = min(s.start for s in trace.spans) if start is None else start
    t_hi = max(s.end for s in trace.spans) if end is None else end
    span_t = max(1, t_hi - t_lo)
    bucket = max(1, span_t // width)
    ncols = (span_t + bucket - 1) // bucket
    all_tids = sorted({s.tid for s in trace.spans}) if tids is None else list(tids)

    out = io.StringIO()
    out.write(f"timeline: cycles {t_lo}..{t_hi}, one column = {bucket} cycles\n")
    for tid in all_tids:
        # per-bucket occupancy: kind -> cycles
        occupancy: List[Dict[str, int]] = [dict() for _ in range(ncols)]
        for s in trace.for_thread(tid):
            lo = max(s.start, t_lo)
            hi = min(s.end, t_hi)
            if hi <= lo and s.start >= t_lo and s.start < t_hi:
                lo, hi = s.start, s.start + 1  # zero-length op: 1-cycle dot
            c0 = (lo - t_lo) // bucket
            c1 = min(ncols - 1, (hi - 1 - t_lo) // bucket) if hi > lo else c0
            for c in range(c0, c1 + 1):
                b_lo = t_lo + c * bucket
                b_hi = b_lo + bucket
                overlap = min(hi, b_hi) - max(lo, b_lo)
                if overlap > 0:
                    occ = occupancy[c]
                    occ[s.kind] = occ.get(s.kind, 0) + overlap
        row = []
        for occ in occupancy:
            if not occ:
                row.append(" ")
            else:
                kind = max(occ, key=occ.get)
                row.append(GLYPHS.get(kind, "+"))
        out.write(f"t{tid:<3d}|{''.join(row)}|\n")
    out.write("legend: " + "  ".join(f"{g}={k}" for k, g in GLYPHS.items()) + "\n")
    totals = trace.by_kind()
    if totals:
        top = sorted(totals.items(), key=lambda kv: -kv[1])
        out.write("cycles by kind: " +
                  ", ".join(f"{k}={v}" for k, v in top) + "\n")
    return out.getvalue()
