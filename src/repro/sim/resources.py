"""Coordination primitives built on the two-effect engine.

Everything here is a thin composition of :class:`~repro.sim.engine.Event`
waits, so the engine stays agnostic.  These primitives model *hardware*
arbitration points in the machine model:

* :class:`Resource` -- a FIFO server with limited capacity; used for
  memory-controller atomics, per-cache-line directory transactions and
  (in contended-NoC mode) mesh links.
* :class:`Condition` -- a re-armable broadcast wakeup; used for cache-line
  invalidation notifications that wake spinning cores.
* :class:`Channel` -- an unbounded FIFO of items with blocking ``get``;
  a convenience for tests and simple producer/consumer processes (the
  real hardware message queues live in :mod:`repro.udn` and add capacity
  and word-level accounting).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, List, Optional

from repro.sim.engine import Event, Interrupt, Simulator, WaitTimer

__all__ = ["Resource", "Condition", "Semaphore", "Barrier", "Channel"]


class Resource:
    """A FIFO-ordered server with ``capacity`` concurrent slots.

    Usage from a process::

        yield from res.acquire()
        try:
            yield service_time
        finally:
            res.release()

    Or the common acquire-hold-release pattern in one call::

        yield from res.use(service_time)

    Fairness is strict FIFO: waiters are granted slots in arrival order,
    which models a hardware arbitration queue.
    """

    __slots__ = ("sim", "capacity", "in_use", "_waiters", "total_acquisitions", "total_wait_cycles")

    def __init__(self, sim: Simulator, capacity: int = 1):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.in_use = 0
        self._waiters: Deque[Event] = deque()
        #: total number of successful acquisitions (for utilization stats)
        self.total_acquisitions = 0
        #: total cycles processes spent queued for this resource
        self.total_wait_cycles = 0

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def acquire(self) -> Generator[Any, Any, None]:
        self.total_acquisitions += 1
        if self.in_use < self.capacity and not self._waiters:
            self.in_use += 1
            return
        ev = Event(self.sim)
        self._waiters.append(ev)
        t0 = self.sim.now
        yield ev
        self.total_wait_cycles += self.sim.now - t0
        # the releaser transferred the slot to us; in_use stays balanced

    def acquire_timeout(self, timeout: int) -> Generator[Any, Any, bool]:
        """Acquire with a deadline: True on success, False on timeout.

        On timeout the queued request is withdrawn (later waiters keep
        their FIFO positions) and nothing is held.  The race at the
        deadline cycle is deterministic, with the same rule as UDN
        receive timeouts: a slot granted in the very cycle the timeout
        expires wins, because :class:`~repro.sim.engine.WaitTimer` only
        interrupts a process still genuinely parked after every wakeup
        already queued for that cycle has landed.
        """
        if timeout < 1:
            raise ValueError("timeout must be >= 1 cycle")
        if self.in_use < self.capacity and not self._waiters:
            self.total_acquisitions += 1
            self.in_use += 1
            return True
        ev = Event(self.sim)
        self._waiters.append(ev)
        t0 = self.sim.now
        timer = WaitTimer(self.sim, self.sim.current, self.sim.now + timeout)
        try:
            yield ev
        except Interrupt as exc:
            if exc.cause is timer:
                self.total_wait_cycles += self.sim.now - t0
                self._waiters.remove(ev)
                return False
            raise
        finally:
            timer.disarm()
        self.total_acquisitions += 1
        self.total_wait_cycles += self.sim.now - t0
        return True

    def release(self) -> None:
        if self.in_use <= 0:
            raise RuntimeError("release without matching acquire")
        if self._waiters:
            # Hand the slot directly to the next waiter (in_use unchanged).
            self._waiters.popleft().trigger()
        else:
            self.in_use -= 1

    def use(self, hold_cycles: int) -> Generator[Any, Any, None]:
        """Acquire, hold for ``hold_cycles``, release."""
        yield from self.acquire()
        try:
            if hold_cycles:
                yield hold_cycles
        finally:
            self.release()


class Condition:
    """A re-armable broadcast notification (no stored value, no memory).

    ``wait()`` blocks until the *next* ``notify_all()``.  Unlike
    :class:`~repro.sim.engine.Event`, a condition can be signalled many
    times; each signal wakes exactly the processes waiting at that
    moment.  This models invalidation wakeups for spinning cores.
    """

    __slots__ = ("sim", "label", "_waiters")

    def __init__(self, sim: Simulator, label: Optional[str] = None):
        self.sim = sim
        #: free-form description surfaced by deadlock diagnostics
        self.label = label
        self._waiters: List[Event] = []

    @property
    def num_waiters(self) -> int:
        return len(self._waiters)

    def wait(self) -> Generator[Any, Any, None]:
        ev = Event(self.sim, label=self.label)
        self._waiters.append(ev)
        yield ev

    def notify_all(self) -> None:
        waiters, self._waiters = self._waiters, []
        for ev in waiters:
            ev.trigger()


class Semaphore:
    """A counting semaphore over simulated time.

    ``down()`` blocks while the count is zero; ``up()`` releases one
    waiter (FIFO) or increments the count.  Used by test harnesses and
    examples to coordinate simulated phases; the hardware models use
    the lower-level :class:`Resource`/:class:`Condition` directly.
    """

    __slots__ = ("sim", "count", "_waiters")

    def __init__(self, sim: Simulator, initial: int = 0):
        if initial < 0:
            raise ValueError("initial count must be >= 0")
        self.sim = sim
        self.count = initial
        self._waiters: Deque[Event] = deque()

    def down(self) -> Generator[Any, Any, None]:
        if self.count > 0 and not self._waiters:
            self.count -= 1
            return
        ev = Event(self.sim)
        self._waiters.append(ev)
        yield ev

    def up(self) -> None:
        if self._waiters:
            self._waiters.popleft().trigger()
        else:
            self.count += 1


class Barrier:
    """An N-party reusable barrier.

    The first N-1 arrivals block; the Nth releases everyone and re-arms
    the barrier for the next round.  ``wait()`` returns the arrival
    index within the round (0-based), so one party per round can be
    elected (e.g. to reset shared state between benchmark phases).
    """

    __slots__ = ("sim", "parties", "_arrived", "_event")

    def __init__(self, sim: Simulator, parties: int):
        if parties < 1:
            raise ValueError("parties must be >= 1")
        self.sim = sim
        self.parties = parties
        self._arrived = 0
        self._event = Event(sim)

    def wait(self) -> Generator[Any, Any, int]:
        index = self._arrived
        self._arrived += 1
        if self._arrived == self.parties:
            # release this round and re-arm
            ev, self._event = self._event, Event(self.sim)
            self._arrived = 0
            ev.trigger()
            return index
        ev = self._event
        yield ev
        return index


class Channel:
    """Unbounded FIFO of Python objects with blocking ``get``.

    ``put`` is immediate (zero cycles); ``get`` blocks while empty.
    Multiple blocked getters are served in FIFO order, one item each.
    """

    __slots__ = ("sim", "_items", "_getters")

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().trigger(item)
        else:
            self._items.append(item)

    def get(self) -> Generator[Any, Any, Any]:
        if self._items:
            return self._items.popleft()
        ev = Event(self.sim)
        self._getters.append(ev)
        item = yield ev
        return item
