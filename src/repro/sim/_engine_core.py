"""Engine v3 hot core: batched cycle advancement + table-free dispatch.

This module is the compiled-friendly inner loop behind
:mod:`repro.sim.engine` (which re-exports everything here and adds the
cold helpers -- :class:`WaitTimer`, ``all_of``).  It is written to run
unchanged under CPython and to stay clean under ``mypyc``/PyPy: typed
throughout, no closures over mutable globals, ``__slots__`` everywhere
hot, and module-level constants only.  ``IS_COMPILED`` reports whether
the interpreter imported a compiled extension instead of this source
file; the CI compiled leg asserts that both flavours produce
bit-identical golden fingerprints.

What changed relative to the PR 4 engine (frozen verbatim as
``benchmarks/_pr4_engine.py``; see DESIGN.md §16 for the equivalence
argument):

**Batched cycle advancement.**  Future work is kept in per-cycle
*buckets* (``dict[when] -> list`` in FIFO append order) with a heap of
distinct due cycles, so advancing the clock drains one whole cycle in a
single pass -- one heap pop per *cycle*, not per *event* -- and the
clock jumps idle gaps in O(1).  Sample-hook due points are reconciled
at the jump (the first live entry of a bucket advances the clock and
fires the hook), and timeout/admission deadlines are ordinary bucket
entries so they need no special casing.  The per-entry ``(when, seq)``
tuples and the global sequence counter are gone: bucket position *is*
the FIFO order.

**Entry protocol instead of kind tags.**  Lane and bucket entries are
the schedulable objects themselves -- a :class:`Process`, or one of two
rare wrappers (:class:`_Callback`, :class:`_Throw`).  Every entry
exposes ``_bare`` (live-entry flag), ``_slow``, ``_val`` (payload
slot), ``pinned`` (exploration may not move it) and ``_send``
(deliver).  Dispatch in the run loop is a handful of identity checks on
the yielded effect (interned ``0`` first, then exact ``int``/``Event``
class checks) with attribute loads hoisted per chunk; wrappers deliver
themselves and return the :data:`_HANDLED`/:data:`_STALE` sentinels.

**Staleness via one flag, not per-entry generations.**  A process has
at most one live entry at any time, so "this entry is stale" collapses
to a boolean on the process: parking, finishing, killing and
interrupting clear ``_bare`` and thereby zombie any queued entry.
``_resume_gen`` survives for the two consumers that need *step
counting* rather than liveness -- :class:`_Throw` wrappers (an
interrupt must supersede older interrupts) and ``WaitTimer``'s
parked-re-check protocol, which is why a consume bumps the generation
only when ``_watch`` says a timer is armed (see ``_resume_slow``).

The public semantics -- FIFO same-cycle order, resume-generation fault
model, crash shields, suspension, deadlock detection, the sample hook's
idle-gap collapse, ``max_events`` accounting -- are unchanged; golden
fingerprints (tests/test_parallel.py, tests/test_engine_v3.py) pin this
bit-for-bit against the frozen PR 4 engine.
"""

from __future__ import annotations

import heapq
import operator
from typing import (Any, Callable, ClassVar, Dict, Generator, List,
                    Optional, Set)

__all__ = [
    "DeadlockError",
    "Event",
    "Interrupt",
    "IS_COMPILED",
    "Process",
    "Simulator",
]

#: True when this module was imported as a compiled extension (mypyc
#: build); False under plain CPython / PyPy source import.  The CI
#: compiled leg asserts fingerprint equality across both values.
IS_COMPILED: bool = not __file__.endswith(".py")

#: sentinel for "no horizon"
_NEVER = float("inf")

#: sentinel event cap for "unlimited" (int, so the per-event compare in
#: the run loop stays int-vs-int)
_NO_CAP: int = 1 << 63

#: wrapper-entry return sentinels: the wrapper delivered itself
#: (counted), or found itself stale (dropped, uncounted)
_HANDLED: object = object()
_STALE: object = object()


class Interrupt(Exception):
    """Raised inside a process that is interrupted via :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class DeadlockError(RuntimeError):
    """The pending-event set drained while live processes were still blocked.

    ``blocked`` holds the deadlocked :class:`Process` objects (daemon
    processes -- e.g. server loops that legitimately idle forever -- are
    excluded).  The message names every blocked process and the event or
    condition it waits on, which turns a silent hang into a diagnosis.
    """

    def __init__(self, message: str, blocked: List["Process"]):
        super().__init__(message)
        self.blocked = blocked


class Event:
    """A one-shot condition that processes can wait on.

    An event starts un-triggered.  Any number of processes may wait on it
    (by yielding it); when :meth:`trigger` is called, all waiters are
    resumed at the current simulation time and receive ``value``.
    Processes that yield an already-triggered event resume immediately
    (zero-cycle delay) with the stored value.  ``label`` is a free-form
    description used by deadlock diagnostics.
    """

    __slots__ = ("sim", "triggered", "value", "label", "_waiters")

    def __init__(self, sim: "Simulator", label: Optional[str] = None):
        self.sim = sim
        self.triggered = False
        self.value: Any = None
        self.label = label
        self._waiters: List[Process] = []

    def trigger(self, value: Any = None) -> None:
        """Fire the event, waking every waiter at the current cycle."""
        if self.triggered:
            raise RuntimeError("Event triggered twice")
        self.triggered = True
        self.value = value
        waiters = self._waiters
        n = len(waiters)
        if n == 1:
            # single-waiter fast path: no list swap, one direct resume
            proc = waiters[0]
            waiters.clear()
            proc._waiting_on = None
            if proc._throw_pending:
                return  # a queued interrupt supersedes this wakeup
            proc._val = value
            proc._bare = True
            self.sim._fast.append(proc)
        elif n:
            self._waiters = []
            fappend = self.sim._fast.append
            for proc in waiters:
                proc._waiting_on = None
                if proc._throw_pending:
                    continue  # a queued interrupt supersedes this wakeup
                proc._val = value
                proc._bare = True
                fappend(proc)

    def describe(self) -> str:
        return self.label or "anonymous event"

    # -- engine internal -------------------------------------------------
    def _add_waiter(self, proc: "Process") -> None:
        if self.triggered:
            self.sim._schedule_resume(proc, self.value)
        else:
            self._waiters.append(proc)

    def _discard_waiter(self, proc: "Process") -> None:
        try:
            self._waiters.remove(proc)
        except ValueError:
            pass


class Process:
    """A running generator inside the simulator.

    Created via :meth:`Simulator.spawn`.  The generator's ``return``
    value (carried by ``StopIteration``) becomes :attr:`result` and is
    delivered to anything waiting on :meth:`join`.  An uncaught exception
    in a process aborts the whole simulation run -- silent failures would
    otherwise corrupt benchmark results.

    A process doubles as its own scheduler entry (see the module
    docstring): ``_bare`` is the live-entry flag, ``_val`` the payload
    slot for the pending wakeup, ``_send`` the bound resume callable.
    """

    #: exploration seam: lane entries with ``pinned`` set keep their
    #: relative order under ``policy.reorder_lane`` (only plain
    #: callbacks -- model-internal machinery -- are pinned)
    pinned: ClassVar[bool] = False

    __slots__ = (
        "sim",
        "gen",
        "_send",
        "name",
        "alive",
        "daemon",
        "killed",
        "result",
        "_done_event",
        "_waiting_on",
        "_resume_gen",
        "_shield",
        "_pending_kill",
        "_suspended_until",
        "_slow",
        "_bare",
        "_val",
        "_watch",
        "_throw_pending",
    )

    def __init__(self, sim: "Simulator", gen: Generator, name: str = "?",
                 daemon: bool = False):
        self.sim = sim
        self.gen = gen
        self._send: Callable[[Any], Any] = gen.send  # bound once per process
        self.name = name
        self.alive = True
        #: daemon processes (server loops etc.) may legitimately remain
        #: blocked forever; they are exempt from deadlock detection
        self.daemon = daemon
        #: set when the process was removed via :meth:`kill` (crash model)
        self.killed = False
        self.result: Any = None
        #: lazily created on first :meth:`join` (most processes are
        #: never joined; finish/kill only trigger it when it exists)
        self._done_event: Optional[Event] = None
        self._waiting_on: Optional[Event] = None
        #: resume *step counter*: bumped on every delivery that a
        #: watcher could care about (interrupt, kill, finish, throw
        #: delivery, and -- while ``_watch`` is non-zero -- ordinary
        #: consumes).  Liveness of queued entries is ``_bare``, not this.
        self._resume_gen = 0
        #: depth of crash-shielded (atomic-commit) regions
        self._shield = 0
        self._pending_kill: Any = None
        self._suspended_until = 0
        #: one-flag summary of "needs the slow resume path" (suspended,
        #: kill pending, or a WaitTimer watches this process)
        self._slow = False
        #: live-entry flag: True while a wakeup for this process sits in
        #: the lane or a bucket (or is being delivered right now);
        #: cleared when parking, finishing, being killed or interrupted,
        #: which zombies any queued entry
        self._bare = False
        #: payload slot for the pending wakeup (event value); read and
        #: reset by the run loop at delivery
        self._val: Any = None
        #: count of armed WaitTimers watching this process; while
        #: non-zero, consumes route through the slow path and bump
        #: ``_resume_gen`` so the timer can tell "stepped" from "parked"
        self._watch = 0
        #: count of queued :class:`_Throw` entries.  While non-zero, a
        #: wakeup produced by ``Event.trigger`` must lose to the throw
        #: (the per-entry-generation engine staled it at throw consume);
        #: with liveness collapsed onto one flag, the race is resolved at
        #: trigger time instead.  Only a process that interrupts itself
        #: and re-parks in the same step can ever see this non-zero.
        self._throw_pending = 0

    def join(self) -> Generator[Any, Any, Any]:
        """``yield from proc.join()`` waits for termination, returns its result."""
        if self.alive:
            ev = self._done_event
            if ev is None:
                ev = self._done_event = Event(self.sim)
            yield ev
        return self.result

    def blocked_event(self) -> Optional[Event]:
        """The event this process is genuinely parked on, else ``None``.

        ``None`` also when a wakeup is already scheduled (the awaited
        event has triggered but the process has not stepped yet) -- used
        by ``WaitTimer`` so a timeout racing a same-cycle arrival
        deterministically loses to the arrival.
        """
        ev = self._waiting_on
        if ev is not None and self in ev._waiters:
            return ev
        return None

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current cycle.

        Safe in every blocked state: waiting on an event, sleeping on an
        ``int`` delay, or already scheduled to resume.  Any previously
        scheduled wakeup is invalidated (``_bare`` cleared), so the
        process is stepped exactly once -- with the interrupt.
        """
        if not self.alive:
            return
        ev = self._waiting_on
        if ev is not None:
            ev._discard_waiter(self)
            self._waiting_on = None
        if self._bare:
            self._bare = False  # zombie any queued wakeup
            self._val = None
        self._resume_gen += 1  # supersede older throws / timer checks
        self._throw_pending += 1
        sim = self.sim
        obs = sim.obs
        if obs is not None:
            obs.emit("proc.interrupt", name=self.name)
        sim._fast.append(_Throw(sim, self, Interrupt(cause), self._resume_gen))

    def kill(self, cause: Any = None) -> None:
        """Fail-stop crash: the process stops executing, immediately.

        Unlike :meth:`interrupt`, no exception is delivered and no
        ``finally`` blocks run -- a crashed hardware thread executes
        nothing.  Anything blocked on :meth:`join` is released with a
        ``None`` result and :attr:`killed` is set.  Inside a shielded
        region (:meth:`shield_begin`) the crash is deferred to the end of
        the region, modelling an atomic commit.
        """
        if not self.alive:
            return
        if self._shield > 0:
            self._pending_kill = cause if cause is not None else True
            self._slow = True  # land the deferred crash at the next resume
            return
        self._do_kill(cause)

    # -- crash shields ---------------------------------------------------
    def shield_begin(self) -> None:
        """Enter a region in which :meth:`kill` is deferred (atomic commit)."""
        self._shield += 1

    def shield_end(self) -> None:
        """Leave a shielded region; a deferred kill lands at the next resume."""
        if self._shield <= 0:
            raise RuntimeError("shield_end without matching shield_begin")
        self._shield -= 1

    def suspend_until(self, when: int) -> None:
        """Defer any resumption of this process until cycle ``when``.

        Models preemption / a descheduled hardware context: pending
        wakeups (message arrivals, sleep expiries) are delivered only
        once the process is scheduled again.  Safe in every state.
        """
        if when > self._suspended_until:
            self._suspended_until = when
            self._slow = True  # route wakeups through the slow resume path

    # -- engine internal -------------------------------------------------
    def _do_kill(self, cause: Any) -> None:
        ev = self._waiting_on
        if ev is not None:
            ev._discard_waiter(self)
            self._waiting_on = None
        self._resume_gen += 1  # supersede queued throws / timer checks
        self._bare = False  # zombie any queued wakeup
        self._val = None
        self.alive = False
        self.killed = True
        self._pending_kill = None
        self.result = None
        # Keep the generator referenced so CPython never runs its
        # ``finally`` blocks at GC time mid-simulation: a crashed thread
        # must execute nothing, not even cleanup.
        sim = self.sim
        sim._corpses.append(self.gen)
        sim._forget(self)
        obs = sim.obs
        if obs is not None:
            obs.emit("proc.kill", name=self.name)
        done = self._done_event
        if done is not None:
            done.trigger(None)

    def _finish(self, result: Any) -> None:
        self._resume_gen += 1  # supersede queued throws / timer checks
        self._bare = False     # zombie any queued wakeup
        self._val = None
        self.alive = False
        self.result = result
        sim = self.sim
        sim._forget(self)
        obs = sim.obs
        if obs is not None:
            obs.emit("proc.exit", name=self.name)
        done = self._done_event
        if done is not None:
            done.trigger(result)

    def describe_wait(self) -> str:
        """Human-readable description of what this process waits on."""
        ev = self.blocked_event()
        if ev is not None:
            return ev.describe()
        if self._waiting_on is not None:
            return f"{self._waiting_on.describe()} (wakeup pending)"
        if self._suspended_until > self.sim.now:
            return f"suspended until cycle {self._suspended_until}"
        return "no pending wakeup"


class _Callback:
    """Scheduler entry for a plain callback (``call_at``/``call_after``).

    Model-internal machinery (store-buffer drains, link releases, timer
    watchdogs): always live, always counted, pinned in place under
    schedule exploration -- exactly the old ``_CALLBACK`` kind.
    """

    pinned: ClassVar[bool] = True
    _bare: ClassVar[bool] = True
    _slow: ClassVar[bool] = False
    _val: ClassVar[None] = None

    __slots__ = ("sim", "fn")

    def __init__(self, sim: "Simulator", fn: Callable[[], None]):
        self.sim = sim
        self.fn = fn

    def _send(self, _val: Any) -> Any:
        # callbacks run between process steps: no current process
        self.sim._current = None
        self.fn()
        return _HANDLED


class _Throw:
    """Scheduler entry delivering an exception into a process.

    Carries the target's ``_resume_gen`` at scheduling time: a newer
    interrupt/kill/finish supersedes this one, making it report itself
    :data:`_STALE` (dropped uncounted) instead of delivering.
    """

    pinned: ClassVar[bool] = False
    _bare: ClassVar[bool] = True
    _slow: ClassVar[bool] = False
    _val: ClassVar[None] = None

    __slots__ = ("sim", "proc", "exc", "gen")

    def __init__(self, sim: "Simulator", proc: Process, exc: BaseException,
                 gen: int):
        self.sim = sim
        self.proc = proc
        self.exc = exc
        self.gen = gen

    def _send(self, _val: Any) -> Any:
        proc = self.proc
        if self.gen != proc._resume_gen:
            proc._throw_pending -= 1
            return _STALE  # superseded: drop, uncounted
        sim = self.sim
        if proc._suspended_until > sim.now:
            # preempted: deliver once the context is rescheduled
            # (still pending: triggers keep losing to it meanwhile)
            sim._bucket_push(proc._suspended_until, self)
            return _HANDLED
        proc._throw_pending -= 1
        if proc._pending_kill is not None and proc._shield == 0:
            proc._do_kill(proc._pending_kill)  # deferred crash lands
            return _HANDLED
        proc._resume_gen += 1  # consume: older throws become stale
        proc._waiting_on = None
        proc._bare = True  # schedulable again unless the body invalidates
        sim._current = proc
        try:
            effect = proc.gen.throw(self.exc)
        except StopIteration as stop:
            proc._finish(stop.value)
            return _HANDLED
        sim._dispatch(proc, effect)
        return _HANDLED


class Simulator:
    """The event loop.

    Typical use::

        sim = Simulator()
        proc = sim.spawn(my_generator())
        sim.run()
        print(sim.now, proc.result)
    """

    __slots__ = ("now", "obs", "policy", "_heap", "_buckets", "_fast",
                 "_nevents", "max_events", "detect_deadlock", "_processes",
                 "_corpses", "_current", "_sample_due", "_sample_every",
                 "_sample_fn")

    def __init__(self, max_events: Optional[int] = None):
        self.now: int = 0
        #: observability event bus (:mod:`repro.obs`); ``None`` = off.
        #: Publishers guard every emit with ``if sim.obs is not None``,
        #: so a run without observability pays only that comparison.
        self.obs: Any = None
        #: schedule-exploration policy (:mod:`repro.explore`); ``None`` =
        #: off.  When set, same-cycle lane chunks are offered to
        #: ``policy.reorder_lane`` and higher layers consult
        #: ``policy.udn_delay`` / ``policy.preempt`` at their own seams.
        #: Must be installed before :meth:`run` (it is read once per call).
        self.policy: Any = None
        #: distinct future due cycles (ints); each has a bucket
        self._heap: List[int] = []
        #: per-cycle FIFO buckets of scheduler entries (future work)
        self._buckets: Dict[int, List[Any]] = {}
        #: same-cycle fast lane: entries due at cycle ``now``, in FIFO
        #: order (consumed in grabbed chunks inside :meth:`run`)
        self._fast: List[Any] = []
        self._nevents: int = 0
        #: hard safety cap on processed events (None = unlimited)
        self.max_events = max_events
        #: raise :class:`DeadlockError` when the pending set drains with
        #: live non-daemon processes still blocked (set False to restore
        #: the old silent-return behaviour)
        self.detect_deadlock = True
        self._processes: Set[Process] = set()
        self._corpses: List[Generator] = []
        self._current: Optional[Process] = None
        #: continuous-telemetry sample hook (:mod:`repro.obs.timeseries`).
        #: ``_sample_due`` is an int sentinel compared against the clock
        #: wherever it advances; with no hook installed it is ``_NO_CAP``
        #: and the whole feature costs one integer compare per advance.
        self._sample_due: int = _NO_CAP
        self._sample_every: int = 0
        self._sample_fn: Optional[Callable[[int], None]] = None

    # -- public API ------------------------------------------------------
    @property
    def events_processed(self) -> int:
        return self._nevents

    @property
    def current(self) -> Optional[Process]:
        """The process being stepped right now (None outside a step)."""
        return self._current

    def live_processes(self) -> List["Process"]:
        """All processes that have not yet finished (diagnostics)."""
        return sorted(self._processes, key=lambda p: p.name)

    def spawn(self, gen: Generator, name: str = "?", daemon: bool = False) -> Process:
        """Register ``gen`` as a process; it starts at the current cycle.

        ``daemon`` marks processes (server loops, fault controllers) that
        may legitimately stay blocked forever: they are exempt from
        deadlock detection.
        """
        proc = Process(self, gen, name, daemon=daemon)
        self._processes.add(proc)
        if self.obs is not None:
            self.obs.emit("proc.spawn", name=name)
        proc._bare = True
        self._fast.append(proc)
        return proc

    def event(self, label: Optional[str] = None) -> Event:
        """Create a fresh (un-triggered) event bound to this simulator."""
        return Event(self, label)

    def call_at(self, when: int, fn: Callable[[], None]) -> None:
        """Run plain callback ``fn`` at absolute cycle ``when`` (>= now)."""
        now = self.now
        if when < now:
            raise ValueError(f"cannot schedule in the past ({when} < {now})")
        cb = _Callback(self, fn)
        if when == now:
            self._fast.append(cb)
        else:
            self._bucket_push(when, cb)

    def call_after(self, delay: int, fn: Callable[[], None]) -> None:
        """Run plain callback ``fn`` after ``delay`` cycles."""
        self.call_at(self.now + delay, fn)

    def set_sample_hook(self, every: int, fn: Callable[[int], None]) -> None:
        """Call ``fn(cycle)`` whenever the clock crosses an ``every``-cycle
        boundary (continuous telemetry; see :mod:`repro.obs.timeseries`).

        The hook runs *between* events -- after everything before the
        boundary has executed, before anything at or past it does -- so
        it may only observe: it must not touch simulated state or
        schedule events.  Idle gaps fire the hook once (at the first
        clock advance past the boundary), not once per skipped period.
        """
        if every < 1:
            raise ValueError(f"sample interval must be >= 1 cycle, got {every}")
        self._sample_every = every
        self._sample_fn = fn
        self._sample_due = self.now - (self.now % every) + every

    def clear_sample_hook(self) -> None:
        """Remove the sample hook (restores the off-cost: one compare)."""
        self._sample_every = 0
        self._sample_fn = None
        self._sample_due = _NO_CAP

    def _sample_tick(self, now: int) -> None:
        # out of line from run(): only entered when a sample is due
        self._current = None  # the hook runs between events
        fn = self._sample_fn
        if fn is None:  # pragma: no cover - defensive (sentinel says due)
            self._sample_due = _NO_CAP
            return
        fn(now)
        every = self._sample_every
        due = self._sample_due + every
        if due <= now:
            # the clock jumped an idle gap: collapse it to this one sample
            due = now - (now % every) + every
        self._sample_due = due

    def run(self, until: Optional[int] = None) -> None:
        """Process events until none are pending or ``now`` passes ``until``.

        With ``until`` given, the clock is left exactly at ``until`` when
        the horizon is hit (events at later cycles stay queued and can be
        processed by a subsequent :meth:`run` call).

        Raises :class:`DeadlockError` if the pending-event set drains
        while live non-daemon processes remain blocked (see
        ``detect_deadlock``).
        """
        heap = self._heap
        buckets = self._buckets
        fast = self._fast
        fappend = fast.append
        pop = heapq.heappop
        push = heapq.heappush
        INT = int
        EVENT = Event
        PROCESS = Process
        THROW = _Throw
        HANDLED = _HANDLED
        STALE = _STALE
        ZERO = 0
        max_events = self.max_events if self.max_events is not None else _NO_CAP
        policy = self.policy  # read once per run() call (None = off)
        horizon = until if until is not None else _NEVER
        if horizon < self.now:
            # pathological but defined: a horizon in the past processes
            # nothing and (with work pending) parks the clock at it
            if fast or heap:
                self.now = until
                return
        # The lane is consumed in *chunks*: grab the current list, hand
        # the simulator a fresh one, and sweep the grabbed chunk while
        # entries scheduled during the sweep accumulate in the new list.
        # FIFO is preserved (everything in the chunk was scheduled before
        # anything appended while sweeping it).  A bucket drain is the
        # same sweep over the popped per-cycle list, with the clock
        # advanced lazily at its first *live* entry so that a bucket of
        # zombies moves neither the clock nor the sample hook -- exactly
        # the old per-entry heap behaviour, minus the per-entry pops.
        #
        # Accounting: chunks are pre-counted in bulk (``pre``/``nevents``)
        # and zombies/stale throws refunded via ``dropped``; when a chunk
        # would cross ``max_events`` the *careful* twin loops count
        # per-event so the cap lands on exactly the same event as the
        # per-entry engine.  ``nevents`` shadows ``self._nevents``.
        chunk = iter(())
        nevents = self._nevents
        now = self.now
        dropped = 0
        pre = 0
        try:
            while True:
                if fast:
                    # ---- lane sweep: the hot path ------------------------
                    grabbed = fast
                    self._fast = fast = []
                    fappend = fast.append
                    if policy is not None and len(grabbed) > 1:
                        # exploration seam: the policy may permute the
                        # same-cycle tie-break order (all entries are due
                        # at ``now``; zombies still drop via ``_bare``)
                        grabbed = policy.reorder_lane(grabbed, now)
                    n = len(grabbed)
                    chunk = iter(grabbed)
                    if nevents + n > max_events:
                        # -- careful twin: per-event count, exact cap ------
                        for e in chunk:
                            if e.__class__ is THROW:
                                if e.gen != e.proc._resume_gen:
                                    continue  # stale: drop, uncounted
                            elif not e._bare:
                                continue  # zombie: drop, uncounted
                            nevents += 1
                            if nevents > max_events:
                                raise RuntimeError(
                                    "simulation exceeded "
                                    f"{self.max_events} events")
                            if e._slow:
                                if self._resume_slow(e):
                                    continue
                            val = e._val
                            if val is not None:
                                e._val = None
                            self._current = e
                            try:
                                effect = e._send(val)
                            except StopIteration as stop:
                                if e.__class__ is PROCESS:
                                    e._finish(stop.value)
                                    continue
                                raise
                            if effect is HANDLED:
                                continue
                            if effect is STALE:
                                nevents -= 1
                                continue
                            self._dispatch(e, effect)
                        self._current = None
                        continue
                    pre = n
                    nevents += n
                    for e in chunk:
                        if not e._bare:
                            dropped += 1
                            continue  # zombie wakeup: drop
                        if e._slow:
                            # suspended, kill pending or watched: out of line
                            if self._resume_slow(e):
                                continue
                        val = e._val
                        if val is not None:
                            e._val = None
                        self._current = e
                        try:
                            effect = e._send(val)
                        except StopIteration as stop:
                            if e.__class__ is PROCESS:
                                e._finish(stop.value)
                                continue
                            raise
                        # Dispatch on the yielded effect; ``_bare`` still
                        # set means the body did not invalidate itself
                        # (self-interrupt/kill), so reschedule.
                        if effect is ZERO:
                            if e._bare:
                                fappend(e)
                            continue
                        cls = effect.__class__
                        if cls is INT:
                            if effect:
                                if e._bare:
                                    when2 = now + effect
                                    b = buckets.get(when2)
                                    if b is None:
                                        buckets[when2] = [e]
                                        push(heap, when2)
                                    else:
                                        b.append(e)
                            elif e._bare:
                                fappend(e)
                        elif cls is EVENT:
                            if effect.triggered:
                                if e._bare:
                                    e._val = effect.value
                                    fappend(e)
                            else:
                                e._bare = False  # park: entry goes dead
                                e._waiting_on = effect
                                effect._waiters.append(e)
                        elif effect is HANDLED:
                            pass
                        elif effect is STALE:
                            dropped += 1
                        else:
                            self._dispatch(e, effect)
                    self._current = None
                    if dropped:
                        nevents -= dropped
                        dropped = 0
                    pre = 0
                    continue
                if not heap:
                    break
                when = heap[0]
                if when > horizon:
                    self.now = until
                    if until >= self._sample_due:
                        self._sample_tick(until)
                    return
                # ---- bucket drain: advance the clock one whole cycle ----
                pop(heap)
                batch = buckets.pop(when)
                n = len(batch)
                chunk = iter(batch)
                if nevents + n > max_events:
                    # -- careful twin: per-event count, exact cap ----------
                    for e in chunk:
                        if e.__class__ is THROW:
                            if e.gen != e.proc._resume_gen:
                                continue  # stale: no clock advance
                        elif not e._bare:
                            continue  # zombie: no clock advance
                        if now != when:
                            self.now = now = when
                            if when >= self._sample_due:
                                self._sample_tick(when)
                        nevents += 1
                        if nevents > max_events:
                            raise RuntimeError(
                                "simulation exceeded "
                                f"{self.max_events} events")
                        if e._slow:
                            if self._resume_slow(e):
                                continue
                        val = e._val
                        if val is not None:
                            e._val = None
                        self._current = e
                        try:
                            effect = e._send(val)
                        except StopIteration as stop:
                            if e.__class__ is PROCESS:
                                e._finish(stop.value)
                                continue
                            raise
                        if effect is HANDLED:
                            continue
                        if effect is STALE:
                            nevents -= 1
                            continue
                        self._dispatch(e, effect)
                    self._current = None
                    continue
                pre = n
                nevents += n
                for e in chunk:
                    if now != when:
                        # clock not yet at this cycle: only a live entry
                        # advances it (and fires a due sample) -- zombies
                        # and stale throws leave both untouched
                        cls_e = e.__class__
                        if cls_e is PROCESS:
                            if not e._bare:
                                dropped += 1
                                continue
                        elif cls_e is THROW:
                            if e.gen != e.proc._resume_gen:
                                dropped += 1
                                continue
                        self.now = now = when
                        if when >= self._sample_due:
                            self._sample_tick(when)
                    elif not e._bare:
                        dropped += 1
                        continue  # zombie wakeup: drop
                    if e._slow:
                        if self._resume_slow(e):
                            continue
                    val = e._val
                    if val is not None:
                        e._val = None
                    self._current = e
                    try:
                        effect = e._send(val)
                    except StopIteration as stop:
                        if e.__class__ is PROCESS:
                            e._finish(stop.value)
                            continue
                        raise
                    if effect is ZERO:
                        if e._bare:
                            fappend(e)
                        continue
                    cls = effect.__class__
                    if cls is INT:
                        if effect:
                            if e._bare:
                                when2 = now + effect
                                b = buckets.get(when2)
                                if b is None:
                                    buckets[when2] = [e]
                                    push(heap, when2)
                                else:
                                    b.append(e)
                        elif e._bare:
                            fappend(e)
                    elif cls is EVENT:
                        if effect.triggered:
                            if e._bare:
                                e._val = effect.value
                                fappend(e)
                        else:
                            e._bare = False  # park: entry goes dead
                            e._waiting_on = effect
                            effect._waiters.append(e)
                    elif effect is HANDLED:
                        pass
                    elif effect is STALE:
                        dropped += 1
                    else:
                        self._dispatch(e, effect)
                self._current = None
                if dropped:
                    nevents -= dropped
                    dropped = 0
                pre = 0
        finally:
            # keep state consistent when an exception propagates out of a
            # process body mid-chunk (max_events, user errors): unconsumed
            # chunk entries were scheduled before everything in the
            # current lane list, so they go back in front of it.  (For a
            # bucket chunk the clock has already advanced to its cycle --
            # nothing that raises can precede the advance -- so the lane
            # is where its remainder belongs.)  Pre-counted but not yet
            # delivered events are refunded.
            self._current = None
            rest = list(chunk)
            self._nevents = nevents - dropped - (len(rest) if pre else 0)
            if rest:
                self._fast[:0] = rest
        if until is not None and self.now < until:
            self.now = until
        if self.now >= self._sample_due:
            self._sample_tick(self.now)
        if self.detect_deadlock:
            blocked = [p for p in self._processes if p.alive and not p.daemon]
            if blocked:
                blocked.sort(key=lambda p: p.name)
                lines = "\n".join(
                    f"  - process {p.name!r} blocked on {p.describe_wait()}"
                    for p in blocked
                )
                raise DeadlockError(
                    f"deadlock at cycle {self.now}: no events are pending but "
                    f"{len(blocked)} live process(es) are still blocked:\n{lines}",
                    blocked,
                )

    # -- internals ---------------------------------------------------------
    def _forget(self, proc: Process) -> None:
        self._processes.discard(proc)

    def _bucket_push(self, when: int, e: Any) -> None:
        """Queue entry ``e`` for future cycle ``when`` (> now)."""
        b = self._buckets.get(when)
        if b is None:
            self._buckets[when] = [e]
            heapq.heappush(self._heap, when)
        else:
            b.append(e)

    def _schedule_resume(self, proc: Process, value: Any, delay: int = 0) -> None:
        """Schedule a wakeup delivering ``value`` to ``proc`` after ``delay``."""
        if proc._throw_pending:
            return  # a queued interrupt supersedes this wakeup
        proc._val = value
        proc._bare = True
        if delay:
            self._bucket_push(self.now + delay, proc)
        else:
            self._fast.append(proc)

    def _resume_slow(self, proc: Process) -> bool:
        """Out-of-line half of the lane fast path (``proc._slow`` set):
        handle a suspended, kill-pending or timer-watched process.
        Returns True when the wakeup was consumed (re-queued or the
        process crashed), False when the process should resume normally.
        """
        if proc._suspended_until > self.now:
            # preempted: deliver this wakeup once the context reschedules
            # (the entry keeps its flag and payload)
            self._bucket_push(proc._suspended_until, proc)
            return True
        pk = proc._pending_kill
        if pk is not None:
            if proc._shield == 0:
                proc._do_kill(pk)  # deferred crash lands
                return True
            # shielded: execute; the crash lands after commit (_slow stays)
        elif not proc._watch:
            proc._slow = False  # suspension expired and nothing pending
        if proc._watch:
            # an armed WaitTimer distinguishes "stepped since I looked"
            # from "still parked" by this counter
            proc._resume_gen += 1
        return False

    def _dispatch(self, proc: Process, effect: Any) -> None:
        """Cold twin of the inline effect dispatch (throw deliveries,
        non-plain-int effects): reschedule ``proc`` per ``effect``."""
        cls = effect.__class__
        if cls is int:
            delay = effect
        elif isinstance(effect, Event):
            if effect.triggered:
                if proc._bare:
                    proc._val = effect.value
                    self._fast.append(proc)
            else:
                proc._bare = False  # park: entry goes dead
                proc._waiting_on = effect
                effect._waiters.append(proc)
            return
        else:
            delay = _coerce_delay(proc, effect)
        if proc._bare:
            if delay:
                self._bucket_push(self.now + delay, proc)
            else:
                self._fast.append(proc)


def _coerce_delay(proc: Process, effect: Any) -> int:
    """Coerce a non-plain-``int`` yielded effect to a delay, or raise.

    ``bool`` (``True`` is a 1-cycle sleep) and numpy integer scalars are
    accepted through ``__index__``, which rejects floats and arbitrary
    objects -- the explicit form of the old ``isinstance(effect, int)``
    fallback, which silently missed numpy scalars entirely.
    """
    try:
        return operator.index(effect)
    except TypeError:
        raise TypeError(
            f"process {proc.name!r} yielded unsupported effect {effect!r}; "
            "yield an int (delay) or an Event"
        ) from None
