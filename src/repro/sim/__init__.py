"""Discrete-event simulation engine.

This package provides the foundation everything else in :mod:`repro` is
built on: a deterministic event-driven simulator with generator-based
processes (:mod:`repro.sim.engine`) and the classic coordination
primitives built on top of it (:mod:`repro.sim.resources`).

The design follows the SimPy style -- simulated activities are Python
generators that ``yield`` *effects* -- but is implemented from scratch and
kept deliberately tiny so the hot path (the trampoline in
:class:`~repro.sim.engine.Simulator`) stays cheap: the only primitive
effects are an ``int`` (advance simulated time) and an
:class:`~repro.sim.engine.Event` (block until triggered).  Everything else
(resources, channels, memory operations, message queues) is composed from
those two via ``yield from``.
"""

from repro.sim.engine import (
    DeadlockError,
    Event,
    Interrupt,
    Process,
    Simulator,
    WaitTimer,
)
from repro.sim.resources import Barrier, Channel, Condition, Resource, Semaphore
from repro.sim.tracing import Trace, TracedCtx, render_timeline

__all__ = [
    "Barrier",
    "Channel",
    "Condition",
    "DeadlockError",
    "Event",
    "Interrupt",
    "Process",
    "Resource",
    "Semaphore",
    "Simulator",
    "WaitTimer",
    "Trace",
    "TracedCtx",
    "render_timeline",
]
