"""Directory-based coherence protocol with cycle-cost and stall accounting.

Model (Section 2 of the paper, after Sorin et al.):

* every core has a private write-back cache; lines are ``line_words``
  words;
* a directory maintains the single-writer / multiple-reader (SWMR)
  invariant: per line, either one core holds it Modified or any number
  hold it Shared;
* an access that needs a directory transaction over the mesh is a
  *Remote Memory Reference* (RMR): the issuing core stalls for the
  transfer and the per-core ``rmr`` counter increments.

Two deliberate simplifications, both documented in DESIGN.md:

* **Values are always stored in the global backing store** at the moment
  an operation completes; cache state drives *timing only*.  Because all
  conflicting transactions serialize on a per-line FIFO resource and the
  engine is deterministic, executions are sequentially consistent --
  matching the paper's system model.
* **No capacity evictions.**  Synchronization structures are a few lines
  per thread; they never approach the 32 KB+ private caches of the
  TILE-Gx.

Spinning uses :meth:`CoherentMemory.spin_until`: semantically a local
spin loop (first read installs the line Shared; polling is then free
until a writer invalidates, which wakes the spinner and charges it the
re-fetch RMR) implemented in O(1) events per invalidation instead of one
event per poll iteration.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from repro.machine.config import MachineConfig
from repro.machine.core import Core
from repro.mem.memory import Allocator, BackingStore, WORD_MASK
from repro.mem.sharers import ENTRY_BASE_BYTES, MeshGeometry, SparseSharerSet
from repro.noc.topology import Mesh
from repro.sim.engine import Event, Simulator
from repro.sim.resources import Condition, Resource

__all__ = ["CoherentMemory", "LineState"]


class LineState:
    """Symbolic cache-line states (E is folded into M; I is absence)."""

    M = "M"
    S = "S"


class _Line:
    """Directory entry for one cache line.

    Entries are lazy in two ways: the entry itself materializes on
    first touch and is reclaimed when an invalidation leaves it clean
    and idle (see :meth:`CoherentMemory.invalidate_all`), and the
    spinner-wakeup :class:`Condition` is only built when a core
    actually waits on the line -- most lines never host a spinner.
    """

    __slots__ = ("owner", "sharers", "res", "line_no", "_cond")

    def __init__(self, sim: Simulator, line_no: int, geo: MeshGeometry):
        self.owner: Optional[int] = None          # core id holding M
        self.sharers = SparseSharerSet(geo)       # core ids holding S
        self.res = Resource(sim, capacity=1)      # serializes transactions
        self.line_no = line_no
        self._cond: Optional[Condition] = None

    def wait_cond(self, sim: Simulator) -> Condition:
        """The invalidation-wakeup condition (built on first wait)."""
        cond = self._cond
        if cond is None:
            # labelled for deadlock diagnostics
            cond = self._cond = Condition(
                sim, label=f"invalidation of cache line {self.line_no}")
        return cond

    def notify(self) -> None:
        """Wake any spinners; a no-op when no core ever waited here."""
        cond = self._cond
        if cond is not None:
            cond.notify_all()

    @property
    def idle(self) -> bool:
        """No transaction holds or awaits this entry (reclamation guard)."""
        return (self.res.in_use == 0 and self.res.queue_length == 0
                and (self._cond is None or self._cond.num_waiters == 0))


class CoherentMemory:
    """The coherent shared-memory fabric of the simulated chip."""

    def __init__(self, sim: Simulator, cfg: MachineConfig, mesh: Mesh, cores: List[Core]):
        self.sim = sim
        self.cfg = cfg
        self.mesh = mesh
        self.cores = cores
        self.store_backing = BackingStore()
        self.allocator = Allocator(line_words=cfg.line_words)
        self._lines: Dict[int, _Line] = {}
        # shared coordinate geometry for every line's sparse sharer set
        self._geo = MeshGeometry(mesh.width, [c.node for c in cores],
                                 mesh.num_nodes)
        #: high-water mark of live directory entries (footprint metric)
        self.peak_entries = 0
        # atomics executor is attached by the Machine (controller or cache mode)
        self.atomics = None
        #: number of mesh nodes, for line homing
        self._num_nodes = mesh.num_nodes
        # in-flight software prefetches: (core id, line) -> completion Event
        self._prefetches: Dict[Tuple[int, int], Event] = {}
        # one-entry store buffers: core id -> draining line / completion Event
        self._sb_line: Dict[int, int] = {}
        self._sb_event: Dict[int, Event] = {}
        # private-memory ownership (message-passing-only profiles):
        # line -> the single core allowed to touch it
        self._private_owner: Dict[int, int] = {}

    # -- stall accounting --------------------------------------------------
    # Every coherence stall charged to a core flows through these two
    # helpers, which keep the core's hardware register and the obs event
    # stream in lockstep -- the counter-derived Figure 4a breakdown must
    # match the register-derived one exactly (guarded by a test).
    def _charge_stall_mem(self, core: Core, cycles: int, line_no: int, why: str) -> None:
        if cycles <= 0:
            return
        core.stall_mem += cycles
        obs = self.sim.obs
        if obs is not None:
            obs.emit("cache.stall", core=core.cid, cycles=cycles, line=line_no,
                     why=why, start=self.sim.now - cycles)

    def _charge_stall_fence(self, core: Core, cycles: int, why: str) -> None:
        if cycles <= 0:
            return
        core.stall_fence += cycles
        obs = self.sim.obs
        if obs is not None:
            obs.emit("fence.stall", core=core.cid, cycles=cycles, why=why,
                     start=self.sim.now - cycles)

    def _load_transition(self, entry: _Line, cid: int) -> str:
        if entry.owner is not None and entry.owner != cid:
            return "M->S"
        if entry.sharers:
            return "S->S"
        return "mem->S"

    def _store_transition(self, entry: _Line, cid: int) -> str:
        if entry.owner is not None and entry.owner != cid:
            return "M->M"
        if entry.sharers.others(cid):
            return "inv"
        if cid in entry.sharers:
            return "upgrade"
        return "mem->M"

    def _emit_invals(self, obs, entry: _Line, line_no: int, by) -> None:
        """Publish one ``cache.inval`` per core losing its copy."""
        if entry.owner is not None and entry.owner != by:
            obs.emit("cache.inval", core=entry.owner, line=line_no, by=by)
        for s in entry.sharers:
            if s != by:
                obs.emit("cache.inval", core=s, line=line_no, by=by)

    # -- address helpers ---------------------------------------------------
    def line_of(self, addr: int) -> int:
        return addr // self.cfg.line_words

    def home_node(self, line: int) -> int:
        """The mesh node homing this line's directory entry (hashed)."""
        return line % self._num_nodes

    def _line(self, line: int) -> _Line:
        entry = self._lines.get(line)
        if entry is None:
            entry = _Line(self.sim, line, self._geo)
            self._lines[line] = entry
            if len(self._lines) > self.peak_entries:
                self.peak_entries = len(self._lines)
        return entry

    # -- raw value access (zero-cost; for setup and invariant checks) ------
    def peek(self, addr: int) -> int:
        return self.store_backing.read(addr)

    def poke(self, addr: int, value: int) -> None:
        """Initialize memory outside simulated time (setup only)."""
        self.store_backing.write(addr, value)

    def alloc(self, nwords: int, *, isolated: bool = False) -> int:
        return self.allocator.alloc(nwords, isolated=isolated)

    # -- private-memory discipline (message-passing-only profiles) ---------
    def _private_check(self, core: Core, line_no: int, what: str) -> None:
        owner = self._private_owner.setdefault(line_no, core.cid)
        if owner != core.cid:
            raise RuntimeError(
                f"no coherent shared memory on {self.cfg.name!r}: line "
                f"{line_no} is private to core {owner}, but core "
                f"{core.cid} issued a {what}; use message passing instead"
            )

    # -- core operations (generators; drive with ``yield from``) -----------
    def load(self, core: Core, addr: int) -> Generator[Any, Any, int]:
        """Coherent 64-bit load; returns the value."""
        core.loads += 1
        if not self.cfg.has_coherent_shm:
            self._private_check(core, self.line_of(addr), "load")
            core.busy += self.cfg.c_hit
            yield self.cfg.c_hit
            return self.store_backing.read(addr)
        line_no = self.line_of(addr)
        entry = self._lines.get(line_no)
        cid = core.cid
        # join an in-flight prefetch for this line, if any (MSHR hit):
        # stall only for the remaining transfer time
        pending = self._prefetches.get((cid, line_no))
        if pending is not None and not pending.triggered:
            t0 = self.sim.now
            yield pending
            self._charge_stall_mem(core, self.sim.now - t0, line_no, "mshr")
            entry = self._lines.get(line_no)
        if entry is not None and (entry.owner == cid or cid in entry.sharers):
            # cache hit
            core.busy += self.cfg.c_hit
            yield self.cfg.c_hit
            return self.store_backing.read(addr)
        # miss: RMR
        entry = self._line(line_no)
        core.rmr += 1
        t0 = self.sim.now
        yield from entry.res.acquire()
        try:
            # recheck: an own in-flight store transaction queued ahead of
            # us may have taken ownership while we waited
            if entry.owner == cid or cid in entry.sharers:
                latency = occupancy = 0
            else:
                latency = self._load_latency(entry, line_no, cid)
                obs = self.sim.obs
                if obs is not None:
                    obs.emit("cache.miss", core=cid, line=line_no, op="load",
                             transition=self._load_transition(entry, cid),
                             latency=latency)
                # The directory orders the read and answers quickly; the
                # data transfer itself is pipelined, so the read holds
                # the entry only briefly and concurrent readers do not
                # serialize for the full transfer.
                occupancy = min(self.cfg.c_dir_read_occupancy, latency)
                if occupancy:
                    yield occupancy
                # downgrade an owner, install as sharer
                if entry.owner is not None and entry.owner != cid:
                    entry.sharers.add(entry.owner)
                    entry.owner = None
                entry.sharers.add(cid)
        finally:
            entry.res.release()
        remainder = latency - occupancy
        if remainder > 0:
            yield remainder
        # the value is observed when the data arrives -- reading it at
        # completion (not at the ordering point) keeps the load's result
        # consistent with any wakeup notifications fired in between
        value = self.store_backing.read(addr)
        self._charge_stall_mem(core, self.sim.now - t0, line_no, "load")
        self._check_swmr(entry)
        return value

    def prefetch(self, core: Core, addr: int) -> Generator[Any, Any, None]:
        """Start fetching a line in the background (software prefetch).

        Costs one issue cycle and never stalls.  A later ``load`` of the
        same line joins the in-flight fetch (paying only the remaining
        transfer time), which is how the servicing loops overlap the
        next request's RMR with the current critical section -- the
        paper's explanation for Figure 4c's shrinking overhead.
        """
        core.busy += 1
        yield 1
        if not self.cfg.has_coherent_shm:
            return  # private memory is always local; nothing to fetch
        line_no = self.line_of(addr)
        entry = self._lines.get(line_no)
        cid = core.cid
        if entry is not None and (entry.owner == cid or cid in entry.sharers):
            return  # already cached
        if (cid, line_no) in self._prefetches:
            return  # already in flight
        done = Event(self.sim)
        self._prefetches[(cid, line_no)] = done
        self.sim.spawn(self._prefetch_txn(core, line_no, cid, done),
                       name=f"prefetch-c{cid}-l{line_no}")

    def _prefetch_txn(self, core: Core, line_no: int, cid: int, done) -> Generator:
        entry = self._line(line_no)
        yield from entry.res.acquire()
        try:
            if entry.owner == cid or cid in entry.sharers:
                latency = occupancy = 0
            else:
                latency = self._load_latency(entry, line_no, cid)
                obs = self.sim.obs
                if obs is not None:
                    obs.emit("cache.miss", core=cid, line=line_no, op="prefetch",
                             transition=self._load_transition(entry, cid),
                             latency=latency)
                occupancy = min(self.cfg.c_dir_read_occupancy, latency)
                if occupancy:
                    yield occupancy
                if entry.owner is not None and entry.owner != cid:
                    entry.sharers.add(entry.owner)
                    entry.owner = None
                entry.sharers.add(cid)
        finally:
            entry.res.release()
        remainder = latency - occupancy
        if remainder > 0:
            yield remainder
        del self._prefetches[(cid, line_no)]
        done.trigger()

    def _load_latency(self, entry: _Line, line_no: int, cid: int) -> int:
        cfg = self.cfg
        mesh = self.mesh
        node = self.cores[cid].node
        home = self.home_node(line_no)
        if entry.owner is not None and entry.owner != cid:
            # 3-hop: requester -> home -> owner -> requester
            owner_node = self.cores[entry.owner].node
            hops = mesh.hops(node, home) + mesh.hops(home, owner_node) + mesh.hops(owner_node, node)
            return cfg.c_remote_base + cfg.noc_per_hop * hops
        if entry.sharers:
            # clean copy at home/L3
            return cfg.c_remote_base + cfg.noc_per_hop * 2 * mesh.hops(node, home)
        # from memory
        return cfg.c_mem_base + cfg.noc_per_hop * 2 * mesh.hops(node, home)

    def store(self, core: Core, addr: int, value: int) -> Generator[Any, Any, None]:
        """Coherent 64-bit store through a one-entry merging store buffer.

        A store hit in an owned line is immediate.  A store miss issues
        in one cycle, commits its value, and drains in the background
        (the ownership transaction runs as a separate simulator
        process); the core only stalls when the buffer is still draining
        a *different* line -- further stores to the draining line merge
        for free.  This is what lets a servicing thread's response write
        (W(i) of Figure 1) overlap the next critical section, and what a
        fence has to wait for.
        """
        core.stores += 1
        line_no = self.line_of(addr)
        if not self.cfg.has_coherent_shm:
            self._private_check(core, line_no, "store")
            core.busy += self.cfg.c_hit
            yield self.cfg.c_hit
            self.store_backing.write(addr, value)
            self.wake_line(line_no)  # wake same-core siblings
            return
        entry = self._lines.get(line_no)
        cid = core.cid
        if entry is not None and entry.owner == cid:
            # write hit in M
            core.busy += self.cfg.c_hit
            yield self.cfg.c_hit
            self.store_backing.write(addr, value)
            entry.notify()
            return
        while True:
            pending = self._sb_event.get(cid)
            if pending is None or pending.triggered:
                break
            if self._sb_line.get(cid) == line_no:
                # merge into the draining entry (its transaction will
                # publish this value's visibility when it completes)
                core.busy += self.cfg.c_hit
                yield self.cfg.c_hit
                self.store_backing.write(addr, value)
                return
            # buffer full with another line: wait for the drain, then
            # re-check -- an oversubscribed sibling thread sharing this
            # core may have refilled the buffer in the meantime
            t0 = self.sim.now
            yield pending
            self._charge_stall_mem(core, self.sim.now - t0, line_no, "store_buffer")
        core.rmr += 1
        core.busy += self.cfg.c_hit
        yield self.cfg.c_hit
        self.store_backing.write(addr, value)
        done = Event(self.sim)
        self._sb_line[cid] = line_no
        self._sb_event[cid] = done
        self.sim.spawn(self._store_txn(line_no, cid, done),
                       name=f"store-txn-c{cid}-l{line_no}")

    def _store_txn(self, line_no: int, cid: int, done) -> Generator:
        """Background ownership acquisition for a buffered store miss.

        Looks the entry up at transaction start (not at issue time): a
        remote atomic may have invalidated-to-clean and reclaimed the
        entry in the issue->drain window, and mutating a reclaimed
        orphan would lose the ownership this transaction installs.
        """
        entry = self._line(line_no)
        yield from entry.res.acquire()
        try:
            if entry.owner != cid:
                latency = self._store_latency(entry, line_no, cid)
                obs = self.sim.obs
                if obs is not None:
                    obs.emit("cache.miss", core=cid, line=line_no, op="store",
                             transition=self._store_transition(entry, cid),
                             latency=latency)
                    self._emit_invals(obs, entry, line_no, cid)
                if latency:
                    yield latency
                entry.sharers.clear()
                entry.owner = cid
        finally:
            entry.res.release()
        done.trigger()
        entry.notify()
        self._check_swmr(entry)

    def drain_store_buffer(self, core: Core) -> Generator[Any, Any, None]:
        """Block until the core's store buffer is empty (fence helper)."""
        pending = self._sb_event.get(core.cid)
        if pending is not None and not pending.triggered:
            t0 = self.sim.now
            yield pending
            self._charge_stall_fence(core, self.sim.now - t0, "drain")

    def _store_latency(self, entry: _Line, line_no: int, cid: int) -> int:
        cfg = self.cfg
        mesh = self.mesh
        node = self.cores[cid].node
        home = self.home_node(line_no)
        if entry.owner is not None and entry.owner != cid:
            owner_node = self.cores[entry.owner].node
            hops = mesh.hops(node, home) + mesh.hops(home, owner_node) + mesh.hops(owner_node, node)
            return cfg.c_remote_base + cfg.noc_per_hop * hops
        if entry.sharers.others(cid):
            # invalidate sharers: round trip to home + farthest sharer ack
            far = entry.sharers.farthest_hop(home, exclude=cid)
            return cfg.c_remote_base + cfg.noc_per_hop * (2 * mesh.hops(node, home) + far)
        if cid in entry.sharers:
            # upgrade S -> M: permission round trip to home only
            return cfg.c_remote_base + cfg.noc_per_hop * 2 * mesh.hops(node, home)
        return cfg.c_mem_base + cfg.noc_per_hop * 2 * mesh.hops(node, home)

    def fence(self, core: Core) -> Generator[Any, Any, None]:
        """Memory fence: fixed pipeline cost plus a store-buffer drain."""
        if not self.cfg.has_coherent_shm:
            yield self.cfg.c_fence
            self._charge_stall_fence(core, self.cfg.c_fence, "fence")
            return
        c = self.cfg.c_fence
        yield c
        self._charge_stall_fence(core, c, "fence")
        yield from self.drain_store_buffer(core)

    def spin_until(
        self, core: Core, addr: int, pred: Callable[[int], bool]
    ) -> Generator[Any, Any, int]:
        """Local spinning: block until ``pred(value_at(addr))`` holds.

        Charges one load (possibly an RMR) up front, then sleeps until a
        writer invalidates the line, re-fetches (another RMR) and
        re-checks.  Time asleep counts as ``wait`` (the core is polling
        its own cache -- no interconnect traffic, no stall).
        """
        value = yield from self.load(core, addr)
        while not pred(value):
            entry = self._line(self.line_of(addr))
            t0 = self.sim.now
            yield from entry.wait_cond(self.sim).wait()
            core.wait += self.sim.now - t0
            value = yield from self.load(core, addr)
        return value

    # -- atomics (delegated to the attached executor) -----------------------
    def faa(self, core: Core, addr: int, delta: int) -> Generator[Any, Any, int]:
        """Fetch-and-add; returns the previous value."""
        core.faa_ops += 1
        old = yield from self.atomics.rmw(core, addr, lambda v: (v + delta) & WORD_MASK)
        return old

    def swap(self, core: Core, addr: int, value: int) -> Generator[Any, Any, int]:
        """Atomic exchange; returns the previous value."""
        core.swap_ops += 1
        old = yield from self.atomics.rmw(core, addr, lambda v: value & WORD_MASK)
        return old

    def cas(self, core: Core, addr: int, expected: int, new: int) -> Generator[Any, Any, bool]:
        """Compare-and-set; returns True on success (the boolean variant)."""
        core.cas_ops += 1
        box = {}

        def op(v: int) -> int:
            if v == (expected & WORD_MASK):
                box["ok"] = True
                return new & WORD_MASK
            box["ok"] = False
            return v

        yield from self.atomics.rmw(core, addr, op)
        if not box["ok"]:
            core.cas_failures += 1
            obs = self.sim.obs
            if obs is not None:
                obs.emit("atomic.cas_fail", core=core.cid, line=self.line_of(addr))
        return box["ok"]

    # -- hooks used by the atomics executor ---------------------------------
    def invalidate_all(self, line_no: int) -> None:
        """Drop every cached copy of a line (atomic executed remotely).

        Invalidate-to-clean is also the reclamation point of the lazy
        directory: a clean entry with no transaction holding or queued
        on its resource and no spinner registered is indistinguishable
        from an absent one (a later touch rematerializes the identical
        empty state), so it is dropped to keep the live directory
        proportional to the *hot* working set, not to every line ever
        touched.
        """
        entry = self._lines.get(line_no)
        if entry is not None:
            obs = self.sim.obs
            if obs is not None and (entry.owner is not None or entry.sharers):
                self._emit_invals(obs, entry, line_no, None)
            entry.owner = None
            entry.sharers.clear()
            entry.notify()  # empties the waiter list before the idle check
            if entry.idle:
                del self._lines[line_no]

    def wake_line(self, line_no: int) -> None:
        entry = self._lines.get(line_no)
        if entry is not None:
            entry.notify()

    def line_resource(self, line_no: int) -> Resource:
        return self._line(line_no).res

    def cached_state(self, cid: int, addr: int) -> Optional[str]:
        """This core's state for the line of ``addr`` (None = Invalid)."""
        entry = self._lines.get(self.line_of(addr))
        if entry is None:
            return None
        if entry.owner == cid:
            return LineState.M
        if cid in entry.sharers:
            return LineState.S
        return None

    # -- footprint accounting ------------------------------------------------
    def directory_stats(self) -> Dict[str, int]:
        """Model-level directory bookkeeping sizes (deterministic).

        Byte figures use the nominal cost model of
        :mod:`repro.mem.sharers` rather than ``sys.getsizeof`` so the
        footprint benchmarks gate identically across Python versions.
        """
        entries = len(self._lines)
        sharer_bytes = 0
        max_line_bytes = 0
        for entry in self._lines.values():
            b = entry.sharers.nominal_bytes()
            sharer_bytes += b
            line_bytes = ENTRY_BASE_BYTES + b
            if line_bytes > max_line_bytes:
                max_line_bytes = line_bytes
        return {
            "entries": entries,
            "peak_entries": self.peak_entries,
            "nominal_bytes": entries * ENTRY_BASE_BYTES + sharer_bytes,
            "max_line_bytes": max_line_bytes,
        }

    # -- invariants ----------------------------------------------------------
    def _check_swmr(self, entry: _Line) -> None:
        if self.cfg.debug_checks:
            assert not (entry.owner is not None and entry.sharers), (
                "SWMR violated: owner and sharers coexist"
            )

    def check_all_swmr(self) -> None:
        """Assert the SWMR invariant over every line (test hook)."""
        for line_no, entry in self._lines.items():
            assert not (entry.owner is not None and entry.sharers), (
                f"SWMR violated on line {line_no}: owner={entry.owner}, sharers={entry.sharers}"
            )
