"""Backing store and allocator for the simulated 64-bit address space.

Addresses are *word* addresses (each holds one 64-bit value, as in the
paper's system model).  Address 0 is reserved as the null pointer and is
never handed out by the allocator.

The allocator is a simple bump allocator with optional cache-line
alignment/padding.  Synchronization-sensitive structures (client
channels, combiner nodes) must live on private lines to avoid false
sharing, exactly as the paper's C implementations pad to cache lines;
``alloc(..., isolated=True)`` guarantees the allocation starts on a line
boundary and no later allocation shares its last line.
"""

from __future__ import annotations

from typing import Dict, List

__all__ = ["WORD_MASK", "BackingStore", "Allocator"]

#: all simulated values are 64-bit
WORD_MASK = (1 << 64) - 1

NULL = 0


class BackingStore:
    """The flat memory: word address -> 64-bit value (default 0)."""

    __slots__ = ("_mem",)

    def __init__(self) -> None:
        self._mem: Dict[int, int] = {}

    def read(self, addr: int) -> int:
        return self._mem.get(addr, 0)

    def write(self, addr: int, value: int) -> None:
        self._mem[addr] = value & WORD_MASK

    def __len__(self) -> int:
        return len(self._mem)


class Allocator:
    """Bump allocator over the word address space, cache-line aware."""

    __slots__ = ("line_words", "_next", "allocations")

    def __init__(self, line_words: int = 8, first_addr: int = 8):
        if line_words < 1:
            raise ValueError("line_words must be >= 1")
        if first_addr < 1:
            raise ValueError("address 0 is the null pointer; first_addr must be >= 1")
        self.line_words = line_words
        self._next = first_addr
        #: (addr, nwords) of every allocation, for overlap checking in tests
        self.allocations: List[tuple] = []

    def alloc(self, nwords: int, *, isolated: bool = False) -> int:
        """Allocate ``nwords`` consecutive words; return the first address.

        With ``isolated=True`` the block starts on a cache-line boundary
        and is padded so nothing else ever shares any of its lines.
        """
        if nwords < 1:
            raise ValueError("allocation must be at least one word")
        lw = self.line_words
        addr = self._next
        if isolated and addr % lw != 0:
            addr += lw - addr % lw
        self._next = addr + nwords
        if isolated and self._next % lw != 0:
            self._next += lw - self._next % lw
        self.allocations.append((addr, nwords))
        return addr

    def alloc_line(self) -> int:
        """Allocate one full isolated cache line; return its first address."""
        return self.alloc(self.line_words, isolated=True)

    @property
    def words_used(self) -> int:
        return self._next
