"""Atomic read-modify-write execution models.

The paper leans on a TILE-Gx peculiarity: *"atomic instructions on the
TILE-Gx are not executed in the local cache but on memory controllers"*
(Section 5.3), and *"two atomic instructions might collide on the memory
controller even if they have independent data sets"* (Section 5.4, the
LCRQ "false serialization" effect).  Two executors model the two worlds:

* :class:`ControllerAtomics` (TILE-Gx): the operation travels over the
  mesh to one of the memory controllers (address-interleaved), queues at
  a FIFO resource (false serialization across *independent* addresses),
  pays an extra penalty when it hits the same word as the previous
  operation at that controller (dependent RMWs cannot pipeline), applies
  in memory, invalidates every cached copy, and returns.  The issuing
  core stalls for the full round trip.

* :class:`CacheAtomics` (x86-like): the RMW executes in the cache
  hierarchy -- acquire the line exclusively (an RMR if not owned), then a
  short locked-op cost.  Fast when uncontended and line-resident; under
  contention the line bounces, which is the classic CAS-retry story.

Both return the *old* value; CAS logic is layered on top by
:class:`~repro.mem.cache.CoherentMemory`.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List

from repro.machine.config import MachineConfig
from repro.machine.core import Core
from repro.sim.engine import Simulator
from repro.sim.resources import Resource

__all__ = ["ControllerAtomics", "CacheAtomics", "make_atomics"]


class _Controller:
    """One memory controller: a FIFO execution port for atomics.

    ``last_word`` models the word the controller's RMW unit currently
    holds: consecutive atomics to that word stream at the short (hot)
    service time (an in-memory adder applying back-to-back updates); an
    atomic anywhere else must set up a new read-modify-write and pays
    the long (cold) occupancy -- Section 5.4's false serialization.
    """

    __slots__ = ("node", "res", "last_word", "ops", "cold_ops")

    def __init__(self, sim: Simulator, node: int):
        self.node = node
        self.res = Resource(sim, capacity=1)
        self.last_word: int = -1
        self.ops: int = 0
        self.cold_ops: int = 0


class ControllerAtomics:
    """TILE-Gx style: every RMW is a round trip to a memory controller."""

    def __init__(self, sim: Simulator, cfg: MachineConfig, mesh, mem) -> None:
        self.sim = sim
        self.cfg = cfg
        self.mesh = mesh
        self.mem = mem
        self.controllers: List[_Controller] = [
            _Controller(sim, node) for node in cfg.memory_controller_nodes
        ]

    def controller_for(self, addr: int) -> _Controller:
        """Address-interleaved controller selection (by line)."""
        line = addr // self.cfg.line_words
        return self.controllers[line % len(self.controllers)]

    def rmw(self, core: Core, addr: int, op: Callable[[int], int]) -> Generator[Any, Any, int]:
        cfg = self.cfg
        core.atomic_ops += 1
        if not cfg.has_coherent_shm:
            # private memory: the RMW is a local operation
            self.mem._private_check(core, addr // cfg.line_words, "atomic")
            core.busy += cfg.c_atomic_local
            yield cfg.c_atomic_local
            backing = self.mem.store_backing
            old = backing.read(addr)
            backing.write(addr, op(old))
            self.mem.wake_line(addr // cfg.line_words)
            return old
        # issue overhead at the core
        core.busy += cfg.c_atomic_issue
        yield cfg.c_atomic_issue

        ctrl = self.controller_for(addr)
        t0 = self.sim.now
        # travel to the controller (pipelined: pure latency, no occupancy)
        travel = cfg.noc_per_hop * self.mesh.hops(core.node, ctrl.node) + cfg.c_atomic_travel_extra
        if travel:
            yield travel
        # queue + execute at the controller (false serialization point)
        yield from ctrl.res.acquire()
        try:
            cold = ctrl.last_word != addr
            if cold:
                service = cfg.c_atomic_service_cold
                ctrl.cold_ops += 1
            else:
                service = cfg.c_atomic_service
            ctrl.last_word = addr
            ctrl.ops += 1
            obs = self.sim.obs
            if obs is not None:
                obs.emit("atomic.exec", core=core.cid, line=addr // cfg.line_words,
                         ctrl=ctrl.node, cold=cold, service=service)
            yield service
            backing = self.mem.store_backing
            old = backing.read(addr)
            backing.write(addr, op(old))
            # the controller invalidates every cached copy of the line
            self.mem.invalidate_all(addr // cfg.line_words)
        finally:
            ctrl.res.release()
        # travel back with the old value
        if travel:
            yield travel
        stalled = self.sim.now - t0
        core.stall_atomic += stalled
        obs = self.sim.obs
        if obs is not None:
            obs.emit("atomic.stall", core=core.cid, cycles=stalled,
                     line=addr // cfg.line_words, start=t0)
        return old


class CacheAtomics:
    """x86 style: RMW in the cache hierarchy on an exclusively-held line."""

    def __init__(self, sim: Simulator, cfg: MachineConfig, mesh, mem) -> None:
        self.sim = sim
        self.cfg = cfg
        self.mesh = mesh
        self.mem = mem

    def rmw(self, core: Core, addr: int, op: Callable[[int], int]) -> Generator[Any, Any, int]:
        cfg = self.cfg
        mem = self.mem
        core.atomic_ops += 1
        line_no = addr // cfg.line_words
        entry = mem._line(line_no)
        cid = core.cid
        t0 = self.sim.now
        yield from entry.res.acquire()
        try:
            if entry.owner != cid:
                # bring the line in exclusively (RMR)
                core.rmr += 1
                latency = mem._store_latency(entry, line_no, cid)
                obs = self.sim.obs
                if obs is not None:
                    obs.emit("cache.miss", core=cid, line=line_no, op="atomic",
                             transition=mem._store_transition(entry, cid),
                             latency=latency)
                    mem._emit_invals(obs, entry, line_no, cid)
                if latency:
                    yield latency
                entry.sharers.clear()
                entry.owner = cid
            # locked execution on the owned line
            yield cfg.c_atomic_local
            backing = mem.store_backing
            old = backing.read(addr)
            backing.write(addr, op(old))
        finally:
            entry.res.release()
        stalled = self.sim.now - t0
        core.stall_atomic += stalled
        obs = self.sim.obs
        if obs is not None:
            obs.emit("atomic.exec", core=cid, line=line_no, ctrl=None,
                     cold=False, service=cfg.c_atomic_local)
            obs.emit("atomic.stall", core=cid, cycles=stalled,
                     line=line_no, start=t0)
        entry.notify()
        return old


def make_atomics(sim: Simulator, cfg: MachineConfig, mesh, mem):
    """Build the executor selected by ``cfg.atomic_at``."""
    if cfg.atomic_at == "controller":
        return ControllerAtomics(sim, cfg, mesh, mem)
    return CacheAtomics(sim, cfg, mesh, mem)
