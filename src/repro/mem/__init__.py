"""Cache-coherent shared-memory subsystem.

Implements the system model of Section 2 of the paper:

* a flat array of 64-bit locations (:mod:`repro.mem.memory`: backing
  store + cache-line-aware allocator);
* per-core private caches kept coherent by a directory that maintains
  the single-writer / multiple-reader invariant
  (:mod:`repro.mem.cache`);
* ``read``/``write`` plus the atomic read-modify-writes ``FAA``,
  ``SWAP`` and ``CAS``, executed at the memory controllers as on the
  TILE-Gx (:mod:`repro.mem.atomics`);
* fences and the stall-accounting hooks that feed Figure 4a.

Remote Memory References (RMRs) -- accesses that require a directory
transaction over the mesh -- are both *charged* (the issuing core stalls)
and *counted* (per-core counters), because the paper's whole argument is
about how many RMRs sit on the servicing thread's critical path.
"""

from repro.mem.memory import Allocator, BackingStore, WORD_MASK
from repro.mem.cache import CoherentMemory, LineState

__all__ = ["Allocator", "BackingStore", "CoherentMemory", "LineState", "WORD_MASK"]
