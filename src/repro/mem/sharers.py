"""Sparse sharer sets with O(1) farthest-sharer geometry.

The directory in :mod:`repro.mem.cache` keeps, per cache line, the set
of cores holding the line Shared.  A plain ``Set[int]`` is fine on a
6x6 TILE-Gx but becomes the dominant per-event cost on big meshes: the
store-miss path needs ``max(hops(home, sharer))`` over the whole set
(O(sharers) per store), ``sharers - {cid}`` allocates a copy per store,
and widely-shared lines (lock flags, combiner nodes) hold one int per
core.

:class:`SparseSharerSet` replaces it with a representation whose hot
operations (``add``, ``clear``, membership, :meth:`others`,
:meth:`farthest_hop`) are all O(1):

* **few-members mode** -- up to :data:`FEW_MAX` core ids in a sorted
  list; covers the overwhelming majority of lines (a line is usually
  shared by a requester and a server, not the whole chip);
* **bitmap mode** -- an arbitrary-precision int used as a bitmask once
  the line is widely shared; O(1) add/membership, one bit per sharing
  core rather than a hash-table slot;
* **corner aggregates** -- the Manhattan distance on a mesh decomposes
  as ``|hx-sx| + |hy-sy| = max(u_h-u_s, u_s-u_h, v_h-v_s, v_s-v_h)``
  with ``u = x+y`` and ``v = x-y``, so the farthest sharer from any
  home node needs only the four extremes ``min/max u`` and ``min/max
  v`` over the sharers.  Each extreme tracks its best *two* (value,
  cid) entries, so excluding the requesting core from the max (the
  ``s != cid`` filter in the store-invalidation latency) stays O(1)
  too.

``add``/``clear`` maintain the aggregates incrementally.  ``discard``
(only used by tests and future protocol extensions -- the coherence hot
path never removes a single sharer) marks the aggregates dirty and the
next geometry query rebuilds them in one O(sharers) pass.

Iteration yields core ids in ascending order in both modes, making
runs on the sparse directory deterministic without depending on hash
ordering.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

__all__ = ["ENTRY_BASE_BYTES", "FEW_MAX", "MeshGeometry", "SparseSharerSet"]

#: few-members capacity: sized so two-party sharing patterns plus a few
#: stragglers never pay the bitmap conversion
FEW_MAX = 8

#: nominal bookkeeping cost model (bytes), used by the footprint
#: benchmarks: deliberately version-independent (``sys.getsizeof``
#: varies across CPython releases) and counting only what the
#: representation fundamentally needs
ENTRY_BASE_BYTES = 64          # owner + res/cond slots + dict slot
_FEW_MEMBER_BYTES = 8           # one 64-bit id per few-mode member
_AGG_BYTES = 64                 # 4 corner aggregates x top-2 (val, cid)


class MeshGeometry:
    """Precomputed rotated coordinates (u = x+y, v = x-y) per node/core.

    Shared by every :class:`SparseSharerSet` of a machine; built once
    from the mesh shape and the core->node placement.
    """

    __slots__ = ("node_u", "node_v", "core_u", "core_v")

    def __init__(self, width: int, core_nodes: Sequence[int], num_nodes: int):
        self.node_u: List[int] = []
        self.node_v: List[int] = []
        for n in range(num_nodes):
            x, y = n % width, n // width
            self.node_u.append(x + y)
            self.node_v.append(x - y)
        self.core_u = [self.node_u[n] for n in core_nodes]
        self.core_v = [self.node_v[n] for n in core_nodes]


class _Top2:
    """Best two (value, cid) entries under a fixed direction (+1/-1).

    ``sign=+1`` tracks the maximum, ``sign=-1`` the minimum; the second
    entry is the extreme of the set minus the best's cid, which is
    exactly what excluding one core from the query needs.
    """

    __slots__ = ("sign", "best_val", "best_cid", "second_val", "second_cid")

    def __init__(self, sign: int):
        self.sign = sign
        self.best_cid = -1
        self.second_cid = -1
        self.best_val = 0
        self.second_val = 0

    def add(self, val: int, cid: int) -> None:
        s = self.sign
        if self.best_cid < 0 or s * val > s * self.best_val:
            self.second_val, self.second_cid = self.best_val, self.best_cid
            self.best_val, self.best_cid = val, cid
        elif self.second_cid < 0 or s * val > s * self.second_val:
            self.second_val, self.second_cid = val, cid

    def involves(self, cid: int) -> bool:
        return cid == self.best_cid or cid == self.second_cid

    def value_excluding(self, cid: int) -> Optional[int]:
        if self.best_cid != cid:
            return self.best_val if self.best_cid >= 0 else None
        return self.second_val if self.second_cid >= 0 else None


class SparseSharerSet:
    """The sharer set of one directory entry (see module docstring)."""

    __slots__ = ("_geo", "_few", "_bits", "_n",
                 "_max_u", "_min_u", "_max_v", "_min_v", "_dirty")

    def __init__(self, geo: MeshGeometry):
        self._geo = geo
        self._few: Optional[List[int]] = []   # None once in bitmap mode
        self._bits = 0
        self._n = 0
        self._max_u = _Top2(+1)
        self._min_u = _Top2(-1)
        self._max_v = _Top2(+1)
        self._min_v = _Top2(-1)
        self._dirty = False

    # -- set protocol ------------------------------------------------------
    def __len__(self) -> int:
        return self._n

    def __bool__(self) -> bool:
        return self._n > 0

    def __contains__(self, cid: int) -> bool:
        few = self._few
        if few is not None:
            return cid in few
        return (self._bits >> cid) & 1 == 1

    def __iter__(self) -> Iterator[int]:
        few = self._few
        if few is not None:
            return iter(few)
        return self._iter_bits()

    def _iter_bits(self) -> Iterator[int]:
        bits = self._bits
        while bits:
            lsb = bits & -bits
            yield lsb.bit_length() - 1
            bits ^= lsb

    def __repr__(self) -> str:
        return f"SparseSharerSet({{{', '.join(map(str, self))}}})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (set, frozenset)):
            return set(self) == other
        if isinstance(other, SparseSharerSet):
            return set(self) == set(other)
        return NotImplemented

    __hash__ = None  # type: ignore[assignment]  # mutable container

    # -- mutation ----------------------------------------------------------
    def add(self, cid: int) -> None:
        few = self._few
        if few is not None:
            if cid in few:
                return
            if len(few) < FEW_MAX:
                # insertion sort step: few is tiny and stays sorted
                i = len(few)
                while i > 0 and few[i - 1] > cid:
                    i -= 1
                few.insert(i, cid)
            else:
                bits = 0
                for m in few:
                    bits |= 1 << m
                self._bits = bits | (1 << cid)
                self._few = None
        else:
            bit = 1 << cid
            if self._bits & bit:
                return
            self._bits |= bit
        self._n += 1
        if not self._dirty:
            geo = self._geo
            u, v = geo.core_u[cid], geo.core_v[cid]
            self._max_u.add(u, cid)
            self._min_u.add(u, cid)
            self._max_v.add(v, cid)
            self._min_v.add(v, cid)

    def discard(self, cid: int) -> None:
        few = self._few
        if few is not None:
            if cid not in few:
                return
            few.remove(cid)
        else:
            bit = 1 << cid
            if not self._bits & bit:
                return
            self._bits ^= bit
        self._n -= 1
        if self._n == 0:
            self._reset_aggregates()
        elif not self._dirty and (
            self._max_u.involves(cid) or self._min_u.involves(cid)
            or self._max_v.involves(cid) or self._min_v.involves(cid)
        ):
            self._dirty = True

    def clear(self) -> None:
        if self._few is None:
            self._few = []
        else:
            self._few.clear()
        self._bits = 0
        self._n = 0
        self._reset_aggregates()

    def _reset_aggregates(self) -> None:
        self._max_u = _Top2(+1)
        self._min_u = _Top2(-1)
        self._max_v = _Top2(+1)
        self._min_v = _Top2(-1)
        self._dirty = False

    def _rebuild(self) -> None:
        self._reset_aggregates()
        geo = self._geo
        for cid in self:
            u, v = geo.core_u[cid], geo.core_v[cid]
            self._max_u.add(u, cid)
            self._min_u.add(u, cid)
            self._max_v.add(v, cid)
            self._min_v.add(v, cid)

    # -- O(1) queries used by the coherence hot path -----------------------
    def others(self, cid: int) -> bool:
        """True iff some member differs from ``cid`` (``sharers - {cid}``)."""
        n = self._n
        if n == 0:
            return False
        if n >= 2:
            return True
        few = self._few
        sole = few[0] if few is not None else self._bits.bit_length() - 1
        return sole != cid

    def farthest_hop(self, home_node: int, exclude: int = -1) -> int:
        """Max Manhattan hops from ``home_node`` to any member != exclude.

        The caller guarantees a qualifying member exists (checked via
        :meth:`others`).
        """
        if self._dirty:
            self._rebuild()
        geo = self._geo
        hu = geo.node_u[home_node]
        hv = geo.node_v[home_node]
        best = None
        mu = self._max_u.value_excluding(exclude)
        if mu is not None:
            best = mu - hu
        mu = self._min_u.value_excluding(exclude)
        if mu is not None:
            d = hu - mu
            if best is None or d > best:
                best = d
        mv = self._max_v.value_excluding(exclude)
        if mv is not None:
            d = mv - hv
            if best is None or d > best:
                best = d
        mv = self._min_v.value_excluding(exclude)
        if mv is not None:
            d = hv - mv
            if best is None or d > best:
                best = d
        if best is None:
            raise ValueError("farthest_hop on an empty (post-exclusion) set")
        return best

    # -- footprint accounting ----------------------------------------------
    def nominal_bytes(self) -> int:
        """Model-level bookkeeping bytes of this set (see module doc)."""
        if self._few is not None:
            members = _FEW_MEMBER_BYTES * len(self._few)
        else:
            # bitmap: one bit per id up to the highest member
            members = (self._bits.bit_length() + 7) // 8
        return members + _AGG_BYTES
