"""Mutation self-test: a seeded concurrency bug the explorer must catch.

A schedule-exploration harness that never finds anything is
indistinguishable from one that cannot.  This module keeps a *known
broken* copy of HYBCOMB around as a detection fixture: an ordering bug
of exactly the class the harness exists for, which

* is invisible under the default schedule (every tier-1 test would
  pass against it), and
* is found by the explorer as a non-linearizable history within a
  small budget (asserted by ``tests/test_explore_mutation.py`` and
  checked in CI).

The seeded bug -- **takeover without the ``combining_done`` re-check**:
in real HYBCOMB's lease extension, a successor combiner waiting on its
predecessor alternates between checking the predecessor's ``done`` word
and its lease heartbeat, and only treats the predecessor as crashed when
the lease is stale.  :class:`BuggyHybComb` drops the ``done`` check from
that loop entirely: the successor waits for the lease to look stale and
then *always* "takes over".  On a calm schedule this is only slow --
the predecessor finishes, stops heartbeating, the lease expires, and the
successor proceeds after the fact.  But preempt the predecessor inside
its combining session for longer than ``lease_cycles`` (the explorer's
``object.rmw`` / ``hybcomb.combine`` preemption points do exactly that)
and the successor starts combining while the predecessor is alive mid
critical section.  Two combiners interleave their fetch-and-increment
bodies and the counter hands out duplicate tickets -- a history
:func:`~repro.analysis.linearizability.check_linearizable` rejects.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.core.hybcomb import _THREAD_ID, HybComb
from repro.machine.machine import ThreadCtx

__all__ = ["BuggyHybComb"]


class BuggyHybComb(HybComb):
    """HYBCOMB with the ``combining_done`` re-check dropped (seeded bug).

    Never use outside the mutation self-test.
    """

    name = "hybcomb-buggy"

    def _await_predecessor(self, ctx: ThreadCtx, my_node: int,
                           prev: int) -> Generator[Any, Any, None]:
        if not self._recovery:
            # non-lease mode is untouched: the bug lives in the takeover path
            yield from super()._await_predecessor(ctx, my_node, prev)
            return
        while True:
            # BUG: the predecessor's ``done`` word is never consulted.
            # A stale lease alone triggers takeover, so a merely-slow
            # (preempted) predecessor is treated as crashed while its
            # combining session is still running.
            stale = yield from self._lease_stale(ctx, prev)
            if stale:
                prev_tid = yield from ctx.load(prev + _THREAD_ID)
                self._active_combiners.discard(prev_tid)
                self.takeovers += 1
                return
            yield from self._heartbeat(ctx, my_node)
            yield from ctx.work(self._lease_poll)
