"""The algorithm × object × fault-plan exploration matrix.

A :class:`Scenario` is a *self-contained, deterministic* run recipe: a
machine, a delegation algorithm (or a direct concurrent object), a set
of bounded client scripts that record a history, structural invariants,
and the sequential spec the history is checked against.  Given the same
scenario and the same schedule policy decisions, a run is bit-identical
-- that is what makes repro bundles replayable.

Oracle layering per run:

1. **exceptions** -- deadlock, protocol give-up, simulator errors;
2. **structural invariants** -- cheap necessary conditions (ticket
   permutation / exactly-once for counters, element conservation for
   containers) that give a crisp first diagnosis;
3. **linearizability** -- the Wing & Gong checker against the object's
   sequential spec (:mod:`repro.analysis.linearizability`).

Scenario-design notes (why the matrix has no false positives):

* HYBCOMB runs with the lease/takeover extension *off*: with leases on,
  a combiner preempted past its lease is overtaken by design, which is
  the documented at-least-once behaviour, not a bug.  The takeover races
  live in the mutation self-test (:mod:`repro.explore.mutations`).
* The fault-tolerant MP-SERVER crash scenario filters out forced
  preemption of the *servers* and of the CS body (``no_preempt_tags``):
  a lease-free primary/backup pair preempted past the client timeout
  can legitimately double-execute (see ``repro.core.mp_server`` docs).
  Message delays and tie-breaks remain fully adversarial, and the crash
  itself is the fault plan's job.
* The counter CS body used here contains a ``sched_point`` *between its
  load and its store* -- so a policy can park a combiner/server in the
  middle of a critical section.  For a correct delegation algorithm
  that is harmless by construction (mutual exclusion); for a broken one
  it turns the race window into duplicate tickets the checker rejects.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Generator, List, Optional, Tuple

import numpy as np

from repro.analysis.linearizability import (
    EMPTY,
    CounterSpec,
    ElimStackSpec,
    History,
    LCRQSpec,
    PoolSpec,
    QueueSpec,
    SequentialSpec,
    StackSpec,
    check_linearizable,
)
from repro.core import CCSynch, FlatCombining, HybComb, MPServer, OpTable, ShmServer
from repro.explore.policy import SchedulePolicy
from repro.faults import CrashThread, FaultInjector, FaultPlan
from repro.machine import Machine, mesh_profile, tile_gx
from repro.objects import LCRQ, EliminationStack, LockedStack, OneLockMSQueue, TreiberStack
from repro.workload.driver import run_ops
from repro.workload.openloop import (
    AdmissionQueue,
    AdmissionSpec,
    ArrivalSpec,
    bounded_source,
    bounded_worker,
)

__all__ = ["Scenario", "Outcome", "run_scenario", "matrix", "scenario_by_id",
           "SMALL_MATRIX", "FULL_MATRIX", "MUTATION_SCENARIO"]


@dataclass(frozen=True)
class Scenario:
    """One deterministic run recipe of the exploration matrix."""

    sid: str                 #: unique id, e.g. ``"HybComb/counter"``
    algo: str                #: delegation algorithm, or ``"direct"``
    obj: str                 #: counter | msqueue | stack | lcrq | treiber | elim | pool
    nthreads: int = 4        #: client threads
    ops_each: int = 6        #: operations per client (x2 for containers)
    seed: int = 1            #: think-time seed
    fault: str = "none"      #: "none" | "crash-server"
    max_ops: int = 200       #: combiner MAX_OPS, where applicable
    #: admission policy in front of each client: "none" keeps the
    #: classic closed-loop scripts; "drop"/"retry" switch to bounded
    #: open-loop source/worker pairs (counter only) where shed ops must
    #: never appear in the linearization
    admission: str = "none"
    #: sched_point tags this scenario zeroes out (documented protocol
    #: limitations, not bugs -- see module docs)
    no_preempt_tags: FrozenSet[str] = field(default_factory=frozenset)
    #: mesh shape (width, height) for big-machine scenarios; ``None``
    #: keeps the classic 6x6 tile_gx machine (and byte-identical replay
    #: of every pre-existing bundle)
    mesh: Optional[Tuple[int, int]] = None


@dataclass
class Outcome:
    """The verdict of one explored run."""

    ok: bool
    kind: str                #: "ok" | "linearizability" | "invariant" | "exception"
    detail: str
    #: completed operations as (tid, op, arg, retval, invoke_t, response_t)
    history: List[Tuple]
    forced_choices: int      #: policy decisions that deviated from default
    trace: List[Tuple[str, int]]   #: full decision trace (replayable)
    events: int = 0          #: engine events the run processed


class _TagFilterPolicy(SchedulePolicy):
    """Wrap a policy, zeroing forced preemptions at forbidden tags.

    The inner policy is still consulted for every decision (so its RNG
    stream stays aligned with unfiltered runs); only the value returned
    to the seam -- and recorded in *this* policy's authoritative trace --
    is filtered.
    """

    def __init__(self, inner: SchedulePolicy, forbidden: FrozenSet[str]):
        super().__init__()
        self.kind = inner.kind
        self.inner = inner
        self.forbidden = frozenset(forbidden)

    def reorder_lane(self, entries: List, now: int) -> List:
        self.points["L"] += 1
        out = self.inner.reorder_lane(entries, now)
        self.trace.append(self.inner.trace[-1])
        return out

    def udn_delay(self, src_node: int, dst_core: int, demux: int,
                  n_words: int, now: int) -> int:
        self.points["U"] += 1
        d = self.inner.udn_delay(src_node, dst_core, demux, n_words, now)
        self.trace.append(("U", d))
        return d

    def preempt(self, tag: str, tid: int, now: int) -> int:
        self.points["P"] += 1
        d = self.inner.preempt(tag, tid, now)
        if tag in self.forbidden:
            d = 0
        self.trace.append(("P", d))
        return d

    def describe(self) -> Dict:
        meta = self.inner.describe()
        meta["filtered_tags"] = sorted(self.forbidden)
        return meta


def _register_counter(machine: Machine, optable: OpTable) -> Tuple[int, int]:
    """Fetch-and-increment CS body with a mid-CS preemption point."""
    addr = machine.mem.alloc(1, isolated=True)

    def fetch_inc(ctx, arg):
        v = yield from ctx.load(addr)
        if ctx.sim.policy is not None:
            # the load/store window: parking the executing thread here is
            # how a mutual-exclusion violation becomes a duplicate ticket
            yield from ctx.sched_point("object.rmw")
        yield from ctx.store(addr, v + 1)
        return v

    opcode = optable.register(fetch_inc, "fetch_inc")
    return addr, opcode


def _build_prim(scn: Scenario, machine: Machine, optable: OpTable):
    """Returns (prim, client_tids, faults) for a delegation scenario."""
    n = scn.nthreads
    faults: Tuple = ()
    if scn.algo == "mp-server":
        prim = MPServer(machine, optable, server_tid=0)
        tids = range(1, n + 1)
    elif scn.algo == "mp-server-ft":
        prim = MPServer(machine, optable, server_tid=0, server_core=0,
                        backup_tid=1, backup_core=1, request_timeout=9_000)
        tids = range(2, n + 2)
        if scn.fault == "crash-server":
            faults = (CrashThread(tid=0, at_cycle=2_500),)
    elif scn.algo == "shm-server":
        prim = ShmServer(machine, optable, server_tid=0,
                         client_tids=range(1, n + 1))
        tids = range(1, n + 1)
    elif scn.algo == "shm-server-cancel":
        # the withdrawable-request protocol: timed dispatches race the
        # server for the claim word (see repro.core.shm_server)
        prim = ShmServer(machine, optable, server_tid=0,
                         client_tids=range(1, n + 1), cancellable=True)
        tids = range(1, n + 1)
    elif scn.algo == "HybComb":
        prim = HybComb(machine, optable, max_ops=scn.max_ops)
        tids = range(n)
    elif scn.algo == "hybcomb-buggy":
        from repro.explore.mutations import BuggyHybComb
        prim = BuggyHybComb(machine, optable, max_ops=scn.max_ops,
                            lease_cycles=600, request_timeout=1_200)
        tids = range(n)
    elif scn.algo == "CC-Synch":
        prim = CCSynch(machine, optable, max_ops=scn.max_ops)
        tids = range(n)
    elif scn.algo == "flat-combining":
        prim = FlatCombining(machine, optable)
        tids = range(n)
    else:
        raise ValueError(f"unknown algorithm {scn.algo!r}")
    return prim, list(tids), faults


def _client_ctxs(scn: Scenario, machine: Machine,
                 tids: List[int]) -> List[Any]:
    """Thread contexts for the client tids.

    Default placement is the paper's thread-i-on-core-i.  Big-machine
    scenarios (``scn.mesh``) instead stride the clients across the
    whole mesh: packing every client into one corner of a 16x16 mesh
    would leave all the NoC distances the explorer is supposed to
    stress at a hop or two.  Striding by ``ncores // span`` is
    collision-free (every product stays below ``ncores``) and keeps
    clear of the server cores 0/1, which sit below the first stride.
    """
    if scn.mesh is None:
        return [machine.thread(t) for t in tids]
    ncores = machine.cfg.num_cores
    stride = max(1, ncores // (max(tids) + 1))
    return [machine.thread(t, core_id=(t * stride) % ncores) for t in tids]


def run_scenario(scn: Scenario, policy: Optional[SchedulePolicy] = None,
                 *, max_events: int = 5_000_000) -> Outcome:
    """Execute one scenario under ``policy`` and return the verdict."""
    if policy is not None and scn.no_preempt_tags:
        policy = _TagFilterPolicy(policy, scn.no_preempt_tags)
    machine = Machine(tile_gx() if scn.mesh is None else
                      mesh_profile(*scn.mesh))
    machine.sim.max_events = max_events
    machine.sim.policy = policy

    history = History()
    rng = random.Random(scn.seed)
    think_unit = machine.cfg.work_cycles_per_iteration
    invariant_err: List[str] = []
    prims: List[Any] = []
    faults: Tuple = ()

    if scn.obj == "counter":
        optable = OpTable()
        addr, opcode = _register_counter(machine, optable)
        prim, tids, faults = _build_prim(scn, machine, optable)
        prim.start()
        prims.append(prim)
        tickets: List[int] = []
        ctxs = _client_ctxs(scn, machine, tids)
        spec: SequentialSpec = CounterSpec()

        if scn.admission == "none":
            def script(ctx, thinks):
                for k in range(scn.ops_each):
                    if ctx.sim.policy is not None:
                        yield from ctx.sched_point("script.gap")
                    t0 = machine.now
                    v = yield from prim.apply_op(ctx, opcode, 0)
                    history.record(ctx.tid, "inc", None, v, t0, machine.now)
                    tickets.append(v)
                    yield from ctx.work(thinks[k] * think_unit)

            scripts = [
                (ctx, script(ctx, [rng.randrange(0, 30) for _ in range(scn.ops_each)]))
                for ctx in ctxs
            ]

            def check_invariants():
                total = len(tids) * scn.ops_each
                if sorted(tickets) != list(range(total)):
                    invariant_err.append(
                        f"tickets are not a permutation of 0..{total - 1}: "
                        f"{sorted(tickets)}")
                final = machine.mem.peek(addr)
                if final != total:
                    invariant_err.append(
                        f"final counter {final} != {total} completed ops")
        else:
            # open-loop variant: a bounded source + admission queue +
            # worker per client.  Shed ops (queue-full or retry-exhausted)
            # never reach the primitive / never commit, so the recorded
            # history must linearize and the counter must equal exactly
            # the completed count -- a shed op appearing anywhere breaks
            # one of the oracles.
            adm = _admission_for(scn.admission)
            arrivals = ArrivalSpec(process="poisson", mean_gap_cycles=150.0)
            queues: List[AdmissionQueue] = []
            retry_shed = {"n": 0}

            def on_result(ctx, k, v, t0, t1):
                history.record(ctx.tid, "inc", None, v, t0, t1)
                tickets.append(v)

            def on_shed(ctx, k):
                retry_shed["n"] += 1

            scripts = []
            for ctx in ctxs:
                q = AdmissionQueue(machine, ctx.tid, adm.capacity)
                queues.append(q)
                src_rng = np.random.default_rng([scn.seed, ctx.tid])
                scripts.append(
                    (ctx, bounded_source(ctx, q, arrivals, src_rng,
                                         scn.ops_each)))
                scripts.append(
                    (ctx, bounded_worker(ctx, q, prim, opcode, adm,
                                         on_result=on_result,
                                         on_shed=on_shed)))

            def check_invariants():
                arrivals_total = len(tids) * scn.ops_each
                completed = len(tickets)
                shed_total = sum(q.shed for q in queues) + retry_shed["n"]
                if completed + shed_total != arrivals_total:
                    invariant_err.append(
                        f"{completed} completed + {shed_total} shed != "
                        f"{arrivals_total} arrivals")
                if sorted(tickets) != list(range(completed)):
                    invariant_err.append(
                        f"tickets are not a permutation of 0..{completed - 1}"
                        f" (a shed op executed?): {sorted(tickets)}")
                final = machine.mem.peek(addr)
                if final != completed:
                    invariant_err.append(
                        f"final counter {final} != {completed} completed ops "
                        f"(shed ops must leave no trace)")

    elif scn.obj in ("msqueue", "stack", "lcrq", "treiber", "elim", "pool"):
        pushed: List[int] = []
        popped: List[int] = []
        if scn.algo == "direct":
            if scn.obj == "lcrq":
                obj = LCRQ(machine, ring_size=8)
                push, pop, names = obj.enqueue, obj.dequeue, ("enq", "deq")
                spec = LCRQSpec()
            elif scn.obj == "treiber":
                obj = TreiberStack(machine)
                push, pop, names = obj.push, obj.pop, ("push", "pop")
                spec = StackSpec()
            elif scn.obj == "elim":
                obj = EliminationStack(machine, TreiberStack(machine),
                                       num_slots=2, window_cycles=60,
                                       seed=scn.seed + 77)
                push, pop, names = obj.push, obj.pop, ("push", "pop")
                spec = ElimStackSpec()
            elif scn.obj == "pool":
                # the same elimination front-end, validated against the
                # weaker bag oracle it guarantees when used as a buffer
                obj = EliminationStack(machine, TreiberStack(machine),
                                       num_slots=2, window_cycles=60,
                                       seed=scn.seed + 78)
                push, pop, names = obj.push, obj.pop, ("put", "get")
                spec = PoolSpec()
            else:
                raise ValueError(f"object {scn.obj!r} needs a delegation "
                                 f"algorithm")
            tids = list(range(scn.nthreads))
        else:
            optable = OpTable()
            prim, tids, faults = _build_prim(scn, machine, optable)
            if scn.obj == "msqueue":
                obj = OneLockMSQueue(prim)
                push, pop, names = obj.enqueue, obj.dequeue, ("enq", "deq")
                spec = QueueSpec()
            elif scn.obj == "stack":
                obj = LockedStack(prim)
                push, pop, names = obj.push, obj.pop, ("push", "pop")
                spec = StackSpec()
            else:
                raise ValueError(f"object {scn.obj!r} is direct-only")
            prim.start()
            prims.append(prim)

        def script(ctx, idx, thinks):
            for k in range(scn.ops_each):
                if ctx.sim.policy is not None:
                    yield from ctx.sched_point("script.gap")
                val = (idx + 1) * 1000 + k
                t0 = machine.now
                yield from push(ctx, val)
                history.record(ctx.tid, names[0], val, None, t0, machine.now)
                pushed.append(val)
                yield from ctx.work(thinks[2 * k] * think_unit)
                t0 = machine.now
                v = yield from pop(ctx)
                history.record(ctx.tid, names[1], None, v, t0, machine.now)
                popped.append(v)
                yield from ctx.work(thinks[2 * k + 1] * think_unit)

        ctxs = _client_ctxs(scn, machine, tids)
        scripts = [
            (ctx, script(ctx, i,
                         [rng.randrange(0, 30) for _ in range(2 * scn.ops_each)]))
            for i, ctx in enumerate(ctxs)
        ]

        def check_invariants():
            got = [v for v in popped if v != EMPTY]
            if len(got) != len(set(got)):
                invariant_err.append(f"an element was popped twice: {sorted(got)}")
            extras = set(got) - set(pushed)
            if extras:
                invariant_err.append(f"elements never pushed: {sorted(extras)}")
    else:
        raise ValueError(f"unknown object {scn.obj!r}")

    if faults:
        FaultInjector(machine, FaultPlan(seed=scn.seed, faults=faults)).install()

    try:
        run_ops(machine, scripts, prims=prims)
    except Exception as exc:  # noqa: BLE001 -- every escape is a finding
        return _outcome(False, "exception", f"{type(exc).__name__}: {exc}",
                        history, policy, machine)

    check_invariants()
    if invariant_err:
        return _outcome(False, "invariant", "; ".join(invariant_err),
                        history, policy, machine)
    try:
        linearizable = check_linearizable(history, spec)
    except RuntimeError as exc:
        return _outcome(False, "exception", f"checker: {exc}", history, policy,
                        machine)
    if not linearizable:
        return _outcome(False, "linearizability",
                        f"no legal linearization of {len(history)} ops "
                        f"against {type(spec).__name__}", history, policy, machine)
    return _outcome(True, "ok", "", history, policy, machine)


def _outcome(ok: bool, kind: str, detail: str, history: History,
             policy: Optional[SchedulePolicy], machine: Machine) -> Outcome:
    return Outcome(
        ok=ok, kind=kind, detail=detail,
        history=[(o.tid, o.op, o.arg, o.retval, o.invoke_t, o.response_t)
                 for o in history.ops],
        forced_choices=policy.forced_choices if policy is not None else 0,
        trace=list(policy.trace) if policy is not None else [],
        events=machine.sim.events_processed,
    )


# -- the matrix ----------------------------------------------------------------

def _scn(algo: str, obj: str, **kw) -> Scenario:
    return Scenario(sid=f"{algo}/{obj}", algo=algo, obj=obj, **kw)


def _admission_for(policy: str) -> AdmissionSpec:
    """Admission specs the matrix scenarios run under (tight on purpose:
    a capacity of 2 and a short dispatch deadline make shedding and
    timed-out dispatches common under forced preemption)."""
    if policy == "drop":
        return AdmissionSpec(policy="drop", capacity=2)
    if policy == "retry":
        return AdmissionSpec(policy="retry", capacity=2,
                             dispatch_timeout_cycles=800, max_retries=2,
                             backoff_base_cycles=64, backoff_cap_cycles=256)
    raise ValueError(f"unknown admission policy {policy!r}")


SMALL_MATRIX: List[Scenario] = [
    _scn("mp-server", "counter", nthreads=4, ops_each=6),
    _scn("shm-server", "counter", nthreads=4, ops_each=6),
    _scn("HybComb", "counter", nthreads=5, ops_each=6, max_ops=3),
    _scn("CC-Synch", "counter", nthreads=5, ops_each=6, max_ops=3),
    _scn("flat-combining", "counter", nthreads=4, ops_each=6),
    _scn("HybComb", "msqueue", nthreads=4, ops_each=5, max_ops=3),
    _scn("CC-Synch", "stack", nthreads=4, ops_each=5, max_ops=3),
    _scn("direct", "lcrq", nthreads=4, ops_each=5),
    _scn("direct", "treiber", nthreads=4, ops_each=5),
    _scn("direct", "pool", nthreads=4, ops_each=5),
]

FULL_MATRIX: List[Scenario] = SMALL_MATRIX + [
    _scn("mp-server", "msqueue", nthreads=4, ops_each=5),
    _scn("mp-server", "stack", nthreads=4, ops_each=5),
    _scn("shm-server", "msqueue", nthreads=4, ops_each=5),
    _scn("shm-server", "stack", nthreads=4, ops_each=5),
    _scn("HybComb", "stack", nthreads=4, ops_each=5, max_ops=3),
    _scn("CC-Synch", "msqueue", nthreads=4, ops_each=5, max_ops=3),
    _scn("flat-combining", "msqueue", nthreads=4, ops_each=5),
    _scn("flat-combining", "stack", nthreads=4, ops_each=5),
    _scn("direct", "elim", nthreads=4, ops_each=5),
    Scenario(sid="mp-server-ft/counter@crash", algo="mp-server-ft",
             obj="counter", nthreads=4, ops_each=6, fault="crash-server",
             no_preempt_tags=frozenset({"mp_server.poll", "object.rmw"})),
    # overload admission under forced preemption: shed ops must never
    # appear in the linearization (bounded-drop on a combiner, and
    # timed-dispatch retry racing the cancellable SHM-SERVER's claim CAS)
    Scenario(sid="HybComb/counter@drop", algo="HybComb", obj="counter",
             nthreads=4, ops_each=6, max_ops=3, admission="drop"),
    Scenario(sid="shm-server-cancel/counter@retry", algo="shm-server-cancel",
             obj="counter", nthreads=4, ops_each=6, admission="retry"),
    # big-machine scenarios: the same oracles on a 16x16 (256-core)
    # mesh with clients strided across the whole fabric, so forced UDN
    # delays and lane reorders act on genuinely long NoC paths.  These
    # are the schedule-exploration counterpart of the `scale` figure.
    Scenario(sid="HybComb/counter@256", algo="HybComb", obj="counter",
             nthreads=10, ops_each=4, max_ops=3, mesh=(16, 16)),
    Scenario(sid="mp-server-ft/msqueue@256crash", algo="mp-server-ft",
             obj="msqueue", nthreads=6, ops_each=4, fault="crash-server",
             mesh=(16, 16),
             no_preempt_tags=frozenset({"mp_server.poll"})),
]

#: the seeded-bug scenario of the mutation self-test (never in the
#: default matrices -- it is SUPPOSED to fail)
MUTATION_SCENARIO = Scenario(sid="hybcomb-buggy/counter", algo="hybcomb-buggy",
                             obj="counter", nthreads=5, ops_each=2, max_ops=2)


def matrix(name: str) -> List[Scenario]:
    if name == "small":
        return list(SMALL_MATRIX)
    if name == "full":
        return list(FULL_MATRIX)
    raise ValueError(f"unknown matrix {name!r} (expected 'small' or 'full')")


def scenario_by_id(sid: str) -> Scenario:
    """Resolve a scenario id (used by bundle replay)."""
    for scn in FULL_MATRIX + [MUTATION_SCENARIO]:
        if scn.sid == sid:
            return scn
    raise KeyError(f"unknown scenario id {sid!r}")
