"""Replayable repro bundles and the delta-debugging shrinker.

A bundle is one JSON file that pins everything a failing interleaving
needs to come back to life on another checkout:

* the scenario id (resolved through the registry, so the run recipe --
  machine, algorithm, object, scripts, fault plan -- is reconstructed
  from code, not deserialized);
* the machine-config fingerprint it was found under (refuse to replay
  against a different cost model: same trace + different costs is a
  different execution, and "it no longer reproduces" would be
  meaningless);
* the full decision trace, which *is* the schedule: the simulator is
  deterministic, so driving a fresh run with
  :class:`~repro.explore.policy.ReplayPolicy` over the trace reproduces
  the identical execution -- same history, same failure;
* provenance (search mode, policy parameters, failure summary) for the
  human reading the bundle.

:func:`shrink` minimizes a failing trace in two phases, re-running the
scenario as its oracle each step: first the shortest still-failing
prefix (binary search; decisions past the trace end fall back to the
default schedule, so truncation == zeroing the suffix), then ddmin
(Zeller & Hildebrandt) over the remaining *forced* (non-default)
decisions, zeroing complements chunk-wise.  Zeroing -- rather than
deleting -- entries keeps the per-kind decision queues aligned with the
decision points the replay run actually reaches.  The result is
typically a handful of forced choices: the ones that *are* the bug.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.explore.harness import Finding
from repro.explore.policy import ReplayPolicy
from repro.explore.scenarios import Outcome, run_scenario, scenario_by_id
from repro.machine import tile_gx

__all__ = ["ReproBundle", "bundle_from_finding", "save_bundle", "load_bundle",
           "replay", "verify_bundle", "shrink", "shrink_finding"]

_FORMAT = 1


@dataclass
class ReproBundle:
    """A self-contained, replayable description of one failing run."""

    scenario: str
    trace: List[Tuple[str, int]]
    kind: str
    detail: str
    config_fingerprint: str
    policy: Dict = field(default_factory=dict)
    format: int = _FORMAT

    @property
    def forced_choices(self) -> int:
        return sum(1 for _k, v in self.trace if v)


def bundle_from_finding(finding: Finding) -> ReproBundle:
    return ReproBundle(
        scenario=finding.scenario,
        trace=[(k, v) for k, v in finding.trace],
        kind=finding.kind,
        detail=finding.detail,
        config_fingerprint=tile_gx().fingerprint(),
        policy=dict(finding.policy),
    )


def save_bundle(bundle: ReproBundle, path: str) -> str:
    d = os.path.dirname(path)
    if d:
        os.makedirs(d, exist_ok=True)
    with open(path, "w") as f:
        json.dump(asdict(bundle), f, indent=2, sort_keys=True)
        f.write("\n")
    return path


def load_bundle(path: str) -> ReproBundle:
    with open(path) as f:
        raw = json.load(f)
    if raw.get("format") != _FORMAT:
        raise ValueError(f"unsupported bundle format {raw.get('format')!r}")
    raw["trace"] = [(str(k), int(v)) for k, v in raw["trace"]]
    return ReproBundle(**raw)


def replay(bundle: ReproBundle) -> Outcome:
    """Re-run the bundle's scenario under its recorded schedule."""
    fp = tile_gx().fingerprint()
    if bundle.config_fingerprint != fp:
        raise ValueError(
            f"bundle was recorded under machine config "
            f"{bundle.config_fingerprint}, this checkout builds {fp}; "
            f"the trace would not drive the same execution")
    scn = scenario_by_id(bundle.scenario)
    return run_scenario(scn, ReplayPolicy(bundle.trace))


def verify_bundle(bundle: ReproBundle, *, times: int = 2) -> Outcome:
    """Replay ``times`` times; every run must fail identically.

    Returns the (common) failing outcome; raises ``AssertionError`` if
    any replay passes or two replays disagree -- either would mean the
    run recipe picked up nondeterminism, which is a harness bug worth
    failing loudly over.
    """
    outcomes = [replay(bundle) for _ in range(times)]
    first = outcomes[0]
    for out in outcomes:
        assert not out.ok, "bundle replay did not reproduce the failure"
        assert (out.kind, out.detail, out.history) == \
            (first.kind, first.detail, first.history), \
            "two replays of the same bundle diverged"
    return first


def _zero_except(trace: List[Tuple[str, int]], keep: set) -> List[Tuple[str, int]]:
    return [(k, v if i in keep else 0) for i, (k, v) in enumerate(trace)]


def _trim(trace: List[Tuple[str, int]]) -> List[Tuple[str, int]]:
    """Drop the trailing run of default decisions (replay pads with 0)."""
    last = max((i for i, (_k, v) in enumerate(trace) if v), default=-1)
    return trace[:last + 1]


def shrink(bundle: ReproBundle, *, max_runs: int = 400,
           budget_seconds: Optional[float] = None) -> ReproBundle:
    """Minimize a failing trace; returns a new, smaller bundle.

    The shrunk bundle fails with the *same kind* of verdict as the
    original (a shrink step that turns a linearizability violation into
    a crash is rejected -- it would be minimizing a different bug).
    Bounded by ``max_runs`` scenario executions and optionally wall
    time; on exhaustion the best trace so far is returned, which is
    always still-failing.
    """
    scn = scenario_by_id(bundle.scenario)
    runs = 0
    t0 = time.monotonic()

    def out_of_budget() -> bool:
        if runs >= max_runs:
            return True
        return (budget_seconds is not None
                and time.monotonic() - t0 >= budget_seconds)

    # a candidate schedule can be pathologically slower than the failing
    # run (retry storms under half-zeroed delays); cap each oracle run at
    # a generous multiple of the original run's event count so one bad
    # candidate cannot eat the whole shrink budget (capped runs come back
    # as "exception" outcomes and simply count as not-reproducing)
    event_cap = [5_000_000]

    def fails(trace: List[Tuple[str, int]]) -> bool:
        nonlocal runs
        runs += 1
        out = run_scenario(scn, ReplayPolicy(trace), max_events=event_cap[0])
        return (not out.ok) and out.kind == bundle.kind

    trace = list(bundle.trace)
    runs -= 1  # the baseline run below establishes the cap, free of charge
    out0 = run_scenario(scn, ReplayPolicy(trace))
    if out0.ok or out0.kind != bundle.kind:
        raise AssertionError("bundle does not reproduce; nothing to shrink")
    event_cap[0] = max(50_000, 20 * out0.events)

    # phase 1: shortest still-failing prefix (binary search; the
    # predicate is usually monotone in the prefix length -- forcing
    # *fewer* trailing decisions keeps more of the default schedule --
    # and the final verification guards the cases where it is not)
    lo, hi = 0, len(trace)
    while lo < hi and not out_of_budget():
        mid = (lo + hi) // 2
        if fails(trace[:mid]):
            hi = mid
        else:
            lo = mid + 1
    if hi < len(trace) and fails(trace[:hi]):
        trace = trace[:hi]

    # phase 2: ddmin over the forced decisions, zeroing complements
    keep = [i for i, (_k, v) in enumerate(trace) if v]
    n = 2
    while len(keep) >= 2 and not out_of_budget():
        chunk = max(1, len(keep) // n)
        chunks = [keep[c:c + chunk] for c in range(0, len(keep), chunk)]
        for c in chunks:
            if out_of_budget():
                break
            cand = [i for i in keep if i not in c]
            if fails(_zero_except(trace, set(cand))):
                keep = cand
                n = max(2, n - 1)
                break
        else:
            if n >= len(keep):
                break
            n = min(len(keep), n * 2)

    trace = _trim(_zero_except(trace, set(keep)))
    out = run_scenario(scn, ReplayPolicy(trace))
    assert not out.ok and out.kind == bundle.kind, \
        "shrinker invariant: the minimized trace must still fail"
    meta = dict(bundle.policy)
    meta["shrunk"] = {"runs": runs,
                      "from_forced": bundle.forced_choices,
                      "from_len": len(bundle.trace)}
    return ReproBundle(scenario=bundle.scenario, trace=trace, kind=out.kind,
                       detail=out.detail,
                       config_fingerprint=bundle.config_fingerprint,
                       policy=meta)


def shrink_finding(finding: Finding, **kw) -> ReproBundle:
    return shrink(bundle_from_finding(finding), **kw)
