"""Schedule policies: the decision-makers behind the exploration seams.

The engine, the UDN fabric and the annotated algorithms each expose one
narrow decision point (see DESIGN.md §12):

* ``reorder_lane(entries, now)`` -- permute the same-cycle fast-lane
  chunk the engine is about to sweep (tie-break order between process
  resumes due at the same cycle);
* ``udn_delay(src_node, dst_core, demux, n_words, now)`` -- extra
  transit cycles for one message (the fabric clamps the resulting
  arrival so per-stream FIFO is preserved);
* ``preempt(tag, tid, now)`` -- cycles of forced preemption at an
  annotated algorithm step (``ThreadCtx.sched_point``).

Every decision a policy makes is appended to :attr:`SchedulePolicy.trace`
as a ``(kind, value)`` pair -- ``"L"``/``"U"``/``"P"`` for the three
seams -- where value 0 means "keep the default schedule".  Because the
simulator is otherwise deterministic, the trace *is* the schedule:
feeding it back through :class:`ReplayPolicy` reproduces the exact same
execution, which is what repro bundles and the shrinker are built on.

Lane permutations only shuffle process resumes (entries whose
``pinned`` attribute is false); plain callbacks -- model-internal
machinery like store-buffer drains and message deliveries -- are pinned
and keep their relative order, so a policy can never push the *machine
model* into a physically impossible state, only the threads into a
different legal interleaving.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Deque, Dict, List, Sequence, Tuple

__all__ = [
    "SchedulePolicy",
    "RandomWalkPolicy",
    "PCTPolicy",
    "BoundedPreemptionPolicy",
    "ReplayPolicy",
]

Decision = Tuple[str, int]


def _seeded_shuffle(xs: List, seed: int) -> None:
    """In-place Fisher-Yates driven by a tiny LCG.

    Deliberately not ``random.shuffle``: the permutation must be a pure
    function of ``seed`` across Python versions and processes, because
    the recorded seed is what repro bundles replay.
    """
    s = (seed ^ 0x9E3779B9) & 0x7FFFFFFF or 1
    for i in range(len(xs) - 1, 0, -1):
        s = (s * 1103515245 + 12345) & 0x7FFFFFFF
        j = s % (i + 1)
        xs[i], xs[j] = xs[j], xs[i]


class SchedulePolicy:
    """Base policy: records every decision; subclasses choose values.

    The base class always chooses 0 ("keep default") everywhere, so
    installing it changes nothing about the execution -- useful as a
    decision-point *counter* (``points``) for sizing systematic search.
    """

    kind = "null"

    def __init__(self) -> None:
        #: every decision made, in the order the run consulted the policy
        self.trace: List[Decision] = []
        #: decision points seen per kind (even when the choice was 0)
        self.points: Dict[str, int] = {"L": 0, "U": 0, "P": 0}

    # -- subclass choice hooks (value 0 = keep the default schedule) ------
    def _lane_choice(self, n: int, now: int) -> int:
        return 0

    def _udn_choice(self, src_node: int, dst_core: int, demux: int,
                    n_words: int, now: int) -> int:
        return 0

    def _preempt_choice(self, tag: str, tid: int, now: int) -> int:
        return 0

    # -- seam entry points (called by engine / UDN / sched_point) ---------
    def reorder_lane(self, entries: List, now: int) -> List:
        """Permute a same-cycle lane chunk; called only for len >= 2."""
        self.points["L"] += 1
        choice = int(self._lane_choice(len(entries), now))
        self.trace.append(("L", choice))
        if choice == 0:
            return entries
        # permute process resumes only; pin callbacks in place (lane
        # entries are scheduler objects exposing ``pinned``; see
        # repro.sim._engine_core)
        idx = [i for i, e in enumerate(entries) if not e.pinned]
        if len(idx) < 2:
            return entries
        vals = [entries[i] for i in idx]
        _seeded_shuffle(vals, choice)
        out = list(entries)
        for i, v in zip(idx, vals):
            out[i] = v
        return out

    def udn_delay(self, src_node: int, dst_core: int, demux: int,
                  n_words: int, now: int) -> int:
        self.points["U"] += 1
        d = int(self._udn_choice(src_node, dst_core, demux, n_words, now))
        self.trace.append(("U", d))
        return d

    def preempt(self, tag: str, tid: int, now: int) -> int:
        self.points["P"] += 1
        d = int(self._preempt_choice(tag, tid, now))
        self.trace.append(("P", d))
        return d

    # -- bookkeeping -------------------------------------------------------
    @property
    def forced_choices(self) -> int:
        """Decisions that deviated from the default schedule."""
        return sum(1 for _k, v in self.trace if v)

    def describe(self) -> Dict:
        """Provenance metadata stored in repro bundles (not replayed)."""
        return {"kind": self.kind}


class RandomWalkPolicy(SchedulePolicy):
    """Seeded random-walk fuzzing: at each decision point, independently
    deviate from the default schedule with a small probability.

    Lane deviations pick a random shuffle seed; UDN and preemption
    deviations pick a delay from a small menu spanning "a cache miss"
    to "an OS time slice", which is where most real-world races hide.
    """

    kind = "random-walk"

    def __init__(self, seed: int, *, p_lane: float = 0.25, p_udn: float = 0.2,
                 p_preempt: float = 0.25,
                 udn_delays: Sequence[int] = (40, 160, 600),
                 preempt_delays: Sequence[int] = (150, 700, 2500)):
        super().__init__()
        self.seed = seed
        self.p_lane = p_lane
        self.p_udn = p_udn
        self.p_preempt = p_preempt
        self.udn_delays = tuple(udn_delays)
        self.preempt_delays = tuple(preempt_delays)
        self._rng = random.Random(seed)

    def _lane_choice(self, n: int, now: int) -> int:
        r = self._rng
        return r.randrange(1, 1 << 30) if r.random() < self.p_lane else 0

    def _udn_choice(self, src_node: int, dst_core: int, demux: int,
                    n_words: int, now: int) -> int:
        r = self._rng
        return r.choice(self.udn_delays) if r.random() < self.p_udn else 0

    def _preempt_choice(self, tag: str, tid: int, now: int) -> int:
        r = self._rng
        return r.choice(self.preempt_delays) if r.random() < self.p_preempt else 0

    def describe(self) -> Dict:
        return {"kind": self.kind, "seed": self.seed,
                "p_lane": self.p_lane, "p_udn": self.p_udn,
                "p_preempt": self.p_preempt,
                "udn_delays": list(self.udn_delays),
                "preempt_delays": list(self.preempt_delays)}


class PCTPolicy(SchedulePolicy):
    """PCT-style priority schedules (Burckhardt et al.) over preemption
    points.

    Each thread gets a random priority on first sight; at every
    annotated step a thread is slowed proportionally to its priority
    rank (rank 0 runs full speed).  ``depth`` priority *change points*
    are sampled among the first ``horizon`` steps; a thread hitting one
    is demoted to the lowest rank -- the PCT trick that catches bugs
    needing d ordering constraints with probability ~1/(n * k^(d-1)).
    """

    kind = "pct"

    def __init__(self, seed: int, *, depth: int = 3, delay_unit: int = 300,
                 ranks: int = 4, horizon: int = 512):
        super().__init__()
        if ranks < 2:
            raise ValueError("ranks must be >= 2")
        self.seed = seed
        self.depth = depth
        self.delay_unit = delay_unit
        self.ranks = ranks
        self.horizon = horizon
        self._rng = random.Random(seed ^ 0x5CA1AB1E)
        self._prio: Dict[int, int] = {}
        self._change = frozenset(
            self._rng.sample(range(horizon), min(depth, horizon)))
        self._step = 0

    def _preempt_choice(self, tag: str, tid: int, now: int) -> int:
        prio = self._prio.get(tid)
        if prio is None:
            prio = self._rng.randrange(self.ranks)
            self._prio[tid] = prio
        k = self._step
        self._step += 1
        if k in self._change:
            self._prio[tid] = prio = self.ranks  # demote below everyone
        return prio * self.delay_unit

    def describe(self) -> Dict:
        return {"kind": self.kind, "seed": self.seed, "depth": self.depth,
                "delay_unit": self.delay_unit, "ranks": self.ranks,
                "horizon": self.horizon}


class BoundedPreemptionPolicy(SchedulePolicy):
    """Systematic mode: force preemptions at an explicit set of points.

    ``forced`` maps the global preemption-point index (0-based, in the
    order the run reaches them) to a delay.  The harness enumerates
    these maps in iterative preemption-bounding order: all schedules
    with one forced preemption, then all pairs, within budget -- most
    concurrency bugs need only one or two (the CHESS observation).
    """

    kind = "preemption-bound"

    def __init__(self, forced: Dict[int, int]):
        super().__init__()
        self.forced = {int(k): int(v) for k, v in forced.items()}
        self._step = 0

    def _preempt_choice(self, tag: str, tid: int, now: int) -> int:
        k = self._step
        self._step += 1
        return self.forced.get(k, 0)

    def describe(self) -> Dict:
        return {"kind": self.kind,
                "forced": {str(k): v for k, v in sorted(self.forced.items())}}


class ReplayPolicy(SchedulePolicy):
    """Replay a recorded trace: answer each decision point with the
    recorded value, in per-kind FIFO order; 0 past the end of the trace.

    Because the engine is deterministic, a run driven by the trace of a
    previous run reaches the same decision points in the same order and
    reproduces it exactly -- including its failure.  The shrinker relies
    on the "0 past the end" rule to test truncated prefixes.
    """

    kind = "replay"

    def __init__(self, trace: Sequence[Decision]):
        super().__init__()
        q: Dict[str, Deque[int]] = {"L": deque(), "U": deque(), "P": deque()}
        for k, v in trace:
            q[k].append(int(v))
        self._q = q

    def _lane_choice(self, n: int, now: int) -> int:
        q = self._q["L"]
        return q.popleft() if q else 0

    def _udn_choice(self, src_node: int, dst_core: int, demux: int,
                    n_words: int, now: int) -> int:
        q = self._q["U"]
        return q.popleft() if q else 0

    def _preempt_choice(self, tag: str, tid: int, now: int) -> int:
        q = self._q["P"]
        return q.popleft() if q else 0
