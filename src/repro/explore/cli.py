"""``python -m repro explore`` -- the schedule-exploration command line.

Actions (``run`` is implied when flags come first):

* ``run``      -- budgeted search over a scenario matrix; failing runs
  are verified (replayed twice), optionally shrunk, and written to the
  output directory as repro bundles.  Exit code 1 iff anything failed.
* ``replay``   -- bring a saved bundle back to life: re-run its exact
  interleaving twice and report the (identical) verdict.
* ``selftest`` -- the mutation self-test: explore the seeded-bug copy
  of HYBCOMB and succeed only if the bug is found within the budget.

Examples::

    python -m repro explore --budget 60 --matrix small
    python -m repro explore --budget 600 --matrix full --out bundles/
    python -m repro explore replay bundles/hybcomb-buggy_counter-3.json
    python -m repro explore selftest --budget 120
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.explore.bundle import (
    bundle_from_finding,
    load_bundle,
    replay,
    save_bundle,
    shrink,
    verify_bundle,
)
from repro.explore.harness import MODES, explore
from repro.explore.scenarios import FULL_MATRIX, MUTATION_SCENARIO, matrix, scenario_by_id

__all__ = ["main"]

_ACTIONS = ("run", "replay", "selftest")


def _add_budget_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument("--budget", type=float, default=60.0,
                   help="wall-clock budget in seconds (default 60)")
    p.add_argument("--max-schedules", type=int, default=None,
                   help="also stop after this many schedules")
    p.add_argument("--seed", type=int, default=0,
                   help="base seed for the seeded search modes")
    p.add_argument("--modes", default=",".join(MODES),
                   help=f"comma-separated subset of {','.join(MODES)}")


def _cmd_run(args) -> int:
    if args.scenario:
        scenarios = [scenario_by_id(s) for s in args.scenario]
    else:
        scenarios = matrix(args.matrix)
    modes = [m.strip() for m in args.modes.split(",") if m.strip()]
    report = explore(scenarios, budget_seconds=args.budget,
                     max_schedules=args.max_schedules, seed=args.seed,
                     modes=modes, stop_after=args.stop_after,
                     progress=lambda line: print(f"  FAIL {line}"))
    print(f"explored {report.schedules_run} schedules over "
          f"{len(scenarios)} scenarios in {report.wall_seconds:.1f}s "
          f"({', '.join(f'{m}: {n}' for m, n in report.per_mode.items())})")
    if report.ok:
        print("no failing interleaving found")
        return 0

    os.makedirs(args.out, exist_ok=True)
    per_scenario: dict = {}
    written: List[str] = []
    for finding in report.findings:
        key = (finding.scenario, finding.kind)
        per_scenario[key] = per_scenario.get(key, 0) + 1
        if per_scenario[key] > args.max_bundles:
            continue
        bundle = bundle_from_finding(finding)
        verify_bundle(bundle)
        if args.shrink:
            bundle = shrink(bundle)
        stem = finding.scenario.replace("/", "_").replace("@", "_")
        path = os.path.join(args.out, f"{stem}-{finding.schedule_index}.json")
        save_bundle(bundle, path)
        written.append(path)
        print(f"  bundle: {path}  [{bundle.kind}] "
              f"{bundle.forced_choices} forced choices")
    summary = {
        "schedules_run": report.schedules_run,
        "wall_seconds": report.wall_seconds,
        "per_mode": report.per_mode,
        "findings": [
            {"scenario": f.scenario, "kind": f.kind, "detail": f.detail,
             "mode": f.mode, "schedule_index": f.schedule_index}
            for f in report.findings
        ],
        "bundles": written,
    }
    with open(os.path.join(args.out, "report.json"), "w") as fh:
        json.dump(summary, fh, indent=2)
        fh.write("\n")
    print(f"{len(report.findings)} failing runs; {len(written)} bundles + "
          f"report.json in {args.out}/")
    return 1


def _cmd_replay(args) -> int:
    bundle = load_bundle(args.bundle)
    print(f"replaying {args.bundle}: scenario {bundle.scenario}, "
          f"{bundle.forced_choices} forced choices, recorded verdict "
          f"[{bundle.kind}] {bundle.detail}")
    try:
        out = verify_bundle(bundle, times=2)
    except AssertionError as exc:
        print(f"NOT reproduced: {exc}")
        return 2
    print(f"reproduced identically twice: [{out.kind}] {out.detail}")
    return 0


def _cmd_selftest(args) -> int:
    print("mutation self-test: exploring the seeded-bug HYBCOMB copy "
          f"({MUTATION_SCENARIO.sid}) ...")
    modes = [m.strip() for m in args.modes.split(",") if m.strip()]
    report = explore([MUTATION_SCENARIO], budget_seconds=args.budget,
                     max_schedules=args.max_schedules, seed=args.seed,
                     modes=modes, stop_after=1)
    if report.ok:
        print(f"FAILED: seeded bug not found in {report.schedules_run} "
              f"schedules / {report.wall_seconds:.1f}s -- the explorer "
              f"has lost its teeth")
        return 1
    f = report.findings[0]
    bundle = bundle_from_finding(f)
    verify_bundle(bundle)
    print(f"found after {f.schedule_index + 1} schedules via {f.mode}: "
          f"[{f.kind}] {f.detail}")
    print("bundle replays the identical failure twice -- self-test passed")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] not in _ACTIONS:
        argv = ["run"] + argv

    parser = argparse.ArgumentParser(prog="python -m repro explore",
                                     description=__doc__.split("\n")[0])
    sub = parser.add_subparsers(dest="action", required=True)

    run_p = sub.add_parser("run", help="budgeted schedule search")
    _add_budget_flags(run_p)
    run_p.add_argument("--matrix", choices=("small", "full"), default="small")
    run_p.add_argument("--scenario", action="append", default=None,
                       metavar="SID", help="explore only this scenario id "
                       "(repeatable; overrides --matrix)")
    run_p.add_argument("--out", default="explore-out",
                       help="directory for repro bundles (default explore-out)")
    run_p.add_argument("--stop-after", type=int, default=None,
                       help="stop once this many failures accumulated")
    run_p.add_argument("--max-bundles", type=int, default=2,
                       help="bundles kept per (scenario, kind) (default 2)")
    run_p.add_argument("--no-shrink", dest="shrink", action="store_false",
                       help="save raw traces without delta-debugging them")

    rep_p = sub.add_parser("replay", help="replay a saved repro bundle")
    rep_p.add_argument("bundle", help="path to a bundle .json")

    self_p = sub.add_parser("selftest", help="seeded-bug detection check")
    _add_budget_flags(self_p)

    args = parser.parse_args(argv)
    if args.action == "run":
        return _cmd_run(args)
    if args.action == "replay":
        return _cmd_replay(args)
    return _cmd_selftest(args)


if __name__ == "__main__":
    sys.exit(main())
