"""Schedule exploration: adversarial interleaving search with
linearizability oracles and replayable repro bundles.

The simulator is deterministic by construction, which makes every test
run reproducible -- and means plain testing only ever exercises *one*
interleaving per configuration.  This package searches the
neighbourhood: three controlled-nondeterminism seams (same-cycle
tie-breaks, UDN delivery delay within per-stream FIFO bounds, forced
preemption at annotated algorithm steps) are driven by pluggable
:class:`~repro.explore.policy.SchedulePolicy` objects, every decision is
recorded, and failing runs ship as self-contained JSON bundles that
replay the exact interleaving -- then shrink to the few forced choices
that constitute the bug.

With no policy installed (``sim.policy is None``, the default) every
seam is inert and the simulator's schedule is bit-identical to before
this package existed; the golden fingerprint tests pin that down.

Entry points: ``python -m repro explore`` (CLI), :func:`explore`
(library), :func:`run_scenario` (single runs), :mod:`~repro.explore.bundle`
(replay/shrink).  See DESIGN.md §12.
"""

from repro.explore.bundle import (
    ReproBundle,
    bundle_from_finding,
    load_bundle,
    replay,
    save_bundle,
    shrink,
    shrink_finding,
    verify_bundle,
)
from repro.explore.harness import MODES, ExploreReport, Finding, explore
from repro.explore.policy import (
    BoundedPreemptionPolicy,
    PCTPolicy,
    RandomWalkPolicy,
    ReplayPolicy,
    SchedulePolicy,
)
from repro.explore.scenarios import (
    FULL_MATRIX,
    MUTATION_SCENARIO,
    SMALL_MATRIX,
    Outcome,
    Scenario,
    matrix,
    run_scenario,
    scenario_by_id,
)

__all__ = [
    "MODES",
    "FULL_MATRIX",
    "MUTATION_SCENARIO",
    "SMALL_MATRIX",
    "BoundedPreemptionPolicy",
    "ExploreReport",
    "Finding",
    "Outcome",
    "PCTPolicy",
    "RandomWalkPolicy",
    "ReplayPolicy",
    "ReproBundle",
    "Scenario",
    "SchedulePolicy",
    "bundle_from_finding",
    "explore",
    "load_bundle",
    "matrix",
    "replay",
    "run_scenario",
    "save_bundle",
    "scenario_by_id",
    "shrink",
    "shrink_finding",
    "verify_bundle",
]
