"""The budgeted exploration loop: schedules in, findings out.

:func:`explore` round-robins over a scenario matrix, driving each run
with a policy drawn from the enabled search modes:

* ``random`` -- :class:`~repro.explore.policy.RandomWalkPolicy` with an
  incrementing seed (schedule fuzzing; the workhorse);
* ``pct`` -- :class:`~repro.explore.policy.PCTPolicy` priority
  schedules (good at bugs needing few ordering constraints);
* ``systematic`` -- iterative preemption bounding over the scenario's
  annotated points (:class:`~repro.explore.policy.BoundedPreemptionPolicy`):
  every single forced preemption first, then every pair, in a fixed
  enumeration order.  Exhaustive within its bound, so a clean pass is a
  (bounded) guarantee rather than a statistical one.

The budget is wall-clock seconds and/or a schedule count -- whichever
runs out first.  Wall-clock measurement happens *on the host*, which is
fine here: exploration is a meta-level testing tool, not part of the
simulated machine (the determinism rule protects ``repro.sim`` /
``repro.mem``, not this package; replays are made deterministic by the
recorded trace, not by when the search stopped).

Every failing run is returned as a :class:`Finding` carrying the full
decision trace, which :mod:`repro.explore.bundle` turns into a
replayable repro bundle.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.explore.policy import (
    BoundedPreemptionPolicy,
    PCTPolicy,
    RandomWalkPolicy,
    SchedulePolicy,
)
from repro.explore.scenarios import Outcome, Scenario, run_scenario

__all__ = ["Finding", "ExploreReport", "explore", "MODES"]

MODES = ("random", "pct", "systematic")

#: preemption menu for the systematic mode (cycles); spans "longer than
#: a combining session" and "longer than any lease/timeout in the matrix"
_SYSTEMATIC_DELAYS = (700, 2500)


@dataclass
class Finding:
    """One failing explored run, with everything needed to reproduce it."""

    scenario: str                  #: Scenario.sid
    schedule_index: int            #: which explored schedule found it
    mode: str                      #: search mode that produced the policy
    policy: Dict                   #: policy provenance (describe())
    kind: str                      #: "linearizability" | "invariant" | "exception"
    detail: str
    forced_choices: int
    trace: List[Tuple[str, int]]
    history: List[Tuple]


@dataclass
class ExploreReport:
    """Summary of one exploration session."""

    scenarios: List[str]
    schedules_run: int = 0
    wall_seconds: float = 0.0
    per_mode: Dict[str, int] = field(default_factory=dict)
    findings: List[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings


def _systematic_policies(scn: Scenario) -> Iterator[Tuple[SchedulePolicy, Dict]]:
    """Iterative preemption bounding: enumerate 1-preemption schedules,
    then 2-preemption schedules, over the points the default run visits.

    The point count is probed with a decision-counting null policy (its
    choices are all "keep default", so the probe run is the unmodified
    schedule).  Forcing a preemption can *create* points past the probed
    horizon (new retries); those are reachable by the later entries
    anyway, so the enumeration stays a bounded under-approximation --
    which is the deal systematic modes always make.
    """
    probe = SchedulePolicy()
    run_scenario(scn, probe)
    npoints = probe.points["P"]
    for d in _SYSTEMATIC_DELAYS:
        for i in range(npoints):
            yield BoundedPreemptionPolicy({i: d}), {"bound": 1}
    for d1 in _SYSTEMATIC_DELAYS:
        for d2 in _SYSTEMATIC_DELAYS:
            for i in range(npoints):
                for j in range(npoints):
                    if i != j:
                        yield BoundedPreemptionPolicy({i: d1, j: d2}), {"bound": 2}


def _policy_stream(scn: Scenario, mode: str, base_seed: int,
                   ) -> Iterator[Tuple[SchedulePolicy, Dict]]:
    if mode == "random":
        k = 0
        while True:
            yield RandomWalkPolicy(seed=base_seed + k), {}
            k += 1
    elif mode == "pct":
        k = 0
        while True:
            yield PCTPolicy(seed=base_seed + k), {}
            k += 1
    elif mode == "systematic":
        yield from _systematic_policies(scn)
    else:
        raise ValueError(f"unknown mode {mode!r} (expected one of {MODES})")


def explore(scenarios: Sequence[Scenario], *,
            budget_seconds: Optional[float] = None,
            max_schedules: Optional[int] = None,
            seed: int = 0,
            modes: Sequence[str] = MODES,
            stop_after: Optional[int] = None,
            max_events: int = 5_000_000,
            progress: Optional[Callable[[str], None]] = None) -> ExploreReport:
    """Search the schedule space of ``scenarios`` within a budget.

    ``budget_seconds`` / ``max_schedules``: stop when either runs out
    (at least one must be given).  ``stop_after``: stop early once that
    many findings have accumulated (e.g. 1 for the mutation self-test).
    ``seed`` offsets every seeded policy, so two sessions with different
    seeds explore different schedules.  ``max_events`` caps each run's
    engine-event count; runs that blow it surface as "exception"
    findings, so keep it generous (default 5M, ~50x a normal matrix
    run) unless the scenario under search is known-broken and runaway
    retry storms are expected (the mutation self-test caps harder just
    to stay fast).

    The loop interleaves scenarios and modes round-robin so a short
    budget still spreads over the whole matrix instead of exhausting it
    on the first scenario.
    """
    if budget_seconds is None and max_schedules is None:
        raise ValueError("give a wall-time or schedule-count budget")
    modes = tuple(modes)
    for m in modes:
        if m not in MODES:
            raise ValueError(f"unknown mode {m!r} (expected one of {MODES})")

    report = ExploreReport(scenarios=[s.sid for s in scenarios])
    report.per_mode = {m: 0 for m in modes}
    streams: Dict[Tuple[str, str], Iterator] = {}
    t0 = time.monotonic()
    exhausted: set = set()
    i = 0
    while True:
        if budget_seconds is not None and time.monotonic() - t0 >= budget_seconds:
            break
        if max_schedules is not None and report.schedules_run >= max_schedules:
            break
        if len(exhausted) == len(scenarios) * len(modes):
            break  # systematic-only sessions can finish the enumeration
        scn = scenarios[i % len(scenarios)]
        mode = modes[(i // len(scenarios)) % len(modes)]
        i += 1
        key = (scn.sid, mode)
        if key in exhausted:
            continue
        stream = streams.get(key)
        if stream is None:
            stream = streams[key] = _policy_stream(scn, mode, seed)
        try:
            policy, extra = next(stream)
        except StopIteration:
            exhausted.add(key)
            continue
        outcome = run_scenario(scn, policy, max_events=max_events)
        report.schedules_run += 1
        report.per_mode[mode] += 1
        if not outcome.ok:
            meta = policy.describe()
            meta.update(extra)
            report.findings.append(_finding(scn, report.schedules_run - 1,
                                            mode, meta, outcome))
            if progress is not None:
                progress(f"[{scn.sid}] {outcome.kind}: {outcome.detail}")
            if stop_after is not None and len(report.findings) >= stop_after:
                break
    report.wall_seconds = time.monotonic() - t0
    return report


def _finding(scn: Scenario, index: int, mode: str, meta: Dict,
             outcome: Outcome) -> Finding:
    return Finding(
        scenario=scn.sid, schedule_index=index, mode=mode, policy=meta,
        kind=outcome.kind, detail=outcome.detail,
        forced_choices=outcome.forced_choices, trace=list(outcome.trace),
        history=list(outcome.history),
    )
