"""Open-loop traffic, admission control, and graceful degradation.

The Section 5.2 loop is *closed*: each thread issues its next operation
only after the previous one completes, so offered load can never exceed
service capacity and the system self-clocks into its hockey-stick knee
without ever crossing it.  Production traffic is *open*: requests
arrive at a rate set by the outside world (the ROADMAP's "millions of
users"), indifferent to whether the delegation server is keeping up.
This module adds that regime on top of the unchanged machine model:

* **Arrival processes** (:class:`ArrivalSpec`) -- deterministic-rate,
  Poisson, or bursty (a 2-state MMPP: calm/burst phases with
  exponential dwell times), all driven by the seeded-RNG discipline so
  runs are bit-reproducible.
* **Admission queues** (:class:`AdmissionQueue`) -- a bounded FIFO in
  front of each delegation client.  Sources never block (open-loop
  arrivals do not wait for the system); when the bound is hit the
  policy decides: ``unbounded`` grows without limit (today's implicit
  behavior), ``drop`` sheds the arrival, ``retry`` additionally bounds
  each *dispatch* with a deadline and retries timed-out dispatches
  under capped exponential backoff, optionally behind a circuit
  breaker that trips the client to a local-spin fallback after
  consecutive timeouts and half-opens after a cooldown.
* **Degradation metrics** -- per-op queue-entry timestamps decompose
  sojourn time into admission wait + service time; the run reports
  p99.9 sojourn latency, goodput (admitted-and-completed ops/s),
  shed/timeout/retry counts, time-in-SLO, and a queue-depth-over-time
  series.  ``admit.enqueue`` / ``admit.shed`` / ``admit.retry`` events
  go to the observability bus so traces and critical-path blame can
  attribute overload stalls.

Shedding is *provably side-effect free*: a queue-full shed never
reaches the primitive at all, and a retry-shed only follows
:class:`~repro.core.api.DispatchTimeout`, whose contract is that the
abandoned dispatch executed nothing anywhere in the machine.  The
explore-matrix scenarios lean on exactly that to show shed ops never
appear in a linearization.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Any, Callable, Deque, Dict, Generator, Iterator, List, Optional, Sequence,
    Tuple,
)

import numpy as np

from repro.core.api import NULL_ARG, DispatchTimeout, SyncPrimitive
from repro.machine.machine import Machine, ThreadCtx
from repro.obs.timeseries import TimeSeries
from repro.sim.resources import Condition
from repro.workload.metrics import RunResult

__all__ = [
    "AdmissionQueue",
    "AdmissionSpec",
    "ArrivalSpec",
    "OpenLoopSpec",
    "bounded_source",
    "bounded_worker",
    "run_openloop_workload",
]

_PROCESSES = ("deterministic", "poisson", "bursty")
_POLICIES = ("unbounded", "drop", "retry")

#: slices the measurement window is cut into for time-in-SLO accounting
_SLO_SLICES = 64


# ---------------------------------------------------------------------------
# arrival processes
# ---------------------------------------------------------------------------

@dataclass
class ArrivalSpec:
    """One source's arrival process, parameterized by the mean gap.

    The offered rate of a source is ``1 / mean_gap_cycles`` arrivals per
    cycle (``bursty`` alternates between ``mean_gap_cycles`` in the calm
    state and ``burst_gap_cycles`` inside bursts; see
    :meth:`offered_rate` for the dwell-weighted average).
    """

    process: str = "poisson"
    mean_gap_cycles: float = 200.0
    #: bursty only: gap inside bursts (defaults to ``mean_gap_cycles/4``)
    burst_gap_cycles: Optional[float] = None
    #: bursty only: mean dwell time of the burst / calm states
    burst_dwell_cycles: float = 4_000.0
    calm_dwell_cycles: float = 16_000.0

    def __post_init__(self) -> None:
        if self.process not in _PROCESSES:
            raise ValueError(f"unknown arrival process {self.process!r}; "
                             f"pick one of {_PROCESSES}")
        if self.mean_gap_cycles <= 0:
            raise ValueError(
                f"mean_gap_cycles must be > 0, got {self.mean_gap_cycles}")
        if self.burst_gap_cycles is not None and self.burst_gap_cycles <= 0:
            raise ValueError(
                f"burst_gap_cycles must be > 0, got {self.burst_gap_cycles}")
        if self.burst_dwell_cycles <= 0 or self.calm_dwell_cycles <= 0:
            raise ValueError("dwell times must be > 0")

    @property
    def offered_rate(self) -> float:
        """Long-run arrivals per cycle from one source."""
        if self.process != "bursty":
            return 1.0 / self.mean_gap_cycles
        bg = self.burst_gap_cycles or self.mean_gap_cycles / 4
        wb, wc = self.burst_dwell_cycles, self.calm_dwell_cycles
        return (wb / bg + wc / self.mean_gap_cycles) / (wb + wc)

    def gaps(self, rng: np.random.Generator) -> Iterator[int]:
        """Infinite stream of inter-arrival gaps (integer cycles >= 1).

        Deterministic gaps use error diffusion so fractional rates
        average out exactly; the stochastic processes draw from ``rng``
        only, keeping runs reproducible under the seed discipline.
        """
        if self.process == "deterministic":
            acc = 0.0
            while True:
                acc += self.mean_gap_cycles
                g = int(acc)
                acc -= g
                yield max(1, g)
        elif self.process == "poisson":
            while True:
                yield max(1, int(round(rng.exponential(self.mean_gap_cycles))))
        else:  # bursty: 2-state MMPP with exponential dwells
            bg = self.burst_gap_cycles or self.mean_gap_cycles / 4
            phases = ((self.mean_gap_cycles, self.calm_dwell_cycles),
                      (bg, self.burst_dwell_cycles))
            while True:
                for mean_gap, dwell in phases:
                    t = 0.0
                    horizon = rng.exponential(dwell)
                    while t < horizon:
                        g = max(1, int(round(rng.exponential(mean_gap))))
                        t += g
                        yield g


# ---------------------------------------------------------------------------
# admission control
# ---------------------------------------------------------------------------

@dataclass
class AdmissionSpec:
    """What happens when arrivals outpace service.

    ``unbounded`` reproduces the implicit pre-overload-layer behavior:
    the queue grows without limit and sojourn time diverges past the
    knee.  ``drop`` sheds arrivals that find the queue full.  ``retry``
    sheds on a full queue too, and additionally gives every *dispatch* a
    deadline: a dispatch the primitive cannot commit in
    ``dispatch_timeout_cycles`` is abandoned (side-effect free, see
    :class:`~repro.core.api.DispatchTimeout`) and retried after capped
    exponential backoff, up to ``max_retries`` times.  With
    ``breaker_threshold`` set, ``breaker_threshold`` *consecutive*
    timeouts trip the client to a local-spin fallback for
    ``breaker_cooldown_cycles``; the next dispatch is a half-open probe
    that closes the breaker on success or re-trips it on failure.
    """

    policy: str = "unbounded"
    #: queue bound; required for drop/retry, forbidden for unbounded
    capacity: Optional[int] = None
    #: retry only: per-dispatch deadline in cycles
    dispatch_timeout_cycles: Optional[int] = None
    max_retries: int = 3
    backoff_base_cycles: int = 256
    backoff_cap_cycles: int = 4_096
    #: consecutive timeouts that trip the circuit breaker (None = off)
    breaker_threshold: Optional[int] = None
    breaker_cooldown_cycles: int = 8_192
    #: sojourn-latency SLO target for time-in-SLO accounting (None = off)
    slo_cycles: Optional[int] = None

    def __post_init__(self) -> None:
        if self.policy not in _POLICIES:
            raise ValueError(f"unknown admission policy {self.policy!r}; "
                             f"pick one of {_POLICIES}")
        if self.policy == "unbounded":
            if self.capacity is not None:
                raise ValueError("unbounded admission takes no capacity "
                                 "(use policy='drop' or 'retry' to bound)")
        elif self.capacity is None or self.capacity < 1:
            raise ValueError(f"policy {self.policy!r} needs capacity >= 1, "
                             f"got {self.capacity}")
        if self.policy == "retry":
            if (self.dispatch_timeout_cycles is None
                    or self.dispatch_timeout_cycles < 1):
                raise ValueError("policy 'retry' needs dispatch_timeout_cycles"
                                 f" >= 1, got {self.dispatch_timeout_cycles}")
            if self.max_retries < 0:
                raise ValueError(
                    f"max_retries must be >= 0, got {self.max_retries}")
            if self.backoff_base_cycles < 1:
                raise ValueError("backoff_base_cycles must be >= 1")
            if self.backoff_cap_cycles < self.backoff_base_cycles:
                raise ValueError("backoff_cap_cycles must be >= "
                                 "backoff_base_cycles")
        elif self.dispatch_timeout_cycles is not None:
            raise ValueError("dispatch_timeout_cycles only applies to "
                             "policy='retry'")
        if self.breaker_threshold is not None:
            if self.policy != "retry":
                raise ValueError("the circuit breaker rides on dispatch "
                                 "timeouts; it needs policy='retry'")
            if self.breaker_threshold < 1:
                raise ValueError("breaker_threshold must be >= 1")
            if self.breaker_cooldown_cycles < 1:
                raise ValueError("breaker_cooldown_cycles must be >= 1")
        if self.slo_cycles is not None and self.slo_cycles < 1:
            raise ValueError(f"slo_cycles must be >= 1, got {self.slo_cycles}")


@dataclass
class OpenLoopSpec:
    """Timing + traffic + admission parameters of one open-loop run."""

    arrivals: ArrivalSpec = field(default_factory=ArrivalSpec)
    admission: AdmissionSpec = field(default_factory=AdmissionSpec)
    warmup_cycles: int = 30_000
    measure_cycles: int = 120_000
    seed: int = 42
    #: queue-depth sampling period for the depth-over-time series
    depth_sample_cycles: int = 1_000

    def __post_init__(self) -> None:
        if self.warmup_cycles < 0:
            raise ValueError(
                f"warmup_cycles must be >= 0, got {self.warmup_cycles}")
        if self.measure_cycles < 1:
            raise ValueError(
                f"measure_cycles must be >= 1, got {self.measure_cycles}")
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ValueError(f"seed must be an integer, got {self.seed!r}")
        if self.seed < 0:
            raise ValueError(f"seed must be >= 0, got {self.seed}")
        if self.depth_sample_cycles < 1:
            raise ValueError("depth_sample_cycles must be >= 1, got "
                             f"{self.depth_sample_cycles}")


class AdmissionQueue:
    """Bounded FIFO between one open-loop source and its client thread.

    Pure Python state plus a :class:`~repro.sim.resources.Condition` for
    worker wakeups -- the queue models client-local software (a request
    buffer in the client's own memory), so it costs no simulated shared
    traffic.  Items are ``(op_index, enqueue_cycle)``; the timestamp is
    what decomposes sojourn into admission wait + service time.
    """

    def __init__(self, machine: Machine, tid: int,
                 capacity: Optional[int] = None):
        self.sim = machine.sim
        self.tid = tid
        self.capacity = capacity
        self.items: Deque[Tuple[int, int]] = deque()
        self._cond = Condition(self.sim, label=f"admission-queue tid={tid}")
        self.closed = False
        self.enqueued = 0
        self.shed = 0
        self.depth_peak = 0

    def __len__(self) -> int:
        return len(self.items)

    def offer(self, k: int) -> bool:
        """Admit arrival ``k`` or shed it; never blocks (open loop)."""
        obs = self.sim.obs
        depth = len(self.items)
        if self.capacity is not None and depth >= self.capacity:
            self.shed += 1
            if obs is not None:
                obs.emit("admit.shed", tid=self.tid, op=k, depth=depth,
                         reason="queue-full")
            return False
        self.items.append((k, self.sim.now))
        self.enqueued += 1
        depth += 1
        if depth > self.depth_peak:
            self.depth_peak = depth
        if obs is not None:
            obs.emit("admit.enqueue", tid=self.tid, op=k, depth=depth)
        self._cond.notify_all()
        return True

    def take(self) -> Generator[Any, Any, Optional[Tuple[int, int]]]:
        """Block until an item is available; None once closed and drained."""
        while True:
            if self.items:
                return self.items.popleft()
            if self.closed:
                return None
            yield from self._cond.wait()

    def close(self) -> None:
        """No further arrivals; wakes workers so they can drain and exit."""
        self.closed = True
        self._cond.notify_all()


# ---------------------------------------------------------------------------
# dispatch under the admission policy (retry / backoff / circuit breaker)
# ---------------------------------------------------------------------------

def _breaker_state() -> Dict[str, Any]:
    return {"consecutive": 0, "open_until": None, "half_open": False}


def _dispatch(
    ctx: ThreadCtx,
    prim: SyncPrimitive,
    opcode: int,
    arg: int,
    adm: AdmissionSpec,
    state: Dict[str, Any],
    counters: Dict[str, int],
) -> Generator[Any, Any, Tuple[bool, Optional[int]]]:
    """One admitted op through the policy; returns ``(completed, retval)``.

    ``(False, None)`` means the op was dropped after exhausting its
    retries -- every attempt ended in a pre-commit
    :class:`DispatchTimeout`, so the op provably never executed.
    """
    if adm.policy != "retry":
        retval = yield from prim.apply_op(ctx, opcode, arg)
        return True, retval
    sim = ctx.sim
    attempt = 0
    while True:
        if state["open_until"] is not None:
            # breaker open: local-spin fallback -- burn the cooldown on
            # the client's own core instead of hammering the shared path,
            # then half-open with the next dispatch as the probe
            remaining = state["open_until"] - sim.now
            if remaining > 0:
                yield from ctx.work(remaining)
            state["open_until"] = None
            state["half_open"] = True
        try:
            retval = yield from prim.apply_op_timed(
                ctx, opcode, arg, timeout=adm.dispatch_timeout_cycles)
        except DispatchTimeout:
            counters["timeouts"] += 1
            state["consecutive"] += 1
            tripped = adm.breaker_threshold is not None and (
                state["half_open"]
                or state["consecutive"] >= adm.breaker_threshold)
            if state["half_open"]:
                state["half_open"] = False
            obs = sim.obs
            if tripped:
                state["open_until"] = sim.now + adm.breaker_cooldown_cycles
                counters["breaker_trips"] += 1
                if obs is not None:
                    obs.emit("admit.breaker", tid=ctx.tid, state="open",
                             until=state["open_until"])
            if attempt >= adm.max_retries:
                counters["retry_shed"] += 1
                if obs is not None:
                    obs.emit("admit.shed", tid=ctx.tid, op=-1, depth=0,
                             reason="timeout")
                return False, None
            attempt += 1
            counters["retries"] += 1
            backoff = min(adm.backoff_cap_cycles,
                          adm.backoff_base_cycles << (attempt - 1))
            if obs is not None:
                obs.emit("admit.retry", tid=ctx.tid, attempt=attempt,
                         backoff=backoff)
            yield from ctx.work(backoff)
        else:
            state["consecutive"] = 0
            if state["half_open"]:
                state["half_open"] = False
                obs = sim.obs
                if obs is not None:
                    obs.emit("admit.breaker", tid=ctx.tid, state="closed",
                             until=0)
            return True, retval


# ---------------------------------------------------------------------------
# bounded scripts (correctness tools: history recording, exploration)
# ---------------------------------------------------------------------------

def bounded_source(
    ctx: ThreadCtx,
    queue: AdmissionQueue,
    arrivals: ArrivalSpec,
    rng: np.random.Generator,
    n_ops: int,
) -> Generator[Any, Any, None]:
    """Offer exactly ``n_ops`` arrivals, then close the queue.

    The gaps are pure simulated-time delays (``yield gap``), not core
    work: the source models the outside world, so it charges nothing to
    any core's counters.
    """
    for k, gap in zip(range(n_ops), arrivals.gaps(rng)):
        yield gap
        queue.offer(k)
    queue.close()


def bounded_worker(
    ctx: ThreadCtx,
    queue: AdmissionQueue,
    prim: SyncPrimitive,
    opcode: int,
    adm: AdmissionSpec,
    *,
    arg_of: Optional[Callable[[ThreadCtx, int], int]] = None,
    on_result: Optional[Callable[[ThreadCtx, int, int, int, int], None]] = None,
    on_shed: Optional[Callable[[ThreadCtx, int], None]] = None,
) -> Generator[Any, Any, None]:
    """Drain ``queue`` through ``prim`` until it closes.

    ``on_result(ctx, k, retval, invoke_t, response_t)`` fires for every
    completed op (the hook the linearizability scenarios use to record
    history); ``on_shed(ctx, k)`` for every retry-shed one.
    """
    state = _breaker_state()
    counters: Dict[str, int] = {"timeouts": 0, "retries": 0,
                                "retry_shed": 0, "breaker_trips": 0}
    while True:
        item = yield from queue.take()
        if item is None:
            return
        k, _t_arr = item
        arg = arg_of(ctx, k) if arg_of is not None else NULL_ARG
        t0 = ctx.sim.now
        ok, retval = yield from _dispatch(ctx, prim, opcode, arg, adm,
                                          state, counters)
        if ok and on_result is not None:
            on_result(ctx, k, retval, t0, ctx.sim.now)
        elif not ok and on_shed is not None:
            on_shed(ctx, k)


# ---------------------------------------------------------------------------
# the windowed open-loop driver
# ---------------------------------------------------------------------------

def run_openloop_workload(
    machine: Machine,
    ctxs: Sequence[ThreadCtx],
    prim: SyncPrimitive,
    opcode: int,
    spec: OpenLoopSpec,
    *,
    name: str = "?",
    arg_of: Optional[Callable[[ThreadCtx, int], int]] = None,
) -> RunResult:
    """Drive open-loop traffic through ``prim`` and measure one window.

    One source + one admission queue + one worker per client thread in
    ``ctxs``; each source offers arrivals per ``spec.arrivals`` (so the
    machine-wide offered rate is ``len(ctxs) * arrivals.offered_rate``).
    Returns a :class:`RunResult` whose throughput/latency fields are
    computed over *sojourn* (arrival to completion), with overload
    extras under ``ol.*`` keys and the queue-depth series attached.
    """
    if not ctxs:
        raise ValueError("run_openloop_workload needs at least one client "
                         "thread (got an empty ctxs sequence)")
    adm = spec.admission
    sim = machine.sim
    n = len(ctxs)

    queues = [AdmissionQueue(machine, ctx.tid, adm.capacity) for ctx in ctxs]
    in_window = {"on": False}
    window_t0 = spec.warmup_cycles
    slice_len = max(1, spec.measure_cycles // _SLO_SLICES)

    ops_done = [0] * n
    latencies: List[int] = []          # sojourn = completion - arrival
    admit_waits: List[int] = []        # take - arrival
    offered_w = {"n": 0}
    counters: Dict[str, int] = {"timeouts": 0, "retries": 0,
                                "retry_shed": 0, "breaker_trips": 0}
    # per-slice SLO accounting (completions, violations, max depth seen)
    slice_completions = [0] * _SLO_SLICES
    slice_violations = [0] * _SLO_SLICES
    slice_depth_max = [0] * _SLO_SLICES
    # the depth record is a shared-layer ring series (DESIGN.md §14), not
    # an unbounded list: per-bucket sum/count/max compose exactly under
    # downsample-on-wrap, so the fingerprinted ``ol.qdepth_*`` extras are
    # identical to the old list-based accounting at any run length
    depth_ts = TimeSeries("admit.qdepth", kind="gauge", buckets=512,
                          bucket_cycles=spec.depth_sample_cycles,
                          t0=window_t0, unit="reqs")
    next_op_id = itertools.count()

    def _slice_of(t: int) -> int:
        return min(_SLO_SLICES - 1, (t - window_t0) // slice_len)

    def source(i: int, ctx: ThreadCtx, q: AdmissionQueue) -> Generator:
        rng = np.random.default_rng([spec.seed, ctx.tid])
        k = 0
        for gap in spec.arrivals.gaps(rng):
            yield gap
            if in_window["on"]:
                offered_w["n"] += 1
            q.offer(k)
            k += 1

    def worker(i: int, ctx: ThreadCtx, q: AdmissionQueue) -> Generator:
        state = _breaker_state()
        while True:
            item = yield from q.take()
            if item is None:
                return
            k, t_arr = item
            t_take = sim.now
            obs = sim.obs
            if obs is not None:
                op_id = next(next_op_id)
                obs.emit("op.begin", core=ctx.core.cid, tid=ctx.tid,
                         op=op_id, prim=name)
            ok, _retval = yield from _dispatch(ctx, prim, opcode,
                                               arg_of(ctx, k) if arg_of
                                               else NULL_ARG,
                                               adm, state, counters)
            t_done = sim.now
            if obs is not None:
                obs.emit("op.end", core=ctx.core.cid, tid=ctx.tid,
                         op=op_id, start=t_arr, measured=in_window["on"])
            if ok and in_window["on"]:
                ops_done[i] += 1
                sojourn = t_done - t_arr
                latencies.append(sojourn)
                admit_waits.append(t_take - t_arr)
                s = _slice_of(t_done)
                slice_completions[s] += 1
                if adm.slo_cycles is not None and sojourn > adm.slo_cycles:
                    slice_violations[s] += 1

    def _depth() -> int:
        return sum(len(q) for q in queues) + prim.inflight

    def depth_sampler() -> Generator:
        while True:
            yield spec.depth_sample_cycles
            if in_window["on"]:
                depth = _depth()
                depth_ts.record(sim.now, depth)
                s = _slice_of(sim.now)
                if depth > slice_depth_max[s]:
                    slice_depth_max[s] = depth

    for i, (ctx, q) in enumerate(zip(ctxs, queues)):
        machine.spawn(ctx, source(i, ctx, q), name=f"source-{ctx.tid}")
        machine.spawn(ctx, worker(i, ctx, q), name=f"worker-{ctx.tid}")
    sim.spawn(depth_sampler(), name="qdepth-sampler", daemon=True)

    # continuous telemetry: expose the admission depth and completed-op
    # count to the machine's sampler (pure observation -- registered only
    # when an observability session enabled timeseries sampling); the
    # run label is set up front so incident bundles dumped mid-run
    # already carry it
    ob = machine.obs
    if ob is not None:
        ob.label = f"{name} T={len(ctxs)}"
    sampler = ob.sampler if ob is not None else None
    if sampler is not None:
        sampler.register("admit.qdepth", _depth, kind="gauge", unit="reqs",
                         replace=True)
        sampler.register("goodput", lambda: sum(ops_done), kind="counter",
                         unit="ops", replace=True)

    machine.run(until=spec.warmup_cycles)
    in_window["on"] = True
    shed0 = sum(q.shed for q in queues)
    enq0 = sum(q.enqueued for q in queues)
    counters0 = dict(counters)

    machine.run(until=spec.warmup_cycles + spec.measure_cycles)
    in_window["on"] = False

    total_ops = sum(ops_done)
    clock = machine.cfg.clock_mhz
    result = RunResult(
        name=name,
        num_threads=n,
        window_cycles=spec.measure_cycles,
        ops=total_ops,
        clock_mhz=clock,
        per_thread_ops=list(ops_done),
    )
    result.latency_samples = latencies
    if latencies:
        arr = np.asarray(latencies)
        result.mean_latency_cycles = float(arr.mean())
        result.p50_latency_cycles = float(np.percentile(arr, 50))
        result.p95_latency_cycles = float(np.percentile(arr, 95))
        result.p99_latency_cycles = float(np.percentile(arr, 99))
        result.extra["ol.p999_latency"] = float(np.percentile(arr, 99.9))
        result.extra["ol.mean_admit_wait"] = float(np.mean(admit_waits))

    queue_shed = sum(q.shed for q in queues) - shed0
    retry_shed = counters["retry_shed"] - counters0["retry_shed"]
    result.extra["ol.offered_mops"] = (
        offered_w["n"] * clock / spec.measure_cycles)
    result.extra["ol.goodput_mops"] = total_ops * clock / spec.measure_cycles
    result.extra["ol.admitted"] = float(sum(q.enqueued for q in queues) - enq0)
    result.extra["ol.shed"] = float(queue_shed + retry_shed)
    result.extra["ol.shed_queue"] = float(queue_shed)
    result.extra["ol.shed_timeout"] = float(retry_shed)
    result.extra["ol.timeouts"] = float(
        counters["timeouts"] - counters0["timeouts"])
    result.extra["ol.retries"] = float(
        counters["retries"] - counters0["retries"])
    result.extra["ol.breaker_trips"] = float(
        counters["breaker_trips"] - counters0["breaker_trips"])

    result.queue_depth_series = [[t, v] for t, v in depth_ts.points()]
    if depth_ts.samples:
        # exact under any number of ring wraps: max composes, the mean is
        # total-sum / total-count, and the final value is tracked directly
        result.extra["ol.qdepth_max"] = float(depth_ts.peak())
        result.extra["ol.qdepth_mean"] = float(depth_ts.mean())
        result.extra["ol.qdepth_final"] = float(depth_ts.last_value)
    if sampler is not None:
        result.telemetry = sampler.summary()
    if ob is not None and getattr(ob, "spatial", None) is not None:
        if result.telemetry is None:
            result.telemetry = {}
        result.telemetry["spatial"] = ob.spatial.summary()

    if adm.slo_cycles is not None:
        # a slice is in-SLO when nothing completed over target in it and
        # it was not silently starved (no completions while work queued)
        good = 0
        for s in range(_SLO_SLICES):
            if slice_violations[s]:
                continue
            if slice_completions[s] > 0 or slice_depth_max[s] == 0:
                good += 1
        result.extra["ol.time_in_slo"] = good / _SLO_SLICES

    # recovery metrics, as in the closed-loop driver (fault-injection runs)
    stats = getattr(prim, "recovery_stats", None)
    if stats:
        ttr = stats.get("time_to_recovery")
        result.time_to_recovery_cycles = (
            float(ttr) if ttr is not None else None)
        result.ops_retried = int(stats.get("ops_retried", 0))
        result.duplicates_suppressed = int(
            stats.get("duplicates_suppressed", 0))
        result.failovers = int(stats.get("failovers", 0))
        result.takeovers = int(stats.get("takeovers", 0))

    return result
