"""The benchmark loop: warm-up window, measurement window, counters.

``run_workload`` drives a set of application threads through the
Section 5.2 loop (operation + up to 50 random empty loop iterations)
for ``warmup_cycles`` then ``measure_cycles`` of simulated time, and
assembles a :class:`~repro.workload.metrics.RunResult` from counter
deltas over the measurement window.

The op to execute is supplied as a factory ``make_op(ctx) ->
callable(k) -> generator`` so scenarios can give each thread its own
closure (e.g. alternating enqueue/dequeue with thread-unique values).
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass
from typing import Any, Callable, Generator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.api import SyncPrimitive
from repro.machine.machine import Machine, ThreadCtx
from repro.workload.metrics import RunResult

__all__ = ["WorkloadSpec", "run_ops", "run_workload"]


@dataclass
class WorkloadSpec:
    """Timing parameters of one benchmark run.

    The defaults are sized so one run finishes in well under a second of
    wall time while keeping tens of thousands of operations in the
    window; ``full()`` returns the larger windows used for the committed
    EXPERIMENTS.md numbers.
    """

    warmup_cycles: int = 60_000
    measure_cycles: int = 240_000
    think_max_iterations: int = 50   #: Section 5.2: "at most 50"
    seed: int = 42

    def __post_init__(self) -> None:
        if self.warmup_cycles < 0:
            raise ValueError(
                f"warmup_cycles must be >= 0, got {self.warmup_cycles}")
        if self.measure_cycles < 1:
            raise ValueError(
                "measure_cycles must be >= 1 (an empty measurement window "
                f"measures nothing), got {self.measure_cycles}")
        if self.think_max_iterations < 0:
            raise ValueError(
                "think_max_iterations must be >= 0 (0 disables think time), "
                f"got {self.think_max_iterations}")
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ValueError(f"seed must be an integer, got {self.seed!r}")
        if self.seed < 0:
            raise ValueError(f"seed must be >= 0, got {self.seed}")

    @classmethod
    def quick(cls) -> "WorkloadSpec":
        return cls(warmup_cycles=30_000, measure_cycles=120_000)

    @classmethod
    def full(cls) -> "WorkloadSpec":
        return cls(warmup_cycles=100_000, measure_cycles=600_000)


def run_ops(
    machine: Machine,
    scripts: "Sequence[Tuple[ThreadCtx, Generator]]",
    *,
    prims: Sequence[Any] = (),
) -> List[Any]:
    """Run bounded per-thread scripts to completion and join them all.

    The windowed loop above measures throughput over a time horizon; the
    correctness tools (history recording, schedule exploration) instead
    need every thread to perform a *fixed number* of operations and
    finish.  ``scripts`` is a sequence of ``(ctx, generator)`` pairs,
    spawned in order; a coordinator process joins them, then calls
    ``stop()`` on any primitive in ``prims`` that has one (polling
    server loops), and the machine runs until fully drained.

    Returns the finished client :class:`~repro.sim.engine.Process`
    objects; raises ``RuntimeError`` naming the first client that did
    not finish (e.g. wedged by an injected fault).
    """
    procs = [machine.spawn(ctx, gen) for ctx, gen in scripts]

    def coordinator() -> Generator:
        for p in procs:
            yield from p.join()
        for prim in prims:
            if hasattr(prim, "stop"):
                prim.stop()

    machine.sim.spawn(coordinator(), name="coordinator")
    machine.run()
    for p in procs:
        if p.alive:
            raise RuntimeError(f"client process {p.name!r} did not finish")
    return procs


def run_workload(
    machine: Machine,
    ctxs: Sequence[ThreadCtx],
    make_op: Callable[[ThreadCtx], Callable[[int], Generator[Any, Any, Any]]],
    spec: WorkloadSpec,
    *,
    name: str = "?",
    prim: Optional[SyncPrimitive] = None,
    service_core_ids: "Optional[Sequence[int] | str]" = None,
) -> RunResult:
    """Run the paper's benchmark loop and measure one window.

    ``prim`` (optional) contributes combining-session statistics and the
    default servicing-core set.  ``service_core_ids`` overrides which
    cores count as "the servicing thread" for the Figure 4a breakdown;
    the string ``"current"`` selects the combiner active at the end of
    warm-up (the fixed-combiner methodology of the paper's footnote 4).
    """
    host_t0 = time.perf_counter()
    host_ev0 = machine.sim.events_processed
    if not ctxs:
        raise ValueError("run_workload needs at least one application thread "
                         "(got an empty ctxs sequence)")
    rng = np.random.default_rng(spec.seed)
    think_unit = machine.cfg.work_cycles_per_iteration
    n = len(ctxs)

    ops_done = [0] * n
    latencies: List[int] = []
    in_window = {"on": False}
    # run-unique op ids shared by every app thread (tags ``op.begin`` /
    # ``op.end`` events so the causal tracer can follow one operation
    # across cores -- pure observability, no simulated cost)
    next_op_id = itertools.count()

    def app_thread(i: int, ctx: ThreadCtx, thinks: np.ndarray) -> Generator:
        op = make_op(ctx)
        k = 0
        nthinks = len(thinks)
        sim = machine.sim
        while True:
            obs = sim.obs
            t0 = sim.now
            if obs is not None:
                op_id = next(next_op_id)
                obs.emit("op.begin", core=ctx.core.cid, tid=ctx.tid,
                         op=op_id, prim=name)
            yield from op(k)
            if obs is not None:
                obs.emit("op.end", core=ctx.core.cid, tid=ctx.tid,
                         op=op_id, start=t0, measured=in_window["on"])
            if in_window["on"]:
                ops_done[i] += 1
                latencies.append(sim.now - t0)
            k += 1
            t = int(thinks[k % nthinks]) * think_unit
            if t:
                yield from ctx.work(t)

    for i, ctx in enumerate(ctxs):
        thinks = rng.integers(0, spec.think_max_iterations + 1, size=4096)
        machine.spawn(ctx, app_thread(i, ctx, thinks), name=f"app-{ctx.tid}")

    # continuous telemetry: completed-op counter for the goodput series
    # (registered only when the observability sampler is enabled); the
    # run label is set up front so incident bundles dumped mid-run
    # already carry it
    if machine.obs is not None:
        machine.obs.label = f"{name} T={n}"
    sampler = machine.obs.sampler if machine.obs is not None else None
    if sampler is not None:
        sampler.register("goodput", lambda: sum(ops_done), kind="counter",
                         unit="ops", replace=True)

    # warm up, then snapshot and measure
    machine.run(until=spec.warmup_cycles)
    in_window["on"] = True
    if service_core_ids == "current":
        # fixed-combiner measurement (Figure 4a): the thread combining at
        # the end of warm-up holds the role for the whole window when
        # MAX_OPS is effectively infinite
        service_ids = (
            [prim.current_combiner_core]
            if prim is not None and prim.current_combiner_core is not None
            else []
        )
    elif service_core_ids is not None:
        service_ids = list(service_core_ids)
    elif prim is not None and prim.service_threads > 0:
        # dedicated servers: their cores run nothing but service work
        service_ids = list(prim.servicing_cores())
    else:
        # combiner cores interleave app work with combining, so a default
        # per-op breakdown would be meaningless -- use "current" with a
        # fixed-combiner (MAX_OPS = inf) run instead (Figure 4a).
        service_ids = []
    snapshots = {cid: machine.cores[cid].snapshot() for cid in service_ids}
    app_snapshots = [ctx.core.snapshot() for ctx in ctxs]
    sessions_before = len(prim.combining_sessions) if prim is not None else 0
    obs = machine.obs
    obs_before = obs.counters.snapshot() if obs is not None else None

    machine.run(until=spec.warmup_cycles + spec.measure_cycles)
    in_window["on"] = False

    total_ops = sum(ops_done)
    result = RunResult(
        name=name,
        num_threads=n,
        window_cycles=spec.measure_cycles,
        ops=total_ops,
        clock_mhz=machine.cfg.clock_mhz,
        per_thread_ops=list(ops_done),
    )
    result.latency_samples = latencies
    if latencies:
        arr = np.asarray(latencies)
        result.mean_latency_cycles = float(arr.mean())
        result.p50_latency_cycles = float(np.percentile(arr, 50))
        result.p95_latency_cycles = float(np.percentile(arr, 95))
        result.p99_latency_cycles = float(np.percentile(arr, 99))

    # servicing-thread breakdown (Figure 4a):  For server approaches the
    # service core set is fixed; for combiners it is every core that
    # combined -- but only combining work runs there beyond the app loop,
    # so the meaningful per-op number needs the fixed-combiner variant
    # (MAX_OPS = inf), exactly as the paper's footnote 4 does.
    if service_ids and total_ops:
        busy = stall = 0
        for cid in service_ids:
            delta = machine.cores[cid].delta(snapshots[cid])
            busy += delta["busy"]
            stall += delta["stall_mem"] + delta["stall_atomic"] + delta["stall_fence"]
        result.service_cycles_per_op = (busy + stall) / total_ops
        result.service_stall_per_op = stall / total_ops

    # atomic-instruction rates across application threads
    if total_ops:
        cas = cas_fail = atomics = 0
        for ctx, snap in zip(ctxs, app_snapshots):
            delta = ctx.core.delta(snap)
            cas += delta["cas_ops"]
            cas_fail += delta["cas_failures"]
            atomics += delta["atomic_ops"]
        result.cas_per_op = cas / total_ops
        result.cas_failures_per_op = cas_fail / total_ops
        result.atomics_per_op = atomics / total_ops

    # combining rate (Figure 4b): mean ops per session closed in-window
    if prim is not None:
        window_sessions = [
            ops for (t, ops) in prim.combining_sessions[sessions_before:]
        ]
        if window_sessions:
            result.combining_rate = float(np.mean(window_sessions))

    # recovery metrics (fault-injection runs): primitives expose
    # ``recovery_stats`` when a fault-tolerance mode is enabled
    stats = getattr(prim, "recovery_stats", None) if prim is not None else None
    if stats:
        ttr = stats.get("time_to_recovery")
        result.time_to_recovery_cycles = float(ttr) if ttr is not None else None
        result.ops_retried = int(stats.get("ops_retried", 0))
        result.duplicates_suppressed = int(stats.get("duplicates_suppressed", 0))
        result.failovers = int(stats.get("failovers", 0))
        result.takeovers = int(stats.get("takeovers", 0))

    # observability: reconstruct the same numbers from the perf counter
    # file and attach window totals to the result (``obs.*`` extras)
    if obs is not None:
        obs.label = f"{name} T={n}"
        delta = obs.counters.delta(obs_before)
        if service_ids and total_ops:
            bd = obs.counters.service_breakdown(service_ids, obs_before)
            result.extra["obs.service_cycles_per_op"] = (
                (bd["busy"] + bd["stall"]) / total_ops)
            result.extra["obs.service_stall_per_op"] = bd["stall"] / total_ops
        cores = delta["core"].values()
        result.extra["obs.misses"] = float(
            sum(c.get("misses", 0) for c in cores))
        result.extra["obs.invalidations"] = float(
            sum(c.get("invalidations_received", 0) for c in cores))
        result.extra["obs.udn_words_sent"] = float(
            sum(c.get("udn_words_sent", 0) for c in cores))
        result.extra["obs.flit_cycles"] = float(
            sum(lk.get("flit_cycles", 0) for lk in delta["link"].values()))
        if delta["line"]:
            hot_line, hot = max(delta["line"].items(),
                                key=lambda kv: kv[1].get("stall_cycles", 0))
            result.extra["obs.hottest_line"] = float(hot_line)
            result.extra["obs.hottest_line_stall_cycles"] = float(
                hot.get("stall_cycles", 0))

    # continuous-telemetry summary (excluded from figure fingerprints as
    # a field, like the host-perf provenance below)
    if sampler is not None:
        result.telemetry = sampler.summary()
    if obs is not None and getattr(obs, "spatial", None) is not None:
        if result.telemetry is None:
            result.telemetry = {}
        result.telemetry["spatial"] = obs.spatial.summary()

    # host-perf provenance (wall time / engine event rate); see the
    # RunResult field docs -- never feeds back into simulated results
    result.host_wall_seconds = time.perf_counter() - host_t0
    result.host_events_processed = machine.sim.events_processed - host_ev0

    return result
