"""Benchmark methodology and metrics (Section 5.2 of the paper).

"In each experiment, a specified number of application threads
repeatedly execute operations on a concurrent object.  After every
operation, a thread executes a random number of empty loop iterations
(at most 50). ... We pin threads to cores in ascending order. ... Every
value reported in the graphs is an average over ten one-second runs."

We reproduce the same loop in simulated time: a warm-up window followed
by a measurement window; throughput is ops completed in the window
converted to Mops/s at the configured clock; latency is the mean
request time observed by application threads.  Because the simulator is
deterministic given a seed, averaging over ten wall-clock seconds is
replaced by one sufficiently long window per seed (and multiple seeds
where variance matters).

* :mod:`repro.workload.driver` -- the benchmark loop and window logic.
* :mod:`repro.workload.metrics` -- the :class:`RunResult` record with
  throughput, latency, fairness, stall breakdowns, combining rate and
  atomic-instruction rates.
* :mod:`repro.workload.openloop` -- open-loop arrival processes,
  bounded admission queues with drop/retry/circuit-breaker policies,
  and the overload-degradation metrics (goodput, p99.9, time-in-SLO).
* :mod:`repro.workload.scenarios` -- assembled experiments (counter /
  queue / stack / variable-length CS) on any approach; these are the
  entry points the figures and the public quickstart use.
"""

from repro.workload.driver import WorkloadSpec, run_workload
from repro.workload.metrics import RunResult
from repro.workload.openloop import (
    AdmissionQueue,
    AdmissionSpec,
    ArrivalSpec,
    OpenLoopSpec,
    run_openloop_workload,
)
from repro.workload.scenarios import (
    APPROACH_BUILDERS,
    run_counter_benchmark,
    run_cs_length_benchmark,
    run_queue_benchmark,
    run_stack_benchmark,
)

__all__ = [
    "APPROACH_BUILDERS",
    "AdmissionQueue",
    "AdmissionSpec",
    "ArrivalSpec",
    "OpenLoopSpec",
    "RunResult",
    "WorkloadSpec",
    "run_openloop_workload",
    "run_counter_benchmark",
    "run_cs_length_benchmark",
    "run_queue_benchmark",
    "run_stack_benchmark",
    "run_workload",
]
