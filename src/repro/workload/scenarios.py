"""Assembled benchmark scenarios: counter, variable-length CS, queue, stack.

These are the entry points behind every figure and the public
quickstart.  Each function builds a fresh machine with the requested
profile, instantiates the approach and the concurrent object, applies
the paper's thread-placement rules (server thread = thread 0 on core 0,
application threads pinned in ascending core order) and runs the
Section 5.2 loop via :func:`~repro.workload.driver.run_workload`.

Implementation labels follow the paper's legends:

* counter / CS-length: ``mp-server``, ``HybComb``, ``shm-server``,
  ``CC-Synch``;
* queue (Figure 5a): ``mp-server-1``, ``HybComb-1``, ``shm-server-1``,
  ``CC-Synch-1`` (one-lock MS-Queue), ``mp-server-2`` (two-lock, two
  dedicated servers) and ``LCRQ``;
* stack (Figure 5b): the four approaches plus ``Treiber``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core import CCSynch, HybComb, MPServer, OpTable, ShmServer
from repro.core.api import SyncPrimitive
from repro.faults import FaultInjector, FaultPlan
from repro.machine import Machine, MachineConfig, tile_gx
from repro.machine.machine import ThreadCtx
from repro.objects import (
    EMPTY,
    LCRQ,
    ArrayCS,
    LockedCounter,
    LockedStack,
    OneLockMSQueue,
    TreiberStack,
    TwoLockMSQueue,
)
from repro.workload.driver import WorkloadSpec, run_workload
from repro.workload.metrics import RunResult

__all__ = [
    "APPROACH_BUILDERS",
    "QUEUE_IMPLS",
    "STACK_IMPLS",
    "build_approach",
    "run_counter_benchmark",
    "run_cs_length_benchmark",
    "run_fault_recovery_benchmark",
    "run_queue_benchmark",
    "run_stack_benchmark",
]

def build_approach(
    name: str,
    machine: Machine,
    optable: OpTable,
    num_threads: int,
    *,
    max_ops: int = 200,
) -> Tuple[SyncPrimitive, List[int]]:
    """Create an approach by its paper label; returns (prim, app_tids).

    Placement per Section 5.2: "thread i is pinned to core i.  With
    server-based approaches the server code is executed by thread 0, and
    other threads execute application code."
    """
    limit = machine.cfg.num_cores
    if name == "mp-server":
        if num_threads + 1 > limit:
            raise ValueError(f"{num_threads} clients + server exceed {limit} cores")
        prim = MPServer(machine, optable, server_tid=0)
        tids = list(range(1, num_threads + 1))
    elif name == "shm-server":
        if num_threads + 1 > limit:
            raise ValueError(f"{num_threads} clients + server exceed {limit} cores")
        prim = ShmServer(machine, optable, server_tid=0,
                         client_tids=range(1, num_threads + 1))
        tids = list(range(1, num_threads + 1))
    elif name == "HybComb":
        if num_threads > limit:
            raise ValueError(f"{num_threads} threads exceed {limit} cores")
        prim = HybComb(machine, optable, max_ops=max_ops)
        tids = list(range(num_threads))
    elif name == "CC-Synch":
        if num_threads > limit:
            raise ValueError(f"{num_threads} threads exceed {limit} cores")
        prim = CCSynch(machine, optable, max_ops=max_ops)
        tids = list(range(num_threads))
    else:
        raise ValueError(f"unknown approach {name!r}; pick one of "
                         "mp-server / HybComb / shm-server / CC-Synch")
    return prim, tids


APPROACH_BUILDERS = ("mp-server", "HybComb", "shm-server", "CC-Synch")
QUEUE_IMPLS = ("mp-server-1", "HybComb-1", "shm-server-1", "CC-Synch-1",
               "mp-server-2", "LCRQ")
STACK_IMPLS = ("mp-server", "HybComb", "shm-server", "CC-Synch", "Treiber")


def _fresh_machine(cfg: Optional[MachineConfig]) -> Machine:
    return Machine(cfg if cfg is not None else tile_gx())


# ---------------------------------------------------------------------------
# counter (Figures 3a, 3b, 3c, 4a, 4b)
# ---------------------------------------------------------------------------

def run_counter_benchmark(
    approach: str = "mp-server",
    num_threads: int = 16,
    *,
    spec: Optional[WorkloadSpec] = None,
    cfg: Optional[MachineConfig] = None,
    max_ops: int = 200,
    fixed_combiner: bool = False,
    fault_plan: Optional[FaultPlan] = None,
) -> RunResult:
    """The Section 5.3 microbenchmark: a contended concurrent counter.

    ``fixed_combiner=True`` reproduces the Figure 4a methodology
    (MAX_OPS effectively infinite, so one thread keeps the combiner role
    and its core's counters isolate the servicing critical path).

    ``fault_plan`` injects faults (see :mod:`repro.faults`) into the run;
    an empty plan leaves the run bit-for-bit unchanged.
    """
    spec = spec or WorkloadSpec()
    machine = _fresh_machine(cfg)
    optable = OpTable()
    if fixed_combiner and approach in ("HybComb", "CC-Synch"):
        # footnote 4: a permanent combiner on thread 0 (= MAX_OPS inf);
        # application threads are 1..T, like the server approaches
        cls = HybComb if approach == "HybComb" else CCSynch
        prim = cls(machine, optable, fixed_combiner_tid=0)
        tids = list(range(1, num_threads + 1))
    else:
        prim, tids = build_approach(approach, machine, optable, num_threads,
                                    max_ops=max_ops)
    counter = LockedCounter(prim)
    prim.start()
    ctxs = [machine.thread(tid) for tid in tids]
    if fault_plan is not None and fault_plan:
        FaultInjector(machine, fault_plan).install()

    def make_op(ctx: ThreadCtx):
        def op(k: int):
            yield from counter.increment(ctx)
        return op

    return run_workload(machine, ctxs, make_op, spec, name=approach, prim=prim)


# ---------------------------------------------------------------------------
# fault recovery (robustness extension; the disc-faults experiment)
# ---------------------------------------------------------------------------

def run_fault_recovery_benchmark(
    num_clients: int = 8,
    *,
    spec: Optional[WorkloadSpec] = None,
    cfg: Optional[MachineConfig] = None,
    request_timeout: int = 2_000,
    fault_plan: Optional[FaultPlan] = None,
) -> RunResult:
    """Contended counter on fault-tolerant MP-SERVER with a hot standby.

    Thread 0 / core 0 run the primary server, thread 1 / core 1 the
    backup; clients occupy threads 2..  ``fault_plan`` typically crashes
    the primary mid-window: clients time out, back off, fail over to the
    backup, and the run completes with recovery metrics in the result.
    """
    spec = spec or WorkloadSpec()
    machine = _fresh_machine(cfg)
    if num_clients + 2 > machine.cfg.num_cores:
        raise ValueError(
            f"{num_clients} clients + two servers exceed "
            f"{machine.cfg.num_cores} cores"
        )
    optable = OpTable()
    prim = MPServer(machine, optable, server_tid=0, server_core=0,
                    backup_tid=1, backup_core=1,
                    request_timeout=request_timeout)
    counter = LockedCounter(prim)
    prim.start()
    ctxs = [machine.thread(tid) for tid in range(2, num_clients + 2)]
    if fault_plan is not None and fault_plan:
        FaultInjector(machine, fault_plan).install()

    def make_op(ctx: ThreadCtx):
        def op(k: int):
            yield from counter.increment(ctx)
        return op

    name = "mp-server-ft" + ("-faulty" if fault_plan else "")
    return run_workload(machine, ctxs, make_op, spec, name=name, prim=prim)


def run_cs_length_benchmark(
    approach: str,
    num_threads: int,
    cs_iterations: int,
    *,
    spec: Optional[WorkloadSpec] = None,
    cfg: Optional[MachineConfig] = None,
    max_ops: int = 200,
) -> RunResult:
    """Figure 4c: a CS that increments array elements in a loop."""
    spec = spec or WorkloadSpec()
    machine = _fresh_machine(cfg)
    optable = OpTable()
    prim, tids = build_approach(approach, machine, optable, num_threads, max_ops=max_ops)
    arr = ArrayCS(prim)
    prim.start()
    ctxs = [machine.thread(tid) for tid in tids]

    def make_op(ctx: ThreadCtx):
        def op(k: int):
            yield from arr.run(ctx, cs_iterations)
        return op

    result = run_workload(machine, ctxs, make_op, spec, name=approach, prim=prim)
    result.extra["cs_iterations"] = cs_iterations
    return result


# ---------------------------------------------------------------------------
# queue (Figure 5a)
# ---------------------------------------------------------------------------

def run_queue_benchmark(
    impl: str = "mp-server-1",
    num_clients: int = 16,
    *,
    spec: Optional[WorkloadSpec] = None,
    cfg: Optional[MachineConfig] = None,
    max_ops: int = 200,
) -> RunResult:
    """Figure 5a: 64-bit-value queues under balanced load.

    Balanced load: every client alternates enqueue and dequeue, so over
    any window enqueues and dequeues are issued in equal numbers.
    Values are kept below 2^31 so the same workload drives LCRQ (the
    paper's 32-bit port).
    """
    spec = spec or WorkloadSpec()
    machine = _fresh_machine(cfg)
    prim = None
    limit = machine.cfg.num_cores

    if impl == "mp-server-2":
        if num_clients + 2 > limit:
            raise ValueError(f"{num_clients} clients + two servers exceed {limit} cores")
        enq_prim = MPServer(machine, OpTable(), server_tid=0, server_core=0)
        deq_prim = MPServer(machine, OpTable(), server_tid=1, server_core=1)
        queue = TwoLockMSQueue(enq_prim, deq_prim)
        enq_prim.start()
        deq_prim.start()
        tids = list(range(2, num_clients + 2))
    elif impl == "LCRQ":
        if num_clients > limit:
            raise ValueError(f"{num_clients} clients exceed {limit} cores")
        queue = LCRQ(machine)
        tids = list(range(num_clients))
    else:
        base = impl[:-2] if impl.endswith("-1") else impl
        optable = OpTable()
        prim, tids = build_approach(base, machine, optable, num_clients, max_ops=max_ops)
        queue = OneLockMSQueue(prim)
        prim.start()

    ctxs = [machine.thread(tid) for tid in tids]
    empties = {"n": 0}

    def make_op(ctx: ThreadCtx):
        state = {"k": 0}
        vbase = (ctx.tid + 1) << 16

        def op(k: int):
            if state["k"] % 2 == 0:
                yield from queue.enqueue(ctx, vbase | (state["k"] // 2 & 0xFFFF))
            else:
                v = yield from queue.dequeue(ctx)
                if v == EMPTY:
                    empties["n"] += 1
            state["k"] += 1
        return op

    result = run_workload(machine, ctxs, make_op, spec, name=impl, prim=prim)
    result.extra["empty_dequeues"] = empties["n"]
    return result


# ---------------------------------------------------------------------------
# stack (Figure 5b)
# ---------------------------------------------------------------------------

def run_stack_benchmark(
    impl: str = "mp-server",
    num_clients: int = 16,
    *,
    spec: Optional[WorkloadSpec] = None,
    cfg: Optional[MachineConfig] = None,
    max_ops: int = 200,
) -> RunResult:
    """Figure 5b: coarse-lock stacks vs Treiber under balanced load."""
    spec = spec or WorkloadSpec()
    machine = _fresh_machine(cfg)
    prim = None

    if impl == "Treiber":
        if num_clients > machine.cfg.num_cores:
            raise ValueError("too many clients")
        stack = TreiberStack(machine)
        tids = list(range(num_clients))
    else:
        optable = OpTable()
        prim, tids = build_approach(impl, machine, optable, num_clients, max_ops=max_ops)
        stack = LockedStack(prim)
        prim.start()

    ctxs = [machine.thread(tid) for tid in tids]
    empties = {"n": 0}

    def make_op(ctx: ThreadCtx):
        state = {"k": 0}
        vbase = (ctx.tid + 1) << 16

        def op(k: int):
            if state["k"] % 2 == 0:
                yield from stack.push(ctx, vbase | (state["k"] // 2 & 0xFFFF))
            else:
                v = yield from stack.pop(ctx)
                if v == EMPTY:
                    empties["n"] += 1
            state["k"] += 1
        return op

    result = run_workload(machine, ctxs, make_op, spec, name=impl, prim=prim)
    result.extra["empty_pops"] = empties["n"]
    return result
