"""The measurement record produced by every benchmark run."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["RunResult"]


@dataclass
class RunResult:
    """Everything a figure needs from one (approach, thread-count) run.

    All cycle quantities are deltas over the measurement window only.
    """

    name: str                     #: approach / implementation label
    num_threads: int              #: application threads (paper's x-axes)
    window_cycles: int            #: measurement window length
    ops: int                      #: operations completed in the window
    clock_mhz: int                #: for Mops/s conversion

    #: mean request latency in cycles (Figure 3b)
    mean_latency_cycles: float = 0.0
    p50_latency_cycles: float = 0.0
    p95_latency_cycles: float = 0.0
    p99_latency_cycles: float = 0.0

    #: ops per thread in the window (fairness, Section 5.3)
    per_thread_ops: List[int] = field(default_factory=list)

    #: servicing-thread cycle breakdown per op (Figure 4a)
    service_cycles_per_op: float = 0.0
    service_stall_per_op: float = 0.0

    #: mean ops per combining session in the window (Figure 4b)
    combining_rate: Optional[float] = None

    #: atomic-instruction rates per op across application threads
    cas_per_op: float = 0.0
    cas_failures_per_op: float = 0.0
    atomics_per_op: float = 0.0

    #: free-form extras (e.g. EMPTY-dequeue fraction)
    extra: Dict[str, float] = field(default_factory=dict)

    #: raw per-op latency samples from the measurement window, in issue
    #: order (full-CDF analysis / ``--latency-dump``); None when the run
    #: predates sampling
    latency_samples: Optional[List[int]] = None

    #: recovery metrics (fault-injection runs; see repro.faults)
    time_to_recovery_cycles: Optional[float] = None
    ops_retried: int = 0
    duplicates_suppressed: int = 0
    failovers: int = 0
    takeovers: int = 0

    #: (cycle, depth) samples of the admission-queue depth over the
    #: measurement window (open-loop runs only; see
    #: :mod:`repro.workload.openloop`).  Excluded from determinism
    #: fingerprints *as a field* so pre-existing closed-loop figures
    #: hash identically; the depths themselves are deterministic and
    #: surface in the ``ol.qdepth_*`` extras, which are fingerprinted.
    queue_depth_series: Optional[List[List[int]]] = None

    #: continuous-telemetry summary from the observability sampler
    #: (:mod:`repro.obs.timeseries`): per-series aggregates, no point
    #: lists.  None when the run was not observed with ``timeseries``.
    #: Excluded from determinism fingerprints *as a field* (like the
    #: queue-depth series) so figures hash identically with and without
    #: sampling enabled; the underlying samples are deterministic.
    telemetry: Optional[Dict] = None

    #: host-side cost of producing this point (wall-clock seconds and
    #: simulator events over the whole run, warm-up included).  Pure
    #: provenance for the host-perf trend in BENCH_*.json -- simulated
    #: results never depend on these, and they are excluded from
    #: determinism fingerprints.
    host_wall_seconds: float = 0.0
    host_events_processed: int = 0

    @property
    def host_events_per_sec(self) -> float:
        """Simulator events per host second (engine speed, not a result)."""
        if self.host_wall_seconds <= 0:
            return 0.0
        return self.host_events_processed / self.host_wall_seconds

    # -- open-loop / overload metrics (see repro.workload.openloop) -------
    # These ride in ``extra`` under "ol.*" keys rather than as dataclass
    # fields so closed-loop figures that never set them keep bit-identical
    # determinism fingerprints.

    @property
    def p999_latency_cycles(self) -> float:
        """p99.9 sojourn latency -- the overload tail p99 smooths over."""
        val = self.extra.get("ol.p999_latency")
        if val is not None:
            return val
        if self.latency_samples:
            import numpy as np
            return float(np.percentile(np.asarray(self.latency_samples), 99.9))
        return 0.0

    @property
    def offered_mops(self) -> float:
        """Open-loop offered load (arrivals/s), 0.0 for closed-loop runs."""
        return self.extra.get("ol.offered_mops", 0.0)

    @property
    def goodput_mops(self) -> float:
        """Admitted-and-completed ops/s.  Equals throughput for
        closed-loop runs (every op issued is completed)."""
        return self.extra.get("ol.goodput_mops", self.throughput_mops)

    @property
    def shed_ops(self) -> int:
        """Arrivals rejected by the admission policy (never executed)."""
        return int(self.extra.get("ol.shed", 0))

    @property
    def dispatch_timeouts(self) -> int:
        """Timed dispatches that expired pre-commit (retryable)."""
        return int(self.extra.get("ol.timeouts", 0))

    @property
    def retries(self) -> int:
        """Admission retries performed after backoff."""
        return int(self.extra.get("ol.retries", 0))

    @property
    def time_in_slo(self) -> Optional[float]:
        """Fraction of the window inside the latency SLO, or None when
        the run had no ``slo_cycles`` target."""
        return self.extra.get("ol.time_in_slo")

    @property
    def throughput_mops(self) -> float:
        """Throughput in Mops/s at the machine clock (the paper's y-axis)."""
        if self.window_cycles <= 0:
            return 0.0
        return self.ops * self.clock_mhz / self.window_cycles

    @property
    def cycles_per_op(self) -> float:
        """Average machine cycles per completed operation (1/throughput).

        At saturation this equals the servicing thread's per-op time --
        the y-axis of Figure 4c.
        """
        if self.ops <= 0:
            return float("inf")
        return self.window_cycles / self.ops

    @property
    def fairness_ratio(self) -> float:
        """max/min ops across threads; 1 denotes ideal fairness (§5.3)."""
        if not self.per_thread_ops:
            return 1.0
        lo = min(self.per_thread_ops)
        if lo == 0:
            return float("inf")  # a thread starved entirely
        return max(self.per_thread_ops) / lo

    def summary(self) -> str:
        parts = [
            f"{self.name}: T={self.num_threads}",
            f"tput={self.throughput_mops:.1f} Mops/s",
            f"lat={self.mean_latency_cycles:.0f} cyc",
        ]
        if self.combining_rate is not None:
            parts.append(f"comb={self.combining_rate:.1f}")
        if self.service_cycles_per_op:
            parts.append(
                f"svc={self.service_cycles_per_op:.1f} cyc/op"
                f" ({self.service_stall_per_op:.1f} stalled)"
            )
        if "ol.offered_mops" in self.extra:
            parts.append(f"offered={self.offered_mops:.1f} Mops/s")
            parts.append(f"goodput={self.goodput_mops:.1f} Mops/s")
            if self.shed_ops:
                parts.append(f"shed={self.shed_ops}")
            if self.dispatch_timeouts:
                parts.append(f"timeouts={self.dispatch_timeouts}")
            if self.time_in_slo is not None:
                parts.append(f"slo={self.time_in_slo:.0%}")
        if self.time_to_recovery_cycles is not None:
            parts.append(f"ttr={self.time_to_recovery_cycles:.0f} cyc")
        if self.ops_retried:
            parts.append(
                f"retried={self.ops_retried}"
                f" deduped={self.duplicates_suppressed}"
                f" failovers={self.failovers}"
            )
        return "  ".join(parts)
