"""Run dashboards: sparkline grids, SLO burn charts, incident lists.

``python -m repro report`` renders one **self-contained HTML file** per
experiment from the continuous-telemetry layer (DESIGN.md §14): every
observed machine contributes a grid of per-subsystem sparklines (core
cycles, cache misses, UDN occupancy/backpressure, NoC flits, admission
queue depth, goodput), each SLO gets a burn-rate chart with its alert
threshold and breach/recover markers, and flight-recorder incidents are
listed with their bundle paths.  Everything is inline SVG + inline CSS
-- no external scripts, stylesheets, or image fetches -- so the file
can be archived as a CI artifact and opened offline years later.

:func:`render_dashboard_text` is the terminal twin (unicode block
sparklines) printed by the CLI so headless runs still get the shape of
the run at a glance.
"""

from __future__ import annotations

import html
import os
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "chart_svg",
    "mesh_svg",
    "render_dashboard_html",
    "render_dashboard_text",
    "render_diff_html",
    "text_sparkline",
    "write_dashboard",
    "write_mesh_svg",
]

#: display-only cap on points per chart (charts stay ~1-2 KB each; the
#: underlying rings already bound memory, this bounds the HTML)
_MAX_POINTS = 120

_BLOCKS = "▁▂▃▄▅▆▇█"


def _fmt(v: Optional[float]) -> str:
    """Compact engineering formatting for chart labels."""
    if v is None:
        return "-"
    a = abs(v)
    if a >= 1e9:
        return f"{v / 1e9:.2f}G"
    if a >= 1e6:
        return f"{v / 1e6:.2f}M"
    if a >= 1e4:
        return f"{v / 1e3:.1f}k"
    if a == int(a):
        return str(int(a))
    return f"{v:.2f}"


def _thin(points: Sequence[Tuple[int, float]],
          limit: int = _MAX_POINTS) -> List[Tuple[int, float]]:
    """Reduce to <= limit points by chunk means (display only)."""
    n = len(points)
    if n <= limit:
        return list(points)
    out: List[Tuple[int, float]] = []
    step = (n + limit - 1) // limit
    for i in range(0, n, step):
        chunk = points[i:i + step]
        out.append((chunk[0][0],
                    sum(v for _, v in chunk) / len(chunk)))
    return out


def chart_svg(points: Sequence[Tuple[int, float]], *,
              width: int = 260, height: int = 48, color: str = "#2a7ae2",
              hline: Optional[float] = None,
              marks: Iterable[Tuple[int, str]] = ()) -> str:
    """One inline-SVG line chart.

    ``hline`` draws a dashed horizontal reference (SLO threshold);
    ``marks`` are (cycle, color) vertical event markers (breaches).
    """
    pts = _thin(points)
    marks = list(marks)
    if not pts:
        return (f'<svg width="{width}" height="{height}" '
                f'viewBox="0 0 {width} {height}">'
                f'<text x="4" y="{height - 6}" class="empty">no samples'
                f'</text></svg>')
    xs = [t for t, _ in pts]
    ys = [v for _, v in pts]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if hline is not None:
        y_lo, y_hi = min(y_lo, hline), max(y_hi, hline)
    if y_hi <= y_lo:
        y_hi = y_lo + 1.0
    x_span = max(1, x_hi - x_lo)

    def px(t: int) -> float:
        return 2 + (width - 4) * (t - x_lo) / x_span

    def py(v: float) -> float:
        return 2 + (height - 4) * (1.0 - (v - y_lo) / (y_hi - y_lo))

    parts = [f'<svg width="{width}" height="{height}" '
             f'viewBox="0 0 {width} {height}">']
    for t, mcolor in marks:
        if x_lo <= t <= x_hi:
            x = px(t)
            parts.append(f'<line x1="{x:.1f}" y1="0" x2="{x:.1f}" '
                         f'y2="{height}" stroke="{mcolor}" '
                         f'stroke-width="1.5" opacity="0.8"/>')
    if hline is not None:
        y = py(hline)
        parts.append(f'<line x1="0" y1="{y:.1f}" x2="{width}" y2="{y:.1f}" '
                     f'stroke="#c0392b" stroke-dasharray="4 3" '
                     f'stroke-width="1"/>')
    path = " ".join(f"{px(t):.1f},{py(v):.1f}" for t, v in pts)
    parts.append(f'<polyline fill="none" stroke="{color}" '
                 f'stroke-width="1.5" points="{path}"/>')
    parts.append("</svg>")
    return "".join(parts)


def text_sparkline(points: Sequence[Tuple[int, float]],
                   width: int = 40) -> str:
    """Unicode block sparkline of a series (terminal dashboards)."""
    pts = _thin(points, width)
    if not pts:
        return "(no samples)"
    ys = [v for _, v in pts]
    lo, hi = min(ys), max(ys)
    span = hi - lo
    if span <= 0:
        return _BLOCKS[0] * len(ys)
    return "".join(
        _BLOCKS[min(len(_BLOCKS) - 1, int((v - lo) / span * len(_BLOCKS)))]
        for v in ys)


def _heat_color(frac: float) -> str:
    """White -> amber -> red ramp for occupancy shares."""
    f = max(0.0, min(1.0, frac))
    r = 255
    g = int(245 - 160 * f)
    b = int(235 - 200 * f)
    return f"rgb({r},{g},{b})"


def mesh_svg(summary, *, cell: int = 44, gap: int = 14) -> str:
    """A spatial-atlas summary as one inline-SVG mesh panel.

    Tiles are squares shaded by outbound-occupancy share (red ramp,
    normalized to the hottest tile); directed links draw as arrows
    between tile edges with width and color scaled to their share, the
    two directions of a physical channel offset to opposite sides.
    Tiles that spent cycles blocked on backpressure get a red border.
    """
    if summary is None or not summary.get("tiles"):
        return ('<svg width="200" height="40" viewBox="0 0 200 40">'
                '<text x="4" y="24" class="empty">no NoC traffic observed'
                "</text></svg>")
    w = summary["mesh"]["width"]
    h = summary["mesh"]["height"]
    tiles = summary["tiles"]
    links = summary["links"]
    pitch = cell + gap
    width = w * pitch + gap
    height = h * pitch + gap + 16

    def center(node: int) -> Tuple[float, float]:
        x, y = node % w, node // w
        return gap + x * pitch + cell / 2, gap + y * pitch + cell / 2

    tile_peak = max((e["share"] for e in tiles.values()), default=0.0) or 1.0
    link_peak = max((e["share"] for e in links.values()), default=0.0) or 1.0
    parts = [f'<svg width="{width}" height="{height}" '
             f'viewBox="0 0 {width} {height}">']
    for node_key, e in tiles.items():
        node = int(node_key)
        x, y = node % w, node // w
        px, py = gap + x * pitch, gap + y * pitch
        fill = _heat_color(e["share"] / tile_peak)
        stroke = "#c0392b" if e.get("backpressure") else "#aab7b8"
        sw = 2 if e.get("backpressure") else 1
        parts.append(f'<rect x="{px}" y="{py}" width="{cell}" '
                     f'height="{cell}" rx="4" fill="{fill}" '
                     f'stroke="{stroke}" stroke-width="{sw}"/>')
    # idle tiles still draw (faint) so the mesh shape reads correctly
    for node in range(w * h):
        if str(node) not in tiles:
            x, y = node % w, node // w
            px, py = gap + x * pitch, gap + y * pitch
            parts.append(f'<rect x="{px}" y="{py}" width="{cell}" '
                         f'height="{cell}" rx="4" fill="#ffffff" '
                         f'stroke="#eaeded" stroke-width="1"/>')
        cx, cy = center(node)
        parts.append(f'<text x="{cx:.0f}" y="{cy + 3:.0f}" '
                     f'text-anchor="middle" font-size="9" '
                     f'fill="#566573">{node}</text>')
    for key, e in sorted(links.items()):
        a_s, b_s = key.split(">")
        a, b = int(a_s), int(b_s)
        ax, ay = center(a)
        bx, by = center(b)
        dx, dy = bx - ax, by - ay
        n = (dx * dx + dy * dy) ** 0.5 or 1.0
        ux, uy = dx / n, dy / n
        # offset the two directions of one channel to opposite sides
        ox, oy = -uy * 5, ux * 5
        x1, y1 = ax + ux * cell / 2 + ox, ay + uy * cell / 2 + oy
        x2, y2 = bx - ux * cell / 2 + ox, by - uy * cell / 2 + oy
        frac = e["share"] / link_peak
        swidth = 1.0 + 5.0 * frac
        color = f"rgb({int(42 + 150 * frac)},{int(122 - 70 * frac)},226)"
        parts.append(f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" '
                     f'y2="{y2:.1f}" stroke="{color}" '
                     f'stroke-width="{swidth:.1f}" opacity="0.85"/>')
        # arrowhead: a short chevron at the head end
        hx, hy = x2 - ux * 4, y2 - uy * 4
        parts.append(f'<circle cx="{hx:.1f}" cy="{hy:.1f}" '
                     f'r="{1.2 + 1.5 * frac:.1f}" fill="{color}"/>')
    basis = html.escape(str(summary.get("basis", "words")))
    parts.append(f'<text x="{gap}" y="{height - 4}" font-size="10" '
                 f'fill="#566573">tile/link shade = {basis} share '
                 f"(peak tile {tile_peak:.1%}, peak link {link_peak:.1%}); "
                 "red border = sender backpressure</text>")
    parts.append("</svg>")
    return "".join(parts)


def write_mesh_svg(path: str, summary, *, title: str = "") -> str:
    """Write one standalone mesh-heatmap SVG file (CI artifact)."""
    d = os.path.dirname(path)
    if d:
        os.makedirs(d, exist_ok=True)
    svg = mesh_svg(summary)
    if title:
        svg = svg.replace(
            ">", f'><title>{html.escape(title)}</title>', 1)
    with open(path, "w") as f:
        f.write('<?xml version="1.0" encoding="UTF-8"?>\n')
        f.write(svg.replace(
            "<svg ", '<svg xmlns="http://www.w3.org/2000/svg" ', 1))
    return path


def _series_groups(sampler) -> "List[Tuple[str, List[Any]]]":
    """Series grouped by subsystem prefix (``core.busy`` -> ``core``)."""
    groups: Dict[str, List[Any]] = {}
    for name in sorted(sampler.series):
        if name.startswith("slo."):
            continue  # burn series render in the SLO section
        if name.startswith("spatial."):
            continue  # per-link/per-tile rings render as the mesh panel
        groups.setdefault(name.split(".", 1)[0], []).append(
            sampler.series[name])
    return sorted(groups.items())


_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 1.5em auto; max-width: 1180px; color: #1c2833;
       background: #fafbfc; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin: 0.3em 0; }
.note { color: #566573; font-size: 0.85em; }
details { margin: 0.6em 0; background: #fff; border: 1px solid #d5dbdb;
          border-radius: 6px; padding: 0.4em 0.8em; }
summary { cursor: pointer; font-weight: 600; }
.grid { display: grid; gap: 10px;
        grid-template-columns: repeat(auto-fill, minmax(280px, 1fr)); }
.card { border: 1px solid #e5e8e8; border-radius: 6px; padding: 6px 8px;
        background: #fdfefe; }
.card .name { font-weight: 600; font-size: 0.85em; }
.card .stats { color: #566573; font-size: 0.78em; }
.empty { fill: #aab7b8; font-size: 10px; }
.slo-ok { color: #1e8449; } .slo-bad { color: #c0392b; font-weight: 700; }
table { border-collapse: collapse; font-size: 0.85em; }
td, th { border: 1px solid #d5dbdb; padding: 3px 8px; text-align: left; }
.incident { border-left: 4px solid #c0392b; margin: 0.4em 0;
            padding: 0.2em 0.6em; background: #fdf2f0; font-size: 0.9em; }
"""


def _html_machine(ob, open_: bool) -> str:
    """One observed machine as a collapsible dashboard section."""
    out = [f"<details{' open' if open_ else ''}>"
           f"<summary>{html.escape(ob.label)}</summary>"]
    sampler = ob.sampler
    if sampler is None:
        out.append('<p class="note">no telemetry sampler on this machine'
                   "</p></details>")
        return "".join(out)
    for prefix, series_list in _series_groups(sampler):
        out.append(f"<h2>{html.escape(prefix)}</h2>")
        out.append('<div class="grid">')
        for ts in series_list:
            # escape: series units are caller-supplied strings (a custom
            # source registered with unit='<i>' must not inject markup)
            unit = f" {html.escape(ts.unit)}" if ts.unit else ""
            stats = (f"mean {_fmt(ts.mean())}{unit} &middot; "
                     f"peak {_fmt(ts.peak())}{unit} &middot; "
                     f"last {_fmt(ts.last_value)}{unit}")
            if ts.wraps:
                stats += f" &middot; wraps {ts.wraps}"
            out.append(
                '<div class="card">'
                f'<div class="name">{html.escape(ts.name)}</div>'
                f"{chart_svg(ts.points())}"
                f'<div class="stats">{stats}</div></div>')
        out.append("</div>")
    atlas = getattr(ob, "spatial", None)
    if atlas is not None:
        s = atlas.summary()
        if s["messages"] or s["links"]:
            out.append("<h2>mesh</h2>")
            out.append(
                '<div class="card" style="max-width:480px">'
                f"{mesh_svg(s)}"
                f'<div class="stats">{s["messages"]} msgs &middot; '
                f'{s["words"]} words &middot; {len(s["links"])} active '
                "link(s)</div></div>")
    mon = ob.slo
    if mon is not None and mon.slos:
        out.append("<h2>SLOs</h2>")
        out.append('<div class="grid">')
        marks_by_slo: Dict[str, List[Tuple[int, str]]] = {}
        for cycle, what, name in mon.events:
            marks_by_slo.setdefault(name, []).append(
                (cycle, "#c0392b" if what == "breach" else "#1e8449"))
        for status in mon.summary():
            name = status["name"]
            ts = mon.burn.get(name)
            cls = "slo-bad" if status["breaches"] else "slo-ok"
            out.append(
                '<div class="card">'
                f'<div class="name {cls}">{html.escape(name)} '
                f'({html.escape(str(status["kind"]))} vs '
                f'{_fmt(status["target"])}) &mdash; '
                f'{status["breaches"]} breach(es)</div>'
                f"{chart_svg(ts.points() if ts is not None else [], hline=status['burn_threshold'], marks=marks_by_slo.get(name, ()))}"
                '<div class="stats">short burn '
                f'{status["burn_short"]:.2f} &middot; long burn '
                f'{status["burn_long"]:.2f} &middot; last value '
                f'{_fmt(status["last_value"])}</div></div>')
        out.append("</div>")
    out.append("</details>")
    return "".join(out)


def render_dashboard_html(session, *, title: str,
                          notes: Sequence[str] = ()) -> str:
    """The whole observed session as one self-contained HTML page."""
    machines = list(session.machines)
    incidents = session.incidents()
    breaches = session.breaches()
    body = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{html.escape(title)}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>{html.escape(title)}</h1>",
        f'<p class="note">{len(machines)} observed machine(s) &middot; '
        f"{breaches} SLO breach(es) &middot; "
        f"{len(incidents)} incident(s)</p>",
    ]
    for note in notes:
        body.append(f'<p class="note">note: {html.escape(note)}</p>')
    if incidents:
        body.append("<h2>Incidents</h2>")
        paths: List[str] = []
        for ob in machines:
            if ob.flight is not None:
                paths.extend(ob.flight.paths)
        for i, inc in enumerate(incidents):
            where = f" &mdash; <code>{html.escape(paths[i])}</code>" \
                if i < len(paths) else ""
            body.append(
                '<div class="incident">'
                f'<b>{html.escape(inc["reason"])}</b> at cycle '
                f'{inc["cycle"]} on {html.escape(inc["label"])}: '
                f'{html.escape(inc["detail"])}{where}</div>')
    for i, ob in enumerate(machines):
        body.append(_html_machine(ob, open_=(i < 2)))
    body.append("</body></html>")
    return "\n".join(body)


def render_dashboard_text(session, *, title: str,
                          max_machines: Optional[int] = 4) -> str:
    """Terminal dashboard: block sparklines + SLO/incident status."""
    machines = list(session.machines)
    lines = [f"== {title} ==",
             f"{len(machines)} machine(s), {session.breaches()} SLO "
             f"breach(es), {len(session.incidents())} incident(s)"]
    shown = machines if max_machines is None else machines[:max_machines]
    for ob in shown:
        lines.append(f"-- {ob.label}")
        sampler = ob.sampler
        if sampler is None:
            continue
        for name in sorted(sampler.series):
            if name.startswith("spatial."):
                continue  # the atlas renders as a heatmap, not 100 rows
            ts = sampler.series[name]
            unit = f" {ts.unit}" if ts.unit else ""
            lines.append(
                f"  {name:<20s} {text_sparkline(ts.points()):<40s} "
                f"mean {_fmt(ts.mean())}{unit}  peak {_fmt(ts.peak())}{unit}")
        atlas = getattr(ob, "spatial", None)
        if atlas is not None:
            from repro.analysis.render import render_mesh_heatmap
            s = atlas.summary()
            if s["messages"] or s["links"]:
                lines.append("  " + render_mesh_heatmap(
                    s, top_links=3).rstrip().replace("\n", "\n  "))
        if ob.slo is not None:
            for st in ob.slo.summary():
                flag = "BREACHED" if st["breached"] else (
                    f'{st["breaches"]} breach(es)' if st["breaches"] else "ok")
                lines.append(
                    f'  slo {st["name"]:<16s} [{flag}]  burn '
                    f'{st["burn_short"]:.2f}/{st["burn_long"]:.2f}  '
                    f'target {_fmt(st["target"])} last '
                    f'{_fmt(st["last_value"])}')
    if max_machines is not None and len(machines) > max_machines:
        lines.append(f"... {len(machines) - max_machines} more machine(s) "
                     "in the HTML dashboard")
    for inc in session.incidents():
        lines.append(f'  incident: {inc["reason"]} at cycle {inc["cycle"]} '
                     f'({inc["detail"]}) on {inc["label"]}')
    return "\n".join(lines)


_VERDICT_CLS = {"improved": "slo-ok", "regressed": "slo-bad",
                "changed": "", "unchanged": ""}


def render_diff_html(diff: Dict[str, Any], *, title: str) -> str:
    """A ``repro diff`` verdict as a side-by-side HTML page.

    Same self-contained inline-CSS style as the run dashboards; A and B
    values sit in adjacent columns with per-metric verdict coloring, so
    a CI artifact link answers "what moved?" at a glance.
    """
    def esc(v: Any) -> str:
        return html.escape(str(v))

    a, b = diff["a"], diff["b"]
    c = diff["counts"]
    body = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{esc(title)}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>{esc(title)}</h1>",
        f'<p class="note">A = {esc(a["label"])} &middot; '
        f'B = {esc(b["label"])} &middot; threshold '
        f'&plusmn;{diff["threshold"]:.1%}</p>',
    ]
    vcls = _VERDICT_CLS.get(diff["verdict"], "")
    body.append(f'<p><b class="{vcls}">verdict: {esc(diff["verdict"])}</b> '
                f'&mdash; {c["improved"]} improved, {c["regressed"]} '
                f'regressed, {c["changed"]} changed, {c["unchanged"]} '
                "unchanged</p>")
    if not diff["comparable"]:
        body.append('<p class="slo-bad">records not directly comparable '
                    "(machine-profile fingerprint or quick/full mode "
                    "differ)</p>")
    if diff["gate"]:
        if diff["gate_failures"]:
            body.append(f'<p class="slo-bad">gate FAIL on '
                        f'{esc(", ".join(diff["gate"]))}</p><ul>')
            body.extend(f"<li>{esc(m)}</li>" for m in diff["gate_failures"])
            body.append("</ul>")
        else:
            body.append(f'<p class="slo-ok">gate OK on '
                        f'{esc(", ".join(diff["gate"]))}</p>')
    for s in diff["series"]:
        head = (s["a_label"] if s["a_label"] == s["b_label"]
                else f'{s["a_label"]} vs {s["b_label"]}')
        body.append(f"<details open><summary>{esc(head)}</summary>")
        body.append("<table><tr><th>x</th><th>metric</th><th>A</th>"
                    "<th>B</th><th>&Delta;</th><th>verdict</th></tr>")
        for p in s["points"]:
            for name, m in sorted(p["metrics"].items()):
                cls = _VERDICT_CLS.get(m["verdict"], "")
                delta = ("&infin;" if m["delta"] in (float("inf"),
                                                     float("-inf"))
                         else f'{m["delta"]:+.1%}')
                body.append(
                    f'<tr><td>{p["x"]:g}</td><td>{esc(name)}</td>'
                    f'<td>{m["a"]:.6g}</td><td>{m["b"]:.6g}</td>'
                    f'<td>{delta}</td>'
                    f'<td class="{cls}">{esc(m["verdict"])}</td></tr>')
        body.append("</table>")
        for x in s["missing_in_b"]:
            body.append(f'<p class="slo-bad">x={x:g}: point missing in B'
                        "</p>")
        sp_points = [p for p in s["points"]
                     if p.get("spatial") is not None]
        for p in sp_points:
            sp = p["spatial"]
            movers = ", ".join(
                f'{esc(m["link"])} {m["move"]:+.1%}'
                for m in sp["top_movers"][:5]) or "none"
            body.append(
                f'<p class="note">x={p["x"]:g} spatial: '
                f'{sp["total_share_moved"]:.1%} of occupancy share moved '
                f"({esc(sp['verdict'])}); top movers: {movers}</p>")
        body.append("</details>")
    for label in diff["series_only_in_a"]:
        body.append(f'<p class="note">series only in A: {esc(label)}</p>')
    for label in diff["series_only_in_b"]:
        body.append(f'<p class="note">series only in B: {esc(label)}</p>')
    body.append("</body></html>")
    return "\n".join(body)


def write_dashboard(path: str, session, *, title: str,
                    notes: Sequence[str] = ()) -> str:
    """Render and write the HTML dashboard; returns the path."""
    d = os.path.dirname(path)
    if d:
        os.makedirs(d, exist_ok=True)
    with open(path, "w") as f:
        f.write(render_dashboard_html(session, title=title, notes=notes))
    return path
