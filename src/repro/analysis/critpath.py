"""Per-op causal tracing and critical-path blame attribution.

Reconstructs, from the raw event stream a
:class:`~repro.obs.causal.CausalCollector` recorded, *where every cycle
of every operation's latency went*.  This is the lens Figures 3-5 of
the paper argue with -- coherence stalls vs. message latency vs.
combiner queueing -- applied per operation instead of machine-wide.

Model
-----
Every operation is the half-open interval ``[t0, t1)`` between its
``op.begin`` and ``op.end`` events on the issuing thread.  Within that
interval, recorded spans are *painted* onto a cycle-accurate timeline in
a fixed precedence order (later paints win), so the final timeline is a
partition of the interval and the per-category totals sum **exactly** to
the measured latency:

1. ``client``        -- base coat: the issuing thread computing/spinning
2. ``combining``     -- the issuing thread serving *others'* requests as
                        combiner while its own op is open
3. ``coherence``     -- cache / store-buffer stalls on the client core
4. ``atomic``        -- the client core's RMW round trips
5. ``backpressure``  -- the client blocked on a full destination buffer
6. ``queueing``      -- base coat of the response wait (request parked
                        in the server/combiner queue)
7. ``udn_transit``   -- the request flit in flight (send -> deliver,
                        matched by ``msg_id``)
8. ``service``       -- the request executing on the serving core
                        (``server.done`` span, matched by client tid)
9. ``service_stall`` -- cycles inside the service span the *serving*
                        core spent stalled (coherence/atomic/fence)
10. ``response``     -- wait cycles after the last service span ended:
                        the response travelling back and being popped

The whole-run critical path is the longest-duration chain of painted
segments through the happens-before DAG whose edges are (a) program
order inside an op, (b) program order between one thread's consecutive
ops, and (c) service serialization: consecutive service spans on the
same serving core.  Under saturation that chain runs through the
bottleneck resource, so its blame mix names the resource that bounds
throughput -- the same verdict as the Figure 4a counter breakdown, but
derived from causality instead of aggregate registers.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "CATEGORIES",
    "CritPathReport",
    "OpTrace",
    "analyze",
    "analyze_collector",
    "diff_reports",
    "stragglers",
]

#: blame categories in paint order (index = paint precedence and the
#: code stored in the per-op timeline)
CATEGORIES: Tuple[str, ...] = (
    "client",
    "combining",
    "coherence",
    "atomic",
    "backpressure",
    "queueing",
    "udn_transit",
    "service",
    "service_stall",
    "response",
)

_CLIENT = 0
_COMBINING = 1
_COHERENCE = 2
_ATOMIC = 3
_BACKPRESSURE = 4
_QUEUEING = 5
_UDN_TRANSIT = 6
_SERVICE = 7
_SERVICE_STALL = 8
_RESPONSE = 9


@dataclass
class OpTrace:
    """One operation's reconstructed life, cycle-exactly attributed."""

    op: int                       #: run-unique op id
    tid: int                      #: issuing thread
    core: int                     #: issuing core
    t0: int                       #: issue cycle
    t1: int                       #: completion cycle
    measured: bool                #: completed inside the measurement window
    prim: str                     #: primitive label ("mp-server", ...)
    #: the painted timeline as (start, end, category) runs partitioning
    #: [t0, t1); durations sum exactly to :attr:`latency`
    segments: List[Tuple[int, int, str]] = field(default_factory=list)
    #: category -> cycles (sums exactly to :attr:`latency`)
    blame: Dict[str, int] = field(default_factory=dict)

    @property
    def latency(self) -> int:
        return self.t1 - self.t0

    @property
    def dominant(self) -> str:
        """The category carrying the most cycles of this op's latency."""
        if not self.blame:
            return "client"
        return max(self.blame.items(), key=lambda kv: kv[1])[0]


@dataclass
class CritPathReport:
    """Everything the renderers need from one analyzed run."""

    label: str
    ops: List[OpTrace]                      #: every completed op, issue order
    blame: Dict[str, int]                   #: totals over *measured* ops
    path: List[Tuple[int, int, int, str]]   #: whole-run critical path:
                                            #: (op, start, end, category)
    path_blame: Dict[str, int]              #: category totals along the path
    incomplete_ops: int = 0                 #: op.begin without op.end (crashes)
    truncated: bool = False                 #: collector hit its event cap

    @property
    def measured_ops(self) -> List[OpTrace]:
        return [o for o in self.ops if o.measured]

    @property
    def dominant(self) -> str:
        """Dominant blame category across all measured ops."""
        if not self.blame:
            return "client"
        return max(self.blame.items(), key=lambda kv: kv[1])[0]

    @property
    def path_dominant(self) -> str:
        """Dominant category along the whole-run critical path."""
        if not self.path_blame:
            return "client"
        return max(self.path_blame.items(), key=lambda kv: kv[1])[0]

    @property
    def path_cycles(self) -> int:
        return sum(self.path_blame.values())


# -- interval indexing ------------------------------------------------------

class _Spans:
    """Sorted (start, end) spans with fast clipped-overlap queries."""

    def __init__(self) -> None:
        self._raw: List[Tuple[int, int]] = []
        self._starts: List[int] = []

    def add(self, start: int, end: int) -> None:
        if end > start:
            self._raw.append((start, end))

    def freeze(self) -> None:
        self._raw.sort()
        self._starts = [s for s, _ in self._raw]

    def overlapping(self, lo: int, hi: int) -> Iterable[Tuple[int, int]]:
        """Spans intersecting [lo, hi), clipped to it.

        Spans from one core's event stream never nest (a core stalls,
        waits, or serves one thing at a time), so scanning back from the
        first start >= hi until spans end before lo stays O(answer).
        """
        i = bisect_left(self._starts, hi) - 1
        out = []
        while i >= 0:
            s, e = self._raw[i]
            if e <= lo:
                if s <= lo:
                    break
                i -= 1
                continue
            out.append((max(s, lo), min(e, hi)))
            i -= 1
        out.reverse()
        return out


def _paint(buf: np.ndarray, base: int, start: int, end: int, code: int) -> None:
    s = max(start - base, 0)
    e = min(end - base, len(buf))
    if e > s:
        buf[s:e] = code


# -- analysis ---------------------------------------------------------------

def analyze(events: Sequence[Tuple[int, str, Dict[str, Any]]],
            label: str = "run", truncated: bool = False) -> CritPathReport:
    """Reconstruct per-op blame and the whole-run critical path.

    ``events`` is the raw ``(cycle, kind, fields)`` stream of one
    machine (what :class:`~repro.obs.causal.CausalCollector` holds), in
    emission order.
    """
    # ---- index the stream by the keys the per-op joins need ----
    op_begin: Dict[int, Tuple[int, int, int, str]] = {}  # op -> (t, core, tid, prim)
    op_ends: List[Tuple[int, Dict[str, Any]]] = []
    stall_by_core: Dict[int, _Spans] = {}       # coherence + fence
    atomic_by_core: Dict[int, _Spans] = {}
    bp_by_core: Dict[int, _Spans] = {}
    recv_by_tid: Dict[int, _Spans] = {}
    comb_by_tid: Dict[int, _Spans] = {}
    svc_by_client: Dict[int, List[Tuple[int, int, int]]] = {}  # (start, end, core)
    sends_by_core: Dict[int, List[Tuple[int, int]]] = {}       # (t, msg_id)
    deliver_at: Dict[int, int] = {}                            # msg_id -> t

    def spans(d: Dict[int, _Spans], key: int) -> _Spans:
        sp = d.get(key)
        if sp is None:
            sp = d[key] = _Spans()
        return sp

    for t, kind, f in events:
        if kind == "op.begin":
            op_begin[f["op"]] = (t, f["core"], f["tid"], f.get("prim", "?"))
        elif kind == "op.end":
            op_ends.append((t, f))
        elif kind == "server.done":
            client = f.get("client")
            if client is not None:
                svc_by_client.setdefault(client, []).append(
                    (f["start"], t, f["core"]))
        elif kind in ("cache.stall", "fence.stall"):
            spans(stall_by_core, f["core"]).add(t - f["cycles"], t)
        elif kind == "atomic.stall":
            spans(atomic_by_core, f["core"]).add(t - f["cycles"], t)
        elif kind == "udn.backpressure":
            spans(bp_by_core, f["core"]).add(f["start"], t)
        elif kind == "udn.recv":
            spans(recv_by_tid, f["tid"]).add(f["start"], f["start"] + f["waited"])
        elif kind == "combiner.close":
            spans(comb_by_tid, f["tid"]).add(f["start"], t)
        elif kind == "udn.send":
            msg = f.get("msg_id")
            if msg is not None:
                sends_by_core.setdefault(f["core"], []).append((t, msg))
        elif kind == "udn.deliver":
            msg = f.get("msg_id")
            if msg is not None:
                deliver_at[msg] = t

    for d in (stall_by_core, atomic_by_core, bp_by_core, recv_by_tid,
              comb_by_tid):
        for sp in d.values():
            sp.freeze()
    for lst in svc_by_client.values():
        lst.sort()
    for lst in sends_by_core.values():
        lst.sort()

    # ---- paint every completed op ----
    ops: List[OpTrace] = []
    blame_total: Dict[str, int] = {}
    for t1, f in op_ends:
        t0 = f["start"]
        if t1 <= t0:
            continue
        tid, core, op_id = f["tid"], f["core"], f["op"]
        prim = op_begin.get(op_id, (0, 0, 0, "?"))[3]
        buf = np.zeros(t1 - t0, dtype=np.int8)  # base coat: client

        sp = comb_by_tid.get(tid)
        if sp is not None:
            for s, e in sp.overlapping(t0, t1):
                _paint(buf, t0, s, e, _COMBINING)
        sp = stall_by_core.get(core)
        if sp is not None:
            for s, e in sp.overlapping(t0, t1):
                _paint(buf, t0, s, e, _COHERENCE)
        sp = atomic_by_core.get(core)
        if sp is not None:
            for s, e in sp.overlapping(t0, t1):
                _paint(buf, t0, s, e, _ATOMIC)
        sp = bp_by_core.get(core)
        if sp is not None:
            for s, e in sp.overlapping(t0, t1):
                _paint(buf, t0, s, e, _BACKPRESSURE)
        sp = recv_by_tid.get(tid)
        if sp is not None:
            for s, e in sp.overlapping(t0, t1):
                _paint(buf, t0, s, e, _QUEUEING)
        # request flits in flight (send -> deliver, matched by msg_id)
        sends = sends_by_core.get(core)
        if sends:
            lo = bisect_left(sends, (t0, -1))
            hi = bisect_right(sends, (t1, 1 << 62))
            for ts, msg in sends[lo:hi]:
                td = deliver_at.get(msg)
                if td is not None:
                    _paint(buf, t0, ts, td, _UDN_TRANSIT)
        # service spans executed for this client, plus the serving
        # core's own stalls inside them
        last_svc_end: Optional[int] = None
        for s, e, svc_core in svc_by_client.get(tid, ()):
            if s >= t1 or e <= t0 or s < t0:
                continue
            _paint(buf, t0, s, e, _SERVICE)
            ssp = stall_by_core.get(svc_core)
            if ssp is not None:
                for ss, se in ssp.overlapping(s, min(e, t1)):
                    _paint(buf, t0, ss, se, _SERVICE_STALL)
            ssp = atomic_by_core.get(svc_core)
            if ssp is not None:
                for ss, se in ssp.overlapping(s, min(e, t1)):
                    _paint(buf, t0, ss, se, _SERVICE_STALL)
            if last_svc_end is None or e > last_svc_end:
                last_svc_end = e
        # wait cycles after the service ended: the response coming back
        if last_svc_end is not None and last_svc_end < t1:
            tail = buf[max(last_svc_end - t0, 0):]
            tail[tail == _QUEUEING] = _RESPONSE

        # compress the timeline into runs + per-category totals
        counts = np.bincount(buf, minlength=len(CATEGORIES))
        blame = {CATEGORIES[i]: int(c) for i, c in enumerate(counts) if c}
        edges = np.flatnonzero(np.diff(buf)) + 1
        bounds = np.concatenate(([0], edges, [len(buf)]))
        segments = [
            (t0 + int(bounds[i]), t0 + int(bounds[i + 1]),
             CATEGORIES[int(buf[bounds[i]])])
            for i in range(len(bounds) - 1)
        ]
        trace = OpTrace(op=op_id, tid=tid, core=core, t0=t0, t1=t1,
                        measured=bool(f.get("measured")), prim=prim,
                        segments=segments, blame=blame)
        ops.append(trace)
        if trace.measured:
            for cat, v in blame.items():
                blame_total[cat] = blame_total.get(cat, 0) + v

    ops.sort(key=lambda o: (o.t0, o.op))
    path, path_blame = _critical_path(ops)
    return CritPathReport(
        label=label, ops=ops, blame=blame_total, path=path,
        path_blame=path_blame,
        incomplete_ops=len(op_begin) - len(ops),
        truncated=truncated,
    )


def analyze_collector(causal, label: str = "run") -> CritPathReport:
    """Analyze one machine's :class:`~repro.obs.causal.CausalCollector`."""
    return analyze(causal.events, label=label, truncated=causal.truncated)


# -- whole-run critical path ------------------------------------------------

def _critical_path(ops: List[OpTrace]) -> Tuple[List[Tuple[int, int, int, str]],
                                                Dict[str, int]]:
    """Longest-duration chain of segments through the happens-before DAG.

    Edges: consecutive segments of one op (program order), the last
    segment of thread T's op k -> first segment of its op k+1 (program
    order across the think phase), and consecutive service segments on
    one serving core (service serialization).  All edges point forward
    in time, so one pass over segments sorted by end cycle is a valid
    topological order for the longest-path DP.
    """
    # nodes: (op_index, seg_index); flatten with global ids
    segs: List[Tuple[int, int, int, int, str]] = []  # (start, end, op_idx, seg_idx, cat)
    for oi, op in enumerate(ops):
        for si, (s, e, cat) in enumerate(op.segments):
            if e > s:
                segs.append((s, e, oi, si, cat))
    if not segs:
        return [], {}

    node_of: Dict[Tuple[int, int], int] = {}
    for idx, (_s, _e, oi, si, _c) in enumerate(segs):
        node_of[(oi, si)] = idx

    preds: List[List[int]] = [[] for _ in segs]

    # (a) program order inside an op
    for oi, op in enumerate(ops):
        prev = None
        for si, (s, e, _cat) in enumerate(op.segments):
            if e <= s:
                continue
            cur = node_of[(oi, si)]
            if prev is not None:
                preds[cur].append(prev)
            prev = cur

    # (b) program order between one thread's consecutive ops
    last_of_tid: Dict[int, int] = {}
    for oi, op in enumerate(ops):  # ops already sorted by t0
        first = next((node_of[(oi, si)] for si, (s, e, _c)
                      in enumerate(op.segments) if e > s), None)
        last = next((node_of[(oi, si)] for si in
                     range(len(op.segments) - 1, -1, -1)
                     if op.segments[si][1] > op.segments[si][0]), None)
        if first is None:
            continue
        prev = last_of_tid.get(op.tid)
        if prev is not None and segs[prev][1] <= segs[first][0]:
            preds[first].append(prev)
        last_of_tid[op.tid] = last

    # (c) service serialization: consecutive service segments per core.
    # An op's service runs on the serving core; chain them in time order
    # so the path can ride the bottleneck core across ops.
    svc_nodes: Dict[Any, List[int]] = {}
    for idx, (_s, _e, oi, _si, cat) in enumerate(segs):
        if cat in ("service", "service_stall"):
            svc_nodes.setdefault(ops[oi].prim, []).append(idx)
    for nodes in svc_nodes.values():
        nodes.sort(key=lambda i: (segs[i][0], segs[i][1]))
        for a, b in zip(nodes, nodes[1:]):
            if segs[a][1] <= segs[b][0]:
                preds[b].append(a)

    # longest-duration DP over segments in end-cycle order
    order = sorted(range(len(segs)), key=lambda i: (segs[i][1], segs[i][0]))
    dp = [0] * len(segs)
    back: List[Optional[int]] = [None] * len(segs)
    for i in order:
        dur = segs[i][1] - segs[i][0]
        best, who = 0, None
        for p in preds[i]:
            if dp[p] > best:
                best, who = dp[p], p
        dp[i] = best + dur
        back[i] = who

    end = max(range(len(segs)), key=lambda i: dp[i])
    chain: List[int] = []
    cur: Optional[int] = end
    while cur is not None:
        chain.append(cur)
        cur = back[cur]
    chain.reverse()

    path = [(ops[segs[i][2]].op, segs[i][0], segs[i][1], segs[i][4])
            for i in chain]
    path_blame: Dict[str, int] = {}
    for _op, s, e, cat in path:
        path_blame[cat] = path_blame.get(cat, 0) + (e - s)
    return path, path_blame


# -- derived reports --------------------------------------------------------

def stragglers(report: CritPathReport, k: int = 10) -> List[OpTrace]:
    """The ``k`` slowest measured ops, slowest first."""
    return sorted(report.measured_ops, key=lambda o: -o.latency)[:k]


def diff_reports(a: CritPathReport, b: CritPathReport) -> Dict[str, Dict[str, float]]:
    """Per-category mean blame (cycles/op) of two runs, plus the delta.

    The A/B lens: for each category, how many cycles per measured op
    each run spends there, and ``b - a``.  Categories absent from both
    are omitted.
    """
    na = max(len(a.measured_ops), 1)
    nb = max(len(b.measured_ops), 1)
    out: Dict[str, Dict[str, float]] = {}
    for cat in CATEGORIES:
        va = a.blame.get(cat, 0) / na
        vb = b.blame.get(cat, 0) / nb
        if va or vb:
            out[cat] = {"a": va, "b": vb, "delta": vb - va}
    return out
