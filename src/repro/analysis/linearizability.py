"""History recording and linearizability checking (Herlihy & Wing [15]).

The paper's objects are all *linearizable*; the test-suite mostly checks
cheap necessary conditions (ticket permutations, element conservation).
This module provides the real thing for small histories: record
concurrent invocation/response intervals, then search for a legal
sequential witness with the Wing & Gong algorithm (depth-first search
over linearization orders with memoized visited states).

The checker is exponential in the worst case, so it is a *testing* tool:
histories of a few hundred operations across a handful of threads check
in milliseconds, which is exactly the scale the property-based tests
generate.

Sequential specifications are provided for the paper's three object
families (counter, FIFO queue, LIFO stack); new ones are a small class
away.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Hashable, List, Optional, Tuple

__all__ = [
    "Operation",
    "History",
    "SequentialSpec",
    "CounterSpec",
    "QueueSpec",
    "StackSpec",
    "LCRQSpec",
    "ElimStackSpec",
    "PoolSpec",
    "check_linearizable",
]


@dataclass(frozen=True)
class Operation:
    """One completed operation in a concurrent history."""

    tid: int
    op: str          #: e.g. "inc", "enq", "deq", "push", "pop", "read"
    arg: Any
    retval: Any
    invoke_t: int
    response_t: int

    def __post_init__(self):
        if self.response_t < self.invoke_t:
            raise ValueError("operation responds before it is invoked")


class History:
    """A recorder for concurrent operations.

    Usage inside simulated threads::

        t0 = machine.now
        v = yield from queue.dequeue(ctx)
        history.record(ctx.tid, "deq", None, v, t0, machine.now)
    """

    def __init__(self) -> None:
        self.ops: List[Operation] = []

    def record(self, tid: int, op: str, arg: Any, retval: Any,
               invoke_t: int, response_t: int) -> None:
        self.ops.append(Operation(tid, op, arg, retval, invoke_t, response_t))

    def __len__(self) -> int:
        return len(self.ops)


class SequentialSpec:
    """A sequential object: immutable-state step function.

    ``initial()`` returns a hashable state; ``apply(state, op)`` returns
    the successor state if executing ``op`` in ``state`` legally yields
    ``op.retval``, else ``None``.
    """

    def initial(self) -> Hashable:
        raise NotImplementedError

    def apply(self, state: Hashable, op: Operation) -> Optional[Hashable]:
        raise NotImplementedError


class CounterSpec(SequentialSpec):
    """fetch-and-increment ("inc" returns the pre-value) + "read"."""

    def initial(self) -> Hashable:
        return 0

    def apply(self, state: int, op: Operation) -> Optional[int]:
        if op.op == "inc":
            return state + 1 if op.retval == state else None
        if op.op == "read":
            return state if op.retval == state else None
        raise ValueError(f"unknown counter op {op.op!r}")


#: sentinel matching repro.objects.EMPTY for queue/stack specs
EMPTY = (1 << 64) - 1


class QueueSpec(SequentialSpec):
    """FIFO queue: "enq" (arg=value) and "deq" (retval=value or EMPTY)."""

    def initial(self) -> Hashable:
        return ()

    def apply(self, state: Tuple, op: Operation) -> Optional[Tuple]:
        if op.op == "enq":
            return state + (op.arg,)
        if op.op == "deq":
            if op.retval == EMPTY:
                return state if not state else None
            if state and state[0] == op.retval:
                return state[1:]
            return None
        raise ValueError(f"unknown queue op {op.op!r}")


class StackSpec(SequentialSpec):
    """LIFO stack: "push" (arg=value) and "pop" (retval=value or EMPTY)."""

    def initial(self) -> Hashable:
        return ()

    def apply(self, state: Tuple, op: Operation) -> Optional[Tuple]:
        if op.op == "push":
            return state + (op.arg,)
        if op.op == "pop":
            if op.retval == EMPTY:
                return state if not state else None
            if state and state[-1] == op.retval:
                return state[:-1]
            return None
        raise ValueError(f"unknown stack op {op.op!r}")


class LCRQSpec(QueueSpec):
    """Sequential spec of the LCRQ (Morrison & Afek): a FIFO queue.

    The LCRQ's ring-buffer mechanics (CLOSED bit, segment hopping) are
    implementation detail; its abstract object is exactly the FIFO queue,
    restricted to the 32-bit values the ring can carry.  The restriction
    is checked so a history recorded against the wrong object (64-bit
    values that the LCRQ would have truncated) fails loudly instead of
    passing as a coincidence.
    """

    MAX_VALUE = (1 << 32) - 1

    def apply(self, state: Tuple, op: Operation) -> Optional[Tuple]:
        if op.op == "enq" and not (0 <= op.arg <= self.MAX_VALUE):
            raise ValueError(
                f"LCRQ history carries non-32-bit value {op.arg!r}")
        return super().apply(state, op)


class ElimStackSpec(StackSpec):
    """Sequential spec of the elimination-backoff stack: a LIFO stack.

    Elimination pairs a concurrent push with a concurrent pop *without
    touching the backing stack* -- which is linearizable precisely
    because the paired ops overlap in real time, so they may linearize
    adjacently (push immediately followed by its pop).  The plain
    :class:`StackSpec` step function already admits exactly those
    witnesses; the subclass exists to name the object and to accept the
    ``put``/``get`` aliases the elimination front-end reports for
    eliminated pairs in some harnesses.
    """

    _ALIAS = {"put": "push", "get": "pop"}

    def apply(self, state: Tuple, op: Operation) -> Optional[Tuple]:
        name = self._ALIAS.get(op.op)
        if name is not None:
            op = Operation(op.tid, name, op.arg, op.retval,
                           op.invoke_t, op.response_t)
        return super().apply(state, op)


class PoolSpec(SequentialSpec):
    """Unordered pool (bag): "put" inserts, "get" removes *some* element.

    The weakest of the container specs -- a get may return any element
    currently in the pool, and EMPTY only when the pool is empty.  This
    is the right oracle for workloads that use a stack or queue purely as
    a buffer of work items (the paper's pool benchmarks): any container
    that conserves elements and never invents or loses one satisfies it.
    State is a sorted tuple (a canonical hashable multiset) so the
    memoized DFS can dedup states that differ only in insertion order.

    "push"/"pop" and "enq"/"deq" are accepted as aliases of "put"/"get"
    so the same recorded history can be checked against both its strict
    spec and the pool spec.
    """

    _PUTS = frozenset(("put", "push", "enq"))
    _GETS = frozenset(("get", "pop", "deq"))

    def initial(self) -> Hashable:
        return ()

    def apply(self, state: Tuple, op: Operation) -> Optional[Tuple]:
        if op.op in self._PUTS:
            return tuple(sorted(state + (op.arg,)))
        if op.op in self._GETS:
            if op.retval == EMPTY:
                return state if not state else None
            if op.retval in state:
                out = list(state)
                out.remove(op.retval)
                return tuple(out)
            return None
        raise ValueError(f"unknown pool op {op.op!r}")


def check_linearizable(history: History, spec: SequentialSpec,
                       *, max_states: int = 2_000_000) -> bool:
    """Wing & Gong DFS: is there a legal linearization of ``history``?

    An operation may linearize only after every operation whose response
    precedes its invocation (real-time order).  The search picks, at
    each step, any *minimal* pending operation (one whose invocation
    precedes the earliest response among unlinearized ops), tries to
    apply it to the sequential state, and backtracks on failure.
    Visited (state, remaining-set) pairs are memoized.

    Raises ``RuntimeError`` if the search exceeds ``max_states`` visited
    configurations (never observed for the test-suite's history sizes).
    """
    ops = sorted(history.ops, key=lambda o: (o.invoke_t, o.response_t))
    n = len(ops)
    if n == 0:
        return True
    if n > 64:
        # the memoization key uses a bitmask
        return _check_chunked(ops, spec, max_states)
    return _dfs(ops, spec, max_states)


def _dfs(ops: List[Operation], spec: SequentialSpec, max_states: int) -> bool:
    n = len(ops)
    full_mask = (1 << n) - 1
    seen: set = set()
    visited = 0

    def search(done_mask: int, state: Hashable) -> bool:
        nonlocal visited
        if done_mask == full_mask:
            return True
        key = (done_mask, state)
        if key in seen:
            return False
        visited += 1
        if visited > max_states:
            raise RuntimeError("linearizability search exceeded state budget")
        # minimal-response frontier: an op can be chosen only if no
        # *other pending* op responded before this op was invoked
        min_response = min(
            ops[i].response_t for i in range(n) if not done_mask >> i & 1
        )
        for i in range(n):
            if done_mask >> i & 1:
                continue
            op = ops[i]
            if op.invoke_t > min_response:
                break  # ops are sorted by invocation: nothing later qualifies
            nxt = spec.apply(state, op)
            if nxt is not None and search(done_mask | (1 << i), nxt):
                return True
        seen.add(key)
        return False

    return search(0, spec.initial())


def _check_chunked(ops: List[Operation], spec: SequentialSpec, max_states: int) -> bool:
    """For long histories, split at quiescent points (moments where no
    operation is in flight): linearizability composes across quiescence.

    Because one chunk can have several legal final states (e.g. two
    concurrent enqueues commute into either order), a *frontier set* of
    reachable states is threaded from chunk to chunk.
    """
    chunks: List[List[Operation]] = []
    current: List[Operation] = []
    inflight_until = -1
    for op in ops:
        if current and op.invoke_t > inflight_until:
            chunks.append(current)
            current = []
        current.append(op)
        inflight_until = max(inflight_until, op.response_t)
    chunks.append(current)
    if any(len(c) > 64 for c in chunks):
        raise RuntimeError(
            "history has a >64-op non-quiescent span; record a shorter run"
        )
    frontier = {spec.initial()}
    for chunk in chunks:
        next_frontier: set = set()
        for state in frontier:
            next_frontier |= _final_states(chunk, spec, state, max_states)
        if not next_frontier:
            return False
        frontier = next_frontier
    return True


def _final_states(ops: List[Operation], spec: SequentialSpec,
                  initial: Hashable, max_states: int) -> set:
    """All sequential-object states reachable by legal linearizations of
    ``ops`` starting from ``initial`` (empty set = not linearizable)."""
    n = len(ops)
    full_mask = (1 << n) - 1
    memo: Dict[Tuple[int, Hashable], FrozenSet] = {}
    visited = 0

    def search(done_mask: int, state: Hashable) -> FrozenSet:
        nonlocal visited
        if done_mask == full_mask:
            return frozenset((state,))
        key = (done_mask, state)
        cached = memo.get(key)
        if cached is not None:
            return cached
        visited += 1
        if visited > max_states:
            raise RuntimeError("linearizability search exceeded state budget")
        finals: set = set()
        min_response = min(
            ops[i].response_t for i in range(n) if not done_mask >> i & 1
        )
        for i in range(n):
            if done_mask >> i & 1:
                continue
            op = ops[i]
            if op.invoke_t > min_response:
                break
            nxt = spec.apply(state, op)
            if nxt is not None:
                finals |= search(done_mask | (1 << i), nxt)
        result = frozenset(finals)
        memo[key] = result
        return result

    return set(search(0, initial))
