"""Result aggregation and presentation for the experiment harness.

* :mod:`repro.analysis.series` -- :class:`Series` / :class:`FigureData`:
  the (x, RunResult) collections every experiment returns.
* :mod:`repro.analysis.render` -- ASCII line/bar charts, markdown
  tables and CSV export so figures can be inspected in a terminal and
  committed to EXPERIMENTS.md.
* :mod:`repro.analysis.linearizability` -- history recording and a
  Wing&Gong linearizability checker with sequential specs for the
  paper's object families (counter / FIFO queue / LIFO stack).
"""

from repro.analysis.linearizability import (
    CounterSpec,
    History,
    QueueSpec,
    StackSpec,
    check_linearizable,
)
from repro.analysis.render import ascii_chart, bar_chart, markdown_table, to_csv
from repro.analysis.series import FigureData, Series

__all__ = [
    "CounterSpec",
    "FigureData",
    "History",
    "QueueSpec",
    "Series",
    "StackSpec",
    "ascii_chart",
    "bar_chart",
    "check_linearizable",
    "markdown_table",
    "to_csv",
]
