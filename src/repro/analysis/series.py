"""Data containers shared by every experiment module."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.workload.metrics import RunResult

__all__ = ["Series", "FigureData", "cdf_points"]


def cdf_points(samples: List[int]) -> List[Tuple[int, float]]:
    """Empirical CDF of raw latency samples as (latency, fraction<=).

    The full-distribution view behind ``--latency-dump``: p50/p99 hide
    the straggler tail the paper's latency discussion is about.
    """
    xs = sorted(samples)
    n = len(xs)
    out: List[Tuple[int, float]] = []
    for i, x in enumerate(xs):
        if i + 1 == n or xs[i + 1] != x:
            out.append((x, (i + 1) / n))
    return out


@dataclass
class Series:
    """One labelled curve: x values with their full RunResults."""

    label: str
    points: List[Tuple[float, RunResult]] = field(default_factory=list)

    def add(self, x: float, result: RunResult) -> None:
        self.points.append((x, result))

    def xs(self) -> List[float]:
        return [x for x, _ in self.points]

    def ys(self, metric: Callable[[RunResult], float]) -> List[float]:
        return [metric(r) for _, r in self.points]

    def y_at(self, x: float, metric: Callable[[RunResult], float]) -> Optional[float]:
        for px, r in self.points:
            if px == x:
                return metric(r)
        return None

    def peak(self, metric: Callable[[RunResult], float]) -> float:
        return max(self.ys(metric)) if self.points else 0.0

    def latency_samples(self) -> List[int]:
        """All raw per-op latency samples across this curve's points."""
        out: List[int] = []
        for _x, r in self.points:
            if r.latency_samples:
                out.extend(r.latency_samples)
        return out


@dataclass
class FigureData:
    """A reproduced figure: id, axis labels, and its curves."""

    figure_id: str                #: e.g. "fig3a"
    title: str
    x_label: str
    y_label: str
    series: Dict[str, Series] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def series_for(self, label: str) -> Series:
        s = self.series.get(label)
        if s is None:
            s = Series(label)
            self.series[label] = s
        return s

    def add_point(self, label: str, x: float, result: RunResult) -> None:
        self.series_for(label).add(x, result)

    def note(self, text: str) -> None:
        self.notes.append(text)

    def labels(self) -> List[str]:
        return list(self.series.keys())
