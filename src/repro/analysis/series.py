"""Data containers shared by every experiment module."""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.workload.metrics import RunResult

__all__ = ["Series", "FigureData", "cdf_points"]

#: RunResult fields excluded from determinism fingerprints: host-side
#: provenance varies run to run by construction, and the (late-added)
#: queue-depth series / telemetry summary must not perturb the hashes
#: of figures that predate them -- their deterministic content is
#: fingerprinted through the ``ol.qdepth_*`` extras instead, and
#: telemetry is only attached when sampling is explicitly enabled
_HOST_FIELDS = ("host_wall_seconds", "host_events_processed",
                "queue_depth_series", "telemetry")


def cdf_points(samples: List[int]) -> List[Tuple[int, float]]:
    """Empirical CDF of raw latency samples as (latency, fraction<=).

    The full-distribution view behind ``--latency-dump``: p50/p99 hide
    the straggler tail the paper's latency discussion is about.
    """
    xs = sorted(samples)
    n = len(xs)
    out: List[Tuple[int, float]] = []
    for i, x in enumerate(xs):
        if i + 1 == n or xs[i + 1] != x:
            out.append((x, (i + 1) / n))
    return out


@dataclass
class Series:
    """One labelled curve: x values with their full RunResults."""

    label: str
    points: List[Tuple[float, RunResult]] = field(default_factory=list)

    def add(self, x: float, result: RunResult) -> None:
        self.points.append((x, result))

    def xs(self) -> List[float]:
        return [x for x, _ in self.points]

    def ys(self, metric: Callable[[RunResult], float]) -> List[float]:
        return [metric(r) for _, r in self.points]

    def y_at(self, x: float, metric: Callable[[RunResult], float]) -> Optional[float]:
        for px, r in self.points:
            if px == x:
                return metric(r)
        return None

    def peak(self, metric: Callable[[RunResult], float]) -> float:
        return max(self.ys(metric)) if self.points else 0.0

    def latency_samples(self) -> List[int]:
        """All raw per-op latency samples across this curve's points."""
        out: List[int] = []
        for _x, r in self.points:
            if r.latency_samples:
                out.extend(r.latency_samples)
        return out


@dataclass
class FigureData:
    """A reproduced figure: id, axis labels, and its curves."""

    figure_id: str                #: e.g. "fig3a"
    title: str
    x_label: str
    y_label: str
    series: Dict[str, Series] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def series_for(self, label: str) -> Series:
        s = self.series.get(label)
        if s is None:
            s = Series(label)
            self.series[label] = s
        return s

    def add_point(self, label: str, x: float, result: RunResult) -> None:
        self.series_for(label).add(x, result)

    def note(self, text: str) -> None:
        self.notes.append(text)

    def labels(self) -> List[str]:
        return list(self.series.keys())

    def fingerprint(self) -> str:
        """Deterministic digest of every simulated number in the figure.

        Two runs of the same experiment with the same seeds must produce
        the same fingerprint -- this is what the engine's determinism
        contract and the parallel sweep runner's ordered merge are held
        to (tests/test_parallel.py, tests/test_sim_engine.py).  Host-side
        provenance (wall time, event counts) is excluded: it measures
        the host, not the simulation.
        """
        doc = {
            "figure_id": self.figure_id,
            "series": {
                label: [
                    {"x": x, **{k: v for k, v in asdict(r).items()
                                if k not in _HOST_FIELDS}}
                    for x, r in s.points
                ]
                for label, s in self.series.items()
            },
        }
        blob = json.dumps(doc, sort_keys=True, default=float)
        return hashlib.sha256(blob.encode()).hexdigest()
