"""Cross-run differential analysis: ``python -m repro diff A B``.

Compares two run records -- BENCH_*.json benchmark records, live
:class:`~repro.analysis.series.FigureData` / RunResult sweeps, or
anything normalized into the common *record* shape below -- and emits a
**deterministic structured verdict**: every shared metric of every
shared point is classified ``improved`` / ``regressed`` / ``unchanged``
(or ``changed`` for direction-neutral metrics) against a relative
threshold.  Identical inputs always produce byte-identical text/JSON
output (fixed float formatting, fully sorted iteration, no timestamps),
so CI can both gate on the verdict and ``cmp`` repeated invocations.

Record shape (the common data model)::

    {
      "label":       str,          # where the record came from
      "figure":      str | None,
      "fingerprint": str | None,   # machine-profile fingerprint
      "full":        bool | None,  # quick/full sweep mode
      "series": {
        curve_label: [
          {"x": float,
           "metrics": {name: float, ...},      # scalar per-point metrics
           "spatial": atlas_summary | None},   # optional spatial atlas
          ...],
      },
    }

Metric *directions* decide what counts as an improvement: throughput/
goodput/ops up is better, latency/stall/wait/shed down is better, and
host-side provenance (wall seconds, events/sec) plus unknown metrics
are direction-neutral -- reported as ``changed`` but never gated.
Critical-path blame categories (cycles-per-op by category, see
:mod:`repro.analysis.critpath`) fold in through :func:`blame_metrics`
as neutral metrics: blame *shifting* is a diagnosis, not a regression.

``benchmarks/check_regression.py`` reuses :func:`diff_records` with
``gate=("throughput_mops",)`` so the CI gate and the human diff can
never disagree about what regressed.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "blame_metrics",
    "diff_records",
    "diff_to_json",
    "load_record",
    "metric_direction",
    "record_from_bench",
    "record_from_figure",
    "record_from_results",
    "render_diff_text",
]

#: explicit metric directions: +1 higher-is-better, -1 lower-is-better,
#: 0 direction-neutral (informational).  Matched before the substring
#: heuristics below.
_DIRECTION: Dict[str, int] = {
    "ops": 1,
    "throughput_mops": 1,
    "x": 0,
    "threads": 0,
    "wall_seconds": 0,
    "events_processed": 0,
    "events_per_sec": 0,
    # sparse-directory footprint (BENCH_scale): deterministic
    # model-level bytes, growth is a regression
    "footprint_bytes": -1,
    "footprint_peak_entries": -1,
    "footprint_max_line_bytes": -1,
    "dir.nominal_bytes": -1,
    "dir.peak_entries": -1,
    "dir.max_line_bytes": -1,
    "dir.entries": 0,
    # host events/sec re-published under a gateable name by BENCH_scale
    # (the generic events_per_sec above stays informational); gated with
    # a generous threshold since it measures the CI host too
    "scale_events_per_sec": 1,
}

#: substring heuristics for metrics not in the explicit table (extras
#: like ``ol.goodput_mops`` or ``obs.misses``); first match wins
_HIGHER = ("throughput", "goodput", "time_in_slo")
_LOWER = ("latency", "stall", "wait", "shed", "backpressure", "miss",
          "timeout", "retry", "breaker", "qdepth", "invalidation")


def metric_direction(name: str) -> int:
    """+1 if bigger is better, -1 if smaller is better, 0 if neutral."""
    d = _DIRECTION.get(name)
    if d is not None:
        return d
    low = name.lower()
    if low.startswith(("blame.", "ts.", "host")):
        return 0
    for pat in _HIGHER:
        if pat in low:
            return 1
    for pat in _LOWER:
        if pat in low:
            return -1
    return 0


def _verdict(a: float, b: float, direction: int,
             threshold: float) -> Tuple[str, float]:
    """Classify one metric's move; returns (verdict, relative delta)."""
    if a == b:
        return "unchanged", 0.0
    if a == 0:
        delta = math.inf if b > 0 else -math.inf
    else:
        delta = (b - a) / abs(a)
    if abs(delta) <= threshold:
        return "unchanged", delta
    if direction == 0:
        return "changed", delta
    return ("improved" if delta * direction > 0 else "regressed"), delta


# -- record builders ---------------------------------------------------------
def record_from_bench(doc: Dict[str, Any], *, label: str = "bench",
                      series: Optional[str] = None) -> Dict[str, Any]:
    """Normalize a BENCH_*.json document (optionally one curve of it)."""
    if series is not None and series not in doc.get("series", {}):
        raise KeyError(
            f"series {series!r} not in record (have "
            f"{sorted(doc.get('series', {}))})")
    out_series: Dict[str, List[Dict[str, Any]]] = {}
    for curve, points in doc.get("series", {}).items():
        if series is not None and curve != series:
            continue
        out_series[curve] = [
            {"x": p["x"],
             "metrics": {k: v for k, v in p.items()
                         if k != "x" and isinstance(v, (int, float))
                         and not isinstance(v, bool)},
             "spatial": p.get("spatial")}
            for p in points
        ]
    return {
        "label": label,
        "figure": doc.get("figure"),
        "fingerprint": doc.get("config_fingerprint"),
        "full": doc.get("full"),
        "series": out_series,
    }


def _result_metrics(r) -> Dict[str, float]:
    m: Dict[str, float] = {
        "threads": r.num_threads,
        "ops": r.ops,
        "throughput_mops": r.throughput_mops,
        "mean_latency_cycles": r.mean_latency_cycles,
        "latency_p50_cycles": r.p50_latency_cycles,
        "latency_p95_cycles": r.p95_latency_cycles,
        "latency_p99_cycles": r.p99_latency_cycles,
    }
    for k, v in r.extra.items():
        if isinstance(v, (int, float)) and not isinstance(v, bool):
            m[k] = v
    tel = getattr(r, "telemetry", None)
    if tel:
        for name, s in tel.get("series", {}).items():
            if name.startswith("spatial."):
                continue  # the atlas diffs structurally, not ring by ring
            m[f"ts.{name}.mean"] = s.get("mean", 0.0)
            m[f"ts.{name}.peak"] = s.get("peak", 0.0)
    return m


def record_from_results(label: str,
                        points: Sequence[Tuple[float, Any]],
                        *, fingerprint: Optional[str] = None
                        ) -> Dict[str, Any]:
    """One curve of live RunResults as a record (telemetry tour, tests)."""
    pts = []
    for x, r in points:
        tel = getattr(r, "telemetry", None)
        pts.append({"x": x, "metrics": _result_metrics(r),
                    "spatial": tel.get("spatial") if tel else None})
    return {"label": label, "figure": None, "fingerprint": fingerprint,
            "full": None, "series": {label: pts}}


def record_from_figure(fig, *, label: Optional[str] = None
                       ) -> Dict[str, Any]:
    """A whole :class:`~repro.analysis.series.FigureData` as a record."""
    series: Dict[str, List[Dict[str, Any]]] = {}
    for curve, s in fig.series.items():
        pts = []
        for x, r in s.points:
            tel = getattr(r, "telemetry", None)
            pts.append({"x": x, "metrics": _result_metrics(r),
                        "spatial": tel.get("spatial") if tel else None})
        series[curve] = pts
    return {"label": label or fig.figure_id, "figure": fig.figure_id,
            "fingerprint": None, "full": None, "series": series}


def blame_metrics(report) -> Dict[str, float]:
    """A critical-path report's per-category cycles/op as diff metrics.

    Neutral-direction (``blame.*``): the diff shows where the cycles
    moved, the throughput/latency metrics say whether that was good.
    """
    ops = max(1, getattr(report, "ops", 1))
    return {f"blame.{cat}": cycles / ops
            for cat, cycles in sorted(report.blame.items())}


def load_record(spec: str) -> Dict[str, Any]:
    """Load ``PATH`` or ``PATH:SERIES`` into a record.

    The ``:SERIES`` suffix selects one curve of a BENCH record, which is
    what lets one file diff against itself across approaches
    (``BENCH_fig3.json:CC-Synch`` vs ``BENCH_fig3.json:HybComb``).  A
    path that exists as written always wins over suffix splitting.
    """
    import os

    path, series = spec, None
    if not os.path.exists(spec) and ":" in spec:
        path, series = spec.rsplit(":", 1)
    with open(path) as f:
        doc = json.load(f)
    label = os.path.basename(path) + (f":{series}" if series else "")
    return record_from_bench(doc, label=label, series=series)


# -- the diff ---------------------------------------------------------------
def _diff_spatial(a: Optional[Dict[str, Any]], b: Optional[Dict[str, Any]],
                  threshold: float, top: int = 5) -> Optional[Dict[str, Any]]:
    """Occupancy-share movement between two atlas summaries."""
    if not a or not b:
        return None
    keys = sorted(set(a.get("links", {})) | set(b.get("links", {})))
    movers = []
    for key in keys:
        sa = a.get("links", {}).get(key, {}).get("share", 0.0)
        sb = b.get("links", {}).get(key, {}).get("share", 0.0)
        if sa != sb:
            movers.append({"link": key, "a": sa, "b": sb, "move": sb - sa})
    movers.sort(key=lambda m: (-abs(m["move"]), m["link"]))
    shifted = sum(abs(m["move"]) for m in movers) / 2.0
    return {
        "total_share_moved": shifted,
        "verdict": "changed" if shifted > threshold else "unchanged",
        "top_movers": movers[:top],
    }


def diff_records(a: Dict[str, Any], b: Dict[str, Any], *,
                 threshold: float = 0.05,
                 gate: Sequence[str] = ()) -> Dict[str, Any]:
    """Compare two records metric by metric (see module docs).

    ``gate`` names the metrics whose regressions make the whole diff
    *gate-fail* (``gate_failures`` non-empty); points present in ``a``
    but missing in ``b`` also gate-fail when any gate metric is set.
    With exactly one curve on each side the curves pair positionally
    (cross-approach diffs); otherwise curves pair by label.
    """
    a_series = a.get("series", {})
    b_series = b.get("series", {})
    if len(a_series) == 1 and len(b_series) == 1:
        pairs = [(next(iter(a_series)), next(iter(b_series)))]
        only_a, only_b = [], []
    else:
        pairs = [(label, label) for label in sorted(a_series)
                 if label in b_series]
        only_a = sorted(set(a_series) - set(b_series))
        only_b = sorted(set(b_series) - set(a_series))

    gate = tuple(gate)
    counts = {"improved": 0, "regressed": 0, "unchanged": 0, "changed": 0}
    gate_failures: List[str] = []
    series_out: List[Dict[str, Any]] = []
    for a_label, b_label in pairs:
        b_points = {p["x"]: p for p in b_series[b_label]}
        pts_out: List[Dict[str, Any]] = []
        missing: List[float] = []
        for ap in a_series[a_label]:
            bp = b_points.get(ap["x"])
            if bp is None:
                missing.append(ap["x"])
                if gate:
                    gate_failures.append(
                        f"{a_label} x={ap['x']:g}: point disappeared")
                continue
            metrics_out: Dict[str, Dict[str, Any]] = {}
            shared = sorted(set(ap["metrics"]) & set(bp["metrics"]))
            worst = "unchanged"
            for name in shared:
                va, vb = ap["metrics"][name], bp["metrics"][name]
                direction = metric_direction(name)
                verdict, delta = _verdict(va, vb, direction, threshold)
                counts[verdict] += 1
                metrics_out[name] = {"a": va, "b": vb, "delta": delta,
                                     "direction": direction,
                                     "verdict": verdict}
                if verdict == "regressed":
                    worst = "regressed"
                elif verdict == "improved" and worst != "regressed":
                    worst = "improved"
                elif verdict == "changed" and worst == "unchanged":
                    worst = "changed"
                if name in gate and verdict == "regressed":
                    gate_failures.append(
                        f"{a_label} x={ap['x']:g}: {name} "
                        f"{va:.6g} -> {vb:.6g} ({delta:+.1%})")
            pts_out.append({
                "x": ap["x"],
                "metrics": metrics_out,
                "verdict": worst,
                "spatial": _diff_spatial(ap.get("spatial"),
                                         bp.get("spatial"), threshold),
            })
        series_out.append({"a_label": a_label, "b_label": b_label,
                           "points": pts_out, "missing_in_b": missing})

    if counts["regressed"] and counts["improved"]:
        overall = "mixed"
    elif counts["regressed"]:
        overall = "regressed"
    elif counts["improved"]:
        overall = "improved"
    elif counts["changed"]:
        overall = "changed"
    else:
        overall = "unchanged"
    comparable = (a.get("fingerprint") == b.get("fingerprint")
                  and a.get("full") == b.get("full"))
    return {
        "a": {"label": a.get("label"), "figure": a.get("figure"),
              "fingerprint": a.get("fingerprint"), "full": a.get("full")},
        "b": {"label": b.get("label"), "figure": b.get("figure"),
              "fingerprint": b.get("fingerprint"), "full": b.get("full")},
        "threshold": threshold,
        "comparable": comparable,
        "series": series_out,
        "series_only_in_a": only_a,
        "series_only_in_b": only_b,
        "counts": counts,
        "verdict": overall,
        "gate": list(gate),
        "gate_failures": gate_failures,
    }


# -- rendering ---------------------------------------------------------------
def _fmt_val(v: float) -> str:
    if v != v or v in (math.inf, -math.inf):
        return str(v)
    if isinstance(v, float) and v == int(v) and abs(v) < 1e15:
        return str(int(v))
    return f"{v:.6g}"


def _fmt_delta(d: float) -> str:
    if d == math.inf:
        return "(new)"
    if d == -math.inf:
        return "(gone)"
    return f"{d:+.1%}"


#: metrics rendered first, in this order; everything else sorts after
_PRIORITY = ("throughput_mops", "ops", "latency_p50_cycles",
             "latency_p95_cycles", "latency_p99_cycles",
             "mean_latency_cycles")


def _metric_order(names) -> List[str]:
    prio = {n: i for i, n in enumerate(_PRIORITY)}
    return sorted(names, key=lambda n: (prio.get(n, len(_PRIORITY)), n))


def render_diff_text(diff: Dict[str, Any], *,
                     show_unchanged: bool = False) -> str:
    """Deterministic terminal rendering of one diff verdict."""
    lines = [f"repro diff: {diff['a']['label']} vs {diff['b']['label']}",
             f"threshold +-{diff['threshold']:.1%}; "
             + ("records comparable" if diff["comparable"]
                else "WARNING: records not directly comparable "
                     "(fingerprint or quick/full mode differ)")]
    for s in diff["series"]:
        head = (s["a_label"] if s["a_label"] == s["b_label"]
                else f"{s['a_label']} vs {s['b_label']}")
        lines.append(f"== {head} ==")
        for p in s["points"]:
            shown = 0
            for name in _metric_order(p["metrics"]):
                m = p["metrics"][name]
                if m["verdict"] == "unchanged" and not show_unchanged:
                    continue
                lines.append(
                    f"  x={p['x']:g}  {name:<24s} "
                    f"{_fmt_val(m['a']):>12s} -> {_fmt_val(m['b']):<12s} "
                    f"{_fmt_delta(m['delta']):>8s}  {m['verdict']}")
                shown += 1
            sp = p.get("spatial")
            if sp is not None and sp["verdict"] != "unchanged":
                lines.append(
                    f"  x={p['x']:g}  spatial: "
                    f"{sp['total_share_moved']:.1%} of occupancy share "
                    "moved; top movers: "
                    + ", ".join(f"{m['link']} {m['move']:+.1%}"
                                for m in sp["top_movers"][:3]))
            if not shown and not show_unchanged:
                lines.append(f"  x={p['x']:g}  (all metrics unchanged)")
        for x in s["missing_in_b"]:
            lines.append(f"  x={x:g}  MISSING in B")
    for label in diff["series_only_in_a"]:
        lines.append(f"series only in A: {label}")
    for label in diff["series_only_in_b"]:
        lines.append(f"series only in B: {label}")
    c = diff["counts"]
    lines.append(f"verdict: {diff['verdict']} "
                 f"({c['improved']} improved, {c['regressed']} regressed, "
                 f"{c['changed']} changed, {c['unchanged']} unchanged)")
    if diff["gate"]:
        if diff["gate_failures"]:
            lines.append(f"gate FAIL on {', '.join(diff['gate'])}:")
            for msg in diff["gate_failures"]:
                lines.append("  " + msg)
        else:
            lines.append(f"gate OK on {', '.join(diff['gate'])}")
    return "\n".join(lines)


def diff_to_json(diff: Dict[str, Any]) -> str:
    """The verdict as canonical JSON (sorted keys, fixed separators)."""
    return json.dumps(diff, sort_keys=True, indent=1)
