"""Terminal rendering and export of reproduced figures.

No plotting library is available offline, so figures render as ASCII
charts (good enough to eyeball the shapes against the paper) plus
markdown tables and CSV (the precise numbers for EXPERIMENTS.md).
"""

from __future__ import annotations

import io
from typing import Callable, Dict, Sequence

from repro.analysis.series import FigureData
from repro.workload.metrics import RunResult

__all__ = ["ascii_chart", "bar_chart", "markdown_table",
           "render_latency_histogram", "render_line_heatmap", "to_csv"]

_MARKS = "*o+x#@%&"


def ascii_chart(fig: FigureData, metric: Callable[[RunResult], float],
                *, width: int = 72, height: int = 20) -> str:
    """Render the figure's curves as an ASCII scatter/line chart."""
    all_pts = [(x, metric(r)) for s in fig.series.values() for x, r in s.points]
    if not all_pts:
        return f"[{fig.figure_id}: no data]"
    xs = [p[0] for p in all_pts]
    ys = [p[1] for p in all_pts]
    xmin, xmax = min(xs), max(xs)
    ymin, ymax = 0.0, max(ys) * 1.05 or 1.0
    xspan = (xmax - xmin) or 1.0
    yspan = (ymax - ymin) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for si, (label, s) in enumerate(fig.series.items()):
        mark = _MARKS[si % len(_MARKS)]
        for x, r in s.points:
            cx = int((x - xmin) / xspan * (width - 1))
            cy = int((metric(r) - ymin) / yspan * (height - 1))
            grid[height - 1 - cy][cx] = mark

    out = io.StringIO()
    out.write(f"{fig.title}\n")
    out.write(f"{fig.y_label} (max {ymax:.1f})\n")
    for row in grid:
        out.write("|" + "".join(row) + "\n")
    out.write("+" + "-" * width + "\n")
    out.write(f" {fig.x_label}: {xmin:g} .. {xmax:g}\n")
    legend = "  ".join(
        f"{_MARKS[i % len(_MARKS)]} {label}" for i, label in enumerate(fig.series)
    )
    out.write(f" legend: {legend}\n")
    return out.getvalue()


def bar_chart(labels: Sequence[str], pairs: Dict[str, Sequence[float]],
              *, width: int = 50, title: str = "") -> str:
    """Grouped horizontal bars (used for Figure 4a's stall breakdown).

    ``pairs`` maps group names (e.g. "stalled", "total") to one value
    per label.
    """
    out = io.StringIO()
    if title:
        out.write(title + "\n")
    peak = max((max(v) for v in pairs.values() if len(v)), default=1.0) or 1.0
    for i, label in enumerate(labels):
        for group, values in pairs.items():
            v = values[i]
            bar = "#" * int(v / peak * width)
            out.write(f"  {label:>10s} {group:>8s} |{bar} {v:.1f}\n")
    return out.getvalue()


def render_line_heatmap(lines: Dict[int, Dict[str, int]], *,
                        metric: str = "stall_cycles", top: int = 16,
                        width: int = 50,
                        title: str = "cache-line contention") -> str:
    """Per-cache-line contention heatmap from obs ``line`` counters.

    ``lines`` is the ``"line"`` group of a
    :meth:`~repro.obs.counters.PerfCounters.snapshot` / ``delta`` (or an
    aggregated session snapshot): line number -> register -> value.
    Shows the ``top`` hottest lines by ``metric`` as horizontal bars.
    """
    ranked = sorted(
        ((ln, regs) for ln, regs in lines.items() if regs.get(metric, 0)),
        key=lambda kv: -kv[1].get(metric, 0),
    )[:top]
    out = io.StringIO()
    out.write(f"{title} (top {len(ranked)} lines by {metric})\n")
    if not ranked:
        out.write(f"  [no lines with nonzero {metric}]\n")
        return out.getvalue()
    peak = ranked[0][1].get(metric, 0) or 1
    for ln, regs in ranked:
        v = regs.get(metric, 0)
        bar = "#" * max(1, int(v / peak * width))
        detail = " ".join(
            f"{k}={regs[k]}" for k in ("misses", "invalidations", "atomics")
            if regs.get(k)
        )
        out.write(f"  line {ln:>6d} |{bar:<{width}s}| {v}"
                  + (f"  ({detail})" if detail else "") + "\n")
    return out.getvalue()


def render_latency_histogram(buckets: Dict[int, int], *, width: int = 50,
                             title: str = "UDN delivery latency") -> str:
    """Log2-bucketed latency histogram from the obs ``udn_hist`` group.

    Bucket ``k`` counts deliveries with latency in ``[2^(k-1), 2^k)``
    cycles (bucket 0 is latency 0).
    """
    out = io.StringIO()
    out.write(f"{title} (cycles, log2 buckets)\n")
    live = {k: v for k, v in buckets.items() if v}
    if not live:
        out.write("  [no deliveries]\n")
        return out.getvalue()
    peak = max(live.values())
    for k in range(min(live), max(live) + 1):
        v = buckets.get(k, 0)
        lo = 0 if k == 0 else 1 << (k - 1)
        hi = 0 if k == 0 else (1 << k) - 1
        rng = "0" if k == 0 else f"{lo}-{hi}"
        bar = "#" * int(v / peak * width)
        out.write(f"  {rng:>12s} |{bar:<{width}s}| {v}\n")
    return out.getvalue()


def markdown_table(fig: FigureData, metric: Callable[[RunResult], float],
                   *, fmt: str = "{:.1f}") -> str:
    """One row per x value, one column per series."""
    xs = sorted({x for s in fig.series.values() for x, _ in s.points})
    out = io.StringIO()
    out.write("| " + fig.x_label + " | " + " | ".join(fig.series) + " |\n")
    out.write("|" + "---|" * (len(fig.series) + 1) + "\n")
    for x in xs:
        row = [f"{x:g}"]
        for s in fig.series.values():
            y = s.y_at(x, metric)
            row.append(fmt.format(y) if y is not None else "-")
        out.write("| " + " | ".join(row) + " |\n")
    return out.getvalue()


def to_csv(fig: FigureData, metrics: Dict[str, Callable[[RunResult], float]]) -> str:
    """Long-format CSV: series,x,<metric columns>."""
    out = io.StringIO()
    out.write("series,x," + ",".join(metrics) + "\n")
    for label, s in fig.series.items():
        for x, r in s.points:
            vals = ",".join(f"{fn(r):.4f}" for fn in metrics.values())
            out.write(f"{label},{x:g},{vals}\n")
    return out.getvalue()
