"""Terminal rendering and export of reproduced figures.

No plotting library is available offline, so figures render as ASCII
charts (good enough to eyeball the shapes against the paper) plus
markdown tables and CSV (the precise numbers for EXPERIMENTS.md).
"""

from __future__ import annotations

import io
from typing import Callable, Dict, Sequence

from repro.analysis.critpath import CATEGORIES, CritPathReport, diff_reports, stragglers
from repro.analysis.series import FigureData
from repro.workload.metrics import RunResult

__all__ = ["ascii_chart", "bar_chart", "markdown_table",
           "render_blame_breakdown", "render_cdf", "render_critpath_diff",
           "render_latency_histogram", "render_line_heatmap",
           "render_mesh_heatmap", "render_stragglers", "to_csv"]

_MARKS = "*o+x#@%&"

_SHADES = " .:-=+*#%@"


def ascii_chart(fig: FigureData, metric: Callable[[RunResult], float],
                *, width: int = 72, height: int = 20) -> str:
    """Render the figure's curves as an ASCII scatter/line chart."""
    all_pts = [(x, metric(r)) for s in fig.series.values() for x, r in s.points]
    if not all_pts:
        return f"[{fig.figure_id}: no data]"
    xs = [p[0] for p in all_pts]
    ys = [p[1] for p in all_pts]
    xmin, xmax = min(xs), max(xs)
    ymin, ymax = 0.0, max(ys) * 1.05 or 1.0
    xspan = (xmax - xmin) or 1.0
    yspan = (ymax - ymin) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for si, (label, s) in enumerate(fig.series.items()):
        mark = _MARKS[si % len(_MARKS)]
        for x, r in s.points:
            cx = int((x - xmin) / xspan * (width - 1))
            cy = int((metric(r) - ymin) / yspan * (height - 1))
            grid[height - 1 - cy][cx] = mark

    out = io.StringIO()
    out.write(f"{fig.title}\n")
    out.write(f"{fig.y_label} (max {ymax:.1f})\n")
    for row in grid:
        out.write("|" + "".join(row) + "\n")
    out.write("+" + "-" * width + "\n")
    out.write(f" {fig.x_label}: {xmin:g} .. {xmax:g}\n")
    legend = "  ".join(
        f"{_MARKS[i % len(_MARKS)]} {label}" for i, label in enumerate(fig.series)
    )
    out.write(f" legend: {legend}\n")
    return out.getvalue()


def bar_chart(labels: Sequence[str], pairs: Dict[str, Sequence[float]],
              *, width: int = 50, title: str = "") -> str:
    """Grouped horizontal bars (used for Figure 4a's stall breakdown).

    ``pairs`` maps group names (e.g. "stalled", "total") to one value
    per label.
    """
    out = io.StringIO()
    if title:
        out.write(title + "\n")
    peak = max((max(v) for v in pairs.values() if len(v)), default=1.0) or 1.0
    for i, label in enumerate(labels):
        for group, values in pairs.items():
            v = values[i]
            bar = "#" * int(v / peak * width)
            out.write(f"  {label:>10s} {group:>8s} |{bar} {v:.1f}\n")
    return out.getvalue()


def render_line_heatmap(lines: Dict[int, Dict[str, int]], *,
                        metric: str = "stall_cycles", top: int = 16,
                        width: int = 50,
                        title: str = "cache-line contention") -> str:
    """Per-cache-line contention heatmap from obs ``line`` counters.

    ``lines`` is the ``"line"`` group of a
    :meth:`~repro.obs.counters.PerfCounters.snapshot` / ``delta`` (or an
    aggregated session snapshot): line number -> register -> value.
    Shows the ``top`` hottest lines by ``metric`` as horizontal bars.
    """
    ranked = sorted(
        ((ln, regs) for ln, regs in lines.items() if regs.get(metric, 0)),
        key=lambda kv: -kv[1].get(metric, 0),
    )[:top]
    out = io.StringIO()
    out.write(f"{title} (top {len(ranked)} lines by {metric})\n")
    if not ranked:
        out.write(f"  [no lines with nonzero {metric}]\n")
        return out.getvalue()
    peak = ranked[0][1].get(metric, 0) or 1
    for ln, regs in ranked:
        v = regs.get(metric, 0)
        bar = "#" * max(1, int(v / peak * width))
        detail = " ".join(
            f"{k}={regs[k]}" for k in ("misses", "invalidations", "atomics")
            if regs.get(k)
        )
        out.write(f"  line {ln:>6d} |{bar:<{width}s}| {v}"
                  + (f"  ({detail})" if detail else "") + "\n")
    return out.getvalue()


def render_latency_histogram(buckets: Dict[int, int], *, width: int = 50,
                             title: str = "UDN delivery latency") -> str:
    """Log2-bucketed latency histogram from the obs ``udn_hist`` group.

    Bucket ``k`` counts deliveries with latency in ``[2^(k-1), 2^k)``
    cycles (bucket 0 is latency 0).
    """
    out = io.StringIO()
    out.write(f"{title} (cycles, log2 buckets)\n")
    live = {k: v for k, v in buckets.items() if v}
    if not live:
        out.write("  [no deliveries]\n")
        return out.getvalue()
    peak = max(live.values())
    for k in range(min(live), max(live) + 1):
        v = buckets.get(k, 0)
        lo = 0 if k == 0 else 1 << (k - 1)
        hi = 0 if k == 0 else (1 << k) - 1
        rng = "0" if k == 0 else f"{lo}-{hi}"
        bar = "#" * int(v / peak * width)
        out.write(f"  {rng:>12s} |{bar:<{width}s}| {v}\n")
    return out.getvalue()


def render_blame_breakdown(report: CritPathReport, *, width: int = 50) -> str:
    """Per-category blame totals of one run, plus the whole-run path mix.

    Top block: cycles per measured op by category (mean over the run).
    Bottom block: the cycle mix along the whole-run critical path -- the
    chain whose dominant category names the bottleneck resource.
    """
    out = io.StringIO()
    n = len(report.measured_ops)
    out.write(f"critical-path blame: {report.label}"
              f" ({n} measured ops")
    if report.incomplete_ops:
        out.write(f", {report.incomplete_ops} incomplete")
    if report.truncated:
        out.write(", TRUNCATED event stream")
    out.write(")\n")
    if not n:
        out.write("  [no measured ops]\n")
        return out.getvalue()
    total = sum(report.blame.values())
    peak = max(report.blame.values()) or 1
    out.write("  per-op blame (cycles/op):\n")
    for cat in CATEGORIES:
        v = report.blame.get(cat, 0)
        if not v:
            continue
        bar = "#" * max(1, int(v / peak * width))
        out.write(f"  {cat:>13s} |{bar:<{width}s}| {v / n:8.1f}"
                  f"  ({100.0 * v / total:4.1f}%)\n")
    if report.path_blame:
        ptotal = report.path_cycles
        out.write(f"  whole-run critical path: {ptotal} cycles,"
                  f" dominant = {report.path_dominant}\n")
        for cat in CATEGORIES:
            v = report.path_blame.get(cat, 0)
            if v:
                out.write(f"  {cat:>13s} {v:>10d}"
                          f"  ({100.0 * v / ptotal:4.1f}%)\n")
    return out.getvalue()


def render_stragglers(report: CritPathReport, k: int = 10) -> str:
    """The K slowest measured ops with their dominant blame category."""
    out = io.StringIO()
    slow = stragglers(report, k)
    out.write(f"p99 stragglers: {report.label}"
              f" ({len(slow)} slowest of {len(report.measured_ops)} ops)\n")
    if not slow:
        out.write("  [no measured ops]\n")
        return out.getvalue()
    out.write(f"  {'op':>8s} {'tid':>4s} {'latency':>8s} {'dominant':>13s}"
              "  blame\n")
    for o in slow:
        mix = " ".join(
            f"{cat}={v}" for cat, v in
            sorted(o.blame.items(), key=lambda kv: -kv[1])
        )
        out.write(f"  {o.op:>8d} {o.tid:>4d} {o.latency:>8d}"
                  f" {o.dominant:>13s}  {mix}\n")
    return out.getvalue()


def render_critpath_diff(a: CritPathReport, b: CritPathReport,
                         *, width: int = 40) -> str:
    """A/B two runs' per-op blame: where do the extra cycles go?"""
    out = io.StringIO()
    out.write(f"critical-path diff: A={a.label}  B={b.label}"
              "  (cycles/op; delta = B - A)\n")
    d = diff_reports(a, b)
    if not d:
        out.write("  [no blame data]\n")
        return out.getvalue()
    peak = max(abs(v["delta"]) for v in d.values()) or 1.0
    out.write(f"  {'category':>13s} {'A':>10s} {'B':>10s} {'delta':>10s}\n")
    for cat in CATEGORIES:
        v = d.get(cat)
        if v is None:
            continue
        mark = "+" if v["delta"] >= 0 else "-"
        bar = mark * max(1, int(abs(v["delta"]) / peak * width))
        out.write(f"  {cat:>13s} {v['a']:>10.1f} {v['b']:>10.1f}"
                  f" {v['delta']:>+10.1f} |{bar}\n")
    out.write(f"  dominant: A={a.dominant}  B={b.dominant}\n")
    return out.getvalue()


def render_cdf(samples: Sequence[int], *, width: int = 60, height: int = 16,
               title: str = "op latency CDF") -> str:
    """Full latency CDF from raw per-op samples (``--latency-dump``)."""
    out = io.StringIO()
    out.write(f"{title} ({len(samples)} samples)\n")
    if not samples:
        out.write("  [no samples]\n")
        return out.getvalue()
    xs = sorted(samples)
    lo, hi = xs[0], xs[-1]
    span = (hi - lo) or 1
    n = len(xs)
    grid = [[" "] * width for _ in range(height)]
    from bisect import bisect_right
    for col in range(width):
        x = lo + span * col / (width - 1 if width > 1 else 1)
        frac = bisect_right(xs, x) / n
        row = min(height - 1, int(frac * (height - 1)))
        grid[height - 1 - row][col] = "*"
    for i, row in enumerate(grid):
        frac = (height - 1 - i) / (height - 1)
        out.write(f"  {frac:4.2f} |" + "".join(row) + "\n")
    out.write("       +" + "-" * width + "\n")
    out.write(f"        cycles: {lo} .. {hi}\n")
    return out.getvalue()


def markdown_table(fig: FigureData, metric: Callable[[RunResult], float],
                   *, fmt: str = "{:.1f}") -> str:
    """One row per x value, one column per series."""
    xs = sorted({x for s in fig.series.values() for x, _ in s.points})
    out = io.StringIO()
    out.write("| " + fig.x_label + " | " + " | ".join(fig.series) + " |\n")
    out.write("|" + "---|" * (len(fig.series) + 1) + "\n")
    for x in xs:
        row = [f"{x:g}"]
        for s in fig.series.values():
            y = s.y_at(x, metric)
            row.append(fmt.format(y) if y is not None else "-")
        out.write("| " + " | ".join(row) + " |\n")
    return out.getvalue()


def to_csv(fig: FigureData, metrics: Dict[str, Callable[[RunResult], float]]) -> str:
    """Long-format CSV: series,x,<metric columns>."""
    out = io.StringIO()
    out.write("series,x," + ",".join(metrics) + "\n")
    for label, s in fig.series.items():
        for x, r in s.points:
            vals = ",".join(f"{fn(r):.4f}" for fn in metrics.values())
            out.write(f"{label},{x:g},{vals}\n")
    return out.getvalue()


def render_mesh_heatmap(summary, *, title: str = "NoC congestion atlas",
                        top_links: int = 5) -> str:
    """Terminal mesh heatmap of a spatial atlas summary.

    ``summary`` is a :meth:`repro.obs.spatial.SpatialAtlas.summary`
    dict (or a session merge).  Tiles render as a shade grid of their
    outbound-occupancy share (row-major, matching the mesh's node
    numbering); the hottest directed links are listed underneath, since
    link direction does not survive a per-tile projection.
    """
    out = io.StringIO()
    if summary is None or not summary.get("tiles"):
        out.write(f"{title}: no NoC traffic observed\n")
        return out.getvalue()
    w = summary["mesh"]["width"]
    h = summary["mesh"]["height"]
    basis = summary["basis"]
    tiles = summary["tiles"]
    peak = max((e["share"] for e in tiles.values()), default=0.0) or 1.0
    out.write(f"{title} ({w}x{h} mesh, {summary['messages']} msgs, "
              f"tile shade = outbound {basis} share)\n")
    for y in range(h):
        row = []
        for x in range(w):
            e = tiles.get(str(y * w + x))
            share = e["share"] if e else 0.0
            shade = _SHADES[min(len(_SHADES) - 1,
                                int(share / peak * (len(_SHADES) - 1)))]
            mark = "B" if e and e["backpressure"] else shade
            row.append(shade * 2 + mark)
        out.write("  " + " ".join(row) + "\n")
    out.write(f"  scale: '{_SHADES[0]}' idle .. '{_SHADES[-1]}' "
              f"{peak:.1%} share; 'B' = sender backpressure on that tile\n")
    ranked = sorted(summary["links"].items(),
                    key=lambda kv: (-kv[1]["share"], kv[0]))[:top_links]
    for key, e in ranked:
        wait = f", wait {e['wait']} cyc" if e.get("wait") else ""
        out.write(f"  link {key:>7s} {e['share']:6.1%}  "
                  f"{e['msgs']} msgs / {e['words']} words{wait}\n")
    return out.getvalue()
