"""Figure 5: concurrent queues and stacks under balanced load.

* 5a -- one-lock MS-Queue under the four approaches, the two-lock
  MS-Queue under MP-SERVER ("mp-server-2"), and LCRQ.
* 5b -- the coarse-lock stack under the four approaches and Treiber's
  nonblocking stack.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.series import FigureData
from repro.experiments.parallel import point, run_sweep
from repro.workload.driver import WorkloadSpec
from repro.workload.scenarios import (
    QUEUE_IMPLS,
    STACK_IMPLS,
    run_queue_benchmark,
    run_stack_benchmark,
)

__all__ = ["run_fig5a", "run_fig5b"]

QUICK_CLIENTS = (2, 5, 10, 15, 20, 25, 30, 34)
FULL_CLIENTS = (2, 4, 6, 8, 10, 12, 14, 17, 20, 23, 26, 29, 32, 34)


def _spec(quick: bool) -> WorkloadSpec:
    return WorkloadSpec.quick() if quick else WorkloadSpec.full()


def _max_clients(impl: str) -> int:
    if impl == "mp-server-2":
        return 34  # two dedicated server cores
    if impl in ("LCRQ", "Treiber", "HybComb", "CC-Synch", "HybComb-1", "CC-Synch-1"):
        return 36
    return 35  # one dedicated server core


def run_fig5a(quick: bool = True,
              clients: Optional[Sequence[int]] = None,
              impls: Sequence[str] = QUEUE_IMPLS,
              jobs: Optional[int] = None) -> FigureData:
    clients = tuple(clients if clients is not None else
                    (QUICK_CLIENTS if quick else FULL_CLIENTS))
    spec = _spec(quick)
    fig = FigureData("fig5a", "Queue throughput under balanced load (Fig 5a)",
                     "clients", "throughput (Mops/s)")
    pts = [point(impl, c, run_queue_benchmark, impl, c, spec=spec)
           for impl in impls for c in clients if c <= _max_clients(impl)]
    for p, r in zip(pts, run_sweep(pts, jobs=jobs, name="fig5a")):
        fig.add_point(p.label, p.x, r)
    return fig


def run_fig5b(quick: bool = True,
              clients: Optional[Sequence[int]] = None,
              impls: Sequence[str] = STACK_IMPLS,
              jobs: Optional[int] = None) -> FigureData:
    clients = tuple(clients if clients is not None else
                    (QUICK_CLIENTS if quick else FULL_CLIENTS))
    spec = _spec(quick)
    fig = FigureData("fig5b", "Stack throughput under balanced load (Fig 5b)",
                     "clients", "throughput (Mops/s)")
    pts = [point(impl, c, run_stack_benchmark, impl, c, spec=spec)
           for impl in impls for c in clients if c <= _max_clients(impl)]
    for p, r in zip(pts, run_sweep(pts, jobs=jobs, name="fig5b")):
        fig.add_point(p.label, p.x, r)
    return fig
