"""Fault-recovery experiment (robustness extension): ``disc-faults``.

The paper's deadlock argument (Section 6) assumes healthy threads; this
experiment measures what the fault-tolerant MP-SERVER mode (sequence
numbers + dedup table + backup failover, see
:mod:`repro.core.mp_server`) costs and delivers when the primary server
actually dies:

* a **fault-free** series: the FT protocol with a hot standby but no
  injected fault -- its gap to the plain ``fig3a`` mp-server line is
  the steady-state overhead of the 4-word requests and dedup stores;
* a **primary-crash** series: the primary is killed mid-measurement;
  clients time out, back off, fail over to the backup, and the run
  completes.  Recovery metrics (time-to-recovery, ops retried,
  duplicates suppressed) ride along in each ``RunResult``.

Everything is seeded: two invocations produce identical numbers.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.series import FigureData
from repro.experiments.parallel import point, run_sweep
from repro.faults import CrashThread, FaultPlan
from repro.workload.driver import WorkloadSpec
from repro.workload.scenarios import run_fault_recovery_benchmark

__all__ = ["run_fault_recovery"]

#: client-side request timeout (cycles) used for both series
REQUEST_TIMEOUT = 2_000


def run_fault_recovery(quick: bool = True,
                       clients: Sequence[int] = (2, 4, 8, 14),
                       jobs: Optional[int] = None) -> FigureData:
    spec = WorkloadSpec.quick() if quick else WorkloadSpec.full()
    # kill the primary one third into the measurement window so the
    # recovery transient and the post-failover steady state both land
    # inside the measured interval
    crash_at = spec.warmup_cycles + spec.measure_cycles // 3
    plan = FaultPlan(seed=1, faults=(CrashThread(tid=0, at_cycle=crash_at),))

    fig = FigureData(
        "disc-faults",
        "MP-SERVER failover under a primary crash (robustness extension)",
        "client threads", "throughput (Mops/s)",
    )
    pts = []
    for t in clients:
        pts.append(point("ft, fault-free", t, run_fault_recovery_benchmark,
                         t, spec=spec, request_timeout=REQUEST_TIMEOUT))
        pts.append(point("ft, primary crash", t, run_fault_recovery_benchmark,
                         t, spec=spec, request_timeout=REQUEST_TIMEOUT,
                         fault_plan=plan))
    for p, r in zip(pts, run_sweep(pts, jobs=jobs, name="disc-faults")):
        fig.add_point(p.label, p.x, r)
    fig.note(f"primary server killed at cycle {crash_at} "
             f"(request timeout {REQUEST_TIMEOUT} cycles, backup on core 1)")
    fig.note("crash series: every client fails over; time-to-recovery and "
             "retry counts are in the per-point RunResult")
    return fig
