"""Parallel sweep runner: fan independent simulation points over processes.

Every figure in the paper is a sweep over independent (algorithm,
parameter) points; each point builds its own :class:`Machine` from its
own seed, so points share no state and can run anywhere.  This module
turns a list of such points into results, either serially (the default,
so CI baselines stay comparable) or across a
:class:`~concurrent.futures.ProcessPoolExecutor`.

Determinism: results are merged **in submission order**, never in
completion order, so a parallel sweep assembles the exact same
:class:`~repro.analysis.series.FigureData` -- same fingerprint -- as a
serial one (asserted by tests/test_parallel.py).  The simulation itself
is per-point deterministic regardless of host scheduling.

Job count resolution, most specific wins:

1. an explicit ``jobs=`` argument (``--jobs N`` on the command line),
2. the ``REPRO_JOBS`` environment variable,
3. serial (1).

A crashed worker (or a point that raises) surfaces as a
:class:`PointFailure` naming the exact point, instead of a hung or
half-merged sweep.  When a machine-wide observability session is active
(``--perf``/``--trace``/``--critpath``), sweeps run serially: workers
would register their machines with a session in the worker process and
the parent's aggregation would silently see nothing.
"""

from __future__ import annotations

import os
import sys
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, List, NamedTuple, Optional, Sequence

__all__ = ["PointFailure", "SweepPoint", "point", "resolve_jobs", "run_sweep"]


class SweepPoint(NamedTuple):
    """One unit of sweep work: where it lands in the figure, and what to run.

    ``fn`` must be a module-level callable and ``args``/``kwargs``
    picklable, so the point can ship to a worker process.
    """

    label: str          #: series the result belongs to
    x: float            #: x coordinate within the series
    fn: Callable[..., Any]
    args: tuple
    kwargs: dict


def point(label: str, x: float, fn: Callable[..., Any],
          *args: Any, **kwargs: Any) -> SweepPoint:
    """Convenience constructor: ``point("HybComb", 30, run_bench, ...)``."""
    return SweepPoint(label, x, fn, args, kwargs)


class PointFailure(RuntimeError):
    """A sweep point failed (in-process or in a worker), by name.

    Carries enough to rerun the one point serially for debugging.
    """

    def __init__(self, sweep: str, label: str, x: float, cause: BaseException):
        super().__init__(
            f"sweep {sweep!r} point ({label!r}, x={x:g}) failed: "
            f"{type(cause).__name__}: {cause}")
        self.sweep = sweep
        self.label = label
        self.x = x
        self.cause = cause


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve the worker count: explicit arg > ``REPRO_JOBS`` > serial."""
    if jobs is not None:
        return max(1, int(jobs))
    env = os.environ.get("REPRO_JOBS", "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            raise ValueError(f"REPRO_JOBS must be an integer, got {env!r}")
    return 1


def _obs_session_active() -> bool:
    import repro.obs as obs_mod

    return getattr(obs_mod, "_SESSION", None) is not None


def _progress(name: str, done: int, total: int, jobs: int) -> None:
    end = "\n" if done == total else "\r"
    sys.stderr.write(f"[{name}: {done}/{total} points, jobs={jobs}]{end}")
    sys.stderr.flush()


def run_sweep(points: Sequence[SweepPoint], *, jobs: Optional[int] = None,
              name: str = "sweep") -> List[Any]:
    """Run every point and return results in submission order.

    Serial (``jobs == 1``) execution calls each point inline, exactly as
    the pre-parallel experiment code did; with ``jobs > 1`` the points
    fan out over a process pool.  Either way the returned list is
    ordered like ``points``, so callers can zip them back together.
    """
    pts = list(points)
    n = resolve_jobs(jobs)
    if n > 1 and _obs_session_active():
        # obs sessions register machines per process; fan-out would lose
        # every worker-side machine from the parent's aggregation
        n = 1
    show = len(pts) > 1
    if n == 1 or len(pts) <= 1:
        results = []
        for i, p in enumerate(pts):
            if show:
                _progress(name, i, len(pts), 1)
            try:
                results.append(p.fn(*p.args, **p.kwargs))
            except Exception as exc:
                raise PointFailure(name, p.label, p.x, exc) from exc
        if show:
            _progress(name, len(pts), len(pts), 1)
        return results

    results = []
    with ProcessPoolExecutor(max_workers=min(n, len(pts))) as ex:
        futures = [ex.submit(p.fn, *p.args, **p.kwargs) for p in pts]
        # iterate in submission order: the merge is deterministic even
        # though completion order is not
        for i, (p, fut) in enumerate(zip(pts, futures)):
            if show:
                _progress(name, i, len(pts), n)
            try:
                results.append(fut.result())
            except Exception as exc:
                # includes BrokenProcessPool: a worker that died (OOM,
                # signal) fails the sweep with the point's name attached
                for f in futures:
                    f.cancel()
                raise PointFailure(name, p.label, p.x, exc) from exc
        if show:
            _progress(name, len(pts), len(pts), n)
    return results
