"""Discussion experiments: Section 5.5 (x86) and Section 6 (practical
aspects), plus a NoC-contention ablation of our own simulator.

* ``run_x86_comparison`` -- the pure-shared-memory approaches on the
  ``x86_like()`` profile vs the TILE-Gx profile.  The paper: "peak
  throughput is significantly lower on x86 ... we measured the number
  of stalls per operation of the servicing thread and got
  proportionally larger numbers than on the TILE-Gx", implying an even
  larger potential gain for hardware message passing.
* ``run_oversubscription`` -- Section 6: up to four threads share a core
  via the 4-way demultiplexed hardware queues.
* ``run_backpressure`` -- Section 6: a tiny hardware buffer forces
  senders to block; the system must keep making progress (no deadlock,
  no message loss).
* ``run_noc_ablation`` -- our analytic mesh model vs the hop-by-hop
  contended-link model: synchronization traffic is far from saturating
  the mesh, so results must agree (which justifies the cheaper default).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.series import FigureData
from repro.core import MPServer, OpTable
from repro.experiments.parallel import point, run_sweep
from repro.machine import Machine, tile_gx, x86_like
from repro.objects import LockedCounter
from repro.workload.driver import WorkloadSpec, run_workload
from repro.workload.metrics import RunResult
from repro.workload.scenarios import run_counter_benchmark

__all__ = [
    "run_x86_comparison",
    "run_scc_comparison",
    "run_oversubscription",
    "run_backpressure",
    "run_noc_ablation",
]


def _spec(quick: bool) -> WorkloadSpec:
    return WorkloadSpec.quick() if quick else WorkloadSpec.full()


def run_x86_comparison(quick: bool = True,
                       threads: Sequence[int] = (2, 5, 8, 10, 14),
                       jobs: Optional[int] = None) -> FigureData:
    """CC-SYNCH and SHM-SERVER on x86-like vs TILE-Gx (Section 5.5).

    The x86 profile has 16 cores at a higher clock; the interesting
    comparison is stalls per op on the servicing thread and normalized
    peak throughput.
    """
    spec = _spec(quick)
    fig = FigureData("disc-x86", "Shared-memory approaches on x86-like (Sec 5.5)",
                     "application threads", "throughput (Mops/s)")
    x86 = x86_like()
    pts = []
    for approach in ("shm-server", "CC-Synch"):
        for t in threads:
            if approach == "shm-server" and t > x86.num_cores - 1:
                continue
            if t > x86.num_cores:
                continue
            pts.append(point(f"{approach} (x86)", t, run_counter_benchmark,
                             approach, t, spec=spec, cfg=x86_like()))
            pts.append(point(f"{approach} (tile-gx)", t, run_counter_benchmark,
                             approach, t, spec=spec))
    for p, r in zip(pts, run_sweep(pts, jobs=jobs, name="disc-x86")):
        fig.add_point(p.label, p.x, r)
    fig.note("x86 profile: atomics in the cache hierarchy, no UDN, "
             "costlier coherence misses, 2.4 GHz, 16 cores")
    return fig


def _oversub_point(tpc: int, num_cores: int, spec: WorkloadSpec) -> RunResult:
    """One oversubscription point (module-level: must ship to workers)."""
    machine = Machine(tile_gx())
    table = OpTable()
    prim = MPServer(machine, table, server_tid=0)
    counter = LockedCounter(prim)
    prim.start()
    ctxs = []
    tid = 1
    for core in range(1, num_cores + 1):
        for d in range(tpc):
            ctxs.append(machine.thread(tid, core_id=core, demux=d))
            tid += 1

    def make_op(ctx):
        def op(k):
            yield from counter.increment(ctx)
        return op

    return run_workload(machine, ctxs, make_op, spec,
                        name=f"{tpc} threads/core", prim=prim)


def run_oversubscription(quick: bool = True, threads_per_core: int = 4,
                         num_cores: int = 8,
                         jobs: Optional[int] = None) -> FigureData:
    """Section 6: multiple client threads per core via demux queues.

    All client threads still complete operations correctly and the
    aggregate throughput stays in the same range as one-thread-per-core
    with the same total client count (the server, not the clients, is
    the bottleneck).
    """
    spec = _spec(quick)
    fig = FigureData("disc-oversub", "Oversubscription via 4-way demux (Sec 6)",
                     "threads per core", "throughput (Mops/s)")
    pts = [point("mp-server", tpc, _oversub_point, tpc, num_cores, spec)
           for tpc in range(1, threads_per_core + 1)]
    for p, r in zip(pts, run_sweep(pts, jobs=jobs, name="disc-oversub")):
        fig.add_point(p.label, p.x, r)
    return fig


def _backpressure_point(clients: int, buffer_words: int,
                        spec: WorkloadSpec) -> RunResult:
    """One backpressure point (module-level: must ship to workers)."""
    machine = Machine(tile_gx(udn_buffer_words=buffer_words))
    table = OpTable()
    prim = MPServer(machine, table, server_tid=0)
    counter = LockedCounter(prim)
    prim.start()
    ctxs = [machine.thread(t) for t in range(1, clients + 1)]

    def make_op(ctx):
        def op(k):
            yield from counter.increment(ctx)
        return op

    r = run_workload(machine, ctxs, make_op, spec, name="mp-server", prim=prim)
    r.extra["backpressure_cycles"] = machine.udn.backpressure_cycles
    return r


def run_backpressure(quick: bool = True, buffer_words: int = 12,
                     jobs: Optional[int] = None) -> FigureData:
    """Section 6: tiny hardware buffers force sender blocking.

    With a 12-word buffer only four 3-word requests fit; the remaining
    clients block in ``send`` until the server drains.  The run must
    complete with full throughput accounting and non-zero measured
    backpressure.
    """
    spec = _spec(quick)
    fig = FigureData("disc-backpressure", "Buffer overflow backpressure (Sec 6)",
                     "clients", "throughput (Mops/s)")
    pts = [point("mp-server (12-word buffers)", clients, _backpressure_point,
                 clients, buffer_words, spec)
           for clients in (4, 10, 20, 30)]
    for p, r in zip(pts, run_sweep(pts, jobs=jobs, name="disc-backpressure")):
        fig.add_point(p.label, p.x, r)
    fig.note("blocked sends are safe: every client has at most one "
             "outstanding request, so requests cannot deadlock (Sec 6)")
    return fig


def run_scc_comparison(quick: bool = True,
                       threads: Sequence[int] = (4, 10, 20, 34),
                       jobs: Optional[int] = None) -> FigureData:
    """MP-SERVER on a message-passing-only (SCC-like) chip vs the hybrid.

    The conclusion's "best of both worlds" argument, made concrete: the
    server approach ports unchanged to a chip with no coherent shared
    memory (requests, responses and the server-private object need no
    coherence), while HYBCOMB fundamentally cannot (combiner identity
    lives in shared memory) -- attempting it raises, which the test-suite
    asserts (tests/test_scc_profile.py).
    """
    from repro.machine import scc_like

    spec = _spec(quick)
    fig = FigureData("disc-scc", "MP-SERVER on a message-passing-only chip",
                     "application threads", "throughput (Mops/s)")
    pts = []
    for t in threads:
        pts.append(point("mp-server (scc-like)", t, run_counter_benchmark,
                         "mp-server", t, spec=spec, cfg=scc_like()))
        pts.append(point("mp-server (tile-gx)", t, run_counter_benchmark,
                         "mp-server", t, spec=spec))
    for p, r in zip(pts, run_sweep(pts, jobs=jobs, name="disc-scc")):
        fig.add_point(p.label, p.x, r)
    fig.note("scc-like: 48 cores @ 1 GHz, hardware message queues, NO "
             "coherent shared memory; HYBCOMB/CC-SYNCH/SHM-SERVER cannot "
             "run there at all")
    return fig


def run_noc_ablation(quick: bool = True, num_threads: int = 20,
                     jobs: Optional[int] = None) -> FigureData:
    """Analytic vs contended mesh: the results must agree closely."""
    spec = _spec(quick)
    fig = FigureData("disc-noc", "NoC model ablation",
                     "application threads", "throughput (Mops/s)")
    pts = [point("contended links" if contended else "analytic", t,
                 run_counter_benchmark, "mp-server", t, spec=spec,
                 cfg=tile_gx(contended_noc=contended))
           for t in (5, 10, num_threads) for contended in (False, True)]
    for p, r in zip(pts, run_sweep(pts, jobs=jobs, name="disc-noc")):
        fig.add_point(p.label, p.x, r)
    return fig
