"""Figure 4: where the performance difference comes from.

* 4a -- stalled vs total cycles per operation on the servicing thread,
  under maximum load.  Per the paper's footnote 4, the combiners run in
  fixed-combiner mode ("equivalent to setting MAX_OPS = inf") so the
  per-core event counters isolate the servicing critical path.
* 4b -- the actual combining rate vs thread count for HYBCOMB and
  CC-SYNCH (MAX_OPS = 200).
* 4c -- average cycles per CS execution as the CS body grows (array
  increments), including the "ideal" unsynchronized line.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.series import FigureData
from repro.core import OpTable
from repro.core.api import DirectExec
from repro.experiments.parallel import point, run_sweep
from repro.machine import Machine, tile_gx
from repro.objects import ArrayCS
from repro.workload.driver import WorkloadSpec, run_workload
from repro.workload.metrics import RunResult
from repro.workload.scenarios import (
    APPROACH_BUILDERS,
    run_counter_benchmark,
    run_cs_length_benchmark,
)

__all__ = ["run_fig4a", "run_fig4b", "run_fig4c"]


def _spec(quick: bool) -> WorkloadSpec:
    return WorkloadSpec.quick() if quick else WorkloadSpec.full()


def run_fig4a(quick: bool = True, num_threads: int = 30,
              jobs: Optional[int] = None) -> FigureData:
    """Stalled and total cycles per op on the servicing thread.

    x is categorical (the approach); each point carries the full
    RunResult, and the stall/total split is read from
    ``service_stall_per_op`` / ``service_cycles_per_op``.
    """
    spec = _spec(quick)
    fig = FigureData("fig4a", "CPU stalls on the servicing thread (Fig 4a)",
                     "approach", "cycles per operation")
    pts = [point(approach, i, run_counter_benchmark, approach, num_threads,
                 spec=spec, fixed_combiner=True)
           for i, approach in enumerate(APPROACH_BUILDERS)]
    for p, r in zip(pts, run_sweep(pts, jobs=jobs, name="fig4a")):
        fig.add_point(p.label, p.x, r)
    fig.note("combiners measured in fixed-combiner mode (MAX_OPS = inf), "
             "per the paper's footnote 4")
    return fig


def run_fig4b(quick: bool = True,
              threads: Optional[Sequence[int]] = None,
              jobs: Optional[int] = None) -> FigureData:
    """Actual combining rate vs application threads (MAX_OPS = 200)."""
    from repro.experiments.fig3 import FULL_THREADS, QUICK_THREADS

    threads = tuple(threads if threads is not None else
                    (QUICK_THREADS if quick else FULL_THREADS))
    spec = _spec(quick)
    fig = FigureData("fig4b", "Actual combining rate (Fig 4b)",
                     "application threads", "ops per combining session")
    pts = [point(approach, t, run_counter_benchmark, approach, t, spec=spec)
           for approach in ("HybComb", "CC-Synch") for t in threads
           if t >= 2]  # no combining with a single thread
    for p, r in zip(pts, run_sweep(pts, jobs=jobs, name="fig4b")):
        fig.add_point(p.label, p.x, r)
    return fig


def _ideal_cs_point(k: int, seed: int) -> RunResult:
    """One "ideal" point: the CS body alone, no synchronization.

    Module-level (not a closure inside :func:`run_fig4c`) so the
    parallel sweep runner can ship it to a worker process.
    """
    machine = Machine(tile_gx())
    table = OpTable()
    prim = DirectExec(machine, table)
    arr = ArrayCS(prim)
    prim.start()
    ctx = machine.thread(0)

    def make_op(c):
        def op(_i, _k=k):
            yield from arr.run(c, _k)
        return op

    ideal_spec = WorkloadSpec(warmup_cycles=2000,
                              measure_cycles=20_000,
                              think_max_iterations=0,
                              seed=seed)
    return run_workload(machine, [ctx], make_op, ideal_spec, name="ideal")


def run_fig4c(quick: bool = True,
              iterations: Optional[Sequence[int]] = None,
              num_threads: int = 30,
              jobs: Optional[int] = None) -> FigureData:
    """Cycles per CS execution vs CS body length, plus the ideal line.

    Under maximum load the servicing thread is saturated, so cycles per
    CS = machine clock / aggregate throughput.  The "ideal" series
    measures the body alone (DirectExec, single thread, no think time).
    """
    iters = tuple(iterations if iterations is not None else
                  ((0, 2, 5, 8, 11, 15) if quick else tuple(range(0, 16))))
    spec = _spec(quick)
    fig = FigureData("fig4c", "Long critical sections (Fig 4c)",
                     "CS length (iterations)", "cycles per CS execution")
    pts = [point(approach, k, run_cs_length_benchmark, approach, num_threads,
                 k, spec=spec)
           for approach in APPROACH_BUILDERS for k in iters]
    # ideal line: the body with no synchronization at all
    pts += [point("ideal", k, _ideal_cs_point, k, spec.seed) for k in iters]
    for p, r in zip(pts, run_sweep(pts, jobs=jobs, name="fig4c")):
        fig.add_point(p.label, p.x, r)
    fig.note("cycles per CS for the approaches = clock / throughput at "
             f"{num_threads} threads; ideal = single-thread DirectExec latency")
    return fig
