"""One module per figure of the paper's evaluation (Section 5).

========== =========================================================
module     reproduces
========== =========================================================
``fig3``   Fig 3a (counter throughput), 3b (latency), 3c (MAX_OPS)
``fig4``   Fig 4a (stall breakdown), 4b (combining rate), 4c (CS len)
``fig5``   Fig 5a (queues), 5b (stacks)
``discussion``  Section 5.5 (x86) and Section 6 (oversubscription,
           buffer backpressure) plus the NoC-contention ablation
========== =========================================================

Every experiment takes ``quick=True`` (seconds, used by tests and the
default benchmark run) or ``quick=False`` (the larger windows and denser
sweeps behind EXPERIMENTS.md) and returns
:class:`~repro.analysis.series.FigureData`.

``repro.experiments.registry`` maps experiment ids to callables, and
``python -m repro.experiments`` runs any subset from the command line.
"""

from repro.experiments.registry import EXPERIMENTS, run_experiment

__all__ = ["EXPERIMENTS", "run_experiment"]
