"""``python -m repro.experiments`` -- run reproduction experiments."""

import sys

from repro.experiments.registry import main

sys.exit(main())
