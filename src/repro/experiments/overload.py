"""Overload experiment: offered load past capacity, `overload`.

The paper's figures are closed-loop: N threads self-clock at the
service rate, so they can show the *knee* of the latency curve but
never the regime past it.  This experiment drives the same contended
counter with **open-loop** traffic swept from 0.5x to 2x each
approach's measured capacity (see :mod:`repro.workload.openloop`) and
plots the load-latency hockey stick:

* with **unbounded** admission, queue depth and p99.9 sojourn grow
  without bound as soon as offered load crosses capacity;
* with **bounded-drop** (and retry/backoff) admission, depth and tail
  latency stay bounded and goodput degrades gracefully -- the system
  sheds what it cannot serve instead of queueing it forever.

Capacity is measured first, per approach, with a closed-loop run, so
the x-axis is a *relative* offered-load multiplier and the series are
comparable across approaches with different absolute throughput.

A final fault-wired point crashes the fault-tolerant MP-SERVER's
primary at 1.5x capacity under bounded admission: failover must
preserve exactly-once semantics while saturated (the scripted
linearizability version of the same claim lives in
tests/test_overload.py and the explore matrix).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.analysis.series import FigureData
from repro.core import CCSynch, HybComb, MPServer, OpTable, ShmServer
from repro.experiments.parallel import point, run_sweep
from repro.faults import CrashThread, FaultInjector, FaultPlan
from repro.machine import Machine, tile_gx
from repro.obs import SLO
from repro.objects import LockedCounter
from repro.workload.driver import WorkloadSpec
from repro.workload.metrics import RunResult
from repro.workload.openloop import (
    AdmissionSpec,
    ArrivalSpec,
    OpenLoopSpec,
    run_openloop_workload,
)
from repro.workload.scenarios import run_counter_benchmark

__all__ = ["APPROACHES", "measure_capacity", "overload_slos",
           "run_overload", "run_overload_point"]

#: approaches swept (HybComb twice: lease/takeover off and on)
APPROACHES = ("mp-server", "shm-server", "CC-Synch", "HybComb",
              "HybComb-lease")

#: client threads per run (fits every topology, two-server FT included)
NUM_CLIENTS = 8

#: admission-queue bound for the bounded policies, per client
QUEUE_CAPACITY = 16

#: per-dispatch deadline for the retry policy (cycles)
DISPATCH_TIMEOUT = 2_000

#: sojourn SLO target used for time-in-SLO accounting (cycles)
SLO_CYCLES = 20_000

#: offered-load multipliers relative to measured capacity
QUICK_MULTIPLIERS = (0.5, 1.0, 1.2, 1.5, 2.0)
FULL_MULTIPLIERS = (0.5, 0.75, 1.0, 1.1, 1.2, 1.35, 1.5, 1.75, 2.0)


def overload_slos() -> Tuple[SLO, ...]:
    """The SLOs ``python -m repro report overload`` monitors live.

    They restate the experiment's own acceptance story as objectives:
    the sojourn SLO the time-in-SLO metric uses, a goodput floor well
    under every approach's capacity, and the bounded-admission depth
    ceiling (``QUEUE_CAPACITY`` per client).  Past-capacity unbounded
    points are *designed* to blow through the latency and depth
    objectives -- the induced breach exercises the breach -> flight
    recorder -> incident bundle path on every report run.
    """
    return (
        SLO("sojourn-p99", kind="latency", target=float(SLO_CYCLES),
            quantile=0.99),
        SLO("goodput-floor", kind="goodput", target=1.0),
        SLO("qdepth-bound", kind="qdepth",
            target=float(QUEUE_CAPACITY * NUM_CLIENTS),
            metric="admit.qdepth"),
    )


def _build(approach: str, machine: Machine, optable: OpTable,
           n_clients: int) -> Tuple:
    """(prim, client tids) for an approach label, lease variant included."""
    if approach == "mp-server":
        prim = MPServer(machine, optable, server_tid=0)
        tids = range(1, n_clients + 1)
    elif approach == "mp-server-ft":
        prim = MPServer(machine, optable, server_tid=0, server_core=0,
                        backup_tid=1, backup_core=1, request_timeout=2_000)
        tids = range(2, n_clients + 2)
    elif approach == "shm-server":
        prim = ShmServer(machine, optable, server_tid=0,
                         client_tids=range(1, n_clients + 1))
        tids = range(1, n_clients + 1)
    elif approach == "HybComb":
        prim = HybComb(machine, optable)
        tids = range(n_clients)
    elif approach == "HybComb-lease":
        prim = HybComb(machine, optable, lease_cycles=3_000,
                       request_timeout=6_000)
        tids = range(n_clients)
    elif approach == "CC-Synch":
        prim = CCSynch(machine, optable)
        tids = range(n_clients)
    else:
        raise ValueError(f"unknown approach {approach!r}")
    return prim, list(tids)


def measure_capacity(approach: str, *, quick: bool = True) -> float:
    """Closed-loop capacity (Mops/s) of ``approach`` at NUM_CLIENTS."""
    base = "HybComb" if approach == "HybComb-lease" else approach
    spec = WorkloadSpec.quick() if quick else WorkloadSpec.full()
    r = run_counter_benchmark(base, NUM_CLIENTS, spec=spec)
    return r.throughput_mops


def _admission(policy: str) -> AdmissionSpec:
    if policy == "unbounded":
        return AdmissionSpec(policy="unbounded", slo_cycles=SLO_CYCLES)
    if policy == "drop":
        return AdmissionSpec(policy="drop", capacity=QUEUE_CAPACITY,
                             slo_cycles=SLO_CYCLES)
    if policy == "retry":
        return AdmissionSpec(policy="retry", capacity=QUEUE_CAPACITY,
                             dispatch_timeout_cycles=DISPATCH_TIMEOUT,
                             breaker_threshold=4, slo_cycles=SLO_CYCLES)
    raise ValueError(f"unknown policy {policy!r}")


def run_overload_point(
    approach: str,
    capacity_mops: float,
    multiplier: float,
    policy: str,
    *,
    quick: bool = True,
    crash_primary: bool = False,
    seed: int = 42,
) -> RunResult:
    """One (approach, offered-load multiplier, admission policy) run.

    Offered load is ``multiplier * capacity_mops`` spread over
    NUM_CLIENTS Poisson sources.  ``crash_primary`` additionally kills
    thread 0 a third into the measurement window (mp-server-ft only:
    the backup takes over and dedup keeps the run exactly-once).
    """
    machine = Machine(tile_gx())
    optable = OpTable()
    prim, tids = _build(approach, machine, optable, NUM_CLIENTS)
    counter = LockedCounter(prim)
    prim.start()
    ctxs = [machine.thread(t) for t in tids]

    clock = machine.cfg.clock_mhz
    offered_per_cycle = multiplier * capacity_mops / clock
    gap = len(ctxs) / offered_per_cycle
    spec = OpenLoopSpec(
        arrivals=ArrivalSpec(process="poisson", mean_gap_cycles=gap),
        admission=_admission(policy),
        warmup_cycles=20_000 if quick else 60_000,
        measure_cycles=120_000 if quick else 360_000,
        seed=seed,
    )
    if crash_primary:
        crash_at = spec.warmup_cycles + spec.measure_cycles // 3
        plan = FaultPlan(seed=seed,
                         faults=(CrashThread(tid=0, at_cycle=crash_at),))
        FaultInjector(machine, plan).install()

    label = f"{approach}/{policy}" + ("+crash" if crash_primary else "")
    result = run_openloop_workload(machine, ctxs, prim, counter._op_inc,
                                   spec, name=label)
    result.extra["ol.multiplier"] = multiplier
    result.extra["ol.capacity_mops"] = capacity_mops
    # ground truth for exactly-once: the counter's final value must equal
    # the number of completed increments over the *whole* run
    result.extra["ol.counter_value"] = float(counter.value())
    return result


def run_overload(quick: bool = True, jobs: Optional[int] = None,
                 multipliers: Optional[Sequence[float]] = None) -> FigureData:
    """The load-latency hockey stick, 0.5x..2x capacity per approach."""
    mults = tuple(multipliers if multipliers is not None
                  else QUICK_MULTIPLIERS if quick else FULL_MULTIPLIERS)

    # phase 1: closed-loop capacity per approach (itself a sweep)
    cap_pts = [point(a, 0, measure_capacity, a, quick=quick)
               for a in APPROACHES]
    caps: Dict[str, float] = {
        p.label: r for p, r in
        zip(cap_pts, run_sweep(cap_pts, jobs=jobs, name="overload-capacity"))
    }

    # phase 2: open-loop offered-load sweep, unbounded vs bounded
    fig = FigureData(
        "overload",
        "open-loop overload: p99 sojourn vs offered load (hockey stick)",
        "offered load (x capacity)", "p99 sojourn latency (cycles)",
    )
    pts = []
    for a in APPROACHES:
        for mult in mults:
            pts.append(point(f"{a} unbounded", mult, run_overload_point,
                             a, caps[a], mult, "unbounded", quick=quick))
            pts.append(point(f"{a} drop", mult, run_overload_point,
                             a, caps[a], mult, "drop", quick=quick))
    # timed-dispatch retry/backoff contrast on the server approaches
    # (combiners commit with one wait-free SWAP/FAA -- nothing to time)
    for mult in mults:
        pts.append(point("mp-server retry", mult, run_overload_point,
                         "mp-server", caps["mp-server"], mult, "retry",
                         quick=quick))
    # phase 3: exactly-once failover while saturated (1.5x, bounded)
    pts.append(point("mp-server-ft drop+crash", 1.5, run_overload_point,
                     "mp-server-ft", caps["mp-server"], 1.5, "drop",
                     quick=quick, crash_primary=True))

    for p, r in zip(pts, run_sweep(pts, jobs=jobs, name="overload")):
        fig.add_point(p.label, p.x, r)

    for a in APPROACHES:
        fig.note(f"capacity[{a}] = {caps[a]:.1f} Mops/s "
                 f"(closed-loop, T={NUM_CLIENTS})")
    fig.note(f"bounded policies: queue capacity {QUEUE_CAPACITY}/client, "
             f"dispatch timeout {DISPATCH_TIMEOUT} cyc, SLO {SLO_CYCLES} cyc")
    fig.note("crash point: primary killed a third into the window at 1.5x "
             "offered load; dedup + failover keep completions exactly-once")
    return fig
