"""Experiment registry and command-line entry point.

``python -m repro.experiments fig3a fig5b`` runs selected experiments;
with no arguments it runs all of them.  ``--full`` switches to the
larger windows/sweeps used for EXPERIMENTS.md; ``--csv DIR`` exports
each figure's data.

Observability (see DESIGN.md §9): ``--perf`` prints per-experiment
contention heatmaps / UDN latency histograms and writes the aggregated
perf-counter file as ``<exp>-metrics.csv``; ``--trace`` additionally
records every machine and writes a merged Chrome/Perfetto
``<exp>-trace.json`` (open in https://ui.perfetto.dev).  Both write
under ``--trace-out DIR`` (default ``traces/``).

Causal tracing (DESIGN.md §10): ``--critpath`` reconstructs per-op
blame and the whole-run critical path (``<exp>-critpath.txt``, plus a
HYBCOMB/CC-SYNCH diff when both ran); ``--stragglers [K]`` adds the K
slowest ops with their dominant blame category; ``--latency-dump``
writes every raw latency sample for full-CDF analysis.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Callable, Dict

import repro.obs as obs_mod
from repro.analysis.critpath import analyze_collector
from repro.analysis.render import (
    ascii_chart,
    bar_chart,
    markdown_table,
    render_blame_breakdown,
    render_critpath_diff,
    render_latency_histogram,
    render_line_heatmap,
    render_mesh_heatmap,
    render_stragglers,
    to_csv,
)
from repro.analysis.series import FigureData
from repro.experiments.discussion import (
    run_backpressure,
    run_noc_ablation,
    run_oversubscription,
    run_scc_comparison,
    run_x86_comparison,
)
from repro.experiments.faults import run_fault_recovery
from repro.experiments.fig3 import run_fig3a, run_fig3b, run_fig3c
from repro.experiments.overload import run_overload
from repro.experiments.fig4 import run_fig4a, run_fig4b, run_fig4c
from repro.experiments.fig5 import run_fig5a, run_fig5b
from repro.experiments.scale import run_scale, run_scale_smoke

__all__ = ["EXPERIMENTS", "run_experiment", "main"]

EXPERIMENTS: Dict[str, Callable[..., FigureData]] = {
    "fig3a": run_fig3a,
    "fig3b": run_fig3b,
    "fig3c": run_fig3c,
    "fig4a": run_fig4a,
    "fig4b": run_fig4b,
    "fig4c": run_fig4c,
    "fig5a": run_fig5a,
    "fig5b": run_fig5b,
    "disc-x86": run_x86_comparison,
    "disc-scc": run_scc_comparison,
    "disc-oversub": run_oversubscription,
    "disc-backpressure": run_backpressure,
    "disc-noc": run_noc_ablation,
    "disc-faults": run_fault_recovery,
    "overload": run_overload,
    "scale": run_scale,
    "scale-smoke": run_scale_smoke,
}

#: which metric each figure plots
_METRIC = {
    "fig3b": lambda r: r.mean_latency_cycles,
    "fig4b": lambda r: r.combining_rate or 0.0,
    "fig4c": lambda r: r.cycles_per_op,
    "overload": lambda r: r.p99_latency_cycles,
}


def metric_for(figure_id: str):
    return _METRIC.get(figure_id, lambda r: r.throughput_mops)


def run_experiment(exp_id: str, quick: bool = True,
                   jobs: "int | None" = None) -> FigureData:
    try:
        fn = EXPERIMENTS[exp_id]
    except KeyError:
        raise ValueError(
            f"unknown experiment {exp_id!r}; choose from {sorted(EXPERIMENTS)}"
        ) from None
    return fn(quick=quick, jobs=jobs)


def render(fig: FigureData) -> str:
    metric = metric_for(fig.figure_id)
    if fig.figure_id == "fig4a":
        labels = fig.labels()
        stalled = [metric_stall(fig, lbl) for lbl in labels]
        total = [metric_total(fig, lbl) for lbl in labels]
        body = bar_chart(labels, {"stalled": stalled, "total": total},
                         title=fig.title)
    else:
        body = ascii_chart(fig, metric)
    table = markdown_table(fig, metric)
    notes = "".join(f"note: {n}\n" for n in fig.notes)
    return f"{body}\n{table}{notes}"


def metric_stall(fig: FigureData, label: str) -> float:
    (_x, r), = fig.series[label].points
    return r.service_stall_per_op


def metric_total(fig: FigureData, label: str) -> float:
    (_x, r), = fig.series[label].points
    return r.service_cycles_per_op


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce figures from the paper's evaluation.",
    )
    parser.add_argument("experiments", nargs="*", default=[],
                        help=f"ids to run (default: all): {sorted(EXPERIMENTS)}")
    parser.add_argument("--full", action="store_true",
                        help="use the large windows/sweeps (slow)")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="run sweep points across N worker processes "
                             "(default: REPRO_JOBS or serial); results merge "
                             "in deterministic submission order, so figures "
                             "are identical to a serial run")
    parser.add_argument("--csv", metavar="DIR", default=None,
                        help="also export each figure's data as CSV")
    parser.add_argument("--perf", action="store_true",
                        help="collect perf counters; print heatmaps and "
                             "write <exp>-metrics.csv under --trace-out")
    parser.add_argument("--trace", action="store_true",
                        help="record a Chrome/Perfetto trace per experiment "
                             "(implies --perf)")
    parser.add_argument("--trace-out", metavar="DIR", default="traces",
                        help="directory for trace/metrics files "
                             "(default: traces)")
    parser.add_argument("--critpath", action="store_true",
                        help="per-op causal tracing: print critical-path "
                             "blame breakdowns and an A/B diff, and write "
                             "<exp>-critpath.txt (implies --perf)")
    parser.add_argument("--stragglers", metavar="K", nargs="?", type=int,
                        const=10, default=None,
                        help="report the K slowest ops with their dominant "
                             "blame category (default K=10; implies "
                             "--critpath); writes <exp>-stragglers.txt")
    parser.add_argument("--latency-dump", action="store_true",
                        help="write every raw per-op latency sample as "
                             "<exp>-latencies.csv (full CDFs)")
    args = parser.parse_args(argv)
    if args.stragglers is not None:
        args.critpath = True
    if args.trace or args.critpath:
        args.perf = True

    ids = args.experiments or list(EXPERIMENTS)
    unknown = [e for e in ids if e not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment(s) {unknown}; choose from {sorted(EXPERIMENTS)}")
    if args.perf and (args.jobs or 0) > 1:
        print("note: --perf/--trace/--critpath observe machines in-process; "
              "running serially (ignoring --jobs)")
        args.jobs = 1
    session = (obs_mod.enable(trace=args.trace, causal=args.critpath,
                              spatial=True, spatial_hops=args.critpath)
               if args.perf else None)
    try:
        for exp_id in ids:
            if session is not None:
                session.reset()
            t0 = time.time()
            fig = run_experiment(exp_id, quick=not args.full, jobs=args.jobs)
            dt = time.time() - t0
            print(f"=== {exp_id} ({dt:.1f}s) " + "=" * 40)
            print(render(fig))
            if session is not None:
                _export_obs(session, exp_id, args.trace_out, args.trace)
            if args.critpath:
                _export_critpath(session, exp_id, args.trace_out,
                                 args.stragglers)
            if args.latency_dump:
                _export_latencies(fig, exp_id, args.trace_out)
            if args.csv:
                os.makedirs(args.csv, exist_ok=True)
                path = os.path.join(args.csv, f"{exp_id}.csv")
                metrics = {
                    "throughput_mops": lambda r: r.throughput_mops,
                    "latency_cycles": lambda r: r.mean_latency_cycles,
                    "latency_p50": lambda r: r.p50_latency_cycles,
                    "latency_p99": lambda r: r.p99_latency_cycles,
                    "cycles_per_op": lambda r: r.cycles_per_op,
                    "combining_rate": lambda r: r.combining_rate or 0.0,
                    "svc_cycles_per_op": lambda r: r.service_cycles_per_op,
                    "svc_stall_per_op": lambda r: r.service_stall_per_op,
                    "cas_per_op": lambda r: r.cas_per_op,
                    "time_to_recovery_cycles": lambda r: (
                        r.time_to_recovery_cycles
                        if r.time_to_recovery_cycles is not None else 0.0),
                    "ops_retried": lambda r: float(r.ops_retried),
                    "duplicates_suppressed": lambda r: float(r.duplicates_suppressed),
                    "failovers": lambda r: float(r.failovers),
                    # overload extras (zero for closed-loop figures)
                    "latency_p999": lambda r: r.p999_latency_cycles,
                    "offered_mops": lambda r: r.offered_mops,
                    "goodput_mops": lambda r: r.goodput_mops,
                    "shed_ops": lambda r: float(r.shed_ops),
                    "dispatch_timeouts": lambda r: float(r.dispatch_timeouts),
                    "retries": lambda r: float(r.retries),
                    "time_in_slo": lambda r: (
                        r.time_in_slo if r.time_in_slo is not None else 1.0),
                    "qdepth_max": lambda r: r.extra.get("ol.qdepth_max", 0.0),
                }
                with open(path, "w") as f:
                    f.write(to_csv(fig, metrics))
                print(f"[csv written to {path}]")
    finally:
        if session is not None:
            obs_mod.disable()
    return 0


def _export_obs(session, exp_id: str, out_dir: str, trace: bool) -> None:
    """Write one experiment's perf counter file (+ optional trace)."""
    if not session.machines:
        return
    os.makedirs(out_dir, exist_ok=True)
    agg = session.aggregate()
    print(render_line_heatmap(agg.get("line", {}),
                              title=f"{exp_id}: cache-line contention"))
    if agg.get("udn_hist"):
        print(render_latency_histogram(agg["udn_hist"],
                                       title=f"{exp_id}: UDN delivery latency"))
    spatial = session.spatial_summary()
    if spatial is not None and spatial.get("tiles"):
        from repro.analysis.dashboard import write_mesh_svg
        from repro.obs.spatial import causal_link_flows, render_hotspots
        print(render_mesh_heatmap(spatial,
                                  title=f"{exp_id}: NoC congestion atlas"))
        # join link occupancy with the ops that crossed each link; the
        # causal stream carries the op context, so flows only resolve
        # under --critpath.  One machine's flows suffice for attribution
        # (the busiest machine dominates the merged atlas anyway).
        flows = None
        traced = [ob for ob in session.machines
                  if ob.causal is not None and ob.causal.events
                  and ob.spatial is not None]
        if traced:
            busiest = max(traced,
                          key=lambda ob: ob.spatial.summary()["messages"])
            flows = causal_link_flows(busiest.spatial, busiest.causal)
        print(render_hotspots(spatial, k=5, flows=flows))
        spath = write_mesh_svg(os.path.join(out_dir, f"{exp_id}-mesh.svg"),
                               spatial,
                               title=f"{exp_id}: NoC congestion atlas")
        print(f"[mesh heatmap written to {spath}]")
    mpath = os.path.join(out_dir, f"{exp_id}-metrics.csv")
    with open(mpath, "w") as f:
        f.write(session.metrics_csv())
    print(f"[perf counters written to {mpath}]")
    if trace:
        tpath = os.path.join(out_dir, f"{exp_id}-trace.json")
        n = session.export_chrome_trace(tpath)
        print(f"[{n} trace events written to {tpath} -- "
              f"open in https://ui.perfetto.dev]")


def _export_critpath(session, exp_id: str, out_dir: str,
                     k_stragglers) -> None:
    """Analyze causal streams; print + write blame/straggler reports.

    A sweep builds one machine per (approach, thread-count) point;
    analyzing every point would drown the terminal, so only the
    highest-thread-count machine of each approach is reported (the
    contended regime the paper's argument is about).
    """
    best = {}  # series name -> (thread count, Observability)
    for ob in session.machines:
        if ob.causal is None or not ob.causal.events:
            continue
        name, _, tpart = ob.label.rpartition(" T=")
        try:
            n = int(tpart)
        except ValueError:
            name, n = ob.label, 0
        cur = best.get(name)
        if cur is None or n > cur[0]:
            best[name] = (n, ob)
    if not best:
        return
    os.makedirs(out_dir, exist_ok=True)
    reports = {name: analyze_collector(ob.causal, label=ob.label)
               for name, (_n, ob) in sorted(best.items())}
    chunks = [render_blame_breakdown(rep) for rep in reports.values()]
    # the README's A/B example: HYBCOMB vs CC-SYNCH when both ran
    hyb = next((r for n, r in reports.items() if "hyb" in n.lower()), None)
    cc = next((r for n, r in reports.items() if "cc-" in n.lower()), None)
    if hyb is not None and cc is not None:
        chunks.append(render_critpath_diff(hyb, cc))
    text = "\n".join(chunks)
    print(text)
    cpath = os.path.join(out_dir, f"{exp_id}-critpath.txt")
    with open(cpath, "w") as f:
        f.write(text)
    print(f"[critical-path report written to {cpath}]")
    if k_stragglers is not None:
        stext = "\n".join(render_stragglers(rep, k_stragglers)
                          for rep in reports.values())
        print(stext)
        spath = os.path.join(out_dir, f"{exp_id}-stragglers.txt")
        with open(spath, "w") as f:
            f.write(stext)
        print(f"[straggler table written to {spath}]")


def _export_latencies(fig, exp_id: str, out_dir: str) -> None:
    """Dump raw per-op latency samples as long-format CSV."""
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"{exp_id}-latencies.csv")
    with open(path, "w") as f:
        f.write("series,x,latency_cycles\n")
        for label, s in fig.series.items():
            for x, r in s.points:
                for v in r.latency_samples or ():
                    f.write(f"{label},{x:g},{v}\n")
    print(f"[latency samples written to {path}]")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
