"""Figure 3: performance of a concurrent counter.

* 3a -- throughput (Mops/s) vs number of application threads, for the
  four approaches (MAX_OPS = 200).
* 3b -- average request latency (cycles) vs threads (same runs as 3a).
* 3c -- peak throughput vs the allowed combining rate (MAX_OPS sweep)
  for the two combining algorithms, at high concurrency.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.analysis.series import FigureData
from repro.experiments.parallel import point, run_sweep
from repro.workload.driver import WorkloadSpec
from repro.workload.scenarios import APPROACH_BUILDERS, run_counter_benchmark

__all__ = ["run_fig3a_3b", "run_fig3a", "run_fig3b", "run_fig3c",
           "QUICK_THREADS", "FULL_THREADS"]

QUICK_THREADS = (1, 5, 10, 15, 20, 25, 30, 35)
FULL_THREADS = (1, 2, 4, 6, 8, 10, 12, 14, 17, 20, 22, 25, 28, 31, 33, 35)

QUICK_MAX_OPS = (1, 5, 20, 100, 500, 2000, 5000)
FULL_MAX_OPS = (1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000)


def _spec(quick: bool) -> WorkloadSpec:
    return WorkloadSpec.quick() if quick else WorkloadSpec.full()


def _max_threads(approach: str) -> int:
    # a server occupies one of the 36 cores
    return 35 if approach in ("mp-server", "shm-server") else 36


def run_fig3a_3b(quick: bool = True,
                 threads: Optional[Sequence[int]] = None,
                 approaches: Sequence[str] = APPROACH_BUILDERS,
                 jobs: Optional[int] = None,
                 ) -> Tuple[FigureData, FigureData]:
    """One sweep produces both the throughput and the latency figure."""
    threads = tuple(threads if threads is not None else
                    (QUICK_THREADS if quick else FULL_THREADS))
    spec = _spec(quick)
    fig_a = FigureData("fig3a", "Counter throughput (Fig 3a)",
                       "application threads", "throughput (Mops/s)")
    fig_b = FigureData("fig3b", "Counter latency (Fig 3b)",
                       "application threads", "latency (cycles)")
    pts = [point(approach, t, run_counter_benchmark, approach, t, spec=spec)
           for approach in approaches for t in threads
           if t <= _max_threads(approach)]
    for p, r in zip(pts, run_sweep(pts, jobs=jobs, name="fig3a/3b")):
        fig_a.add_point(p.label, p.x, r)
        fig_b.add_point(p.label, p.x, r)
    return fig_a, fig_b


def run_fig3a(quick: bool = True, **kw) -> FigureData:
    return run_fig3a_3b(quick, **kw)[0]


def run_fig3b(quick: bool = True, **kw) -> FigureData:
    return run_fig3a_3b(quick, **kw)[1]


def run_fig3c(quick: bool = True,
              max_ops_values: Optional[Sequence[int]] = None,
              num_threads: int = 30,
              jobs: Optional[int] = None,
              ) -> FigureData:
    """Peak counter throughput vs MAX_OPS, for HYBCOMB and CC-SYNCH.

    The paper examines "how the maximum achievable throughput changes
    with MAX_OPS"; we run at a high concurrency level where throughput
    peaks.
    """
    values = tuple(max_ops_values if max_ops_values is not None else
                   (QUICK_MAX_OPS if quick else FULL_MAX_OPS))
    spec = _spec(quick)
    fig = FigureData("fig3c", "Impact of the allowed combining rate (Fig 3c)",
                     "MAX_OPS", "throughput (Mops/s)")
    pts = [point(approach, mo, run_counter_benchmark, approach, num_threads,
                 spec=spec, max_ops=mo)
           for approach in ("HybComb", "CC-Synch") for mo in values]
    for p, r in zip(pts, run_sweep(pts, jobs=jobs, name="fig3c")):
        fig.add_point(p.label, p.x, r)
    return fig
