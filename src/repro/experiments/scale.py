"""The big-machine scaling experiment: throughput vs cores to 1024.

Nothing in the paper's delegation-vs-locking story caps at the
TILE-Gx's 36 cores; this flagship figure re-runs the Figure 3 contended
counter on TILE-Gx-calibrated meshes of 36 (6x6), 64 (8x8), 256
(16x16) and 1024 (32x32) cores -- the question the exascale
in-network-synchronization literature asks of every 36-core result.
Contenders:

* ``mp-server``   -- delegation over hardware message passing (one
  server core, cores-1 clients);
* ``HybComb``     -- the paper's hybrid combining;
* ``CC-Synch``    -- shared-memory combining;
* ``mcs-lock``    -- the classic scalable lock (O(1) RMR local
  spinning), standing in for "just lock it" at scale.

Every point also records the sparse directory's bookkeeping footprint
(``dir.*`` extras, model-level bytes -- deterministic across hosts and
Python versions), which is what the BENCH_scale regression gate holds
sub-linear: directory state must track the *hot* working set, not the
core count.

The per-mesh cost model is :func:`~repro.machine.config.mesh_profile`:
identical calibration constants at every size, with memory controllers
re-placed along the mesh edge; at 6x6 it *is* ``tile_gx``, so the
36-core points line up with every fig3-family figure.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Optional, Sequence, Tuple

from repro.analysis.series import FigureData
from repro.core import OpTable
from repro.core.locks import MCSLock
from repro.experiments.parallel import point, run_sweep
from repro.machine.config import mesh_profile
from repro.machine.machine import Machine, ThreadCtx
from repro.objects import LockedCounter
from repro.workload.driver import WorkloadSpec, run_workload
from repro.workload.metrics import RunResult
from repro.workload.scenarios import build_approach

__all__ = ["MESHES", "SCALE_APPROACHES", "run_scale", "run_scale_point",
           "run_scale_smoke"]

#: core count -> mesh shape of each scaling point
MESHES: Dict[int, Tuple[int, int]] = {
    36: (6, 6),
    64: (8, 8),
    256: (16, 16),
    1024: (32, 32),
}

SCALE_APPROACHES = ("mp-server", "HybComb", "CC-Synch", "mcs-lock")

QUICK_CORES = (36, 64, 256, 1024)
FULL_CORES = (36, 64, 256, 1024)


def _spec(quick: bool) -> WorkloadSpec:
    # shorter windows than fig3: a 1024-core point simulates every core
    # every cycle, so the same wall-time budget buys fewer cycles.  The
    # contended counter reaches steady state within a few thousand
    # cycles at every size (the serialization point is one line).
    if quick:
        return WorkloadSpec(warmup_cycles=5_000, measure_cycles=20_000)
    return WorkloadSpec(warmup_cycles=20_000, measure_cycles=80_000)


def _attach_dir_stats(machine: Machine, result: RunResult) -> RunResult:
    st = machine.mem.directory_stats()
    result.extra["dir.entries"] = float(st["entries"])
    result.extra["dir.peak_entries"] = float(st["peak_entries"])
    result.extra["dir.nominal_bytes"] = float(st["nominal_bytes"])
    result.extra["dir.max_line_bytes"] = float(st["max_line_bytes"])
    return result


def run_scale_point(approach: str, num_cores: int, *,
                    spec: Optional[WorkloadSpec] = None,
                    quick: bool = True) -> RunResult:
    """One (approach, core-count) point of the scaling curve.

    Unlike the fig3 runners this builds the machine locally so the
    directory footprint can be read back after the run and attached as
    deterministic ``dir.*`` extras.
    """
    try:
        width, height = MESHES[num_cores]
    except KeyError:
        raise ValueError(
            f"no mesh shape for {num_cores} cores; "
            f"pick one of {sorted(MESHES)}") from None
    spec = spec or _spec(quick)
    cfg = mesh_profile(width, height)
    machine = Machine(cfg)

    if approach == "mcs-lock":
        lock = MCSLock(machine)
        addr = machine.mem.alloc(1, isolated=True)
        ctxs = [machine.thread(t) for t in range(num_cores)]

        def make_op(ctx: ThreadCtx):
            def op(k: int):
                yield from lock.acquire(ctx)
                v = yield from ctx.load(addr)
                yield from ctx.store(addr, v + 1)
                yield from lock.release(ctx)
            return op

        result = run_workload(machine, ctxs, make_op, spec, name="mcs-lock")
        return _attach_dir_stats(machine, result)

    optable = OpTable()
    clients = num_cores - 1 if approach in ("mp-server", "shm-server") \
        else num_cores
    prim, tids = build_approach(approach, machine, optable, clients)
    counter = LockedCounter(prim)
    prim.start()
    ctxs = [machine.thread(tid) for tid in tids]

    def make_op(ctx: ThreadCtx):
        def op(k: int) -> Generator[Any, Any, None]:
            yield from counter.increment(ctx)
        return op

    result = run_workload(machine, ctxs, make_op, spec, name=approach,
                          prim=prim)
    return _attach_dir_stats(machine, result)


def run_scale(quick: bool = True,
              core_counts: Optional[Sequence[int]] = None,
              approaches: Sequence[str] = SCALE_APPROACHES,
              jobs: Optional[int] = None,
              ) -> FigureData:
    """The scaling-curve figure: counter throughput vs core count."""
    cores = tuple(core_counts if core_counts is not None else
                  (QUICK_CORES if quick else FULL_CORES))
    spec = _spec(quick)
    fig = FigureData("scale", "Counter throughput vs machine size",
                     "cores", "throughput (Mops/s)")
    pts = [point(approach, n, run_scale_point, approach, n, spec=spec)
           for approach in approaches for n in cores]
    for p, r in zip(pts, run_sweep(pts, jobs=jobs, name="scale")):
        fig.add_point(p.label, p.x, r)
    fig.note("mesh shapes: " + ", ".join(
        f"{n}={w}x{h}" for n, (w, h) in sorted(MESHES.items())
        if n in cores))
    return fig


def run_scale_smoke(quick: bool = True, jobs: Optional[int] = None
                    ) -> FigureData:
    """CI smoke variant: the 256-core (16x16) point only.

    A single mesh size keeps the run short and makes the session's
    spatial atlas (and its exported SVG) a clean 16x16 picture instead
    of a merge across mesh shapes.
    """
    return run_scale(quick=True, core_counts=(256,), jobs=jobs)
