"""Machine configuration and the calibrated hardware profiles.

All cost constants of the simulated chip live in one dataclass so that a
profile is a single, inspectable object.  Two factory profiles are
provided:

* :func:`tile_gx` -- calibrated against the numbers the paper itself
  reports for the TILE-Gx8036 (see the derivation notes on each field).
* :func:`x86_like` -- a single-socket x86 flavour for the Section 5.5
  discussion: no hardware message passing for applications, cheaper
  *local* atomics (executed in the cache hierarchy, not at memory
  controllers), but costlier coherence misses.

Calibration anchors (from the paper's own measurements):

* Figure 4a: MP-SERVER ~12 total cycles/op with ~0 stalls; SHM-SERVER and
  CC-SYNCH ~45-55 cycles/op of which >50% stalled.
* Figure 4c: the "ideal" CS body costs ~6.5 cycles per loop iteration;
  the short-CS overhead gap between SHM and MP approaches is ~30 cycles.
* Figure 3a: peak counter throughput ~105-110 Mops/s (MP-SERVER),
  ~25 Mops/s (SHM-SERVER / CC-SYNCH) at 1.2 GHz.
* Figure 3c: HYBCOMB ~65 Mops/s at MAX_OPS=200 rising to ~88 Mops/s at
  MAX_OPS=5000 => combiner handover costs on the order of 10^3 cycles.
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict, dataclass, replace
from typing import Tuple

__all__ = ["MAX_MESH_DIM", "MachineConfig", "controller_nodes_for_mesh",
           "mesh_profile", "scc_like", "tile_gx", "x86_like"]

#: largest supported rectangular mesh edge (32x32 = 1024 cores).  The
#: simulator's data structures stay O(1) per event well past this, but
#: thread/process bookkeeping is still O(cores) per *run*, and the cap
#: keeps a typo'd config from silently requesting a million cores.
MAX_MESH_DIM = 32


@dataclass
class MachineConfig:
    """Every knob of the simulated chip.  Cycle costs unless noted."""

    name: str = "generic"

    # -- layout ----------------------------------------------------------
    #: mesh dimensions; cores are numbered row-major over the mesh
    mesh_width: int = 6
    mesh_height: int = 6
    #: clock frequency in MHz (1.2 GHz for the TILE-Gx8036)
    clock_mhz: int = 1200
    #: mesh nodes hosting memory controllers (atomics execute there)
    memory_controller_nodes: Tuple[int, ...] = (2, 33)

    # -- mesh latency model ----------------------------------------------
    noc_base: int = 4          #: fixed router/injection/ejection overhead
    noc_per_hop: int = 1       #: cycles per mesh hop
    noc_per_word: int = 1      #: extra cycles per additional payload word
    #: use the hop-by-hop contended link model instead of the analytic one
    contended_noc: bool = False
    link_occupancy: int = 1    #: per-word link occupancy in contended mode

    # -- cache / coherence -----------------------------------------------
    line_words: int = 8        #: 64-byte lines of 64-bit words
    c_hit: int = 2             #: L1 load/store hit
    #: base stall for a load miss serviced cache-to-cache (plus hop
    #: costs); calibrated so one un-overlapped RMR ~ 35 cycles at
    #: typical distances and the servicing thread's residual stall per
    #: short CS lands at the ~27-30 cycles of Figure 4a
    c_remote_base: int = 28
    #: base stall for a load miss serviced from memory/L3
    c_mem_base: int = 40
    #: fixed cost of a memory fence, on top of waiting for the store
    #: buffer to drain (simulated directly, see
    #: CoherentMemory.drain_store_buffer).  On the TILE-Gx an MF is a
    #: memory-network round trip confirming global visibility, which is
    #: why the paper finds that for the two-lock MS-Queue "the necessity
    #: of inserting fences far outweighs the benefit from fine-grained
    #: access".
    c_fence: int = 25
    #: directory occupancy per *read* transaction.  Reads are pipelined:
    #: the directory answers quickly and the data transfer streams, so
    #: concurrent readers of one line do not serialize for the full
    #: transfer latency (writes/ownership transfers still do).
    c_dir_read_occupancy: int = 4

    # -- atomics (FAA / SWAP / CAS) ----------------------------------------
    #: where read-modify-writes execute: "controller" (TILE-Gx: at the
    #: memory controllers, never in the local cache) or "cache" (x86-like:
    #: in the owning cache, cost ~ a hit once the line is owned)
    atomic_at: str = "controller"
    #: controller occupancy per atomic when the target line is the one
    #: the controller just operated on ("hot": the line is resident at
    #: the controller and RMWs stream through it).  Upper-bounded by the
    #: paper's own data: HYBCOMB sustains ~88 Mops/s of FAAs on a single
    #: word (Fig 3c), i.e. one same-word FAA per ~13.6 cycles.
    c_atomic_service: int = 4
    #: controller occupancy when the target line is *not* resident at
    #: the controller (it must be fetched/owned first).  This is the
    #: "false serialization" quantum of Section 5.4: a workload whose
    #: atomics spray across many lines (LCRQ) serializes at this cost
    #: even when the data sets are independent.
    c_atomic_service_cold: int = 90
    #: fixed pipeline overhead at the issuing core per atomic
    c_atomic_issue: int = 4
    #: extra one-way transit through the memory network per atomic (on
    #: top of mesh hops).  This is pipelined -- it adds round-trip
    #: *latency* on the issuing core but no controller occupancy -- and
    #: is what makes every Treiber CAS attempt a ~60-cycle round trip
    #: while leaving HYBCOMB's overlapped client FAAs free to stream.
    c_atomic_travel_extra: int = 20
    #: cache-resident atomic cost for atomic_at == "cache"
    c_atomic_local: int = 18

    # -- UDN (hardware message passing) ------------------------------------
    #: the machine has application-visible hardware message passing
    has_udn: bool = True
    #: the machine has *coherent* shared memory.  When False (an Intel
    #: SCC-like message-passing-only chip), memory is private per core:
    #: loads/stores/atomics are always local, and touching a cache line
    #: from a second core raises -- enforcing the private-memory
    #: discipline such chips require.  MP-SERVER runs unchanged on such
    #: a machine; HYBCOMB (which manages combiner identity in shared
    #: memory) cannot, which is exactly the paper's point about hybrid
    #: processors offering "the best of both worlds".
    has_coherent_shm: bool = True
    #: per-core hardware buffer capacity in 64-bit words (118 on TILE-Gx)
    udn_buffer_words: int = 118
    #: hardware demux queues per core buffer (4 on TILE-Gx)
    udn_demux_queues: int = 4
    udn_send_base: int = 2     #: injection cost paid by the sender (busy)
    udn_send_per_word: int = 1
    udn_recv_base: int = 1     #: cost to pop from a non-empty local queue
    udn_recv_per_word: int = 1
    udn_probe_cost: int = 1    #: is_queue_empty()

    # -- misc ---------------------------------------------------------------
    work_cycles_per_iteration: int = 1  #: cost of one empty-loop iteration
    #: enable expensive internal invariant checking (coherence SWMR,
    #: HYBCOMB CSqueue invariants); used by the test-suite
    debug_checks: bool = False

    # -------------------------------------------------------------------
    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        if self.mesh_width < 1 or self.mesh_height < 1:
            raise ValueError("mesh dimensions must be positive")
        if self.mesh_width > MAX_MESH_DIM or self.mesh_height > MAX_MESH_DIM:
            raise ValueError(
                f"mesh {self.mesh_width}x{self.mesh_height} exceeds the "
                f"supported maximum of {MAX_MESH_DIM}x{MAX_MESH_DIM} "
                f"({MAX_MESH_DIM * MAX_MESH_DIM} cores)"
            )
        n = self.mesh_width * self.mesh_height
        for node in self.memory_controller_nodes:
            if not (0 <= node < n):
                raise ValueError(f"memory controller node {node} outside mesh")
        if not self.memory_controller_nodes:
            raise ValueError("need at least one memory controller")
        if self.atomic_at not in ("controller", "cache"):
            raise ValueError("atomic_at must be 'controller' or 'cache'")
        if self.line_words < 1:
            raise ValueError("line_words must be >= 1")
        if self.udn_demux_queues < 1:
            raise ValueError("need at least one demux queue")

    @property
    def num_cores(self) -> int:
        return self.mesh_width * self.mesh_height

    def with_overrides(self, **kw) -> "MachineConfig":
        """A copy of this config with fields replaced (validated)."""
        return replace(self, **kw)

    def fingerprint(self) -> str:
        """Stable short hash over every knob of this profile.

        Tags benchmark baselines (``BENCH_*.json``) so a regression gate
        never compares numbers measured under different cost models.
        """
        blob = repr(sorted(asdict(self).items()))
        return hashlib.sha256(blob.encode()).hexdigest()[:12]

    def mops(self, ops: int, cycles: int) -> float:
        """Convert an (ops, cycles) measurement to Mops/s at this clock.

        ``clock_mhz`` cycles happen per microsecond * 1e6 == cycles/s, so
        Mops/s = ops * clock_mhz / cycles (MHz cancels the 1e6).
        """
        if cycles <= 0:
            return 0.0
        return ops * self.clock_mhz / cycles


def tile_gx(**overrides) -> MachineConfig:
    """The calibrated TILE-Gx8036 profile (36 cores, 6x6 mesh, 1.2 GHz)."""
    cfg = MachineConfig(name="tile-gx8036")
    if overrides:
        cfg = cfg.with_overrides(**overrides)
    return cfg


def controller_nodes_for_mesh(width: int, height: int) -> Tuple[int, ...]:
    """Memory-controller placement for a ``width x height`` mesh.

    Controllers come in top/bottom pairs spread along the mesh edges
    (one pair per 8 columns, minimum one), mirroring how the TILE-Gx
    hangs its DDR controllers off the mesh boundary.  At 6x6 this
    reproduces the calibrated :func:`tile_gx` placement exactly:
    top ``(2, 0)`` and bottom ``(3, 5)``, i.e. nodes ``(2, 33)``.
    """
    npairs = max(1, width // 8)
    top_xs = [((i + 1) * width) // (npairs + 2) for i in range(npairs)]
    top = [x for x in top_xs]
    bottom = [(height - 1) * width + (width - 1 - x) for x in top_xs]
    return tuple(top + bottom)


def mesh_profile(width: int, height: int, **overrides) -> MachineConfig:
    """A TILE-Gx-calibrated profile scaled to a ``width x height`` mesh.

    Cost constants are the :func:`tile_gx` calibration -- the point of
    the scaling experiments is to grow the *machine*, not to re-guess
    per-hop costs -- with memory controllers re-placed for the larger
    edge (:func:`controller_nodes_for_mesh`).  At 6x6 this *is*
    :func:`tile_gx`, bit-identical, so 36-core scaling points are
    directly comparable with every fig3-family figure.  Meshes are
    validated up to 32x32 (1024 cores).
    """
    if (width, height) == (6, 6):
        return tile_gx(**overrides)
    cfg = MachineConfig(
        name=f"tile-mesh-{width}x{height}",
        mesh_width=width,
        mesh_height=height,
        memory_controller_nodes=controller_nodes_for_mesh(width, height),
    )
    if overrides:
        cfg = cfg.with_overrides(**overrides)
    return cfg


def scc_like(**overrides) -> MachineConfig:
    """An Intel-SCC-like message-passing-only manycore (48 cores).

    Hardware message buffers but *no coherent shared memory*: each
    core's memory is private, so only delegation designs whose shared
    state is a single owner's (MP-SERVER) can run.  Used by the
    discussion experiments to show that HYBCOMB genuinely requires a
    hybrid machine.
    """
    cfg = MachineConfig(
        name="scc-like",
        mesh_width=8,
        mesh_height=6,
        clock_mhz=1000,
        memory_controller_nodes=(0, 47),
        has_coherent_shm=False,
        udn_buffer_words=1024,   # the SCC's per-core message-passing buffer
    )
    if overrides:
        cfg = cfg.with_overrides(**overrides)
    return cfg


def x86_like(**overrides) -> MachineConfig:
    """A single-socket x86 flavour for the Section 5.5 discussion.

    No application-visible hardware message passing; atomics execute in
    the cache hierarchy (fast once the line is owned, but they bounce the
    line under contention); coherence misses stall longer, matching the
    paper's observation of "proportionally larger" stall counts on the
    Xeon/Opteron.
    """
    cfg = MachineConfig(
        name="x86-like",
        mesh_width=4,
        mesh_height=4,
        clock_mhz=2400,
        memory_controller_nodes=(0, 15),
        has_udn=False,
        atomic_at="cache",
        # cache-to-cache transfers on big OOO x86 parts cost on the
        # order of 100+ cycles -- far more than the TILE-Gx's mesh -- so
        # the servicing thread shows "proportionally larger" stall
        # counts (Section 5.5) and lower absolute peak throughput
        # despite the 2x clock
        c_remote_base=110,
        c_mem_base=220,
        c_fence=6,
        c_atomic_local=25,
    )
    if overrides:
        cfg = cfg.with_overrides(**overrides)
    return cfg
