"""Machine assembly: configuration, cores, and the full simulated chip.

* :mod:`repro.machine.config` -- :class:`MachineConfig` with every cost
  constant, plus the calibrated :func:`~repro.machine.config.tile_gx` and
  :func:`~repro.machine.config.x86_like` profiles.
* :mod:`repro.machine.core` -- :class:`Core`: per-core cycle accounting
  (busy / stall-by-cause / wait).
* :mod:`repro.machine.machine` -- :class:`Machine`: wires the simulator,
  mesh, coherent memory, UDN fabric and cores together and spawns
  simulated threads (:class:`ThreadCtx` is their programming interface).
"""

from repro.machine.config import (
    MachineConfig,
    mesh_profile,
    scc_like,
    tile_gx,
    x86_like,
)
from repro.machine.core import Core
from repro.machine.machine import Machine, ThreadCtx

__all__ = ["Core", "Machine", "MachineConfig", "ThreadCtx", "mesh_profile",
           "scc_like", "tile_gx", "x86_like"]
