"""The assembled chip and the programming interface of simulated threads.

:class:`Machine` wires together the simulator, the mesh, the coherent
memory fabric, the atomics executor and (when the profile has one) the
UDN message fabric, and creates one :class:`~repro.machine.core.Core`
per mesh node.

:class:`ThreadCtx` is what algorithm code programs against -- the
"instruction set" of a simulated thread.  Every method is a generator to
be driven with ``yield from``:

========================  =====================================================
``work(n)``               retire ``n`` cycles of local computation
``load / store``          coherent shared-memory access
``faa / swap / cas``      atomic read-modify-write (Section 2 definitions)
``fence``                 memory fence (store-buffer drain)
``spin_until``            local spinning until a predicate holds
``send / receive``        hardware message passing (Section 2 definitions)
``is_queue_empty``        probe the local hardware queue
========================  =====================================================
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional, Sequence

from repro.machine.config import MachineConfig, tile_gx
from repro.machine.core import Core
from repro.mem.atomics import make_atomics
from repro.mem.cache import CoherentMemory
from repro.noc.router import ContendedMesh
from repro.noc.topology import Mesh
from repro.sim.engine import DeadlockError, Process, Simulator
from repro.udn.udn import UdnFabric

__all__ = ["Machine", "ThreadCtx"]


class Machine:
    """A simulated hybrid manycore chip."""

    def __init__(self, cfg: Optional[MachineConfig] = None, *, max_events: Optional[int] = None):
        self.cfg = cfg = cfg if cfg is not None else tile_gx()
        self.sim = Simulator(max_events=max_events)
        self.mesh = Mesh(
            cfg.mesh_width,
            cfg.mesh_height,
            base=cfg.noc_base,
            per_hop=cfg.noc_per_hop,
            per_word=cfg.noc_per_word,
        )
        self.cores: List[Core] = [Core(cid, cid) for cid in range(cfg.num_cores)]
        self.mem = CoherentMemory(self.sim, cfg, self.mesh, self.cores)
        self.mem.atomics = make_atomics(self.sim, cfg, self.mesh, self.mem)
        self.contended_mesh = (
            ContendedMesh(self.sim, self.mesh, link_occupancy=cfg.link_occupancy)
            if cfg.contended_noc
            else None
        )
        self.udn: Optional[UdnFabric] = (
            UdnFabric(self.sim, cfg, self.mesh, self.cores, contended_mesh=self.contended_mesh)
            if cfg.has_udn
            else None
        )
        self._threads: Dict[int, "ThreadCtx"] = {}
        self._procs_by_tid: Dict[int, List[Process]] = {}
        # join the active observability session, if one is open
        # (``python -m repro.experiments --trace`` / repro.obs.observed())
        import repro.obs as _obs
        self.obs = _obs.attach(self)

    def enable_observability(self, *, trace: bool = False,
                             trace_limit: int = 500_000, label=None, **options):
        """Turn on the event bus / perf counters for this machine.

        Returns the :class:`repro.obs.Observability` handle (idempotent:
        a second call returns the existing one).  ``trace=True`` also
        records a Chrome/Perfetto trace (see ``obs.export_chrome_trace``);
        further options (``timeseries``, ``sample_every``, ``slos``,
        ``flight``, ``incident_dir``, ...) enable the continuous
        telemetry layers of DESIGN.md §14.
        """
        if self.obs is None:
            import repro.obs as _obs
            self.obs = _obs.Observability(self, trace=trace,
                                          trace_limit=trace_limit, label=label,
                                          **options)
        return self.obs

    # -- thread management ----------------------------------------------
    def thread(self, tid: int, core_id: Optional[int] = None, demux: int = 0) -> "ThreadCtx":
        """Create (and UDN-register) thread ``tid`` pinned to ``core_id``.

        Default placement follows the paper's methodology: thread ``i``
        pinned to core ``i``.  Oversubscription is expressed by pinning
        several tids to one core with distinct ``demux`` queues.
        """
        if tid in self._threads:
            raise ValueError(f"thread {tid} already exists")
        core_id = tid if core_id is None else core_id
        if not (0 <= core_id < len(self.cores)):
            raise ValueError(
                f"core {core_id} out of range (machine has {len(self.cores)} cores)"
            )
        ctx = ThreadCtx(self, tid, self.cores[core_id])
        if self.udn is not None:
            self.udn.register(tid, core_id, demux)
        self._threads[tid] = ctx
        return ctx

    def spawn(self, ctx: "ThreadCtx", gen: Generator, name: Optional[str] = None,
              daemon: bool = False) -> Process:
        """Run ``gen`` as ``ctx``'s program.

        ``daemon`` marks service loops that may idle forever (exempt from
        deadlock detection).  The process is recorded under ``ctx.tid``
        so the fault injector can target it by thread id.
        """
        proc = self.sim.spawn(gen, name=name or f"t{ctx.tid}", daemon=daemon)
        self._procs_by_tid.setdefault(ctx.tid, []).append(proc)
        return proc

    def procs_of(self, tid: int) -> List[Process]:
        """All processes ever spawned for thread ``tid`` (fault targeting)."""
        return list(self._procs_by_tid.get(tid, ()))

    def run(self, until: Optional[int] = None) -> None:
        try:
            self.sim.run(until=until)
        except DeadlockError as e:
            # the flight recorder's deadlock trigger: capture the recent
            # event tail before the exception unwinds the run
            ob = self.obs
            if ob is not None and ob.flight is not None:
                ob.flight.record_incident("deadlock", detail=str(e))
            raise

    @property
    def now(self) -> int:
        return self.sim.now


class ThreadCtx:
    """The execution context of one simulated thread (see module docs)."""

    __slots__ = ("machine", "tid", "core", "mem", "udn", "sim")

    def __init__(self, machine: Machine, tid: int, core: Core):
        self.machine = machine
        self.tid = tid
        self.core = core
        self.mem = machine.mem
        self.udn = machine.udn
        self.sim = machine.sim

    # -- computation ------------------------------------------------------
    def work(self, cycles: int) -> Generator[Any, Any, None]:
        """Local computation: ``cycles`` busy cycles, no shared state."""
        cycles = int(cycles)  # accept numpy integers from rng-driven loops
        if cycles > 0:
            self.core.busy += cycles
            yield cycles

    def sched_point(self, tag: str) -> Generator[Any, Any, None]:
        """Annotated preemption point (schedule-exploration seam).

        Algorithms mark their racy windows -- CAS retry loops, combiner
        handoff, server poll -- with ``yield from ctx.sched_point(tag)``
        behind an ``if ctx.sim.policy is not None`` guard, so default
        runs create no generator and execute no extra cycles.  When a
        policy is installed it may answer with a delay, modelling the
        thread being preempted (descheduled) at exactly that step; the
        cycles are charged as ``wait`` (idle), not busy work.
        """
        policy = self.sim.policy
        if policy is None:
            return
        delay = int(policy.preempt(tag, self.tid, self.sim.now))
        if delay > 0:
            self.core.wait += delay
            yield delay

    # -- coherent shared memory -------------------------------------------
    def load(self, addr: int) -> Generator[Any, Any, int]:
        return (yield from self.mem.load(self.core, addr))

    def store(self, addr: int, value: int) -> Generator[Any, Any, None]:
        yield from self.mem.store(self.core, addr, value)

    def faa(self, addr: int, delta: int) -> Generator[Any, Any, int]:
        return (yield from self.mem.faa(self.core, addr, delta))

    def swap(self, addr: int, value: int) -> Generator[Any, Any, int]:
        return (yield from self.mem.swap(self.core, addr, value))

    def cas(self, addr: int, expected: int, new: int) -> Generator[Any, Any, bool]:
        return (yield from self.mem.cas(self.core, addr, expected, new))

    def fence(self) -> Generator[Any, Any, None]:
        yield from self.mem.fence(self.core)

    def prefetch(self, addr: int) -> Generator[Any, Any, None]:
        """Non-blocking software prefetch of ``addr``'s cache line."""
        yield from self.mem.prefetch(self.core, addr)

    def spin_until(self, addr: int, pred: Callable[[int], bool]) -> Generator[Any, Any, int]:
        return (yield from self.mem.spin_until(self.core, addr, pred))

    # -- hardware message passing -------------------------------------------
    def send(self, dst_tid: int, words: Sequence[int],
             timeout: Optional[int] = None) -> Generator[Any, Any, None]:
        yield from self._udn().send(self.core, dst_tid, words, timeout=timeout)

    def receive(self, k: int = 1,
                timeout: Optional[int] = None) -> Generator[Any, Any, List[int]]:
        return (yield from self._udn().receive(self.core, self.tid, k, timeout=timeout))

    def is_queue_empty(self) -> Generator[Any, Any, bool]:
        return (yield from self._udn().is_queue_empty(self.core, self.tid))

    def _udn(self) -> UdnFabric:
        if self.udn is None:
            raise RuntimeError(
                f"machine profile {self.machine.cfg.name!r} has no hardware message passing"
            )
        return self.udn

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ThreadCtx(tid={self.tid}, core={self.core.cid})"
