"""Per-core state and cycle accounting.

Every simulated hardware thread runs pinned to a :class:`Core` (the
evaluation methodology of the paper: thread *i* on core *i*, single
thread per core unless oversubscription is being studied).  The core
keeps the cycle breakdown that Figure 4a is made of:

* ``busy``   -- instructions retiring (CS bodies, protocol bookkeeping,
  local think-time loops, message marshalling);
* ``stall_mem`` / ``stall_atomic`` / ``stall_fence`` -- cycles the core
  is blocked on the coherence protocol, on a memory-controller atomic,
  or draining the store buffer;
* ``wait``   -- blocked on a *message* (empty receive queue) or spinning
  on an unchanged local line: the core is idle, not stalled, which is
  exactly why the message-passing approaches win.

Counters only ever increase; measurement windows subtract snapshots.
"""

from __future__ import annotations

from typing import Dict

__all__ = ["Core"]

#: counter names, in reporting order
COUNTERS = (
    "busy",
    "stall_mem",
    "stall_atomic",
    "stall_fence",
    "wait",
    "rmr",
    "atomic_ops",
    "cas_ops",
    "cas_failures",
    "faa_ops",
    "swap_ops",
    "loads",
    "stores",
    "msgs_sent",
    "msgs_received",
)


class Core:
    """One single-threaded core at mesh node ``node``."""

    __slots__ = ("cid", "node") + COUNTERS

    def __init__(self, cid: int, node: int):
        self.cid = cid
        self.node = node
        for name in COUNTERS:
            setattr(self, name, 0)

    # -- accounting helpers (callers also yield the cycles) ---------------
    def snapshot(self) -> Dict[str, int]:
        """Copy of all counters, for window-based measurements."""
        return {name: getattr(self, name) for name in COUNTERS}

    def delta(self, since: Dict[str, int]) -> Dict[str, int]:
        """Counter increments since a :meth:`snapshot`."""
        return {name: getattr(self, name) - since[name] for name in COUNTERS}

    @property
    def stall_total(self) -> int:
        return self.stall_mem + self.stall_atomic + self.stall_fence

    @property
    def cycles_total(self) -> int:
        """Cycles attributable to this core's work (excludes idle waiting)."""
        return self.busy + self.stall_total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Core(cid={self.cid}, node={self.node}, busy={self.busy}, stall={self.stall_total})"
