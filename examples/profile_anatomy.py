#!/usr/bin/env python3
"""Figure 4a from the perf counter file: stall attribution by counters.

The paper's Figure 4a breaks the servicing thread's per-operation time
into execution vs. coherence stalls, read from the TILE-Gx hardware
performance counters.  This example reproduces that methodology twice
for each approach (MP-SERVER and the fixed-combiner CC-SYNCH):

* the driver's own accounting (core cycle-register deltas over the
  measurement window) -- what ``run_counter_benchmark`` reports;
* the ``repro.obs`` perf counter file, rebuilt purely from bus events.

The two must agree exactly: every stall charged to a core register also
flows onto the event bus.  The same counters then give what the driver
alone cannot -- *which cache lines* the stalls concentrate on, and the
UDN delivery-latency distribution.

Run:  python examples/profile_anatomy.py
"""

import repro.obs as obs
from repro.analysis.render import render_latency_histogram, render_line_heatmap
from repro.workload.scenarios import run_counter_benchmark


def profile(approach: str, num_threads: int = 14) -> None:
    with obs.observed() as session:
        result = run_counter_benchmark(approach, num_threads,
                                       fixed_combiner=True)
    agg = session.aggregate()

    print(f"=== {approach}, T={num_threads} " + "=" * 30)
    print(f"throughput: {result.throughput_mops:.1f} Mops/s   "
          f"latency p50/p99: {result.p50_latency_cycles:.0f}/"
          f"{result.p99_latency_cycles:.0f} cyc")
    print("Figure 4a breakdown (cycles per op on the servicing core):")
    print(f"  driver accounting : total={result.service_cycles_per_op:7.1f}"
          f"  stalled={result.service_stall_per_op:6.1f}")
    print(f"  obs perf counters : total="
          f"{result.extra['obs.service_cycles_per_op']:7.1f}"
          f"  stalled={result.extra['obs.service_stall_per_op']:6.1f}")
    print()
    print(render_line_heatmap(agg.get("line", {}), top=8,
                              title=f"{approach}: cache-line contention"))
    if agg.get("udn_hist"):
        print(render_latency_histogram(
            agg["udn_hist"], title=f"{approach}: UDN delivery latency"))


def main() -> None:
    profile("mp-server")
    profile("CC-Synch")


if __name__ == "__main__":
    main()
