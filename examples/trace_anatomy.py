#!/usr/bin/env python3
"""Anatomy of one HYBCOMB operation: a traced timeline.

Puts a few threads under the tracing microscope while they hammer a
HYBCOMB counter, then renders an ASCII Gantt chart of a short window.
You can literally see the protocol: a client's FAA round trip (A), its
request send (s) and response wait (v) -- and on the thread that became
combiner, the dense receive/execute/respond pipeline with no stalls.

Run:  python examples/trace_anatomy.py
"""

from repro.core import HybComb, OpTable
from repro.machine import Machine, tile_gx
from repro.objects import LockedCounter
from repro.sim import Trace, TracedCtx, render_timeline


def main() -> None:
    machine = Machine(tile_gx())
    table = OpTable()
    prim = HybComb(machine, table, max_ops=200)
    counter = LockedCounter(prim)
    prim.start()

    trace = Trace()
    num_threads = 18

    def client(ctx):
        for _ in range(60):
            yield from counter.increment(ctx)
            yield from ctx.work(40)

    for t in range(num_threads):
        raw = machine.thread(t)
        ctx = TracedCtx(raw, trace)   # record everything this thread does
        machine.spawn(raw, client(ctx), name=f"client-{t}")
    machine.run()

    # pick a 3000-cycle window in the steady state
    t0 = 6000
    print(render_timeline(trace.window(t0, t0 + 3000), start=t0, end=t0 + 3000,
                          width=110))
    print(f"total: {counter.value()} increments in {machine.now} cycles "
          f"({counter.value() * 1200 / machine.now:.1f} Mops/s)")
    sessions = [ops for _t, ops in prim.combining_sessions]
    if sessions:
        print(f"combining sessions: {len(sessions)}, "
              f"mean {sum(sessions)/len(sessions):.1f} ops")


if __name__ == "__main__":
    main()
