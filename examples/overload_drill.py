#!/usr/bin/env python3
"""Overload drill: open-loop traffic past capacity, three admission policies.

The paper's benchmark loop is closed: every thread waits for its last
operation before issuing the next, so offered load can never exceed
service capacity.  This drill drives the MP-SERVER counter with
*open-loop* Poisson arrivals at ~1.6x its capacity and compares what
each admission policy does with the excess:

* ``unbounded`` -- the queue absorbs everything; depth climbs for the
  whole window and p99.9 sojourn time diverges (the upswing of the
  hockey stick);
* ``drop``      -- arrivals over the per-client bound are shed; depth
  and tail latency stay pinned and goodput holds at capacity;
* ``retry``     -- like drop, plus a deadline on every dispatch with
  capped exponential backoff behind a circuit breaker.  At this
  fan-in MP-SERVER's injection never backpressures, so the timed
  path behaves exactly like drop -- the timeout machinery is for
  wedged servers (see examples/fault_drill.py) and tiny UDN buffers.

Every run uses the same seed, so the three policies see the *identical*
arrival sequence; only the admission decision differs.

Run:  python examples/overload_drill.py
"""

from repro.core import MPServer, OpTable
from repro.machine import Machine
from repro.objects import LockedCounter
from repro.workload import (
    AdmissionSpec,
    ArrivalSpec,
    OpenLoopSpec,
    run_openloop_workload,
)

NUM_CLIENTS = 6
MEAN_GAP = 45.0          # per-source Poisson mean gap => ~1.6x capacity
SLO_CYCLES = 20_000


def admission(policy: str) -> AdmissionSpec:
    if policy == "unbounded":
        return AdmissionSpec(policy="unbounded", slo_cycles=SLO_CYCLES)
    if policy == "drop":
        return AdmissionSpec(policy="drop", capacity=16,
                             slo_cycles=SLO_CYCLES)
    return AdmissionSpec(policy="retry", capacity=16,
                         dispatch_timeout_cycles=2_000, max_retries=3,
                         breaker_threshold=4, slo_cycles=SLO_CYCLES)


def run_policy(policy: str):
    machine = Machine()
    prim = MPServer(machine, OpTable(), server_tid=0)
    counter = LockedCounter(prim)
    prim.start()
    ctxs = [machine.thread(t) for t in range(1, NUM_CLIENTS + 1)]
    spec = OpenLoopSpec(
        arrivals=ArrivalSpec(process="poisson", mean_gap_cycles=MEAN_GAP),
        admission=admission(policy),
        warmup_cycles=20_000, measure_cycles=120_000, seed=7,
    )
    result = run_openloop_workload(machine, ctxs, prim, counter._op_inc,
                                   spec, name=policy)
    # ground truth: every completed op incremented the counter exactly once
    assert counter.value() >= result.ops
    return result


def main() -> None:
    print(f"{NUM_CLIENTS} clients, Poisson arrivals, mean gap "
          f"{MEAN_GAP:.0f} cy/source (~1.6x MP-SERVER capacity), "
          f"SLO {SLO_CYCLES} cy\n")
    header = (f"{'policy':>10}  {'offered':>8}  {'goodput':>8}  {'shed':>6}  "
              f"{'p99':>8}  {'p99.9':>8}  {'depth@end':>9}  {'in-SLO':>6}")
    print(header)
    for policy in ("unbounded", "drop", "retry"):
        r = run_policy(policy)
        print(f"{policy:>10}  {r.offered_mops:>8.1f}  {r.goodput_mops:>8.1f}  "
              f"{r.shed_ops:>6d}  {r.p99_latency_cycles:>8.0f}  "
              f"{r.p999_latency_cycles:>8.0f}  "
              f"{r.extra['ol.qdepth_final']:>9.0f}  "
              f"{r.time_in_slo:>6.2f}")
    print("\nunbounded: the backlog at window end is the hockey stick --")
    print("depth (and so sojourn) grows for as long as the overload lasts.")
    print("drop/retry: identical goodput, bounded depth, SLO held; the")
    print("shed column is the price, paid explicitly instead of in latency.")


if __name__ == "__main__":
    main()
