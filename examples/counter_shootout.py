#!/usr/bin/env python3
"""Counter shootout across the whole concurrency spectrum (Figure 3a/3b).

Sweeps thread counts for all four approaches and renders the throughput
and latency curves as ASCII charts -- the same data as Figures 3a/3b of
the paper.

Run:  python examples/counter_shootout.py [--full]
"""

import sys

from repro.analysis.render import ascii_chart, markdown_table
from repro.experiments.fig3 import run_fig3a_3b


def main() -> None:
    quick = "--full" not in sys.argv
    fig_a, fig_b = run_fig3a_3b(quick=quick)

    print(ascii_chart(fig_a, lambda r: r.throughput_mops))
    print(markdown_table(fig_a, lambda r: r.throughput_mops))
    print()
    print(ascii_chart(fig_b, lambda r: r.mean_latency_cycles))
    print(markdown_table(fig_b, lambda r: r.mean_latency_cycles, fmt="{:.0f}"))

    mp = fig_a.series["mp-server"]
    shm = fig_a.series["shm-server"]
    hyb = fig_a.series["HybComb"]
    cc = fig_a.series["CC-Synch"]
    t = max(x for x, _ in mp.points)
    print(f"at {t} threads: mp-server / shm-server = "
          f"{mp.y_at(t, lambda r: r.throughput_mops) / shm.y_at(t, lambda r: r.throughput_mops):.1f}x"
          f"   (paper: up to 4.3x)")
    print(f"at {t} threads: HybComb / CC-Synch   = "
          f"{hyb.y_at(t, lambda r: r.throughput_mops) / cc.y_at(t, lambda r: r.throughput_mops):.1f}x"
          f"   (paper: ~2.5x)")


if __name__ == "__main__":
    main()
