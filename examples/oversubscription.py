#!/usr/bin/env python3
"""Oversubscription via the 4-way demultiplexed hardware queues (Sec. 6).

"On the TILE-Gx, oversubscribing is easily achieved thanks to the
possibility to multiplex the hardware queue of each core ... up to four
threads can share a core and still have their exclusive message queue."

This example pins 1..4 client threads per core on a fixed set of cores
and shows that MP-SERVER keeps serving at full speed: the dedicated
server, not the clients, is the bottleneck, so packing more client
threads per core does not hurt aggregate throughput -- and each thread
still owns a private hardware FIFO.

Run:  python examples/oversubscription.py
"""

from repro.analysis.render import markdown_table
from repro.experiments.discussion import run_oversubscription


def main() -> None:
    fig = run_oversubscription(quick=True, threads_per_core=4, num_cores=8)
    print("MP-SERVER counter, 8 client cores, 1..4 threads pinned per core\n")
    print(markdown_table(fig, lambda r: r.throughput_mops))
    s = fig.series["mp-server"]
    tput = lambda r: r.throughput_mops
    print(f"1 thread/core : {s.y_at(1, tput):6.1f} Mops/s  (8 client threads)")
    print(f"4 threads/core: {s.y_at(4, tput):6.1f} Mops/s  (32 client threads)")
    print("\nEvery thread keeps an exclusive hardware queue (demux 0-3), so")
    print("responses are never mixed up; the server stays saturated either way.")


if __name__ == "__main__":
    main()
