#!/usr/bin/env python3
"""Quickstart: a contended counter, four ways.

Builds the simulated TILE-Gx-like hybrid manycore, implements one
linearizable counter on top of each synchronization approach from the
paper, and prints throughput/latency at a single concurrency level.

Run:  python examples/quickstart.py [num_threads]
"""

import sys

from repro.workload import WorkloadSpec, run_counter_benchmark


def main() -> None:
    num_threads = int(sys.argv[1]) if len(sys.argv) > 1 else 20
    spec = WorkloadSpec()  # the paper's methodology: op + random think

    print(f"Concurrent counter, {num_threads} application threads, "
          f"simulated TILE-Gx @ 1.2 GHz\n")
    print(f"{'approach':>12s} {'Mops/s':>8s} {'latency':>9s} {'CAS/op':>7s} "
          f"{'fairness':>9s}")
    for approach in ("mp-server", "HybComb", "shm-server", "CC-Synch"):
        r = run_counter_benchmark(approach, num_threads, spec=spec)
        print(f"{approach:>12s} {r.throughput_mops:8.1f} "
              f"{r.mean_latency_cycles:7.0f} cy {r.cas_per_op:7.2f} "
              f"{r.fairness_ratio:9.2f}")

    print("\nThe two hardware-message-passing approaches (mp-server, HybComb)")
    print("win because their servicing thread reads requests from its local")
    print("hardware queue and responds asynchronously: no coherence stalls")
    print("remain on the critical path (see `python -m repro.experiments fig4a`).")


if __name__ == "__main__":
    main()
