#!/usr/bin/env python3
"""A parallelization-framework task queue (the paper's motivating use).

The introduction argues that "fast synchronization on simple concurrent
objects, such as queues, is key to the performance of parallelization
frameworks".  This example builds exactly that scenario: a pool of
worker threads pulls variable-sized tasks from one shared dispatch
queue, and we measure the *makespan* of the same task set with the
dispatch queue implemented on each synchronization approach.

Short tasks make the queue the bottleneck, so the queue implementation
dominates the makespan -- the message-passing approaches finish the
same work markedly earlier.

Run:  python examples/task_queue.py [num_workers] [num_tasks]
"""

import sys

import numpy as np

from repro.core import CCSynch, HybComb, MPServer, OpTable, ShmServer
from repro.machine import Machine, tile_gx
from repro.objects import EMPTY, OneLockMSQueue


def run_pool(approach: str, num_workers: int, task_sizes) -> dict:
    """Dispatch all tasks to the pool; returns makespan statistics."""
    machine = Machine(tile_gx())
    table = OpTable()
    if approach == "mp-server":
        prim = MPServer(machine, table, server_tid=0)
        tids = range(1, num_workers + 1)
    elif approach == "shm-server":
        prim = ShmServer(machine, table, server_tid=0,
                         client_tids=range(1, num_workers + 1))
        tids = range(1, num_workers + 1)
    elif approach == "HybComb":
        prim = HybComb(machine, table)
        tids = range(num_workers)
    else:
        prim = CCSynch(machine, table)
        tids = range(num_workers)

    queue = OneLockMSQueue(prim)
    prim.start()
    ctxs = [machine.thread(t) for t in tids]

    # the first worker feeds the task set (task value = size in cycles)
    # before the pool starts pulling
    seed_ctx = ctxs[0]

    done = {"count": 0, "work": 0}
    finished = machine.sim.event()

    def feeder():
        for size in task_sizes:
            yield from queue.enqueue(seed_ctx, int(size))

    def worker(ctx):
        while done["count"] < len(task_sizes):
            task = yield from queue.dequeue(ctx)
            if task == EMPTY:
                yield from ctx.work(20)  # brief poll backoff
                continue
            yield from ctx.work(task)   # execute the task
            done["count"] += 1
            done["work"] += task
            if done["count"] == len(task_sizes):
                finished.trigger(machine.now)

    feed = machine.spawn(ctxs[0], feeder(), name="feeder")

    def start_workers():
        yield from feed.join()
        for ctx in ctxs:
            machine.spawn(ctx, worker(ctx), name=f"worker-{ctx.tid}")

    machine.sim.spawn(start_workers(), name="starter")
    machine.run(until=200_000_000)
    if hasattr(prim, "stop"):
        prim.stop()
    assert finished.triggered, f"{approach}: pool did not finish"
    makespan = finished.value
    return {
        "makespan": makespan,
        "total_work": done["work"],
        "efficiency": done["work"] / (makespan * num_workers),
    }


def main() -> None:
    num_workers = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    num_tasks = int(sys.argv[2]) if len(sys.argv) > 2 else 2000
    rng = np.random.default_rng(7)
    # short tasks: 20..200 cycles, so dispatch overhead matters
    task_sizes = rng.integers(20, 200, size=num_tasks)

    print(f"{num_tasks} tasks (20-200 cycles each) on {num_workers} workers\n")
    print(f"{'queue on':>12s} {'makespan':>12s} {'pool efficiency':>16s}")
    base = None
    for approach in ("mp-server", "HybComb", "shm-server", "CC-Synch"):
        stats = run_pool(approach, num_workers, task_sizes)
        base = base or stats["makespan"]
        slowdown = stats["makespan"] / base
        print(f"{approach:>12s} {stats['makespan']:>9d} cy "
              f"{stats['efficiency']:>15.1%}   "
              f"{slowdown:.2f}x the mp-server makespan")
    print("\n(mp-server shines here: a dedicated dispatch core is exactly the")
    print(" delegation pattern.  HybComb prefers higher concurrency -- its")
    print(" combining snowball needs enough threads; see Figure 3a/4b.)")


if __name__ == "__main__":
    main()
