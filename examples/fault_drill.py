#!/usr/bin/env python3
"""Fault drill: crash the MP-SERVER primary mid-run, keep linearizability.

The paper proves MP-SERVER deadlock-free for *healthy* threads; this
drill shows what the robustness extension adds when the server thread
actually dies.  A handful of clients hammer a shared counter through the
fault-tolerant MP-SERVER mode (per-client sequence numbers, a
shared-memory dedup table, a hot-standby backup).  One third into the
run a seeded FaultPlan fail-stop-kills the primary:

* each client's pending request times out, backs off, and is retried
  against the backup with the *same* sequence number;
* requests the primary committed before dying are answered from the
  dedup table, not re-executed -- so the recorded concurrent history
  still passes the Wing & Gong linearizability checker;
* time-to-recovery, retries and suppressed duplicates are reported.

With ``--no-recovery`` the same crash hits a plain (paper-faithful)
MP-SERVER instead: every client blocks forever on its response and the
engine's deadlock detector names each of them -- the diagnosis the
robustness layer exists to prevent.

Run:  python examples/fault_drill.py [--no-recovery]
"""

import sys

from repro.analysis.linearizability import CounterSpec, History, check_linearizable
from repro.core import MPServer, OpTable
from repro.faults import CrashThread, FaultInjector, FaultPlan
from repro.machine import Machine
from repro.objects import LockedCounter
from repro.sim.engine import DeadlockError

NUM_CLIENTS = 4
OPS_PER_CLIENT = 12
CRASH_AT = 800


def main() -> None:
    recovery = "--no-recovery" not in sys.argv
    machine = Machine()
    if recovery:
        prim = MPServer(machine, OpTable(), server_tid=0, server_core=0,
                        backup_tid=1, backup_core=1, request_timeout=2_000)
    else:
        prim = MPServer(machine, OpTable(), server_tid=0, server_core=0)
    counter = LockedCounter(prim)
    prim.start()

    first_client_tid = 2
    ctxs = [machine.thread(t)
            for t in range(first_client_tid, first_client_tid + NUM_CLIENTS)]
    history = History()

    def client(ctx):
        for _ in range(OPS_PER_CLIENT):
            t0 = machine.now
            v = yield from counter.increment(ctx)
            history.record(ctx.tid, "inc", None, v, t0, machine.now)
            yield from ctx.work(100)

    for ctx in ctxs:
        machine.spawn(ctx, client(ctx), name=f"client-{ctx.tid}")

    plan = FaultPlan(seed=3, faults=(CrashThread(tid=0, at_cycle=CRASH_AT),))
    injector = FaultInjector(machine, plan).install()

    mode = "fault-tolerant (backup + timeouts)" if recovery else "plain (paper-faithful)"
    print(f"mode: {mode}; killing primary server at cycle {CRASH_AT}")
    try:
        machine.run()
    except DeadlockError as e:
        print("\nrun wedged -- the deadlock detector reports:\n")
        print(e)
        print(f"\n{len(history)} of {NUM_CLIENTS * OPS_PER_CLIENT} ops "
              "completed before the crash; re-run without --no-recovery.")
        return

    print(f"crashes injected: {injector.crashes}")
    print(f"all {len(history)} ops completed by cycle {machine.now}")

    ok = check_linearizable(history, CounterSpec())
    print(f"history linearizable: {ok}")
    stats = prim.recovery_stats
    print(f"time-to-recovery: {stats['time_to_recovery']} cycles")
    print(f"ops retried: {stats['ops_retried']}   "
          f"duplicates suppressed: {stats['duplicates_suppressed']}   "
          f"failovers: {stats['failovers']}")
    assert ok, "history must linearize despite the crash"
    assert len(history) == NUM_CLIENTS * OPS_PER_CLIENT


if __name__ == "__main__":
    main()
