#!/usr/bin/env python3
"""Build your own linearizable object: a bank of accounts with transfers.

MP-SERVER and HYBCOMB are *universal constructions*: any sequential data
structure becomes a linearizable concurrent object by registering its
operations in an OpTable.  This example implements a toy bank -- accounts
live in simulated shared memory, and `transfer` / `balance` run as
critical sections on the servicing thread, where the account array stays
cached.

The invariant checked at the end (total money is conserved across
thousands of concurrent random transfers) only holds if every transfer
executed atomically.

Run:  python examples/custom_object.py [num_threads] [num_accounts]
"""

import sys

import numpy as np

from repro.core import HybComb, OpTable
from repro.machine import Machine, ThreadCtx, tile_gx


class Bank:
    """A fixed set of accounts supporting atomic transfers.

    Argument packing: ``transfer`` receives (src, dst, amount) packed
    into one 64-bit word -- 16 bits each for the account ids, 32 bits for
    the amount -- mirroring how real delegation systems marshal small
    requests into message words.
    """

    INITIAL_BALANCE = 1_000

    def __init__(self, prim, num_accounts: int):
        self.prim = prim
        machine = prim.machine
        self.num_accounts = num_accounts
        self.base = machine.mem.alloc(num_accounts, isolated=True)
        for i in range(num_accounts):
            machine.mem.poke(self.base + i, self.INITIAL_BALANCE)
        self._op_transfer = prim.optable.register(self._transfer_body, "transfer")
        self._op_balance = prim.optable.register(self._balance_body, "balance")

    # -- CS bodies (run on the servicing thread) -------------------------
    def _transfer_body(self, ctx: ThreadCtx, packed: int):
        src = (packed >> 48) & 0xFFFF
        dst = (packed >> 32) & 0xFFFF
        amount = packed & 0xFFFFFFFF
        if src == dst:
            return 1  # self-transfer: trivially done (and must not mint money)
        b_src = yield from ctx.load(self.base + src)
        if b_src < amount:
            return 0  # insufficient funds: reject
        b_dst = yield from ctx.load(self.base + dst)
        yield from ctx.store(self.base + src, b_src - amount)
        yield from ctx.store(self.base + dst, b_dst + amount)
        return 1

    def _balance_body(self, ctx: ThreadCtx, account: int):
        v = yield from ctx.load(self.base + account)
        return v

    # -- client API --------------------------------------------------------
    def transfer(self, ctx: ThreadCtx, src: int, dst: int, amount: int):
        packed = (src << 48) | (dst << 32) | amount
        return (yield from self.prim.apply_op(ctx, self._op_transfer, packed))

    def balance(self, ctx: ThreadCtx, account: int):
        return (yield from self.prim.apply_op(ctx, self._op_balance, account))

    def total_money(self) -> int:
        mem = self.prim.machine.mem
        return sum(mem.peek(self.base + i) for i in range(self.num_accounts))


def main() -> None:
    num_threads = int(sys.argv[1]) if len(sys.argv) > 1 else 12
    num_accounts = int(sys.argv[2]) if len(sys.argv) > 2 else 64
    transfers_each = 500

    machine = Machine(tile_gx())
    table = OpTable()
    prim = HybComb(machine, table)   # no dedicated core needed
    bank = Bank(prim, num_accounts)
    prim.start()

    rng = np.random.default_rng(11)
    accepted = {"n": 0}

    def client(ctx, plan):
        for src, dst, amount in plan:
            ok = yield from bank.transfer(ctx, int(src), int(dst), int(amount))
            accepted["n"] += ok
            yield from ctx.work(int(amount) % 50)

    for t in range(num_threads):
        ctx = machine.thread(t)
        plan = zip(
            rng.integers(0, num_accounts, transfers_each),
            rng.integers(0, num_accounts, transfers_each),
            rng.integers(1, 200, transfers_each),
        )
        machine.spawn(ctx, client(ctx, list(plan)))

    expected_total = num_accounts * Bank.INITIAL_BALANCE
    machine.run()

    total = bank.total_money()
    ops = num_threads * transfers_each
    print(f"{ops} concurrent transfers across {num_accounts} accounts "
          f"on {num_threads} threads (HybComb)")
    print(f"accepted: {accepted['n']}  rejected: {ops - accepted['n']}")
    print(f"total money: {total} (expected {expected_total})")
    print(f"simulated time: {machine.now} cycles "
          f"({ops * 1200 / machine.now:.1f} M transfers/s)")
    assert total == expected_total, "money was created or destroyed!"
    print("conservation invariant holds: every transfer was atomic.")


if __name__ == "__main__":
    main()
