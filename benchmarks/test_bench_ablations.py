"""Ablation benchmarks for design choices called out in DESIGN.md.

* classic spin locks vs the delegation approaches -- the Section 3
  background: moving the data to the lock holder (locks) loses to
  moving the operation to the data (server/combiner) once contention is
  real.
* HYBCOMB's CAS registration vs the paper's suggested SWAP fallback
  ("a middle ground would be to use SWAP only if CAS fails several
  times") -- the fallback must not cost throughput at high concurrency.
* the elimination front-end (Section 5.4's orthogonal technique) on top
  of the coarse-lock stack under symmetric load.
"""


from benchmarks.conftest import run_once
from repro.core import (
    CCSynch,
    FlatCombining,
    HybComb,
    MCSLock,
    OpTable,
    TTASLock,
    TicketLock,
)
from repro.machine import Machine, tile_gx
from repro.objects import EliminationStack, LockedCounter, LockedStack
from repro.workload import WorkloadSpec, run_counter_benchmark, run_workload
from repro.workload.scenarios import build_approach


def _spec(quick):
    return WorkloadSpec.quick() if quick else WorkloadSpec.full()


def run_lock_counter(lock_cls, num_threads, spec):
    """A counter protected by a classic lock, CS on the calling thread."""
    machine = Machine(tile_gx())
    lock = lock_cls(machine)
    table = OpTable()
    addr = machine.mem.alloc(1, isolated=True)

    def body(ctx, arg):
        v = yield from ctx.load(addr)
        yield from ctx.store(addr, v + 1)
        return v

    opcode = table.register(body)
    ctxs = [machine.thread(t) for t in range(num_threads)]

    def make_op(ctx):
        def op(k):
            yield from lock.execute(ctx, table, opcode, 0)
        return op

    return run_workload(machine, ctxs, make_op, spec, name=lock_cls.name)


def test_locks_vs_delegation(benchmark, quick):
    """Delegation (even over pure shared memory) beats every classic
    lock under contention, because the CS data stays put."""
    spec = _spec(quick)
    T = 16

    def run():
        rows = {}
        for lock_cls in (TTASLock, TicketLock, MCSLock):
            rows[lock_cls.name] = run_lock_counter(lock_cls, T, spec)
        for approach in ("mp-server", "shm-server"):
            rows[approach] = run_counter_benchmark(approach, T, spec=spec)
        return rows

    rows = run_once(benchmark, run)
    print()
    for name, r in rows.items():
        print(f"  {name:>11s}: {r.throughput_mops:6.1f} Mops/s")
    best_lock = max(rows[n].throughput_mops for n in ("ttas", "ticket", "mcs"))
    assert rows["shm-server"].throughput_mops > best_lock
    assert rows["mp-server"].throughput_mops > 2 * best_lock


def test_combining_lineage(benchmark, quick):
    """Oyama -> flat combining -> CC-SYNCH -> HYBCOMB: each generation
    of the combining idea must beat its predecessor on this machine
    (we implement the last three; the counter at 16 threads is the
    classic comparison workload)."""
    spec = _spec(quick)
    T = 20

    def run():
        rows = {}
        for label, prim_cls in (("flat-combining", FlatCombining),
                                ("CC-Synch", CCSynch),
                                ("HybComb", HybComb)):
            machine = Machine(tile_gx())
            table = OpTable()
            prim = prim_cls(machine, table)
            counter = LockedCounter(prim)
            prim.start()
            ctxs = [machine.thread(t) for t in range(T)]

            def make_op(ctx):
                def op(k):
                    yield from counter.increment(ctx)
                return op

            rows[label] = run_workload(machine, ctxs, make_op, spec,
                                       name=label, prim=prim)
        return rows

    rows = run_once(benchmark, run)
    print()
    for name, r in rows.items():
        print(f"  {name:>15s}: {r.throughput_mops:6.1f} Mops/s")
    assert rows["CC-Synch"].throughput_mops > rows["flat-combining"].throughput_mops
    assert rows["HybComb"].throughput_mops > rows["CC-Synch"].throughput_mops


def test_hybcomb_swap_fallback_ablation(benchmark, quick):
    """The SWAP fallback must match plain CAS registration at high
    concurrency (where CAS is rare anyway) and must not break the
    combining snowball."""
    spec = _spec(quick)

    def run():
        results = {}
        for label, kw in (("cas-only", {}),
                          ("swap-after-2", dict(swap_after_cas_failures=2))):
            machine = Machine(tile_gx())
            table = OpTable()
            prim = HybComb(machine, table, max_ops=200, **kw)
            counter = LockedCounter(prim)
            prim.start()
            ctxs = [machine.thread(t) for t in range(28)]

            def make_op(ctx):
                def op(k):
                    yield from counter.increment(ctx)
                return op

            results[label] = (run_workload(machine, ctxs, make_op, spec,
                                           name=label, prim=prim), prim)
        return results

    results = run_once(benchmark, run)
    print()
    for label, (r, prim) in results.items():
        extra = f" swap-regs={prim.swap_registrations}" if prim.swap_registrations else ""
        print(f"  {label:>13s}: {r.throughput_mops:6.1f} Mops/s "
              f"comb={r.combining_rate or 0:.0f}{extra}")
    cas = results["cas-only"][0].throughput_mops
    swap = results["swap-after-2"][0].throughput_mops
    assert swap >= 0.7 * cas, "SWAP fallback costs too much throughput"


def test_elimination_stack_ablation(benchmark, quick):
    """Symmetric push/pop load: the elimination front-end absorbs part
    of the traffic and must not lose elements."""
    spec = _spec(quick)

    def run():
        machine = Machine(tile_gx())
        table = OpTable()
        prim, tids = build_approach("mp-server", machine, table, 20)
        backing = LockedStack(prim)
        stack = EliminationStack(machine, backing, num_slots=2, window_cycles=300)
        prim.start()
        ctxs = [machine.thread(t) for t in tids]

        def make_op(ctx):
            state = {"k": 0}

            def op(k):
                if state["k"] % 2 == 0:
                    yield from stack.push(ctx, (ctx.tid << 12) | (state["k"] & 0xFFF))
                else:
                    yield from stack.pop(ctx)
                state["k"] += 1
            return op

        r = run_workload(machine, ctxs, make_op, spec, name="elim", prim=prim)
        return r, stack

    r, stack = run_once(benchmark, run)
    print(f"\n  elimination rate: {stack.elimination_rate:.1%}  "
          f"throughput: {r.throughput_mops:.1f} Mops/s")
    assert stack.eliminated > 0
    assert r.throughput_mops > 0
