"""Microbenchmarks for the discrete-event engine hot path.

Unlike the ``test_bench_fig*`` modules these do not reproduce a paper
figure: they isolate the scheduler paths the hot-path rewrites
targeted, so engine-speed changes show up here undiluted by workload
logic.

* **spawn/resume churn** -- ``yield 0`` resumes, the dominant operation
  in every server/combining workload (~82% of scheduler pushes are
  delay-0); exercises the same-cycle fast lane.
* **event trigger fan-out** -- one producer repeatedly waking many
  waiters; exercises ``Event.trigger`` and bulk same-cycle resume.
* **small-delay timers** -- short non-zero delays; exercises the
  future-cycle path.  (A timer wheel for this path was prototyped and
  measured *slower* than heapq -- with ~82% of pushes at delay 0 the
  wheel's slot scan cost more than heapq's C-implemented push/pop ever
  did -- so this bench guards the path the wheel would have served.)
* **idle-gap jumps** -- long sparse delays; exercises engine v3's
  batched cycle advancement, which drains each distinct due cycle in
  one bucket pass and jumps the idle gap in O(1) instead of one heap
  pop per event.

Two frozen engine snapshots serve as same-host baselines:
``benchmarks/_legacy_engine.py`` (the pre-PR4 trampoline) and
``benchmarks/_pr4_engine.py`` (the PR4 fast-lane engine that engine v3
replaced).  The acceptance gates compare interleaved minima so host
noise hits every engine alike: v3 must hold >=2x PR4 on churn and >=5x
PR4 on the idle-gap workload, and >=2x legacy on churn (the original
PR4 gate, kept so a v3 regression cannot hide behind a stale baseline).

``test_bench_engine_record`` writes ``BENCH_engine.json`` for the
standard regression gate: the *gated* numbers (event counts, hence the
derived throughput figure) are simulated and deterministic; host engine
speed rides along in the informational host-perf fields only.
"""

import gc
import time

from benchmarks._legacy_engine import Simulator as LegacySimulator
from benchmarks._pr4_engine import Simulator as Pr4Simulator
from benchmarks.conftest import run_once, write_bench_json
from repro.sim.engine import Simulator


def churn(sim_cls, procs, iters, prime=False):
    """`procs` generators each doing `iters` zero-delay resumes."""
    sim = sim_cls()

    def worker():
        for _ in range(iters):
            yield 0

    for _ in range(procs):
        sim.spawn(worker())
    if not prime:
        sim.run()
    return sim


def fanout(sim_cls, waiters, rounds, prime=False):
    """One driver re-arming an event that `waiters` processes wait on."""
    sim = sim_cls()
    sim.detect_deadlock = False
    box = [None]
    stop = [False]

    def waiter():
        while not stop[0]:
            yield box[0]

    def driver():
        for i in range(rounds):
            ev = sim.event()
            old, box[0] = box[0], ev
            old.trigger(i)
            yield 0
        stop[0] = True
        box[0].trigger(-1)

    box[0] = sim.event()
    for _ in range(waiters):
        sim.spawn(waiter())
    sim.spawn(driver())
    if not prime:
        sim.run()
    return sim


def small_delays(sim_cls, procs, iters, prime=False):
    """Short non-zero delays: every resume goes through the future tier."""
    sim = sim_cls()

    def worker(d):
        for _ in range(iters):
            yield d

    for i in range(procs):
        sim.spawn(worker(1 + i % 8))
    if not prime:
        sim.run()
    return sim


def idle_gap(sim_cls, procs, iters, gap, prime=False):
    """Long sparse delays: one big batch of wakeups per distinct cycle.

    The shape engine v3's batched advancement targets: every process
    is due at the *same* future cycle, so each wave is one heap pop and
    one bucket drain for v3 but ``procs`` heap pushes and pops (through
    a ``procs``-deep heap) for the per-event baseline engines, with the
    idle gap re-crossed every time.
    """
    sim = sim_cls()

    def worker():
        for _ in range(iters):
            yield gap

    for _ in range(procs):
        sim.spawn(worker())
    if not prime:
        sim.run()
    return sim


def _interleaved_best(engines, fn, *args, reps=5):
    """Per-engine best-of-`reps` ``sim.run()`` wall time, interleaved.

    Times only the run -- process spawning is setup, and its cost is
    the same for every engine, so including it would only dilute the
    hot-loop ratio under test.  The GC is paused around each timed run
    (collected beforehand): a cycle collection landing mid-run is pure
    host noise.  One warm-up run per engine, then the engines alternate
    within each repetition so slow host drift (thermal, noisy
    neighbours) hits all of them roughly equally; the minimum is each
    engine's least-perturbed run.  Also asserts every engine processed
    the same number of events -- the workloads are deterministic, so a
    count mismatch means a scheduler semantics change, not noise.
    """
    counts = {name: fn(cls, *args).events_processed
              for name, cls in engines.items()}
    assert len(set(counts.values())) == 1, counts
    best = dict.fromkeys(engines, float("inf"))
    for _ in range(reps):
        for name, cls in engines.items():
            sim = fn(cls, *args, prime=True)
            gc.collect()
            gc.disable()
            try:
                t0 = time.perf_counter()
                sim.run()
                best[name] = min(best[name], time.perf_counter() - t0)
            finally:
                gc.enable()
    return best


def _gated_ratio(engines, fn, *args, gate, rounds=3):
    """Best-of-round speedup of the first engine over the second.

    Re-measures up to ``rounds`` times, stopping at the first round
    that clears ``gate``: a genuine regression (the algorithmic edge is
    gone) fails every round, while a noisy-neighbour burst on a shared
    CI runner can only depress one.  Returns the best ratio seen.
    """
    a, b = engines
    ratio = 0.0
    for _ in range(rounds):
        best = _interleaved_best(engines, fn, *args)
        ratio = max(ratio, best[b] / best[a])
        if ratio >= gate:
            break
    return ratio


def test_bench_spawn_resume_churn(benchmark):
    sim = run_once(benchmark, churn, Simulator, 20, 20_000)
    assert sim.events_processed >= 20 * 20_000


def test_bench_event_trigger_fanout(benchmark):
    sim = run_once(benchmark, fanout, Simulator, 50, 8_000)
    assert sim.events_processed >= 50 * 8_000


def test_bench_small_delay_timers(benchmark):
    sim = run_once(benchmark, small_delays, Simulator, 50, 10_000)
    assert sim.events_processed >= 50 * 10_000


def test_bench_idle_gap_jumps(benchmark):
    sim = run_once(benchmark, idle_gap, Simulator, 8_000, 40, 500)
    assert sim.events_processed >= 8_000 * 40


def test_engine_speedup_vs_legacy():
    """The live engine is >=2x the pre-PR4 trampoline on churn.

    Interleaved min-of-5 so host noise hits both engines alike; the
    minimum is the least-perturbed run of each.  Measured headroom at
    the time of writing (engine v3): ~8x.
    """
    best = _interleaved_best(
        {"new": Simulator, "legacy": LegacySimulator}, churn, 20, 20_000)
    ratio = best["legacy"] / best["new"]
    print(f"\nengine churn: new={best['new'] * 1000:.1f}ms "
          f"legacy={best['legacy'] * 1000:.1f}ms speedup={ratio:.2f}x")
    assert ratio >= 2.0, (
        f"hot-path speedup regressed: {ratio:.2f}x < 2.0x vs the frozen "
        "pre-optimization engine"
    )


def test_engine_v3_three_way_hot_paths():
    """Engine v3 vs the frozen PR4 engine vs the legacy trampoline.

    Three-way interleaved comparison across the hot-path workloads.
    The churn gate is the v3 acceptance criterion (>=2x PR4: batched
    lane sweep + table-driven dispatch, no algorithmic change to hide
    behind); fan-out and timers are printed for trend-watching -- their
    wins are real but smaller, and gating them would only add noise.
    """
    engines = {"v3": Simulator, "pr4": Pr4Simulator,
               "legacy": LegacySimulator}
    ratios = {}
    print()
    for label, fn, args in (("churn", churn, (400, 1_000)),
                            ("fanout", fanout, (50, 2_000)),
                            ("timers", small_delays, (50, 4_000))):
        best = _interleaved_best(engines, fn, *args)
        r_pr4 = best["pr4"] / best["v3"]
        r_leg = best["legacy"] / best["v3"]
        ratios[label] = r_pr4
        print(f"engine {label}: v3={best['v3'] * 1000:.1f}ms "
              f"pr4={best['pr4'] * 1000:.1f}ms "
              f"legacy={best['legacy'] * 1000:.1f}ms "
              f"v3/pr4={r_pr4:.2f}x v3/legacy={r_leg:.2f}x")
    if ratios["churn"] < 2.0:
        ratios["churn"] = _gated_ratio(
            {"v3": Simulator, "pr4": Pr4Simulator}, churn, 400, 1_000,
            gate=2.0, rounds=2)
    assert ratios["churn"] >= 2.0, (
        f"engine v3 churn speedup regressed: {ratios['churn']:.2f}x < 2.0x "
        "vs the frozen PR4 engine"
    )


def test_engine_v3_idle_gap_speedup_vs_pr4():
    """Batched cycle advancement: >=5x PR4 on the idle-gap workload.

    PR4 pays one heap push and one pop (through a ``procs``-deep heap)
    per event and re-checks the horizon between events; v3 pops one
    distinct cycle, drains its whole bucket in one pass and jumps the
    idle gap once.  Measured headroom at the time of writing: ~5.5-6x.
    """
    ratio = _gated_ratio({"v3": Simulator, "pr4": Pr4Simulator},
                         idle_gap, 8_000, 40, 500, gate=5.0)
    print(f"\nengine idle-gap speedup: {ratio:.2f}x")
    assert ratio >= 5.0, (
        f"idle-gap speedup regressed: {ratio:.2f}x < 5.0x vs the frozen "
        "PR4 engine"
    )


def test_bench_engine_record(benchmark):
    """Write BENCH_engine.json: deterministic event counts, gated.

    Each workload contributes one point whose ``ops`` is the simulated
    event count -- bit-identical run to run, so the standard >=10%
    regression gate degenerates to an equality check on scheduler
    semantics.  Host wall time and events/sec ride along as
    informational host-perf provenance (engine speed trends in CI logs).
    """
    from repro.analysis.series import FigureData
    from repro.machine.config import tile_gx
    from repro.workload.metrics import RunResult

    clock = tile_gx().clock_mhz
    workloads = (("churn", churn, (400, 1_000)),
                 ("fanout", fanout, (50, 2_000)),
                 ("timers", small_delays, (50, 4_000)),
                 ("idle-gap", idle_gap, (8_000, 40, 500)))

    def sweep():
        fig = FigureData(figure_id="engine",
                         title="engine hot-path microbenchmarks",
                         x_label="processes", y_label="events")
        for label, fn, args in workloads:
            fn(Simulator, *args)  # warm
            t0 = time.perf_counter()
            sim = fn(Simulator, *args)
            wall = time.perf_counter() - t0
            fig.add_point(label, args[0], RunResult(
                name=label, num_threads=args[0],
                # churn never advances the clock (all delay-0); clamp so
                # the derived throughput stays finite-and-deterministic
                window_cycles=max(sim.now, 1),
                ops=sim.events_processed, clock_mhz=clock,
                host_wall_seconds=wall,
                host_events_processed=sim.events_processed))
        return fig

    fig = run_once(benchmark, sweep)
    for label, _fn, _args in workloads:
        (_x, r), = fig.series[label].points
        print(f"engine record {label}: {r.host_events_processed} events "
              f"at {r.host_events_per_sec / 1e6:.2f}M ev/s")
    write_bench_json(fig, "BENCH_engine.json")
