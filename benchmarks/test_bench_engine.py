"""Microbenchmarks for the discrete-event engine hot path.

Unlike the ``test_bench_fig*`` modules these do not reproduce a paper
figure: they isolate the three scheduler paths the hot-path rewrite
targeted, so engine-speed changes show up here undiluted by workload
logic.

* **spawn/resume churn** -- ``yield 0`` resumes, the dominant operation
  in every server/combining workload (~82% of scheduler pushes are
  delay-0); exercises the same-cycle fast lane.
* **event trigger fan-out** -- one producer repeatedly waking many
  waiters; exercises ``Event.trigger`` and bulk same-cycle resume.
* **small-delay timers** -- short non-zero delays; exercises the heap
  path.  (A timer wheel for this path was prototyped and measured
  *slower* than heapq -- with ~82% of pushes at delay 0 the wheel's
  slot scan cost more than heapq's C-implemented push/pop ever did --
  so this bench guards the path the wheel would have served.)

``test_engine_speedup_vs_legacy`` is the PR's acceptance check: the
live engine must run the churn workload at least 2x faster than the
frozen pre-optimization snapshot in ``benchmarks/_legacy_engine.py``,
measured interleaved on the same host.
"""

import gc
import time

from benchmarks._legacy_engine import Simulator as LegacySimulator
from benchmarks.conftest import run_once
from repro.sim.engine import Simulator


def churn(sim_cls, procs, iters):
    """`procs` generators each doing `iters` zero-delay resumes."""
    sim = sim_cls()

    def worker():
        for _ in range(iters):
            yield 0

    for _ in range(procs):
        sim.spawn(worker())
    sim.run()
    return sim.events_processed


def fanout(sim_cls, waiters, rounds):
    """One driver re-arming an event that `waiters` processes wait on."""
    sim = sim_cls()
    sim.detect_deadlock = False
    box = [None]
    stop = [False]

    def waiter():
        while not stop[0]:
            yield box[0]

    def driver():
        for i in range(rounds):
            ev = sim.event()
            old, box[0] = box[0], ev
            old.trigger(i)
            yield 0
        stop[0] = True
        box[0].trigger(-1)

    box[0] = sim.event()
    for _ in range(waiters):
        sim.spawn(waiter())
    sim.spawn(driver())
    sim.run()
    return sim.events_processed


def small_delays(sim_cls, procs, iters):
    """Short non-zero delays: every resume goes through the heap."""
    sim = sim_cls()

    def worker(d):
        for _ in range(iters):
            yield d

    for i in range(procs):
        sim.spawn(worker(1 + i % 8))
    sim.run()
    return sim.events_processed


def test_bench_spawn_resume_churn(benchmark):
    n = run_once(benchmark, churn, Simulator, 20, 20_000)
    assert n >= 20 * 20_000


def test_bench_event_trigger_fanout(benchmark):
    n = run_once(benchmark, fanout, Simulator, 50, 8_000)
    assert n >= 50 * 8_000


def test_bench_small_delay_timers(benchmark):
    n = run_once(benchmark, small_delays, Simulator, 50, 10_000)
    assert n >= 50 * 10_000


def test_engine_speedup_vs_legacy():
    """The optimized engine is >=2x the pre-PR trampoline on churn.

    Interleaved min-of-5 so host noise hits both engines alike; the
    minimum is the least-perturbed run of each.  Measured headroom at
    the time of writing: ~4x.
    """
    args = (20, 20_000)
    churn(Simulator, *args)          # warm both code paths
    churn(LegacySimulator, *args)
    new_best = old_best = float("inf")
    for _ in range(5):
        gc.collect()
        t0 = time.perf_counter()
        churn(Simulator, *args)
        new_best = min(new_best, time.perf_counter() - t0)
        t0 = time.perf_counter()
        churn(LegacySimulator, *args)
        old_best = min(old_best, time.perf_counter() - t0)
    ratio = old_best / new_best
    print(f"\nengine churn: new={new_best * 1000:.1f}ms "
          f"legacy={old_best * 1000:.1f}ms speedup={ratio:.2f}x")
    assert ratio >= 2.0, (
        f"hot-path speedup regressed: {ratio:.2f}x < 2.0x vs the frozen "
        "pre-optimization engine"
    )
