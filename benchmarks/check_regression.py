"""Benchmark regression gate: compare a fresh BENCH_*.json to a baseline.

Usage::

    python benchmarks/check_regression.py CURRENT BASELINE [--threshold 0.10]

Exits non-zero when any (series, thread-count) point's throughput fell
more than ``threshold`` (default 10%) below the committed baseline, or
when the two records are not comparable (different machine profile
fingerprint or quick/full mode) -- an incomparable baseline must be
regenerated deliberately, not skipped silently.

The comparison itself is :func:`repro.analysis.diff.diff_records` --
the same engine behind ``python -m repro diff`` -- gated on
``throughput_mops``.  The simulator is deterministic (seeded workloads,
no wall-clock in the model), so identical code produces identical
numbers and the gate has no run-to-run noise to absorb; the threshold
only leaves headroom for intentional small cost-model adjustments.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

# CI invokes this script directly (no PYTHONPATH=src); make the package
# importable from the repo checkout it lives in
sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, "src"))

from repro.analysis.diff import diff_records, record_from_bench  # noqa: E402


def host_perf_summary(record: dict, tag: str) -> None:
    """Print the host-side cost of producing a record, if present.

    Informational only: engine speed trends (events/sec, total wall
    time) are worth eyeballing in CI logs, but the gate stays on the
    simulated numbers -- host timings vary with the runner.  Old
    records without host-perf fields just print nothing.
    """
    points = [p for pts in record.get("series", {}).values() for p in pts]
    wall = sum(p.get("wall_seconds", 0.0) for p in points)
    events = sum(p.get("events_processed", 0) for p in points)
    if not wall or not events:
        return
    jobs = record.get("jobs", 1)
    print(f"host-perf [{tag}]: {len(points)} points in {wall:.1f}s of "
          f"worker time ({events / wall / 1e6:.2f}M events/sec, "
          f"jobs={jobs}) -- informational, not gated")


def compare(current: dict, baseline: dict, threshold: float) -> int:
    host_perf_summary(baseline, "baseline")
    host_perf_summary(current, "current")
    if current.get("config_fingerprint") != baseline.get("config_fingerprint"):
        print("FAIL: machine-profile fingerprint changed "
              f"({baseline.get('config_fingerprint')} -> "
              f"{current.get('config_fingerprint')}); the cost model moved, "
              "regenerate the committed baseline to acknowledge the new "
              "numbers")
        return 1
    if current.get("full") != baseline.get("full"):
        print("FAIL: quick/full mode mismatch between current and baseline")
        return 1

    # baseline is A, current is B: a "regressed" verdict on a
    # higher-is-better gate metric means current fell below baseline
    diff = diff_records(record_from_bench(baseline, label="baseline"),
                        record_from_bench(current, label="current"),
                        threshold=threshold, gate=("throughput_mops",))
    if diff["gate_failures"]:
        print(f"FAIL: {len(diff['gate_failures'])} regression(s) past the "
              f"{threshold:.0%} gate:")
        for msg in diff["gate_failures"]:
            print("  " + msg)
        return 1
    checked = sum(len(s["points"]) for s in diff["series"])
    print(f"OK: {checked} benchmark points within {threshold:.0%} "
          "of the baseline")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="freshly generated BENCH_*.json")
    parser.add_argument("baseline", help="committed baseline BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="allowed fractional throughput drop "
                             "(default 0.10)")
    args = parser.parse_args(argv)
    with open(args.current) as f:
        current = json.load(f)
    with open(args.baseline) as f:
        baseline = json.load(f)
    return compare(current, baseline, args.threshold)


if __name__ == "__main__":
    sys.exit(main())
