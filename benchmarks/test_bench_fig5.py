"""Benchmark harness for Figure 5 (queues and stacks under balanced load).

Shape claims asserted:

* 5a -- the single-lock MS-Queues on MP-SERVER and HYBCOMB are the two
  best implementations (paper: up to 2x resp. 1.5x the third best);
  LCRQ and the two-lock MS-Queue level off sooner than the rest; the
  one-lock queue beats the two-lock queue on this memory model.
* 5b -- MP-SERVER and HYBCOMB stacks are again the best performers and
  nearly match the queue numbers; Treiber's stack trails the blocking
  implementations because its top-pointer CAS fails increasingly often.
"""

from benchmarks.conftest import print_figure, run_once, tput
from repro.experiments.fig5 import run_fig5a, run_fig5b


def test_fig5a_queues(benchmark, quick):
    fig = run_once(benchmark, run_fig5a, quick=quick)
    print_figure(fig)

    mp1 = fig.series["mp-server-1"]
    hyb1 = fig.series["HybComb-1"]
    mp2 = fig.series["mp-server-2"]
    lcrq = fig.series["LCRQ"]
    high = max(x for x in mp1.xs() if x in set(hyb1.xs()))

    # mp-server-1 and HybComb-1 are the top two at high concurrency
    top2 = {mp1.label, hyb1.label}
    ranked = sorted(fig.series.values(), key=lambda s: -(s.y_at(high, tput) or 0))
    assert {ranked[0].label, ranked[1].label} == top2, (
        f"top two at T={high}: {[s.label for s in ranked[:2]]}"
    )
    # factors over the third best (paper: 2x and 1.5x)
    third = ranked[2].y_at(high, tput)
    assert mp1.y_at(high, tput) / third >= 1.5
    assert hyb1.y_at(high, tput) / third >= 1.2
    # one lock beats two locks on the Tilera-like memory model
    for x in mp2.xs():
        y1 = mp1.y_at(x, tput)
        if y1 is not None:
            assert y1 > mp2.y_at(x, tput)
    # LCRQ levels off sooner than the lock-based leaders: its peak comes
    # early and it never approaches the leaders' high-T numbers
    assert lcrq.y_at(high, tput) < 0.6 * mp1.y_at(high, tput)
    assert lcrq.peak(tput) < mp1.peak(tput) * 0.6
    # queue throughput is below the raw counter numbers (heavier CS)
    assert mp1.peak(tput) <= 90


def test_fig5b_stacks(benchmark, quick):
    fig = run_once(benchmark, run_fig5b, quick=quick)
    print_figure(fig)

    mp = fig.series["mp-server"]
    hyb = fig.series["HybComb"]
    shm = fig.series["shm-server"]
    cc = fig.series["CC-Synch"]
    tr = fig.series["Treiber"]
    high = max(x for x in mp.xs() if x in set(hyb.xs()))

    # MP-SERVER and HYBCOMB stacks are the best performers
    ranked = sorted(fig.series.values(), key=lambda s: -(s.y_at(high, tput) or 0))
    assert {ranked[0].label, ranked[1].label} == {"mp-server", "HybComb"}
    # Treiber trails every blocking implementation at high concurrency
    for s in (mp, hyb, shm, cc):
        assert tr.y_at(high, tput) < s.y_at(high, tput), (
            f"Treiber not below {s.label} at T={high}"
        )


def test_fig5ab_stack_matches_queue(benchmark, quick):
    """Paper: the stack numbers 'nearly match those given in Figure 5a
    for the single-lock MS queue' -- both are linked lists behind one
    coarse CS."""
    fig_q = run_once(benchmark, run_fig5a, quick=quick,
                     impls=("mp-server-1", "shm-server-1"))
    fig_s = run_fig5b(quick=quick, impls=("mp-server", "shm-server"))
    for q_label, s_label in (("mp-server-1", "mp-server"),
                             ("shm-server-1", "shm-server")):
        q = fig_q.series[q_label]
        s = fig_s.series[s_label]
        common = sorted(set(q.xs()) & set(s.xs()))[-3:]
        for x in common:
            a, b = q.y_at(x, tput), s.y_at(x, tput)
            assert 0.8 <= a / b <= 1.25, (
                f"queue vs stack diverge at T={x}: {a:.1f} vs {b:.1f}"
            )
