"""Benchmark harness for the big-machine scaling figure (``scale``).

Runs the contended counter on TILE-Gx-calibrated meshes of 36, 64, 256
and 1024 cores and asserts the shapes the delegation story predicts at
scale, plus the sparse directory's footprint bounds -- the regression
the harness exists to catch is directory bookkeeping silently growing
with the core count instead of the hot working set.

* mp-server stays fastest and essentially *flat* to 1024 cores: one
  server core saturates regardless of how many clients queue behind the
  hardware FIFO, and its directory footprint is a single line.
* mcs-lock is slowest at every size: O(1) RMR local spinning still
  serializes the critical section over the NoC.
* Per-line bookkeeping stays bounded at 1024 cores (the sparse sharer
  set's job); a dense per-line bitmap or python set would grow with the
  mesh.
* Delegation footprints (mp-server, HybComb) do not grow with cores at
  all; the spin-local contenders (CC-Synch, mcs-lock) pay one line per
  participant but bounded bytes per line.

The emitted ``BENCH_scale.json`` carries deterministic ``footprint_*``
columns (model-level bytes, identical on every host) gated tightly by
CI, and ``scale_events_per_sec`` (host speed) gated loosely.
"""

from benchmarks.conftest import print_figure, run_once, tput, write_bench_json
from repro.experiments.scale import run_scale

#: extra per-point columns for BENCH_scale.json; the footprint_* names
#: have lower-is-better directions in repro.analysis.diff, so
#: ``repro diff --gate footprint_bytes`` catches directory growth
SCALE_METRICS = {
    "footprint_bytes": lambda r: r.extra["dir.nominal_bytes"],
    "footprint_peak_entries": lambda r: r.extra["dir.peak_entries"],
    "footprint_max_line_bytes": lambda r: r.extra["dir.max_line_bytes"],
    "scale_events_per_sec": lambda r: r.host_events_per_sec,
}


def test_scale_throughput_and_footprint(benchmark, quick):
    fig = run_once(benchmark, run_scale, quick=quick)
    print_figure(fig)
    write_bench_json(fig, "BENCH_scale.json", metrics=SCALE_METRICS)

    mp = fig.series["mp-server"]
    hyb = fig.series["HybComb"]
    cc = fig.series["CC-Synch"]
    mcs = fig.series["mcs-lock"]
    sizes = mp.xs()
    big = max(sizes)
    assert big == 1024, "scaling sweep must reach the 32x32 mesh"

    # mp-server is the fastest approach at every machine size
    for x in sizes:
        for other in (hyb, cc, mcs):
            y = other.y_at(x, tput)
            if y is not None:
                assert mp.y_at(x, tput) >= y * 0.95, (
                    f"mp-server not fastest at {x} cores"
                )
    # ...and flat: the server core is the bottleneck, not the mesh
    ys = mp.ys(tput)
    assert min(ys) >= 0.8 * max(ys), "mp-server throughput not flat vs cores"

    # the classic scalable lock is the floor at every size
    for x in sizes:
        for other in (mp, hyb, cc):
            y = other.y_at(x, tput)
            if y is not None:
                assert mcs.y_at(x, tput) <= y * 1.05, (
                    f"mcs-lock not slowest at {x} cores"
                )

    foot = lambda r: r.extra["dir.nominal_bytes"]
    maxline = lambda r: r.extra["dir.max_line_bytes"]

    # delegation footprint does not grow with the machine: the server's
    # working set is the object, not the clients
    for s in (mp, hyb):
        assert s.y_at(big, foot) <= 2.0 * s.y_at(min(sizes), foot), (
            f"{s.label}: delegation directory footprint grew with cores"
        )
    # mp-server's whole directory is a single line's worth of state
    assert mp.y_at(big, foot) <= 512

    # per-line bookkeeping is bounded at 1024 cores -- the sparse sharer
    # set must not cost O(cores) per line the way a dense set would
    for s in (mp, hyb, cc, mcs):
        assert s.y_at(big, maxline) <= 256, (
            f"{s.label}: per-line bytes grew with the mesh"
        )

    # spin-local contenders pay one line per participant (inherent to
    # local spinning) but no more: total bytes stay O(cores)
    for s in (cc, mcs):
        per_core = s.y_at(big, foot) / big
        assert per_core <= 256, (
            f"{s.label}: directory bytes per core {per_core:.0f} too high"
        )
