"""Obs-overhead benchmark: continuous telemetry must stay near-free.

Runs the same closed-loop counter workload four ways --

* ``off``       -- no observability at all (the figure-reproduction
  default);
* ``obs``       -- event bus + perf counters (``--perf``), no
  continuous telemetry;
* ``sampling``  -- the time-series sampler + spatial atlas on top
  (``timeseries=True, spatial=True``: the engine clock hook,
  ring-buffer series and the per-link/per-tile congestion counters);
* ``full``      -- the whole continuous stack ``python -m repro
  report`` enables: sampling + SLO monitoring + flight recorder +
  spatial atlas with hop-by-hop latency attribution

-- interleaved over :data:`REPS` repetitions, and asserts the
tentpole's overhead budget on host engine speed: the **marginal cost
of sampling** (``sampling`` vs ``obs``) stays within
:data:`OVERHEAD_BUDGET`.  The bus + counters themselves are the
pre-existing pay-when-enabled observability cost; the sampling layer
must not meaningfully add to it, or it could never be left on.

The gate takes the **minimum marginal across paired repetitions**: the
two modes of one repetition run back to back, so the cleanest pair is
the one least polluted by host noise (CI runners routinely jitter
10-30%, far above the real cost).  A genuine regression inflates every
pair and still trips the gate; a noisy neighbour inflates some pairs
and does not.  The ``full``-stack marginal is printed for
trend-watching but not gated -- its SLO/flight layers are event-driven
and priced separately (one C-level ring append + a dict probe per bus
event, see ``EventBus.keep_recent`` / ``subscribe_kinds``).

Simulated results must be bit-identical across all four modes (the
sampler is a pure observer driven by the engine clock hook) -- asserted
here on every repetition, not just spot-checked.  ``BENCH_obs.json``
carries the four modes' (identical, deterministic) simulated throughput
for the standard regression gate, plus host-perf provenance.
"""

import repro.obs as obs_mod
from benchmarks.conftest import print_figure, run_once, write_bench_json
from repro.analysis.series import FigureData
from repro.obs import SLO
from repro.workload import WorkloadSpec
from repro.workload.scenarios import run_counter_benchmark

#: application threads (the contended mid-curve regime)
THREADS = 10

#: interleaved repetitions; the gate keys on the cleanest pair
REPS = 3

#: allowed marginal engine-speed cost of time-series sampling vs plain
#: bus+counters observability
OVERHEAD_BUDGET = 0.05

_SLOS = (SLO("op-p99", kind="latency", target=100_000.0),)

_OPTIONS = {
    "off": None,
    "obs": {},
    "sampling": dict(timeseries=True, sample_every=512, spatial=True),
    "full": dict(timeseries=True, sample_every=512, slos=_SLOS, flight=True,
                 spatial=True, spatial_hops=True),
}

MODES = tuple(_OPTIONS)


def _run(spec, mode):
    options = _OPTIONS[mode]
    if options is None:
        return run_counter_benchmark("mp-server", THREADS, spec=spec)
    with obs_mod.observed(**options):
        return run_counter_benchmark("mp-server", THREADS, spec=spec)


def test_obs_overhead(benchmark, quick):
    spec = WorkloadSpec.quick() if quick else WorkloadSpec.full()

    def sweep():
        runs = {m: [] for m in MODES}
        # interleave the modes so slow host drift (thermal, noisy
        # neighbours) hits every mode roughly equally
        for _rep in range(REPS):
            for m in MODES:
                runs[m].append(_run(spec, m))
        return runs

    runs = run_once(benchmark, sweep)

    # determinism: observation (any amount of it) must not change one
    # simulated number
    ref = runs["off"][0]
    for m in MODES:
        for r in runs[m]:
            assert r.ops == ref.ops, (m, r.ops, ref.ops)
            assert r.per_thread_ops == ref.per_thread_ops, m
            assert r.mean_latency_cycles == ref.mean_latency_cycles, m
    # the sampled runs actually sampled, and the spatial atlas rode along
    for m in ("sampling", "full"):
        for r in runs[m]:
            assert r.telemetry is not None and r.telemetry["ticks"] > 0
            assert "core.busy" in r.telemetry["series"]
            spatial = r.telemetry["spatial"]
            assert spatial["messages"] > 0 and spatial["links"]
    for r in runs["obs"]:
        assert r.telemetry is None

    ev = {m: [r.host_events_per_sec for r in runs[m]] for m in MODES}
    assert all(v > 0 for vs in ev.values() for v in vs)
    paired = [1.0 - s / o for s, o in zip(ev["sampling"], ev["obs"])]
    marginal = min(paired)
    best = {m: max(vs) for m, vs in ev.items()}
    full_marginal = 1.0 - best["full"] / best["obs"]
    print(f"\nengine speed (best of {REPS}): "
          + "  ".join(f"{m}={best[m] / 1e6:.2f}M ev/s" for m in MODES))
    print(f"sampling overhead per pair: "
          + "  ".join(f"{p:+.1%}" for p in paired)
          + f"  -> gated min {marginal:+.1%}"
          f"  (full stack {full_marginal:+.1%}, not gated)")
    assert marginal <= OVERHEAD_BUDGET, (
        f"time-series sampling costs {marginal:.1%} engine speed over "
        f"plain bus+counters in every one of {REPS} paired runs "
        f"(budget {OVERHEAD_BUDGET:.0%})")

    fig = FigureData(
        "obs-overhead",
        "observability overhead: identical simulated results, host cost only",
        "threads", "throughput (Mops/s)",
    )
    for m in MODES:
        fig.add_point(m, THREADS,
                      max(runs[m], key=lambda r: r.host_events_per_sec))
    fig.note(f"sampling overhead {marginal:+.1%} vs obs "
             f"(cleanest of {REPS} pairs, budget {OVERHEAD_BUDGET:.0%}); "
             f"full telemetry stack {full_marginal:+.1%}")
    print_figure(fig)
    write_bench_json(fig, "BENCH_obs.json")
