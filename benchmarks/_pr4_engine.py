"""Frozen PR 4 engine (same-cycle fast lane), the second speedup yardstick.

This is a verbatim snapshot of ``repro.sim.engine`` from just before the
engine v3 rewrite (batched cycle advancement + bare-entry lane): the
PR 4 fast-lane trampoline with per-entry heap pops and 4-tuple lane
entries.  It exists so ``test_bench_engine.py`` can measure engine v3
against the exact code it replaced, in-process and on the same host --
alongside ``_legacy_engine.py``, the pre-PR 4 pure-heapq "before".  Do
not update it when the real engine changes -- it is the fixed PR 4
baseline.

Original module docstring follows.

---

Core discrete-event simulation engine.

The engine executes *processes* -- Python generators -- against a global
clock measured in integer cycles.  A process interacts with the simulator
exclusively through the values it yields:

``yield n`` (a non-negative ``int``)
    Suspend the process for ``n`` simulated cycles.

``yield event`` (an :class:`Event`)
    Suspend until the event is triggered; ``event.value`` is sent back
    into the generator as the result of the ``yield`` expression.

Composite behaviours (acquiring a resource, performing a cache-coherent
load, receiving a hardware message, ...) are written as generators and
invoked with ``yield from``, so the engine itself never needs to know
about them.  This two-effect design keeps the trampoline small and fast,
which matters: a single benchmark point simulates hundreds of thousands
of events in pure Python.

Determinism
-----------
Events scheduled for the same cycle fire in FIFO order of scheduling
(ties broken by a monotonically increasing sequence number), so a given
program produces the exact same execution every run.  All randomness in
higher layers flows from seeded generators.

Schedule exploration hooks into exactly one seam here: when
:attr:`Simulator.policy` is set (a ``repro.explore`` ``SchedulePolicy``),
each grabbed same-cycle chunk with more than one entry is offered to
``policy.reorder_lane(entries, now)`` before being swept.  Any
permutation the policy returns is a legal tie-break order (all entries
are due the same cycle; resume generations already make stale wakeups
drop safely in any order).  With ``policy`` left ``None`` -- the default
-- the sweep takes the exact pre-existing path, so default runs stay
bit-identical (see tests/test_parallel.py golden fingerprints).

Scheduler internals
-------------------
Entries are processed in strict ``(when, seq)`` order, but they are not
all kept in one heap.  Two tiers back the same contract (see DESIGN.md
§11 for the invariants and the equivalence argument):

* the **same-cycle fast lane**: a plain list holding entries due at the
  current cycle, swept in chunks (grab the list, hand the scheduler a
  fresh one, iterate the grabbed chunk).  Zero-delay resumes -- event
  triggers, ``yield 0``, store-buffer drains -- are the dominant
  scheduling class (>80% of pushes under the Figure 3 workloads), and
  the lane turns each one into a list append plus one loop iteration,
  with no heap traffic at all;
* the **heap**, for entries due at a future cycle (hardware latencies,
  timeouts, watchdogs).

Appends to the lane happen in sequence order and everything in a
grabbed chunk predates everything scheduled while sweeping it, so each
tier is internally FIFO; cross-tier ordering holds because a heap entry
due at the current cycle was necessarily scheduled before every lane
entry of that cycle, so the due heap entries are drained first.

Fault semantics
---------------
Every scheduled resumption carries the target process's *resume
generation* at scheduling time; stale entries (the process was since
interrupted, killed or resumed through another path) are dropped when
popped.  This makes :meth:`Process.interrupt` safe in every blocked
state -- waiting on an event, sleeping on an ``int`` delay, or already
scheduled to run -- and is what the fault-injection layer
(:mod:`repro.faults`) builds on.  :meth:`Process.kill` models a
fail-stop crash: the generator is abandoned *without* running its
``finally`` blocks (a crashed thread executes nothing).  When the event
heap drains while live non-daemon processes are still blocked,
:meth:`Simulator.run` raises :class:`DeadlockError` naming each blocked
process and what it waits on, instead of returning silently.
"""

from __future__ import annotations

import heapq
import operator
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "DeadlockError",
    "Event",
    "Interrupt",
    "Process",
    "Simulator",
    "WaitTimer",
]


class Interrupt(Exception):
    """Raised inside a process that is interrupted via :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class DeadlockError(RuntimeError):
    """The event heap drained while live processes were still blocked.

    ``blocked`` holds the deadlocked :class:`Process` objects (daemon
    processes -- e.g. server loops that legitimately idle forever -- are
    excluded).  The message names every blocked process and the event or
    condition it waits on, which turns a silent hang into a diagnosis.
    """

    def __init__(self, message: str, blocked: List["Process"]):
        super().__init__(message)
        self.blocked = blocked


class Event:
    """A one-shot condition that processes can wait on.

    An event starts un-triggered.  Any number of processes may wait on it
    (by yielding it); when :meth:`trigger` is called, all waiters are
    resumed at the current simulation time and receive ``value``.
    Processes that yield an already-triggered event resume immediately
    (zero-cycle delay) with the stored value.  ``label`` is a free-form
    description used by deadlock diagnostics.
    """

    __slots__ = ("sim", "triggered", "value", "label", "_waiters")

    def __init__(self, sim: "Simulator", label: Optional[str] = None):
        self.sim = sim
        self.triggered = False
        self.value: Any = None
        self.label = label
        self._waiters: List[Process] = []

    def trigger(self, value: Any = None) -> None:
        """Fire the event, waking every waiter at the current cycle."""
        if self.triggered:
            raise RuntimeError("Event triggered twice")
        self.triggered = True
        self.value = value
        waiters = self._waiters
        n = len(waiters)
        if n == 1:
            # single-waiter fast path: no list swap, one direct resume
            proc = waiters[0]
            waiters.clear()
            self.sim._schedule_resume(proc, value)
        elif n:
            self._waiters = []
            schedule = self.sim._schedule_resume
            for proc in waiters:
                schedule(proc, value)

    def describe(self) -> str:
        return self.label or "anonymous event"

    # -- engine internal -------------------------------------------------
    def _add_waiter(self, proc: "Process") -> None:
        if self.triggered:
            self.sim._schedule_resume(proc, self.value)
        else:
            self._waiters.append(proc)

    def _discard_waiter(self, proc: "Process") -> None:
        try:
            self._waiters.remove(proc)
        except ValueError:
            pass


class Process:
    """A running generator inside the simulator.

    Created via :meth:`Simulator.spawn`.  The generator's ``return``
    value (carried by ``StopIteration``) becomes :attr:`result` and is
    delivered to anything waiting on :meth:`join`.  An uncaught exception
    in a process aborts the whole simulation run -- silent failures would
    otherwise corrupt benchmark results.
    """

    __slots__ = (
        "sim",
        "gen",
        "_send",
        "name",
        "alive",
        "daemon",
        "killed",
        "result",
        "_done_event",
        "_waiting_on",
        "_resume_gen",
        "_shield",
        "_pending_kill",
        "_suspended_until",
        "_slow",
    )

    def __init__(self, sim: "Simulator", gen: Generator, name: str = "?",
                 daemon: bool = False):
        self.sim = sim
        self.gen = gen
        self._send = gen.send  # bound once: saves a lookup per resume
        self.name = name
        self.alive = True
        #: daemon processes (server loops etc.) may legitimately remain
        #: blocked forever; they are exempt from deadlock detection
        self.daemon = daemon
        #: set when the process was removed via :meth:`kill` (crash model)
        self.killed = False
        self.result: Any = None
        self._done_event = Event(sim)
        self._waiting_on: Optional[Event] = None
        #: resume generation: every scheduled wakeup carries the value at
        #: scheduling time and is dropped if the process was resumed or
        #: interrupted through another path in between
        self._resume_gen = 0
        #: depth of crash-shielded (atomic-commit) regions
        self._shield = 0
        self._pending_kill: Any = None
        self._suspended_until = 0
        #: one-flag summary of "needs the slow resume path" (suspended
        #: or kill pending); lets the run loop test a single attribute
        self._slow = False

    def join(self) -> Generator[Any, Any, Any]:
        """``yield from proc.join()`` waits for termination, returns its result."""
        if self.alive:
            yield self._done_event
        return self.result

    def blocked_event(self) -> Optional[Event]:
        """The event this process is genuinely parked on, else ``None``.

        ``None`` also when a wakeup is already scheduled (the awaited
        event has triggered but the process has not stepped yet) -- used
        by :class:`WaitTimer` so a timeout racing a same-cycle arrival
        deterministically loses to the arrival.
        """
        ev = self._waiting_on
        if ev is not None and self in ev._waiters:
            return ev
        return None

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current cycle.

        Safe in every blocked state: waiting on an event, sleeping on an
        ``int`` delay, or already scheduled to resume.  Any previously
        scheduled wakeup is invalidated (resume-generation guard), so the
        process is stepped exactly once -- with the interrupt.
        """
        if not self.alive:
            return
        if self._waiting_on is not None:
            self._waiting_on._discard_waiter(self)
            self._waiting_on = None
        self._resume_gen += 1  # cancel any pending resume (e.g. an int sleep)
        obs = self.sim.obs
        if obs is not None:
            obs.emit("proc.interrupt", name=self.name)
        self.sim._schedule_throw(self, Interrupt(cause))

    def kill(self, cause: Any = None) -> None:
        """Fail-stop crash: the process stops executing, immediately.

        Unlike :meth:`interrupt`, no exception is delivered and no
        ``finally`` blocks run -- a crashed hardware thread executes
        nothing.  Anything blocked on :meth:`join` is released with a
        ``None`` result and :attr:`killed` is set.  Inside a shielded
        region (:meth:`shield_begin`) the crash is deferred to the end of
        the region, modelling an atomic commit.
        """
        if not self.alive:
            return
        if self._shield > 0:
            self._pending_kill = cause if cause is not None else True
            self._slow = True  # land the deferred crash at the next resume
            return
        self._do_kill(cause)

    # -- crash shields ---------------------------------------------------
    def shield_begin(self) -> None:
        """Enter a region in which :meth:`kill` is deferred (atomic commit)."""
        self._shield += 1

    def shield_end(self) -> None:
        """Leave a shielded region; a deferred kill lands at the next resume."""
        if self._shield <= 0:
            raise RuntimeError("shield_end without matching shield_begin")
        self._shield -= 1

    def suspend_until(self, when: int) -> None:
        """Defer any resumption of this process until cycle ``when``.

        Models preemption / a descheduled hardware context: pending
        wakeups (message arrivals, sleep expiries) are delivered only
        once the process is scheduled again.  Safe in every state.
        """
        if when > self._suspended_until:
            self._suspended_until = when
            self._slow = True  # route wakeups through the slow resume path

    # -- engine internal -------------------------------------------------
    def _do_kill(self, cause: Any) -> None:
        if self._waiting_on is not None:
            self._waiting_on._discard_waiter(self)
            self._waiting_on = None
        self._resume_gen += 1  # invalidate anything still in the heap
        self.alive = False
        self.killed = True
        self._pending_kill = None
        self.result = None
        # Keep the generator referenced so CPython never runs its
        # ``finally`` blocks at GC time mid-simulation: a crashed thread
        # must execute nothing, not even cleanup.
        self.sim._corpses.append(self.gen)
        self.sim._forget(self)
        obs = self.sim.obs
        if obs is not None:
            obs.emit("proc.kill", name=self.name)
        self._done_event.trigger(None)

    def _finish(self, result: Any) -> None:
        self._resume_gen += 1  # any queued wakeup is now stale (the run
        self.alive = False     # loop tests only the generation, not alive)
        self.result = result
        self.sim._forget(self)
        obs = self.sim.obs
        if obs is not None:
            obs.emit("proc.exit", name=self.name)
        self._done_event.trigger(result)

    def describe_wait(self) -> str:
        """Human-readable description of what this process waits on."""
        ev = self.blocked_event()
        if ev is not None:
            return ev.describe()
        if self._waiting_on is not None:
            return f"{self._waiting_on.describe()} (wakeup pending)"
        if self._suspended_until > self.sim.now:
            return f"suspended until cycle {self._suspended_until}"
        return "no pending wakeup"


class WaitTimer:
    """A one-shot watchdog used to build timed blocking operations.

    Arms at construction: at ``deadline`` the timer interrupts ``proc``
    with *itself* as the :class:`Interrupt` cause -- but only if the
    process is still genuinely parked on an event *after every wakeup
    already queued for the deadline cycle has landed*.  An arrival
    scheduled for the same cycle therefore wins the race against the
    timeout, deterministically, regardless of which callback entered the
    heap first.  Callers must :meth:`disarm` when the guarded operation
    completes (typically in a ``finally``, before yielding again).
    """

    __slots__ = ("sim", "proc", "armed", "_deferred", "_gen_at_check")

    def __init__(self, sim: "Simulator", proc: Process, deadline: int):
        self.sim = sim
        self.proc = proc
        self.armed = True
        #: True once the deadline-cycle re-check has been queued
        self._deferred = False
        #: proc resume generation at the last not-parked observation
        self._gen_at_check: Optional[int] = None
        sim.call_at(deadline, self._fire)

    def _fire(self) -> None:
        if not self.armed or not self.proc.alive:
            return
        if self.proc.blocked_event() is None:
            # Not parked: a wakeup (e.g. a same-cycle message arrival) is
            # in flight.  Re-check after the process has stepped; if it
            # has not stepped since the last look, its wakeup sits at a
            # later cycle and the timeout simply loses.
            if self.proc._resume_gen != self._gen_at_check:
                self._gen_at_check = self.proc._resume_gen
                self.sim.call_at(self.sim.now, self._fire)
            return
        if self._deferred:
            self.proc.interrupt(self)
        else:
            # Parked -- but a delivery queued earlier this same cycle may
            # still be behind us in the heap.  Look again after it.
            self._deferred = True
            self.sim.call_at(self.sim.now, self._fire)

    def disarm(self) -> None:
        self.armed = False


class Simulator:
    """The event loop.

    Typical use::

        sim = Simulator()
        proc = sim.spawn(my_generator())
        sim.run()
        print(sim.now, proc.result)
    """

    __slots__ = ("now", "_heap", "_fast", "_seq",
                 "_nevents", "max_events",
                 "detect_deadlock", "_processes", "_corpses", "_current", "obs",
                 "policy", "_sample_due", "_sample_every", "_sample_fn")

    def __init__(self, max_events: Optional[int] = None):
        self.now: int = 0
        #: observability event bus (:mod:`repro.obs`); ``None`` = off.
        #: Publishers guard every emit with ``if sim.obs is not None``,
        #: so a run without observability pays only that comparison.
        self.obs = None
        #: schedule-exploration policy (:mod:`repro.explore`); ``None`` =
        #: off.  When set, same-cycle lane chunks are offered to
        #: ``policy.reorder_lane`` and higher layers consult
        #: ``policy.udn_delay`` / ``policy.preempt`` at their own seams.
        #: Must be installed before :meth:`run` (it is read once per call).
        self.policy = None
        self._heap: List[Any] = []
        #: same-cycle fast lane: entries due at cycle ``now``, in
        #: sequence order (consumed in place by index inside :meth:`run`)
        self._fast: List[Any] = []
        self._seq: int = 0
        self._nevents: int = 0
        #: hard safety cap on processed events (None = unlimited)
        self.max_events = max_events
        #: raise :class:`DeadlockError` when the heap drains with live
        #: non-daemon processes still blocked (set False to restore the
        #: old silent-return behaviour)
        self.detect_deadlock = True
        self._processes: set = set()
        self._corpses: List[Generator] = []
        self._current: Optional[Process] = None
        #: continuous-telemetry sample hook (:mod:`repro.obs.timeseries`).
        #: ``_sample_due`` is an int sentinel compared against the clock
        #: wherever it advances; with no hook installed it is ``_NO_CAP``
        #: and the whole feature costs one integer compare per advance.
        self._sample_due: int = _NO_CAP
        self._sample_every: int = 0
        self._sample_fn: Optional[Callable[[int], None]] = None

    # -- public API ------------------------------------------------------
    @property
    def events_processed(self) -> int:
        return self._nevents

    @property
    def current(self) -> Optional[Process]:
        """The process being stepped right now (None outside a step)."""
        return self._current

    def live_processes(self) -> List["Process"]:
        """All processes that have not yet finished (diagnostics)."""
        return sorted(self._processes, key=lambda p: p.name)

    def spawn(self, gen: Generator, name: str = "?", daemon: bool = False) -> Process:
        """Register ``gen`` as a process; it starts at the current cycle.

        ``daemon`` marks processes (server loops, fault controllers) that
        may legitimately stay blocked forever: they are exempt from
        deadlock detection.
        """
        proc = Process(self, gen, name, daemon=daemon)
        self._processes.add(proc)
        if self.obs is not None:
            self.obs.emit("proc.spawn", name=name)
        self._schedule_resume(proc, None)
        return proc

    def event(self, label: Optional[str] = None) -> Event:
        """Create a fresh (un-triggered) event bound to this simulator."""
        return Event(self, label)

    def call_at(self, when: int, fn: Callable[[], None]) -> None:
        """Run plain callback ``fn`` at absolute cycle ``when`` (>= now)."""
        if when < self.now:
            raise ValueError(f"cannot schedule in the past ({when} < {self.now})")
        self._push(when, fn, None, _CALLBACK, 0)

    def call_after(self, delay: int, fn: Callable[[], None]) -> None:
        """Run plain callback ``fn`` after ``delay`` cycles."""
        self.call_at(self.now + delay, fn)

    def set_sample_hook(self, every: int, fn: Callable[[int], None]) -> None:
        """Call ``fn(cycle)`` whenever the clock crosses an ``every``-cycle
        boundary (continuous telemetry; see :mod:`repro.obs.timeseries`).

        The hook runs *between* events -- after everything before the
        boundary has executed, before anything at or past it does -- so
        it may only observe: it must not touch simulated state or
        schedule events.  Idle gaps fire the hook once (at the first
        clock advance past the boundary), not once per skipped period.
        """
        if every < 1:
            raise ValueError(f"sample interval must be >= 1 cycle, got {every}")
        self._sample_every = every
        self._sample_fn = fn
        self._sample_due = self.now - (self.now % every) + every

    def clear_sample_hook(self) -> None:
        """Remove the sample hook (restores the off-cost: one compare)."""
        self._sample_every = 0
        self._sample_fn = None
        self._sample_due = _NO_CAP

    def _sample_tick(self, now: int) -> None:
        # out of line from run(): only entered when a sample is due
        fn = self._sample_fn
        if fn is None:  # pragma: no cover - defensive (sentinel says due)
            self._sample_due = _NO_CAP
            return
        fn(now)
        every = self._sample_every
        due = self._sample_due + every
        if due <= now:
            # the clock jumped an idle gap: collapse it to this one sample
            due = now - (now % every) + every
        self._sample_due = due

    def run(self, until: Optional[int] = None) -> None:
        """Process events until none are pending or ``now`` passes ``until``.

        With ``until`` given, the clock is left exactly at ``until`` when
        the horizon is hit (events at later cycles stay queued and can be
        processed by a subsequent :meth:`run` call).

        Raises :class:`DeadlockError` if the pending-event set drains
        while live non-daemon processes remain blocked (see
        ``detect_deadlock``).
        """
        heap = self._heap
        fast = self._fast
        fappend = fast.append
        pop = heapq.heappop
        push = heapq.heappush
        INT = int
        SEND, CALLBACK = _SEND, _CALLBACK
        max_events = self.max_events if self.max_events is not None else _NO_CAP
        policy = self.policy  # read once per run() call (None = off)
        horizon = until if until is not None else _NEVER
        if horizon < self.now:
            # pathological but defined: a horizon in the past processes
            # nothing and (with work pending) parks the clock at it
            if fast or heap:
                self.now = until
                return
        # The lane is consumed in *chunks*: grab the current list, hand
        # the simulator a fresh one, and sweep the grabbed chunk while
        # entries scheduled during the sweep accumulate in the new list.
        # FIFO is preserved (everything in the chunk was scheduled before
        # anything appended while sweeping it) and consumed entry tuples
        # are freed as soon as the chunk is dropped, so a long same-cycle
        # burst doesn't pin an ever-growing list of dead entries.  Lane
        # entries are ``(proc, payload, kind, gen)`` -- their due cycle is
        # implicitly ``self.now``, and they carry no sequence number
        # because lane position itself is the FIFO order.  ``nevents``
        # shadows ``self._nevents`` inside the loop.
        chunk = iter(())
        nevents = self._nevents
        now = self.now
        # Heap entries due at the *current* cycle were all scheduled
        # before every lane entry of the cycle (smaller seq), and no heap
        # push made while a cycle is being processed can be due within it
        # (delays of 0 go to the lane), so each cycle is processed as:
        # drain the due heap entries first, then sweep the lane.
        heap_due = bool(heap) and heap[0][0] == now
        try:
            while True:
                if not heap_due:
                    if not fast:
                        # ---- lane empty: advance the clock via the heap --
                        if not heap:
                            break
                        when = heap[0][0]
                        if when > horizon:
                            self.now = until
                            if until >= self._sample_due:
                                self._sample_tick(until)
                            return
                    else:
                        # ---- lane sweep: the hot path --------------------
                        grabbed = fast
                        self._fast = fast = []
                        fappend = fast.append
                        if policy is not None and len(grabbed) > 1:
                            # exploration seam: the policy may permute the
                            # same-cycle tie-break order (all entries are
                            # due at ``now``; stale ones still drop via
                            # the generation guard below)
                            grabbed = policy.reorder_lane(grabbed, now)
                        chunk = iter(grabbed)
                        for proc, payload, kind, gen in chunk:
                            if kind == SEND:
                                # death (finish/kill) bumps the generation
                                # too, so one compare covers stale AND
                                # no-longer-alive
                                if gen != proc._resume_gen:
                                    continue  # stale wakeup: drop
                                nevents += 1
                                if nevents > max_events:
                                    raise RuntimeError(
                                        "simulation exceeded "
                                        f"{self.max_events} events")
                                if proc._slow:
                                    # suspended or kill pending: out-of-line
                                    if self._resume_slow(proc, payload,
                                                         SEND, gen):
                                        continue
                                # the generation was equal to ``gen``: bump
                                # it without re-reading the attribute
                                proc._resume_gen = rgen = gen + 1
                                proc._waiting_on = None
                                self._current = proc
                                try:
                                    effect = proc._send(payload)
                                except StopIteration as stop:
                                    proc._finish(stop.value)
                                    continue
                                finally:
                                    self._current = None
                                # Dispatch on the yielded effect.  ``rgen``
                                # is deliberately the pre-send generation:
                                # if the body invalidated itself
                                # (self-interrupt or kill), the entry
                                # scheduled here must go stale.
                                if effect.__class__ is INT:
                                    if effect:
                                        self._seq = seq = self._seq + 1
                                        push(heap, (now + effect, seq, proc,
                                                    None, SEND, rgen))
                                    else:
                                        fappend((proc, None, SEND, rgen))
                                elif isinstance(effect, Event):
                                    proc._waiting_on = effect
                                    effect._add_waiter(proc)
                                else:
                                    self._schedule_resume(
                                        proc, None,
                                        _coerce_delay(proc, effect))
                            elif kind == CALLBACK:
                                nevents += 1
                                if nevents > max_events:
                                    raise RuntimeError(
                                        "simulation exceeded "
                                        f"{self.max_events} events")
                                proc()  # proc slot holds the callable
                            else:  # THROW (interrupts/timeouts): rare
                                if gen != proc._resume_gen:
                                    continue
                                nevents += 1
                                if nevents > max_events:
                                    raise RuntimeError(
                                        "simulation exceeded "
                                        f"{self.max_events} events")
                                self._step(proc, payload, kind, gen)
                        # chunk swept (its tuples are freed with it); any
                        # entries scheduled meanwhile sit in the new list
                        continue
                else:
                    when = now  # due heap entry: no clock movement
                _w, _seq, proc, payload, kind, gen = pop(heap)
                heap_due = bool(heap) and heap[0][0] == when
                if kind != CALLBACK and gen != proc._resume_gen:
                    continue  # stale wakeup (interrupt/kill): drop, clock untouched
                self.now = now = when
                if when >= self._sample_due:
                    self._sample_tick(when)
                nevents += 1
                if nevents > max_events:
                    raise RuntimeError(
                        f"simulation exceeded {self.max_events} events")
                if kind == CALLBACK:
                    proc()  # proc slot holds the callable for callbacks
                    continue
                # ---- step the process (heap-sourced wakeups) -------------
                if proc._suspended_until > when:
                    # preempted: deliver this wakeup once rescheduled
                    self._push(proc._suspended_until, proc, payload, kind, gen)
                    continue
                if proc._pending_kill is not None and proc._shield == 0:
                    proc._do_kill(proc._pending_kill)  # deferred crash lands
                    continue
                proc._resume_gen = rgen = gen + 1  # older entries go stale
                proc._waiting_on = None
                self._current = proc
                try:
                    if kind == _THROW:
                        effect = proc.gen.throw(payload)
                    else:
                        effect = proc._send(payload)
                except StopIteration as stop:
                    proc._finish(stop.value)
                    continue
                finally:
                    self._current = None
                # Dispatch on the yielded effect.
                if type(effect) is int:
                    if effect:
                        self._seq = seq = self._seq + 1
                        push(heap, (when + effect, seq, proc, None, SEND,
                                    rgen))
                    else:
                        fappend((proc, None, SEND, rgen))
                elif isinstance(effect, Event):
                    proc._waiting_on = effect
                    effect._add_waiter(proc)
                else:
                    self._schedule_resume(proc, None, _coerce_delay(proc, effect))
        finally:
            # keep state consistent when an exception propagates out of a
            # process body mid-chunk (max_events, user errors): unconsumed
            # chunk entries were scheduled before everything in the
            # current lane list, so they go back in front of it
            self._nevents = nevents
            rest = list(chunk)
            if rest:
                self._fast[:0] = rest
        if until is not None and self.now < until:
            self.now = until
        if self.now >= self._sample_due:
            self._sample_tick(self.now)
        if self.detect_deadlock:
            blocked = [p for p in self._processes if p.alive and not p.daemon]
            if blocked:
                blocked.sort(key=lambda p: p.name)
                lines = "\n".join(
                    f"  - process {p.name!r} blocked on {p.describe_wait()}"
                    for p in blocked
                )
                raise DeadlockError(
                    f"deadlock at cycle {self.now}: no events are pending but "
                    f"{len(blocked)} live process(es) are still blocked:\n{lines}",
                    blocked,
                )

    # -- internals ---------------------------------------------------------
    def _forget(self, proc: Process) -> None:
        self._processes.discard(proc)

    def _push(self, when: int, proc: Any, payload: Any, kind: int, gen: int) -> None:
        if when == self.now:
            # lane entries carry no (when, seq): the due cycle is the
            # current one and the lane list itself is the FIFO order
            self._fast.append((proc, payload, kind, gen))
        else:
            self._seq = seq = self._seq + 1
            heapq.heappush(self._heap, (when, seq, proc, payload, kind, gen))

    def _schedule_resume(self, proc: Process, value: Any, delay: int = 0) -> None:
        # inlined _push: this is the busiest scheduling entry point
        # (every event trigger and message wakeup lands here with delay 0)
        if delay:
            self._seq = seq = self._seq + 1
            heapq.heappush(self._heap, (self.now + delay, seq, proc, value,
                                        _SEND, proc._resume_gen))
        else:
            self._fast.append((proc, value, _SEND, proc._resume_gen))

    def _schedule_throw(self, proc: Process, exc: BaseException) -> None:
        self._push(self.now, proc, exc, _THROW, proc._resume_gen)

    def _resume_slow(self, proc: Process, payload: Any, kind: int,
                     gen: int) -> bool:
        """Out-of-line half of the lane fast path (``proc._slow`` set):
        handle a suspended or kill-pending process.  Returns True when the
        wakeup was consumed (re-queued or the process crashed), False when
        the process should resume normally."""
        if proc._suspended_until > self.now:
            # preempted: deliver this wakeup once the context reschedules
            self._push(proc._suspended_until, proc, payload, kind, gen)
            return True
        if proc._pending_kill is not None:
            if proc._shield == 0:
                proc._do_kill(proc._pending_kill)  # deferred crash lands
                return True
            return False  # shielded: execute; the crash lands after commit
        proc._slow = False  # suspension expired and nothing pending
        return False

    def _step(self, proc: Process, payload: Any, kind: int, gen: int) -> None:
        """Deliver one wakeup to ``proc`` (out-of-loop twin of the inlined
        hot path in :meth:`run`; kept for tests and future tooling)."""
        if not proc.alive or gen != proc._resume_gen:
            return  # finished, or superseded by an interrupt/kill
        if proc._suspended_until > self.now:
            # preempted: deliver this wakeup when the context is rescheduled
            self._push(proc._suspended_until, proc, payload, kind, gen)
            return
        if proc._pending_kill is not None and proc._shield == 0:
            proc._do_kill(proc._pending_kill)  # deferred crash lands now
            return
        proc._resume_gen += 1  # consume: older queued entries become stale
        proc._waiting_on = None
        self._current = proc
        try:
            if kind == _THROW:
                effect = proc.gen.throw(payload)
            else:
                effect = proc.gen.send(payload)
        except StopIteration as stop:
            proc._finish(stop.value)
            return
        finally:
            self._current = None
        # Dispatch on the yielded effect.
        if type(effect) is int:
            self._schedule_resume(proc, None, effect)
        elif isinstance(effect, Event):
            proc._waiting_on = effect
            effect._add_waiter(proc)
        else:
            self._schedule_resume(proc, None, _coerce_delay(proc, effect))


# Event kinds in the heap.
_SEND = 0
_THROW = 1
_CALLBACK = 2

#: sentinel for "no horizon"
_NEVER = float("inf")

#: sentinel event cap for "unlimited" (int, so the per-event compare in
#: the run loop stays int-vs-int)
_NO_CAP = 1 << 63


def _coerce_delay(proc: Process, effect: Any) -> int:
    """Coerce a non-plain-``int`` yielded effect to a delay, or raise.

    ``bool`` (``True`` is a 1-cycle sleep) and numpy integer scalars are
    accepted through ``__index__``, which rejects floats and arbitrary
    objects -- the explicit form of the old ``isinstance(effect, int)``
    fallback, which silently missed numpy scalars entirely.
    """
    try:
        return operator.index(effect)
    except TypeError:
        raise TypeError(
            f"process {proc.name!r} yielded unsupported effect {effect!r}; "
            "yield an int (delay) or an Event"
        ) from None


def all_of(sim: Simulator, procs: Iterable[Process]) -> Generator[Any, Any, list]:
    """``yield from all_of(sim, procs)`` -- wait for all, return results in order."""
    results = []
    for p in procs:
        r = yield from p.join()
        results.append(r)
    return results
