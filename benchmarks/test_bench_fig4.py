"""Benchmark harness for Figure 4 (stalls, combining rate, CS length).

Shape claims asserted:

* 4a -- the servicing thread is "virtually never stalled" with
  MP-SERVER and HYBCOMB, whereas "CPU stalls account for more than 50%
  of the cycles of the servicing thread in CC-SYNCH and SHM-SERVER".
* 4b -- the combining rate grows roughly like T-1 at low concurrency,
  then rises sharply (the circular effect); at high concurrency
  CC-SYNCH reaches MAX_OPS and HYBCOMB sits slightly below it.
* 4c -- with MP-SERVER/HYBCOMB the synchronization overhead is a small
  constant; the SHM approaches start ~30 cycles above MP-SERVER and the
  worst-vs-best gap shrinks to ~10% at 15 loop iterations.
"""

from benchmarks.conftest import print_figure, run_once
from repro.experiments.fig4 import run_fig4a, run_fig4b, run_fig4c


def test_fig4a_cpu_stalls(benchmark, quick):
    fig = run_once(benchmark, run_fig4a, quick=quick)
    rows = {}
    print()
    for label, s in fig.series.items():
        (_x, r), = s.points
        rows[label] = (r.service_stall_per_op, r.service_cycles_per_op)
        print(f"  {label:>11s}: stalled={r.service_stall_per_op:5.1f}  "
              f"total={r.service_cycles_per_op:5.1f} cycles/op")

    for label in ("mp-server", "HybComb"):
        stalled, total = rows[label]
        assert stalled <= 2.0, f"{label} servicing thread stalls ({stalled:.1f}/op)"
        assert 6 <= total <= 25
    for label in ("shm-server", "CC-Synch"):
        stalled, total = rows[label]
        assert stalled / total > 0.5, (
            f"{label}: stalls are {stalled/total:.0%} of cycles (paper: >50%)"
        )
        assert 30 <= total <= 80


def test_fig4b_combining_rate(benchmark, quick):
    fig = run_once(benchmark, run_fig4b, quick=quick)
    rate = lambda r: r.combining_rate or 0.0
    print_figure(fig, rate)

    hyb = fig.series["HybComb"]
    cc = fig.series["CC-Synch"]
    high_t = max(hyb.xs())
    # sharp increase with concurrency for HYBCOMB (the circular effect)
    assert hyb.y_at(high_t, rate) > 8 * hyb.y_at(min(hyb.xs()), rate)
    # at high concurrency CC-SYNCH reaches the MAX_OPS=200 ceiling...
    assert cc.y_at(high_t, rate) >= 195
    # ...and HYBCOMB is slightly below it (non-atomic register+reset)
    assert 0.55 * 200 <= hyb.y_at(high_t, rate) <= 201
    # low concurrency: roughly one op per other thread per session
    low = min(x for x in hyb.xs() if x >= 5)
    assert hyb.y_at(low, rate) <= low  # cannot exceed T-1 by much


def test_fig4c_cs_length(benchmark, quick):
    fig = run_once(benchmark, run_fig4c, quick=quick)
    cpo = lambda r: r.cycles_per_op
    print_figure(fig, cpo)

    mp = fig.series["mp-server"]
    hyb = fig.series["HybComb"]
    shm = fig.series["shm-server"]
    cc = fig.series["CC-Synch"]
    ideal = fig.series["ideal"]
    k0, kmax = min(mp.xs()), max(mp.xs())

    # constant, small overhead for the message-passing approaches
    for s in (mp, hyb):
        over = [s.y_at(k, cpo) - ideal.y_at(k, cpo) for k in s.xs()]
        assert max(over) - min(over) <= 12, f"{s.label}: overhead not constant"
        assert max(over) <= 20
    # short CS: SHM approaches ~30 cycles above MP-SERVER (paper: ~30)
    gap0 = shm.y_at(k0, cpo) - mp.y_at(k0, cpo)
    assert 18 <= gap0 <= 55, f"short-CS gap {gap0:.0f} (paper: ~30)"
    # long CS: worst vs best within ~20% (paper: ~10% at 15 iterations)
    approaches = [mp, hyb, shm, cc]
    best = min(s.y_at(kmax, cpo) for s in approaches)
    worst = max(s.y_at(kmax, cpo) for s in approaches)
    assert (worst - best) / best <= 0.25, (
        f"long-CS spread {(worst-best)/best:.0%} (paper: ~10%)"
    )
    # everything is bounded below by the ideal line
    for s in approaches:
        for k in s.xs():
            assert s.y_at(k, cpo) >= ideal.y_at(k, cpo) * 0.98
