"""Shared infrastructure for the benchmark harness.

Each ``benchmarks/test_bench_*.py`` module regenerates one figure of the
paper's evaluation: it runs the corresponding experiment (timed under
pytest-benchmark), prints the same series the paper plots, and asserts
the qualitative *shapes* the paper reports (who wins, by roughly what
factor, where the crossovers and saturation points fall).  Absolute
numbers are not asserted against the paper -- the substrate is a
simulator, not the authors' TILE-Gx -- but every shape claim from
Section 5 is.

Set ``REPRO_BENCH_FULL=1`` to run with the larger measurement windows
and denser sweeps used to produce EXPERIMENTS.md (minutes instead of
seconds).  Set ``REPRO_JOBS=N`` to fan sweep points out over N worker
processes (see ``repro.experiments.parallel``); the simulated numbers
are identical either way, only wall time changes.
"""

import json
import os

import pytest

#: full-fidelity mode toggle
FULL = os.environ.get("REPRO_BENCH_FULL", "0") not in ("", "0", "false")

#: where machine-readable benchmark results land (the regression gate's
#: input); override with REPRO_BENCH_OUT
BENCH_OUT_DIR = os.environ.get("REPRO_BENCH_OUT", ".")


@pytest.fixture(scope="session")
def quick() -> bool:
    return not FULL


def run_once(benchmark, fn, *args, **kwargs):
    """Time ``fn`` exactly once under pytest-benchmark.

    Simulation runs are deterministic and expensive, so statistical
    repetition only wastes time; one round gives the exact same figure
    data every run.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def series_ys(fig, label, metric):
    s = fig.series[label]
    return s.ys(metric)


def tput(r):
    return r.throughput_mops


def write_bench_json(fig, filename, *, metrics=None):
    """Write one figure's numbers as a machine-readable benchmark record.

    The record carries the active machine profile's fingerprint so the
    regression gate (``benchmarks/check_regression.py``) refuses to
    compare numbers measured under different cost models, and the
    ``full`` flag so quick and full sweeps never cross-compare either.

    ``metrics`` adds extra per-point columns: a mapping of metric name
    to ``lambda result: value`` (e.g. the scale benchmark's directory
    footprint).  Names should have a direction in
    :mod:`repro.analysis.diff` if they are meant to be gateable.
    """
    from repro.experiments.parallel import resolve_jobs
    from repro.machine.config import tile_gx

    series = {}
    for label, s in fig.series.items():
        pts = []
        for x, r in s.points:
            p = {
                "x": x,
                "threads": r.num_threads,
                "ops": r.ops,
                "throughput_mops": r.throughput_mops,
                "latency_p50_cycles": r.p50_latency_cycles,
                "latency_p99_cycles": r.p99_latency_cycles,
                # host-perf provenance (engine speed, not a simulated
                # result): informational in check_regression.py, never
                # gating, and excluded from determinism fingerprints
                "wall_seconds": r.host_wall_seconds,
                "events_processed": r.host_events_processed,
                "events_per_sec": r.host_events_per_sec,
            }
            if metrics:
                for name, fn in metrics.items():
                    p[name] = fn(r)
            pts.append(p)
        series[label] = pts
    doc = {
        "figure": fig.figure_id,
        "config_fingerprint": tile_gx().fingerprint(),
        "full": FULL,
        "jobs": resolve_jobs(None),
        "series": series,
    }
    os.makedirs(BENCH_OUT_DIR, exist_ok=True)
    path = os.path.join(BENCH_OUT_DIR, filename)
    with open(path, "w") as f:
        json.dump(doc, f, indent=1, sort_keys=True)
        f.write("\n")
    print(f"[bench record written to {path}]")
    return path


def print_figure(fig, metric=tput):
    from repro.analysis.render import ascii_chart, markdown_table

    print()
    print(ascii_chart(fig, metric))
    print(markdown_table(fig, metric))
    for n in fig.notes:
        print(f"note: {n}")
