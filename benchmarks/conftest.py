"""Shared infrastructure for the benchmark harness.

Each ``benchmarks/test_bench_*.py`` module regenerates one figure of the
paper's evaluation: it runs the corresponding experiment (timed under
pytest-benchmark), prints the same series the paper plots, and asserts
the qualitative *shapes* the paper reports (who wins, by roughly what
factor, where the crossovers and saturation points fall).  Absolute
numbers are not asserted against the paper -- the substrate is a
simulator, not the authors' TILE-Gx -- but every shape claim from
Section 5 is.

Set ``REPRO_BENCH_FULL=1`` to run with the larger measurement windows
and denser sweeps used to produce EXPERIMENTS.md (minutes instead of
seconds).
"""

import os

import pytest

#: full-fidelity mode toggle
FULL = os.environ.get("REPRO_BENCH_FULL", "0") not in ("", "0", "false")


@pytest.fixture(scope="session")
def quick() -> bool:
    return not FULL


def run_once(benchmark, fn, *args, **kwargs):
    """Time ``fn`` exactly once under pytest-benchmark.

    Simulation runs are deterministic and expensive, so statistical
    repetition only wastes time; one round gives the exact same figure
    data every run.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def series_ys(fig, label, metric):
    s = fig.series[label]
    return s.ys(metric)


def tput(r):
    return r.throughput_mops


def print_figure(fig, metric=tput):
    from repro.analysis.render import ascii_chart, markdown_table

    print()
    print(ascii_chart(fig, metric))
    print(markdown_table(fig, metric))
    for n in fig.notes:
        print(f"note: {n}")
