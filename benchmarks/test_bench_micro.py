"""Microbenchmarks of the simulator substrate itself.

These are classic pytest-benchmark timings (wall time of the simulator,
not simulated cycles): they track the engine's event throughput and the
cost of the memory/UDN primitives so a performance regression in the
substrate is caught before it turns every figure run to molasses.
"""

from repro.machine import Machine, tile_gx
from repro.sim import Simulator


def test_engine_event_throughput(benchmark):
    """Pure engine: two processes ping-ponging delays."""

    def run():
        sim = Simulator()

        def proc():
            for _ in range(20_000):
                yield 1

        sim.spawn(proc())
        sim.spawn(proc())
        sim.run()
        return sim.events_processed

    events = benchmark(run)
    assert events >= 40_000


def test_cache_hit_loop(benchmark):
    """Hot loop of cache-hit loads/stores on one core."""

    def run():
        m = Machine(tile_gx())
        a = m.mem.alloc(1)
        ctx = m.thread(0)

        def prog():
            for _ in range(5_000):
                v = yield from ctx.load(a)
                yield from ctx.store(a, v + 1)

        m.spawn(ctx, prog())
        m.run()
        return m.mem.peek(a)

    assert benchmark(run) == 5_000


def test_udn_message_round_trips(benchmark):
    """Request/response ping-pong through the hardware message queues."""

    def run():
        m = Machine(tile_gx())
        t0 = m.thread(0)
        t1 = m.thread(1)
        N = 2_000

        def server():
            for _ in range(N):
                (v,) = yield from t0.receive(1)
                yield from t0.send(1, [v + 1])

        def client():
            total = 0
            for i in range(N):
                yield from t1.send(0, [i])
                (v,) = yield from t1.receive(1)
                total += v
            return total

        m.spawn(t0, server())
        p = m.spawn(t1, client())
        m.run()
        return p.result

    expected = sum(i + 1 for i in range(2_000))
    assert benchmark(run) == expected


def test_atomic_faa_throughput(benchmark):
    """Controller atomics under contention from four cores."""

    def run():
        m = Machine(tile_gx())
        a = m.mem.alloc(1)

        def prog(ctx):
            for _ in range(1_000):
                yield from ctx.faa(a, 1)

        for i in range(4):
            ctx = m.thread(i)
            m.spawn(ctx, prog(ctx))
        m.run()
        return m.mem.peek(a)

    assert benchmark(run) == 4_000
