"""Benchmark harness for the overload experiment (hockey stick).

Regenerates the open-loop offered-load sweep at 0.5x / 1.5x / 2x of
each approach's measured capacity and asserts the degradation shapes
the overload layer exists to produce:

* below capacity the two admission policies are indistinguishable
  (nothing is shed, everything meets the SLO);
* past capacity, **unbounded** admission diverges -- queue depth is
  still climbing when the window ends and p99.9 sojourn blows up --
  while **bounded-drop** keeps depth pinned at the configured bound and
  p99.9 orders of magnitude lower;
* shedding costs no service capacity: bounded goodput at 2x offered
  stays within 20% of the closed-loop capacity, and every drop point
  completes (shedding never deadlocks a client);
* the saturated-failover point (FT primary crashed at 1.5x under
  bounded admission) recovers and keeps serving.

The goodput numbers land in ``BENCH_overload.json`` (throughput of an
open-loop point *is* goodput); ``check_regression.py`` gates them
against ``benchmarks/baselines/BENCH_overload.json`` with the standard
10% tolerance.
"""

from benchmarks.conftest import print_figure, run_once, tput, write_bench_json
from repro.experiments.overload import APPROACHES, run_overload

#: the smoke sweep: one point below the knee, two past it
MULTIPLIERS = (0.5, 1.5, 2.0)

#: the sweep is deterministic, so later tests in this module reuse the
#: figure produced (and timed) by the first instead of re-running it
_CACHE = {}


def _figure(quick):
    return _CACHE[quick]


def _points(fig, label):
    return dict(fig.series[label].points)


def test_overload_hockey_stick(benchmark, quick):
    fig = run_once(benchmark, run_overload, quick=quick,
                   multipliers=MULTIPLIERS)
    _CACHE[quick] = fig
    print_figure(fig, lambda r: r.p99_latency_cycles)
    write_bench_json(fig, "BENCH_overload.json")

    for approach in APPROACHES:
        un = _points(fig, f"{approach} unbounded")
        dr = _points(fig, f"{approach} drop")
        cap = un[2.0].extra["ol.capacity_mops"]

        # below the knee the policies coincide: no shedding, SLO met
        assert un[0.5].shed_ops == 0 and dr[0.5].shed_ops == 0
        assert un[0.5].time_in_slo == 1.0 and dr[0.5].time_in_slo == 1.0
        assert dr[0.5].goodput_mops >= 0.9 * dr[0.5].offered_mops

        # past the knee, unbounded diverges: the queue is still growing
        # when the window closes and the tail is far beyond the bound
        r2u, r2d = un[2.0], dr[2.0]
        assert r2u.extra["ol.qdepth_final"] >= 0.9 * r2u.extra["ol.qdepth_max"], (
            f"{approach}: unbounded depth not climbing at 2x")
        assert r2u.extra["ol.qdepth_max"] > 5 * r2d.extra["ol.qdepth_max"], (
            f"{approach}: no depth contrast at 2x")
        assert r2u.p999_latency_cycles > 3 * r2d.p999_latency_cycles, (
            f"{approach}: no tail-latency contrast at 2x")
        assert r2u.shed_ops == 0 and r2d.shed_ops > 0

        # graceful degradation: bounded goodput within 20% of capacity
        # at 2x offered, and the SLO still (near-)held
        assert r2d.goodput_mops >= 0.8 * cap, (
            f"{approach}: goodput {r2d.goodput_mops:.1f} < 80% of "
            f"capacity {cap:.1f} at 2x offered")
        assert r2d.time_in_slo >= 0.95

        # shedding never deadlocks: every bounded point kept completing
        for mult in MULTIPLIERS:
            assert dr[mult].ops > 0


def test_overload_retry_series_present(quick):
    fig = _figure(quick)
    rt = _points(fig, "mp-server retry")
    # injection never backpressures at this fan-in, so the timed path
    # must behave exactly like plain bounded-drop (and never regress it)
    dr = _points(fig, "mp-server drop")
    for mult in MULTIPLIERS:
        assert rt[mult].goodput_mops >= 0.9 * dr[mult].goodput_mops
        assert rt[mult].dispatch_timeouts == 0


def test_overload_saturated_failover(quick):
    fig = _figure(quick)
    (mult, r), = fig.series["mp-server-ft drop+crash"].points
    assert mult == 1.5
    assert r.failovers >= 1
    assert r.time_to_recovery_cycles is not None
    assert r.ops > 0 and r.goodput_mops > 0
    assert r.extra["ol.counter_value"] >= r.ops
