"""Benchmark harness for Figure 3 (counter throughput / latency / MAX_OPS).

Regenerates the three panels and asserts the paper's shape claims:

* 3a -- MP-SERVER is fastest at every concurrency level; it beats
  SHM-SERVER by a large factor (paper: up to 4.3x); HYBCOMB beats
  CC-SYNCH, especially at high concurrency (paper: ~2.5x); CC-SYNCH and
  SHM-SERVER are close to each other.
* 3b -- MP-SERVER has by far the lowest latency; the combiners' latency
  dips when intensive combining kicks in.
* 3c -- HYBCOMB's throughput keeps growing with MAX_OPS (approaching
  MP-SERVER), while CC-SYNCH saturates at low MAX_OPS.
"""

from benchmarks.conftest import print_figure, run_once, tput, write_bench_json
from repro.experiments.fig3 import run_fig3a_3b, run_fig3c


def test_fig3a_counter_throughput(benchmark, quick):
    fig_a, _ = run_once(benchmark, run_fig3a_3b, quick=quick)
    print_figure(fig_a)
    write_bench_json(fig_a, "BENCH_fig3.json")

    high_t = max(x for x, _ in fig_a.series["mp-server"].points)
    mp = fig_a.series["mp-server"]
    shm = fig_a.series["shm-server"]
    hyb = fig_a.series["HybComb"]
    cc = fig_a.series["CC-Synch"]

    # MP-SERVER is the fastest approach at every measured level
    for x, r in mp.points:
        for other in (shm, hyb, cc):
            y = other.y_at(x, tput)
            if y is not None:
                assert r.throughput_mops >= y * 0.95, (
                    f"mp-server not fastest at T={x}"
                )
    # message passing vs its shared-memory emulation: a large factor
    ratio = mp.y_at(high_t, tput) / shm.y_at(high_t, tput)
    assert 2.5 <= ratio <= 6.0, f"mp/shm ratio {ratio:.1f} out of band (paper: 4.3)"
    # HYBCOMB >> CC-SYNCH at high concurrency (paper: ~2.5x)
    ratio = hyb.y_at(high_t, tput) / cc.y_at(high_t, tput)
    assert 1.8 <= ratio <= 4.5, f"HybComb/CC ratio {ratio:.1f} out of band (paper: 2.5)"
    # CC-SYNCH and SHM-SERVER perform similarly (within ~40%)
    at = [x for x in cc.xs() if x >= 10 and shm.y_at(x, tput) is not None]
    for x in at:
        a, b = cc.y_at(x, tput), shm.y_at(x, tput)
        assert 0.6 <= a / b <= 1.4, f"CC vs shm diverge at T={x}: {a:.1f} vs {b:.1f}"
    # peak throughput in the paper's ballpark (~105 Mops/s at 1.2 GHz)
    assert 70 <= mp.peak(tput) <= 140


def test_fig3b_counter_latency(benchmark, quick):
    _, fig_b = run_once(benchmark, run_fig3a_3b, quick=quick)
    lat = lambda r: r.mean_latency_cycles
    print_figure(fig_b, lat)

    mp = fig_b.series["mp-server"]
    hyb = fig_b.series["HybComb"]
    shm = fig_b.series["shm-server"]
    cc = fig_b.series["CC-Synch"]
    # MP-SERVER has by far the lowest latency at every multi-thread level
    for x in mp.xs():
        if x < 2:
            continue
        for other in (shm, cc):
            y = other.y_at(x, lat)
            if y is not None:
                assert mp.y_at(x, lat) < y
    # single-thread exception: CC-SYNCH beats HYBCOMB (one atomic vs three)
    assert cc.y_at(1, lat) < hyb.y_at(1, lat)
    # the combiners' latency dips when intensive combining kicks in
    hyb_ys = dict(zip(hyb.xs(), hyb.ys(lat)))
    ramp = [x for x in hyb_ys if 12 <= x <= 30]
    pre = [x for x in hyb_ys if 5 <= x < 15]
    assert min(hyb_ys[x] for x in ramp) < max(hyb_ys[x] for x in pre), (
        "no latency dip when combining kicks in"
    )


def test_fig3c_max_ops_sweep(benchmark, quick):
    fig = run_once(benchmark, run_fig3c, quick=quick)
    print_figure(fig)

    hyb = fig.series["HybComb"]
    cc = fig.series["CC-Synch"]
    big = max(hyb.xs())
    mid = 20 if 20 in hyb.xs() else sorted(hyb.xs())[len(hyb.xs()) // 2]
    # HYBCOMB keeps growing with MAX_OPS...
    assert hyb.y_at(big, tput) >= 1.8 * hyb.y_at(mid, tput)
    # ...levelling off near the paper's ~88 Mops/s
    assert 65 <= hyb.y_at(big, tput) <= 115
    # CC-SYNCH gains little beyond a small MAX_OPS
    assert cc.y_at(big, tput) <= 1.35 * cc.y_at(mid, tput)
