"""Benchmark harness for the discussion experiments (Sections 5.5 / 6)
and the simulator's own NoC ablation.

Shape claims asserted:

* Section 5.5 -- on the x86-like profile, the servicing thread of the
  pure-shared-memory approaches shows *more* stall cycles per op than on
  the TILE-Gx profile ("we measured the number of stalls per operation
  ... and got proportionally larger numbers"), so the potential gain
  from hardware message passing would be even higher there.
* Section 6 -- oversubscription through the 4-way demultiplexed queues
  works (4 threads/core keep full server throughput), and tiny hardware
  buffers cause backpressure without deadlock or message loss.
* NoC ablation -- analytic and contended-link mesh models agree, so the
  default analytic model is justified.
"""

from benchmarks.conftest import print_figure, run_once, tput
from repro.experiments.discussion import (
    run_backpressure,
    run_noc_ablation,
    run_oversubscription,
    run_x86_comparison,
)
from repro.workload import WorkloadSpec, run_counter_benchmark
from repro.machine import tile_gx, x86_like


def test_x86_throughput_comparison(benchmark, quick):
    fig = run_once(benchmark, run_x86_comparison, quick=quick)
    print_figure(fig)
    # both shared-memory approaches run on both profiles at all levels
    for label in ("shm-server (x86)", "shm-server (tile-gx)",
                  "CC-Synch (x86)", "CC-Synch (tile-gx)"):
        assert fig.series[label].points


def test_x86_has_more_stalls_per_op(benchmark, quick):
    """The core 5.5 claim, measured directly on the servicing thread."""
    spec = WorkloadSpec.quick() if quick else WorkloadSpec.full()

    def measure():
        r_tile = run_counter_benchmark("shm-server", 10, spec=spec, cfg=tile_gx())
        r_x86 = run_counter_benchmark("shm-server", 10, spec=spec, cfg=x86_like())
        return r_tile, r_x86

    r_tile, r_x86 = run_once(benchmark, measure)
    print(f"\n  stalls/op: tile-gx={r_tile.service_stall_per_op:.1f} "
          f"x86={r_x86.service_stall_per_op:.1f}")
    assert r_x86.service_stall_per_op > r_tile.service_stall_per_op


def test_oversubscription(benchmark, quick):
    fig = run_once(benchmark, run_oversubscription, quick=quick)
    print_figure(fig)
    s = fig.series["mp-server"]
    one = s.y_at(1, tput)
    four = s.y_at(4, tput)
    assert four > 0
    # with more client threads per core the (saturated) server keeps
    # serving at full speed -- throughput must not collapse
    assert four >= 0.8 * one


def test_backpressure_with_tiny_buffers(benchmark, quick):
    fig = run_once(benchmark, run_backpressure, quick=quick)
    print_figure(fig)
    s = fig.series["mp-server (12-word buffers)"]
    for x, r in s.points:
        assert r.throughput_mops > 0, f"no progress with {x} clients"
    # with many clients the 12-word buffer must have caused backpressure
    (_x, r_most) = s.points[-1]
    assert r_most.extra["backpressure_cycles"] > 0
    # and throughput still reaches the usual server saturation range
    assert r_most.throughput_mops >= 50


def test_noc_model_ablation(benchmark, quick):
    fig = run_once(benchmark, run_noc_ablation, quick=quick)
    print_figure(fig)
    ana = fig.series["analytic"]
    con = fig.series["contended links"]
    for x in ana.xs():
        a, c = ana.y_at(x, tput), con.y_at(x, tput)
        assert abs(a - c) / a < 0.1, (
            f"NoC contention changes results at T={x}: {a:.1f} vs {c:.1f}"
        )
