"""Tests for the SCC-like message-passing-only profile: MP-SERVER works,
anything needing coherent shared memory is rejected."""

import pytest

from repro.core import CCSynch, HybComb, MPServer, OpTable, ShmServer
from repro.machine import Machine, scc_like


def test_profile_basics():
    cfg = scc_like()
    assert cfg.num_cores == 48
    assert cfg.has_udn
    assert not cfg.has_coherent_shm


def test_private_memory_is_local_and_cheap():
    m = Machine(scc_like())
    a = m.mem.alloc(1)
    ctx = m.thread(0)

    def prog():
        yield from ctx.store(a, 5)
        v = yield from ctx.load(a)
        return v, ctx.core.stall_mem, ctx.core.rmr

    p = m.spawn(ctx, prog())
    m.run()
    assert p.result == (5, 0, 0)


def test_cross_core_shared_memory_rejected():
    m = Machine(scc_like())
    a = m.mem.alloc(1, isolated=True)
    t0 = m.thread(0)
    t1 = m.thread(1)

    def writer(ctx):
        yield from ctx.store(a, 1)

    def reader(ctx):
        yield 100
        yield from ctx.load(a)

    m.spawn(t0, writer(t0))
    m.spawn(t1, reader(t1))
    with pytest.raises(RuntimeError, match="no coherent shared memory"):
        m.run()


def test_cross_core_atomics_rejected():
    m = Machine(scc_like())
    a = m.mem.alloc(1, isolated=True)
    t0 = m.thread(0)
    t1 = m.thread(1)

    def first(ctx):
        yield from ctx.faa(a, 1)

    def second(ctx):
        yield 100
        yield from ctx.faa(a, 1)

    m.spawn(t0, first(t0))
    m.spawn(t1, second(t1))
    with pytest.raises(RuntimeError, match="no coherent shared memory"):
        m.run()


def test_same_core_threads_may_share_private_memory():
    """Oversubscribed threads on one core share that core's memory."""
    m = Machine(scc_like())
    a = m.mem.alloc(1)
    t0 = m.thread(10, core_id=5, demux=0)
    t1 = m.thread(11, core_id=5, demux=1)

    def writer(ctx):
        yield from ctx.store(a, 9)

    def reader(ctx):
        v = yield from ctx.spin_until(a, lambda v: v == 9)
        return v

    m.spawn(t0, writer(t0))
    p = m.spawn(t1, reader(t1))
    m.run()
    assert p.result == 9


def test_mp_server_runs_fully_on_scc():
    """The server approach needs no shared memory at all: requests and
    responses move over the message fabric, and the object data is
    private to the server core."""
    m = Machine(scc_like())
    table = OpTable()
    addr = m.mem.alloc(1, isolated=True)

    def fetch_inc(ctx, arg):
        v = yield from ctx.load(addr)
        yield from ctx.store(addr, v + 1)
        return v

    opcode = table.register(fetch_inc)
    prim = MPServer(m, table, server_tid=0)
    prim.start()
    tickets = []

    def client(ctx):
        for _ in range(20):
            t = yield from prim.apply_op(ctx, opcode, 0)
            tickets.append(t)
            yield from ctx.work(11)

    for t in range(1, 9):
        ctx = m.thread(t)
        m.spawn(ctx, client(ctx))
    m.run()
    assert sorted(tickets) == list(range(160))


@pytest.mark.parametrize("prim_cls", [HybComb, CCSynch])
def test_hybrid_algorithms_require_coherent_shm(prim_cls):
    """HYBCOMB (and CC-SYNCH) manage synchronization state in shared
    memory; on a message-passing-only chip they must fail fast."""
    m = Machine(scc_like())
    table = OpTable()
    a = m.mem.alloc(1)

    def body(ctx, arg):
        v = yield from ctx.load(a)
        yield from ctx.store(a, v + 1)
        return v

    opcode = table.register(body)
    prim = prim_cls(m, table)
    prim.start()

    def client(ctx):
        yield from prim.apply_op(ctx, opcode, 0)

    for t in range(2):
        ctx = m.thread(t)
        m.spawn(ctx, client(ctx))
    with pytest.raises(RuntimeError, match="no coherent shared memory"):
        m.run()


def test_shm_server_requires_coherent_shm():
    m = Machine(scc_like())
    table = OpTable()
    a = m.mem.alloc(1)

    def body(ctx, arg):
        v = yield from ctx.load(a)
        return v

    opcode = table.register(body)
    prim = ShmServer(m, table, server_tid=0, client_tids=[1, 2])
    prim.start()

    def client(ctx):
        yield from prim.apply_op(ctx, opcode, 0)

    for t in (1, 2):
        ctx = m.thread(t)
        m.spawn(ctx, client(ctx))
    with pytest.raises(RuntimeError, match="no coherent shared memory"):
        m.run()
