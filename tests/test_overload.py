"""Tests for the overload experiment (hockey stick + saturated failover).

One closed-loop capacity measurement is shared module-wide; each test
then drives a few open-loop points against it.  The assertions encode
the PR's acceptance criteria directly: unbounded admission diverges
past the knee, bounded admission keeps goodput near capacity at 2x
offered load, runs are bit-reproducible under a fixed seed, and a
combiner crash at 1.5x fails over without losing exactly-once.
"""

import pytest

from repro.experiments.overload import (
    APPROACHES,
    NUM_CLIENTS,
    QUEUE_CAPACITY,
    measure_capacity,
    run_overload_point,
)


@pytest.fixture(scope="module")
def mp_capacity():
    return measure_capacity("mp-server", quick=True)


def test_measured_capacity_is_sane(mp_capacity):
    # 8 clients on the message-passing server run at tens of Mops/s
    assert 20.0 < mp_capacity < 500.0


def test_capacity_lease_variant_measures_base_algorithm():
    assert "HybComb-lease" in APPROACHES
    a = measure_capacity("HybComb", quick=True)
    b = measure_capacity("HybComb-lease", quick=True)
    assert a == pytest.approx(b)  # same closed-loop baseline


def test_unbounded_diverges_bounded_degrades_gracefully(mp_capacity):
    ru = run_overload_point("mp-server", mp_capacity, 1.5, "unbounded")
    rd = run_overload_point("mp-server", mp_capacity, 1.5, "drop")

    # unbounded past the knee: depth and p99.9 grow without bound
    # (final sampled depth is still the maximum => still climbing)
    assert ru.extra["ol.qdepth_final"] >= 0.9 * ru.extra["ol.qdepth_max"]
    assert ru.extra["ol.qdepth_max"] > 20 * rd.extra["ol.qdepth_max"]
    assert ru.p999_latency_cycles > 3 * rd.p999_latency_cycles
    assert ru.time_in_slo < rd.time_in_slo == 1.0

    # bounded: the queue is pinned at its configured bound
    assert rd.extra["ol.qdepth_max"] <= NUM_CLIENTS * QUEUE_CAPACITY + 32
    assert rd.shed_ops > 0
    assert ru.shed_ops == 0

    # provenance extras the figure/CSV layer relies on
    for r, mult in ((ru, 1.5), (rd, 1.5)):
        assert r.extra["ol.multiplier"] == mult
        assert r.extra["ol.capacity_mops"] == mp_capacity
        assert r.extra["ol.counter_value"] >= r.ops


def test_bounded_goodput_within_20pct_of_capacity_at_2x(mp_capacity):
    r = run_overload_point("mp-server", mp_capacity, 2.0, "drop")
    assert r.offered_mops == pytest.approx(2.0 * mp_capacity, rel=0.15)
    assert r.goodput_mops >= 0.8 * mp_capacity
    assert r.time_in_slo == 1.0


def test_overload_point_reproducible_under_fixed_seed(mp_capacity):
    a = run_overload_point("mp-server", mp_capacity, 1.5, "drop", seed=9)
    b = run_overload_point("mp-server", mp_capacity, 1.5, "drop", seed=9)
    assert a.ops == b.ops
    assert a.latency_samples == b.latency_samples
    assert a.extra == b.extra
    assert a.queue_depth_series == b.queue_depth_series
    c = run_overload_point("mp-server", mp_capacity, 1.5, "drop", seed=10)
    assert c.latency_samples != a.latency_samples


def test_saturated_failover_keeps_exactly_once(mp_capacity):
    """Crash the FT primary a third into a 1.5x bounded-drop window: the
    backup must take over, dedup must suppress the replayed requests,
    and the run must keep serving afterwards."""
    r = run_overload_point("mp-server-ft", mp_capacity, 1.5, "drop",
                           crash_primary=True)
    assert r.failovers >= 1
    assert r.time_to_recovery_cycles is not None
    assert r.ops > 0 and r.goodput_mops > 0
    # exactly-once ground truth: the counter can exceed windowed ops
    # (warmup + in-flight) but never fall short of them
    assert r.extra["ol.counter_value"] >= r.ops
    # retried-after-crash requests were deduplicated, not re-executed
    assert r.duplicates_suppressed >= 0
    assert r.ops_retried >= r.duplicates_suppressed


def test_saturated_failover_recovery_visible_in_trace(mp_capacity):
    """The event bus must narrate the saturated failover end to end:
    admission events on both sides of the crash, fault.retry/failover
    from the clients, and a causal op stream the blame tools can use."""
    import repro.obs as obs
    from repro.core import OpTable
    from repro.experiments.overload import _admission, _build
    from repro.faults import CrashThread, FaultInjector, FaultPlan
    from repro.objects import LockedCounter
    from repro.workload.openloop import (ArrivalSpec, OpenLoopSpec,
                                         run_openloop_workload)

    kinds = set()
    with obs.observed(causal=True) as session:
        from repro.machine import Machine, tile_gx
        machine = Machine(tile_gx())
        (ob,) = session.machines
        ob.bus.subscribe(lambda t, k, f: kinds.add(k))

        prim, tids = _build("mp-server-ft", machine, OpTable(), NUM_CLIENTS)
        counter = LockedCounter(prim)
        prim.start()
        ctxs = [machine.thread(t) for t in tids]
        gap = len(ctxs) / (1.5 * mp_capacity / machine.cfg.clock_mhz)
        spec = OpenLoopSpec(
            arrivals=ArrivalSpec(process="poisson", mean_gap_cycles=gap),
            admission=_admission("drop"),
            warmup_cycles=20_000, measure_cycles=120_000)
        crash_at = spec.warmup_cycles + spec.measure_cycles // 3
        plan = FaultPlan(seed=42,
                         faults=(CrashThread(tid=0, at_cycle=crash_at),))
        FaultInjector(machine, plan).install()
        r = run_openloop_workload(machine, ctxs, prim, counter._op_inc, spec)

    assert r.failovers >= 1
    # admission + fault + recovery narration all reached the bus
    for kind in ("admit.enqueue", "admit.shed", "fault.retry",
                 "fault.failover", "op.begin", "op.end"):
        assert kind in kinds, f"missing {kind} in the overload trace"
    # and the causal collector kept an op stream for blame attribution
    causal_kinds = {k for _t, k, _f in ob.causal.events}
    assert {"op.begin", "op.end", "server.done"} <= causal_kinds


def test_unknown_approach_and_policy_rejected(mp_capacity):
    with pytest.raises(ValueError, match="unknown approach"):
        run_overload_point("bogus", 100.0, 1.0, "drop")
    with pytest.raises(ValueError, match="unknown policy"):
        run_overload_point("mp-server", 100.0, 1.0, "bogus")
