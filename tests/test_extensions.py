"""Tests for the extension features: the elimination stack front-end and
HYBCOMB's SWAP-fallback registration."""

import numpy as np
import pytest

from repro.core import HybComb, MPServer, OpTable
from repro.machine import Machine, tile_gx
from repro.objects import EMPTY, EliminationStack, LockedStack, TreiberStack


# -- elimination stack -------------------------------------------------------

def build_elim(machine, num_slots=4, window=80, backing="treiber"):
    if backing == "treiber":
        base = TreiberStack(machine)
    else:
        prim = MPServer(machine, OpTable(), server_tid=0)
        base = LockedStack(prim)
        prim.start()
    return EliminationStack(machine, base, num_slots=num_slots,
                            window_cycles=window)


def test_elimination_sequential_fallthrough():
    """A lone thread never eliminates; semantics match the backing stack."""
    m = Machine(tile_gx())
    s = build_elim(m)
    ctx = m.thread(0)
    out = []

    def prog():
        for v in (1, 2, 3):
            yield from s.push(ctx, v)
        for _ in range(4):
            v = yield from s.pop(ctx)
            out.append(v)

    m.spawn(ctx, prog())
    m.run()
    assert out == [3, 2, 1, EMPTY]
    assert s.eliminated == 0


def test_elimination_happens_under_concurrency():
    m = Machine(tile_gx())
    s = build_elim(m, num_slots=2, window=200)
    N = 60

    def pusher(ctx):
        for v in range(1, N + 1):
            yield from s.push(ctx, v)
            yield from ctx.work(15)

    def popper(ctx):
        got = 0
        while got < N:
            v = yield from s.pop(ctx)
            if v != EMPTY:
                got += 1
            else:
                yield from ctx.work(25)

    p_ctx = m.thread(0)
    c_ctx = m.thread(1)
    m.spawn(p_ctx, pusher(p_ctx))
    m.spawn(c_ctx, popper(c_ctx))
    m.run()
    assert s.eliminated > 0, "no pair ever eliminated"


@pytest.mark.parametrize("seed", [3, 4])
def test_elimination_conserves_elements(seed):
    """No value is lost or duplicated through the elimination array."""
    m = Machine(tile_gx())
    s = build_elim(m, num_slots=3, window=120)
    rng = np.random.default_rng(seed)
    nthreads, N = 6, 25
    popped = []

    def worker(ctx, pid, thinks):
        for k in range(N):
            yield from s.push(ctx, pid * 1000 + k)
            yield from ctx.work(int(thinks[k]))
            v = yield from s.pop(ctx)
            if v != EMPTY:
                popped.append(v)

    for i in range(nthreads):
        ctx = m.thread(i)
        m.spawn(ctx, worker(ctx, i + 1, rng.integers(0, 80, N)))
    m.run()
    expected = sorted(p * 1000 + k for p in range(1, nthreads + 1) for k in range(N))
    assert sorted(popped + s.drain_to_list()) == expected


def test_elimination_reduces_backing_stack_traffic():
    """With many symmetric push/pop pairs, the elimination layer must
    absorb a meaningful share of operations."""
    m = Machine(tile_gx())
    # few slots -> pushers and poppers actually meet
    s = build_elim(m, num_slots=2, window=300)

    def worker(ctx):
        for k in range(40):
            yield from s.push(ctx, k + 1)
            yield from s.pop(ctx)

    for i in range(12):
        ctx = m.thread(i)
        m.spawn(ctx, worker(ctx))
    m.run()
    assert s.elimination_rate > 0.1, f"rate only {s.elimination_rate:.0%}"


def test_elimination_rejects_bad_parameters():
    m = Machine(tile_gx())
    base = TreiberStack(m)
    with pytest.raises(ValueError):
        EliminationStack(m, base, num_slots=0)
    with pytest.raises(ValueError):
        EliminationStack(m, base, window_cycles=0)


def test_elimination_rejects_oversized_values():
    m = Machine(tile_gx())
    s = build_elim(m)
    ctx = m.thread(0)
    with pytest.raises(ValueError, match="32-bit"):
        list(s.push(ctx, 1 << 40))


# -- HYBCOMB SWAP fallback -------------------------------------------------------

def make_counter(machine, table):
    addr = machine.mem.alloc(1, isolated=True)

    def fetch_inc(ctx, arg):
        v = yield from ctx.load(addr)
        yield from ctx.store(addr, v + 1)
        return v

    return addr, table.register(fetch_inc)


@pytest.mark.parametrize("k", [1, 2])
def test_swap_fallback_is_linearizable(k):
    m = Machine(tile_gx(debug_checks=True))
    table = OpTable()
    addr, opcode = make_counter(m, table)
    prim = HybComb(m, table, max_ops=3, swap_after_cas_failures=k)
    prim.start()
    tickets = []

    def client(ctx):
        for _ in range(30):
            t = yield from prim.apply_op(ctx, opcode, 0)
            tickets.append(t)
            yield from ctx.work((ctx.tid * 7) % 23)

    for i in range(10):
        ctx = m.thread(i)
        m.spawn(ctx, client(ctx))
    m.run()
    assert sorted(tickets) == list(range(300))
    assert m.mem.peek(addr) == 300


def test_swap_fallback_actually_triggers():
    """Under a registration storm (tiny MAX_OPS, many threads) some
    threads must take the SWAP path."""
    m = Machine(tile_gx())
    table = OpTable()
    addr, opcode = make_counter(m, table)
    prim = HybComb(m, table, max_ops=1, swap_after_cas_failures=1)
    prim.start()

    def client(ctx):
        for _ in range(25):
            yield from prim.apply_op(ctx, opcode, 0)

    for i in range(12):
        ctx = m.thread(i)
        m.spawn(ctx, client(ctx))
    m.run()
    assert prim.swap_registrations > 0
    assert m.mem.peek(addr) == 300


def test_swap_fallback_validation():
    m = Machine(tile_gx())
    with pytest.raises(ValueError):
        HybComb(m, OpTable(), swap_after_cas_failures=0)
