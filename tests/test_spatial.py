"""Spatial NoC congestion atlas: aggregation, conservation, rendering.

The conservation tests are the load-bearing ones: hop-by-hop latency
attribution must tile each delivered message's end-to-end latency
exactly (``queue + transit + eject + skew == latency`` with ``skew ==
0`` when no jitter is installed), and the per-record latencies must
reproduce the UDN delivery histogram bucket for bucket.  Everything
else -- summaries, merges, renderers -- consumes the same data model.
"""

import pytest

import repro.obs as obs
from repro.analysis.render import render_mesh_heatmap
from repro.machine import Machine, tile_gx
from repro.obs.counters import latency_bucket
from repro.obs.spatial import (
    SpatialAtlas,
    causal_link_flows,
    merge_spatial_summaries,
    render_hotspots,
)
from repro.workload import WorkloadSpec
from repro.workload.scenarios import run_counter_benchmark

SPEC = WorkloadSpec(warmup_cycles=5_000, measure_cycles=30_000)


def _send_receive(m, pairs):
    """Run one send/receive per (src_tid, dst_tid, n_words) triple."""
    threads = {}
    for src, dst, _n in pairs:
        for tid in (src, dst):
            if tid not in threads:
                threads[tid] = m.thread(tid)
    want = {}
    for src, dst, n in pairs:
        want[dst] = want.get(dst, 0) + n

    def sender(ctx, dst, n):
        yield from ctx.send(dst, list(range(n)))

    def receiver(ctx, total):
        got = 0
        while got < total:
            w = yield from ctx.receive(1)
            got += len(w)

    for dst, total in want.items():
        m.spawn(threads[dst], receiver(threads[dst], total))
    for src, dst, n in pairs:
        m.spawn(threads[src], sender(threads[src], dst, n))
    m.run()


# -- aggregation -----------------------------------------------------------

def test_atlas_charges_every_link_of_the_xy_route():
    with obs.observed(spatial=True):
        m = Machine(tile_gx())
        _send_receive(m, [(0, 14, 3)])
        s = m.obs.spatial.summary()
    route = list(m.mesh.links(m.cores[0].node, m.cores[14].node))
    assert s["messages"] == 1 and s["words"] == 3
    assert set(s["links"]) == {f"{a}>{b}" for a, b in route}
    for e in s["links"].values():
        assert e["msgs"] == 1 and e["words"] == 3
    # shares sum to 1 over the active links
    assert sum(e["share"] for e in s["links"].values()) == pytest.approx(1.0)
    dst_node = m.cores[14].node
    tile = s["tiles"][str(dst_node)]
    assert tile["in_msgs"] == 1 and tile["in_words"] == 3
    assert tile["deliver_latency"] > 0


def test_atlas_books_backpressure_on_the_sender_tile():
    with obs.observed(spatial=True):
        m = Machine(tile_gx(udn_buffer_words=4))
        t0, t1 = m.thread(0), m.thread(1)

        def sender(ctx):
            for _ in range(4):
                yield from ctx.send(1, [1, 1])  # 8 words > 4-word buffer

        def receiver(ctx):
            yield 2000
            got = 0
            while got < 8:
                w = yield from ctx.receive(2)
                got += len(w)

        m.spawn(t0, sender(t0))
        m.spawn(t1, receiver(t1))
        m.run()
        s = m.obs.spatial.summary()
    src_node = m.cores[0].node
    assert s["tiles"][str(src_node)]["backpressure"] > 0
    assert s["tiles"][str(src_node)]["backpressure"] == m.udn.backpressure_cycles


def test_contended_mesh_reports_measured_occupancy():
    with obs.observed(spatial=True):
        m = Machine(tile_gx(contended_noc=True))
        _send_receive(m, [(0, 14, 3)])
        s = m.obs.spatial.summary()
    assert s["contended"] and s["basis"] == "busy"
    for e in s["links"].values():
        assert e["packets"] == 1 and e["busy"] > 0


def test_atlas_is_a_pure_observer():
    """Simulated results are bit-identical with the atlas on."""
    r_off = run_counter_benchmark("mp-server", 6, spec=SPEC)
    with obs.observed(spatial=True, spatial_hops=True):
        r_on = run_counter_benchmark("mp-server", 6, spec=SPEC)
    assert r_on.ops == r_off.ops
    assert r_on.per_thread_ops == r_off.per_thread_ops
    assert r_on.mean_latency_cycles == r_off.mean_latency_cycles
    assert r_on.latency_samples == r_off.latency_samples


def test_spatial_summary_rides_result_telemetry():
    with obs.observed(spatial=True):
        r = run_counter_benchmark("mp-server", 6, spec=SPEC)
    s = r.telemetry["spatial"]
    assert s["messages"] > 0 and s["links"]


# -- hop-by-hop conservation ----------------------------------------------

def _assert_conservation(atlas, m):
    assert atlas.records, "no messages recorded"
    hist = {}
    for rec in atlas.records:
        assert rec.queue + rec.transit + rec.eject + rec.skew == rec.latency
        assert rec.skew == 0, (rec.msg_id, rec.to_dict())
        assert rec.transit == m.mesh.per_hop * len(rec.hops)
        assert rec.eject == (m.mesh.base
                             + m.mesh.per_word * (rec.words - 1))
        for a, b, q, tr in rec.hops:
            assert q >= 0 and tr == m.mesh.per_hop
        hist[latency_bucket(rec.latency)] = (
            hist.get(latency_bucket(rec.latency), 0) + 1)
    # the per-record latencies reproduce the UDN delivery histogram
    udn_hist = {k: v for k, v in m.obs.counters.udn_hist.items() if v}
    assert hist == udn_hist
    tot = atlas.hop_totals
    assert tot["messages"] == len(atlas.records)
    assert tot["latency"] == sum(r.latency for r in atlas.records)
    assert tot["skew"] == 0


def test_hop_attribution_conserves_on_idle_analytic_mesh():
    with obs.observed(spatial_hops=True):
        m = Machine(tile_gx())
        _send_receive(m, [(0, 14, 3), (2, 14, 1), (7, 30, 5), (9, 9, 2)])
        _assert_conservation(m.obs.spatial, m)
        # analytic mesh: no queueing anywhere
        assert m.obs.spatial.hop_totals["queue"] == 0


def test_hop_attribution_conserves_on_backpressured_contended_mesh():
    with obs.observed(spatial_hops=True):
        m = Machine(tile_gx(contended_noc=True, udn_buffer_words=8))
        # many senders converging on one receiver: link FIFOs queue
        pairs = [(tid, 0, 2) for tid in range(1, 9) for _ in range(4)]
        _send_receive(m, pairs)
        atlas = m.obs.spatial
        _assert_conservation(atlas, m)
        assert atlas.hop_totals["queue"] > 0, (
            "expected measured link queueing under convergence")


def test_hop_ledger_is_bounded():
    with obs.observed(spatial_hops=True, spatial_hop_limit=3):
        m = Machine(tile_gx())
        _send_receive(m, [(0, 14, 1)] * 8)
        atlas = m.obs.spatial
    assert len(atlas.records) == 3
    assert atlas.records_dropped == 5
    assert atlas.hop_totals["messages"] == 8  # totals keep counting


# -- sampler series --------------------------------------------------------

def test_spatial_series_appear_in_sampler():
    from repro.obs.spatial import TICK_DECIMATION
    with obs.observed(timeseries=True, sample_every=64, spatial=True):
        m = Machine(tile_gx())
        pairs = [(0, 14, 3)] * 50
        _send_receive(m, pairs)
        ob = m.obs
        names = [n for n in ob.sampler.series if n.startswith("spatial.")]
        assert any(n.startswith("spatial.link.") for n in names)
        assert any(n.startswith("spatial.tile.") for n in names)
        link = next(n for n in names if n.startswith("spatial.link."))
        ts = ob.sampler.series[link]
        assert ts.kind == "counter" and ts.unit == "words"
        assert ts.total() > 0
        # spatial series sample at the decimated cadence
        assert ts.bucket_cycles >= 64 * TICK_DECIMATION


def test_series_cap_counts_drops():
    with obs.observed(timeseries=True, sample_every=64, spatial=True):
        m = Machine(tile_gx())
        ob = m.obs
        ob.spatial.max_series = 1
        t0, t1 = m.thread(0), m.thread(35)

        def sender(ctx):
            for _ in range(20):
                yield from ctx.send(35, [1])
                yield 300  # stretch past several decimated ticks

        def receiver(ctx):
            for _ in range(20):
                yield from ctx.receive(1)

        m.spawn(t0, sender(t0))
        m.spawn(t1, receiver(t1))
        m.run()
        assert len(ob.spatial._series) == 1
        assert ob.spatial.summary()["series_dropped"] > 0


# -- merge / hotspots / heatmap -------------------------------------------

def test_merge_sums_and_recomputes_shares():
    with obs.observed(spatial=True) as session:
        for _ in range(2):
            m = Machine(tile_gx())
            _send_receive(m, [(0, 14, 3)])
        merged = session.spatial_summary()
    assert merged["machines"] == 2
    assert merged["messages"] == 2 and merged["words"] == 6
    for e in merged["links"].values():
        assert e["msgs"] == 2
    assert sum(e["share"] for e in merged["links"].values()) == \
        pytest.approx(1.0)


def test_merge_rejects_mismatched_meshes():
    a = {"format": 1, "mesh": {"width": 6, "height": 6}, "contended": False,
         "basis": "words", "messages": 0, "words": 0, "links": {},
         "tiles": {}, "series_dropped": 0}
    b = dict(a, mesh={"width": 8, "height": 8})
    with pytest.raises(ValueError, match="different meshes"):
        merge_spatial_summaries([a, b])
    assert merge_spatial_summaries([]) is None


def test_hotspot_report_names_top_links_and_flows():
    with obs.observed(spatial=True, causal=True):
        m = Machine(tile_gx())
        _send_receive(m, [(0, 14, 3), (0, 14, 3), (2, 14, 1)])
        atlas, causal = m.obs.spatial, m.obs.causal
        s = atlas.summary()
        flows = causal_link_flows(atlas, causal)
    txt = render_hotspots(s, k=3, flows=flows)
    assert "hotspots" in txt and "link" in txt and "tile" in txt
    assert render_hotspots({"links": {}}) == \
        "hotspots: no NoC traffic observed"


def test_mesh_heatmap_renders_and_marks_backpressure():
    with obs.observed(spatial=True):
        m = Machine(tile_gx(udn_buffer_words=4))
        t0, t1 = m.thread(0), m.thread(1)

        def sender(ctx):
            for _ in range(4):
                yield from ctx.send(1, [1, 1])

        def receiver(ctx):
            yield 2000
            got = 0
            while got < 8:
                w = yield from ctx.receive(2)
                got += len(w)

        m.spawn(t0, sender(t0))
        m.spawn(t1, receiver(t1))
        m.run()
        s = m.obs.spatial.summary()
    txt = render_mesh_heatmap(s)
    assert "6x6 mesh" in txt
    assert "B" in txt  # backpressured sender tile is marked
    assert "link" in txt
    assert "no NoC traffic observed" in render_mesh_heatmap(None)


def test_atlas_without_udn_machine_stays_empty():
    from repro.machine import x86_like
    with obs.observed(spatial=True):
        m = Machine(x86_like())
    s = m.obs.spatial.summary()
    assert s["messages"] == 0 and not s["links"] and not s["tiles"]
    assert isinstance(m.obs.spatial, SpatialAtlas)
