"""Tests for the analysis containers and renderers."""

import pytest

from repro.analysis import FigureData, Series, ascii_chart, bar_chart, markdown_table, to_csv
from repro.workload.metrics import RunResult


def rr(ops, cycles=1000, **kw):
    return RunResult(name="x", num_threads=1, window_cycles=cycles, ops=ops,
                     clock_mhz=1200, **kw)


def tput(r):
    return r.throughput_mops


def make_fig():
    fig = FigureData("figX", "Test figure", "threads", "Mops/s")
    for x, ops in ((1, 10), (2, 25), (4, 40)):
        fig.add_point("alpha", x, rr(ops))
    for x, ops in ((1, 5), (2, 9), (4, 12)):
        fig.add_point("beta", x, rr(ops))
    return fig


# -- Series / FigureData ------------------------------------------------------

def test_series_accessors():
    s = Series("s")
    s.add(1, rr(10))
    s.add(2, rr(30))
    assert s.xs() == [1, 2]
    assert s.ys(tput) == [pytest.approx(12.0), pytest.approx(36.0)]
    assert s.y_at(2, tput) == pytest.approx(36.0)
    assert s.y_at(99, tput) is None
    assert s.peak(tput) == pytest.approx(36.0)


def test_empty_series_peak():
    assert Series("s").peak(tput) == 0.0


def test_figure_series_for_creates_once():
    fig = FigureData("f", "t", "x", "y")
    a = fig.series_for("a")
    assert fig.series_for("a") is a
    fig.note("hello")
    assert fig.notes == ["hello"]
    assert fig.labels() == ["a"]


# -- renderers -------------------------------------------------------------------

def test_ascii_chart_contains_legend_and_axes():
    out = ascii_chart(make_fig(), tput)
    assert "alpha" in out and "beta" in out
    assert "threads: 1 .. 4" in out
    assert "Test figure" in out


def test_ascii_chart_empty_figure():
    fig = FigureData("f", "t", "x", "y")
    assert "no data" in ascii_chart(fig, tput)


def test_markdown_table_rows_and_missing_points():
    fig = make_fig()
    fig.add_point("gamma", 2, rr(100))  # only one x
    table = markdown_table(fig, tput)
    lines = table.strip().splitlines()
    assert lines[0].startswith("| threads |")
    assert len(lines) == 2 + 3  # header, separator, three x values
    # gamma has no data at x=1 and x=4
    assert "| 1 |" in lines[2] and lines[2].rstrip().endswith("- |")


def test_bar_chart():
    out = bar_chart(["a", "b"], {"stalled": [1.0, 5.0], "total": [2.0, 10.0]},
                    title="bars")
    assert "bars" in out
    assert out.count("|") == 4
    assert "10.0" in out


def test_to_csv_long_format():
    csv = to_csv(make_fig(), {"tput": tput})
    lines = csv.strip().splitlines()
    assert lines[0] == "series,x,tput"
    assert len(lines) == 1 + 6
    assert any(line.startswith("alpha,4,") for line in lines)
