"""Tests for the continuous-telemetry layer: rings, sampler, engine hook."""

import pytest

import repro.obs as obs
from repro.machine import Machine, tile_gx
from repro.obs.timeseries import Sampler, TimeSeries
from repro.sim.engine import Simulator
from repro.workload import WorkloadSpec
from repro.workload.scenarios import run_counter_benchmark


# -- TimeSeries ring math --------------------------------------------------

def test_gauge_bucket_mean_and_points():
    ts = TimeSeries("g", kind="gauge", buckets=4, bucket_cycles=10)
    ts.record(0, 2.0)
    ts.record(5, 4.0)   # same bucket
    ts.record(10, 10.0)
    assert ts.points() == [(0, 3.0), (10, 10.0)]
    assert ts.mean() == pytest.approx(16 / 3)
    assert ts.peak() == 10.0
    assert ts.samples == 3


def test_counter_points_keep_empty_buckets_as_zero():
    ts = TimeSeries("c", kind="counter", buckets=8, bucket_cycles=10)
    ts.record(0, 5.0)
    ts.record(25, 7.0)  # bucket 2; bucket 1 had no increments
    assert ts.points() == [(0, 5.0), (10, 0.0), (20, 7.0)]
    assert ts.total() == 12.0


def test_downsample_on_wrap_doubles_width_and_preserves_aggregates():
    ts = TimeSeries("g", kind="gauge", buckets=4, bucket_cycles=1)
    for c in range(16):
        ts.record(c, float(c))
    # 16 samples through a 4-bucket ring: two wraps, width 1 -> 4
    assert ts.wraps == 2
    assert ts.bucket_cycles == 4
    assert len(ts.sums) <= 4
    # aggregates are exact no matter how often the ring wrapped
    assert ts.total() == sum(range(16))
    assert ts.mean() == pytest.approx(sum(range(16)) / 16)
    assert ts.peak() == 15.0
    assert ts.last_value == 15.0
    assert ts.samples == 16


def test_memory_stays_bounded_over_long_runs():
    ts = TimeSeries("g", kind="gauge", buckets=16, bucket_cycles=1)
    for c in range(100_000):
        ts.record(c, 1.0)
    assert len(ts.sums) <= 16
    assert len(ts.counts) <= 16
    assert len(ts.maxes) <= 16
    assert ts.samples == 100_000
    assert ts.total() == 100_000.0


def test_downsample_empty_bucket_does_not_poison_max():
    ts = TimeSeries("g", kind="gauge", buckets=4, bucket_cycles=10)
    ts.record(0, -5.0)       # bucket 0
    # bucket 1 empty; force a wrap so (0, 1) merge
    ts.record(45, -7.0)
    assert ts.peak() == -5.0  # empty bucket's 0.0 placeholder not counted


def test_timeseries_validation():
    with pytest.raises(ValueError):
        TimeSeries("x", kind="rate")
    with pytest.raises(ValueError):
        TimeSeries("x", buckets=1)
    with pytest.raises(ValueError):
        TimeSeries("x", bucket_cycles=0)


def test_to_dict_tail_keeps_last_points():
    ts = TimeSeries("g", kind="gauge", buckets=64, bucket_cycles=1)
    for c in range(10):
        ts.record(c, float(c))
    d = ts.to_dict(tail=3)
    assert d["points"] == [[7, 7.0], [8, 8.0], [9, 9.0]]
    assert d["samples"] == 10 and d["peak"] == 9.0


# -- Sampler ---------------------------------------------------------------

def test_counter_source_baselined_at_registration():
    sampler = Sampler(None, every=10, buckets=8)
    state = {"v": 100.0}
    sampler.register("c", lambda: state["v"], kind="counter")
    # first tick reports the delta since registration, not the total
    state["v"] = 103.0
    sampler.on_tick(10)
    assert sampler.series["c"].points() == [(0, 0.0), (10, 3.0)]
    state["v"] = 110.0
    sampler.on_tick(20)
    assert sampler.series["c"].total() == 10.0


def test_register_duplicate_requires_replace():
    sampler = Sampler(None, every=10)
    sampler.register("g", lambda: 1.0)
    with pytest.raises(ValueError, match="already registered"):
        sampler.register("g", lambda: 2.0)
    sampler.register("g", lambda: 2.0, replace=True)
    sampler.on_tick(10)
    assert sampler.series["g"].last_value == 2.0


def test_register_replace_discards_old_series():
    sampler = Sampler(None, every=10)
    sampler.register("g", lambda: 1.0)
    sampler.on_tick(10)
    old = sampler.series["g"]
    assert old.last_value == 1.0
    new = sampler.register("g", lambda: 2.0, replace=True)
    assert new is not old
    assert sampler.series["g"] is new
    assert new.total() == 0.0  # history did not leak across replace
    sampler.on_tick(20)
    assert new.last_value == 2.0


def test_remove_source_keeps_history_and_reports_removal():
    sampler = Sampler(None, every=10)
    sampler.register("g", lambda: 5.0)
    sampler.on_tick(10)
    assert sampler.remove_source("g") is True
    # the recorded series survives for summaries and dashboards ...
    assert sampler.series["g"].last_value == 5.0
    assert "g" in sampler.summary()["series"]
    # ... but future ticks stop reading the source
    before = sampler.series["g"].points()
    sampler.on_tick(20)
    assert sampler.series["g"].points() == before
    # removing again, or a never-registered name, is a documented no-op
    assert sampler.remove_source("g") is False
    assert sampler.remove_source("never") is False


def test_remove_source_is_a_noop_for_adopted_series():
    sampler = Sampler(None, every=10)
    ts = sampler.adopt(TimeSeries("ext", kind="gauge", buckets=8,
                                  bucket_cycles=10))
    assert sampler.remove_source("ext") is False
    assert sampler.series["ext"] is ts
    with pytest.raises(ValueError, match="already registered"):
        sampler.adopt(TimeSeries("ext", kind="gauge", buckets=8,
                                 bucket_cycles=10))


def test_sampler_subscribers_run_after_sources():
    sampler = Sampler(None, every=10)
    sampler.register("g", lambda: 7.0)
    seen = []
    sampler.subscribe(
        lambda now: seen.append((now, sampler.series["g"].last_value)))
    sampler.on_tick(10)
    assert seen == [(10, 7.0)]


# -- engine sample hook ----------------------------------------------------

def _ticker(sim, period, stop):
    t = 0
    while sim.now < stop:
        yield period
        t += 1


def test_engine_hook_fires_on_cadence():
    sim = Simulator()
    ticks = []
    sim.set_sample_hook(100, ticks.append)
    sim.spawn(_ticker(sim, 30, 1000), name="t")
    sim.run()
    # fires at the first event at-or-past each multiple of 100
    assert ticks
    assert all(t >= 100 for t in ticks)
    assert ticks == sorted(ticks)
    # cadence: the due points stay aligned to the 100-cycle grid, so
    # consecutive ticks always land in distinct grid windows
    for a, b in zip(ticks, ticks[1:]):
        assert b // 100 > a // 100


def test_engine_hook_collapses_idle_gaps_to_one_tick():
    sim = Simulator()
    ticks = []
    sim.set_sample_hook(10, ticks.append)

    def sleeper():
        yield 5
        yield 1000   # long idle gap: no events between 5 and 1005
        yield 5

    sim.spawn(sleeper(), name="s")
    sim.run()
    # one tick when the clock jumps past many due points, not 100 ticks
    assert len([t for t in ticks if t <= 1005]) <= 2


def test_engine_hook_fires_at_horizon_park():
    sim = Simulator()
    ticks = []
    sim.set_sample_hook(10, ticks.append)
    sim.spawn(_ticker(sim, 3, 20), name="t")
    sim.run(until=500)   # horizon park well past the last event
    assert sim.now == 500
    assert ticks[-1] == 500


def test_clear_sample_hook():
    sim = Simulator()
    ticks = []
    sim.set_sample_hook(10, ticks.append)
    sim.clear_sample_hook()
    sim.spawn(_ticker(sim, 5, 100), name="t")
    sim.run()
    assert ticks == []
    with pytest.raises(ValueError):
        sim.set_sample_hook(0, ticks.append)


# -- sampling is a pure observer -------------------------------------------

def test_sampling_does_not_change_simulated_results():
    spec = WorkloadSpec(warmup_cycles=5_000, measure_cycles=30_000)
    with obs.observed():
        plain = run_counter_benchmark("mp-server", 6, spec=spec)
    with obs.observed(timeseries=True, sample_every=256) as session:
        sampled = run_counter_benchmark("mp-server", 6, spec=spec)
    assert sampled.ops == plain.ops
    assert sampled.per_thread_ops == plain.per_thread_ops
    assert sampled.latency_samples == plain.latency_samples
    # and the obs.* extras (fingerprinted) are identical too
    assert sampled.extra == plain.extra
    assert plain.telemetry is None
    tel = sampled.telemetry
    assert tel is not None and tel["ticks"] > 0
    # the ops completed after the final sample tick are not in the
    # series, so the total trails the exact count by < one window
    assert 0 < tel["series"]["goodput"]["total"] <= sampled.ops
    ob = session.machines[0]
    assert ob.sampler.series["core.busy"].samples == ob.sampler.ticks


def test_figure_fingerprint_identical_with_sampling(monkeypatch):
    # fingerprints must not move when sampling rides along -- the
    # telemetry summary is excluded from figure hashes as a field
    from repro.analysis.series import FigureData

    spec = WorkloadSpec(warmup_cycles=2_000, measure_cycles=10_000)

    def fig_with(options):
        fig = FigureData("t", "t", "x", "y")
        with obs.observed(**options):
            fig.add_point("s", 4.0,
                          run_counter_benchmark("mp-server", 4, spec=spec))
        return fig.fingerprint()

    assert fig_with({}) == fig_with(
        dict(timeseries=True, sample_every=128, flight=True))


def test_machine_sources_cover_subsystems():
    with obs.observed(timeseries=True) as session:
        m = Machine(tile_gx())
    names = set(session.machines[0].sampler.series)
    assert {"core.busy", "core.stall", "core.wait", "cache.misses",
            "udn.occupancy", "udn.backpressure"} <= names
    assert m.udn is not None
