"""Figure 4a reconstruction from the perf counter file.

Acceptance test: the servicing thread's stall-vs-execution breakdown
(Figure 4a) rebuilt purely from ``repro.obs`` counters must match the
driver's own accounting (core cycle-register deltas) within 1%.
"""

import pytest

import repro.obs as obs
from repro.workload.scenarios import run_counter_benchmark
from repro.workload.driver import WorkloadSpec


def _close(a: float, b: float, tol: float = 0.01) -> bool:
    return abs(a - b) <= tol * max(1.0, abs(a), abs(b))


@pytest.mark.parametrize("approach,kwargs", [
    ("mp-server", {}),
    ("CC-Synch", {"fixed_combiner": True}),
])
def test_fig4a_breakdown_from_counters(approach, kwargs):
    with obs.observed() as session:
        result = run_counter_benchmark(
            approach, 10, spec=WorkloadSpec.quick(), **kwargs)
    assert len(session.machines) == 1
    assert result.ops > 0
    assert result.service_cycles_per_op > 0

    obs_total = result.extra["obs.service_cycles_per_op"]
    obs_stall = result.extra["obs.service_stall_per_op"]
    assert _close(obs_total, result.service_cycles_per_op)
    assert _close(obs_stall, result.service_stall_per_op)

    # the paper's qualitative claim (Figure 4a): the shared-memory
    # combiner stalls for most of its service time, the message-passing
    # server for (almost) none of it -- visible straight from counters
    if approach == "mp-server":
        assert obs_stall / obs_total < 0.1
    else:
        assert obs_stall / obs_total > 0.5


def test_fig4a_latency_percentiles_populated():
    with obs.observed():
        result = run_counter_benchmark(
            "mp-server", 8, spec=WorkloadSpec.quick())
    assert 0 < result.p50_latency_cycles <= result.p95_latency_cycles
    assert result.p95_latency_cycles <= result.p99_latency_cycles
    assert result.mean_latency_cycles > 0


def test_obs_extras_present_and_consistent():
    with obs.observed() as session:
        result = run_counter_benchmark(
            "CC-Synch", 8, spec=WorkloadSpec.quick(), fixed_combiner=True)
    for key in ("obs.misses", "obs.invalidations", "obs.hottest_line",
                "obs.hottest_line_stall_cycles"):
        assert key in result.extra, key
    # a contended combining run misses and invalidates constantly
    assert result.extra["obs.misses"] > 0
    assert result.extra["obs.invalidations"] > 0
    # the machine label carries the run name for merged trace exports
    assert session.machines[0].label == "CC-Synch T=8"
