"""Tests for the overlap mechanisms: software prefetch (MSHR join) and
the one-entry merging store buffer + fence drain."""


from repro.machine import Machine, tile_gx


def make_machine(**over):
    return Machine(tile_gx(**over))


# -- prefetch ----------------------------------------------------------------

def test_prefetch_makes_later_load_cheap():
    m = make_machine()
    a = m.mem.alloc(1, isolated=True)
    m.mem.poke(a, 7)

    def prog(ctx):
        yield from ctx.prefetch(a)
        yield from ctx.work(200)      # plenty of time for the fetch
        s0 = ctx.core.stall_mem
        v = yield from ctx.load(a)
        return v, ctx.core.stall_mem - s0

    ctx = m.thread(0)
    p = m.spawn(ctx, prog(ctx))
    m.run()
    v, stall = p.result
    assert v == 7
    assert stall == 0  # fully overlapped


def test_load_joins_inflight_prefetch_pays_remainder_only():
    m = make_machine()
    a = m.mem.alloc(1, isolated=True)

    def cold(ctx):
        s0 = ctx.core.stall_mem
        yield from ctx.load(a)
        return ctx.core.stall_mem - s0

    def overlapped(ctx):
        yield from ctx.prefetch(a)
        yield from ctx.work(10)       # partial overlap only
        s0 = ctx.core.stall_mem
        yield from ctx.load(a)
        return ctx.core.stall_mem - s0

    m1 = make_machine()
    c1 = m1.thread(0)
    p_cold = m1.spawn(c1, cold(c1))
    m1.run()
    c2 = m.thread(0)
    p_join = m.spawn(c2, overlapped(c2))
    m.run()
    assert 0 < p_join.result < p_cold.result


def test_prefetch_of_cached_line_is_noop():
    m = make_machine()
    a = m.mem.alloc(1)

    def prog(ctx):
        yield from ctx.load(a)
        rmr0 = ctx.core.rmr
        yield from ctx.prefetch(a)
        yield from ctx.work(100)
        yield from ctx.load(a)
        return ctx.core.rmr - rmr0

    ctx = m.thread(0)
    p = m.spawn(ctx, prog(ctx))
    m.run()
    assert p.result == 0


def test_prefetched_line_can_still_be_invalidated():
    """A prefetch gives no stale-data license: a later write by another
    core must still be observed."""
    m = make_machine()
    a = m.mem.alloc(1, isolated=True)
    t0 = m.thread(0)
    t1 = m.thread(1)

    def reader(ctx):
        yield from ctx.prefetch(a)
        yield from ctx.work(500)
        v = yield from ctx.load(a)   # writer hit in between
        return v

    def writer(ctx):
        yield 200
        yield from ctx.store(a, 99)

    p = m.spawn(t0, reader(t0))
    m.spawn(t1, writer(t1))
    m.run()
    assert p.result == 99


def test_double_prefetch_is_safe():
    m = make_machine()
    a = m.mem.alloc(1)

    def prog(ctx):
        yield from ctx.prefetch(a)
        yield from ctx.prefetch(a)   # second is a no-op
        v = yield from ctx.load(a)
        return v

    ctx = m.thread(0)
    p = m.spawn(ctx, prog(ctx))
    m.run()
    assert p.result == 0


# -- store buffer -----------------------------------------------------------

def test_store_miss_does_not_stall_issuer():
    m = make_machine()
    a = m.mem.alloc(1, isolated=True)

    def prog(ctx):
        t0 = m.now
        yield from ctx.store(a, 5)
        return m.now - t0, ctx.core.stall_mem

    ctx = m.thread(0)
    p = m.spawn(ctx, prog(ctx))
    m.run()
    elapsed, stall = p.result
    assert elapsed == m.cfg.c_hit    # issue cost only
    assert stall == 0


def test_same_line_stores_merge_for_free():
    m = make_machine()
    a = m.mem.alloc(8, isolated=True)   # one line

    def prog(ctx):
        t0 = m.now
        for i in range(8):
            yield from ctx.store(a + i, i)
        return m.now - t0

    ctx = m.thread(0)
    p = m.spawn(ctx, prog(ctx))
    m.run()
    assert p.result == 8 * m.cfg.c_hit
    for i in range(8):
        assert m.mem.peek(a + i) == i


def test_store_to_second_line_waits_for_drain():
    m = make_machine()
    a = m.mem.alloc(8, isolated=True)
    b = m.mem.alloc(8, isolated=True)

    def prog(ctx):
        yield from ctx.store(a, 1)     # buffered, drains in background
        s0 = ctx.core.stall_mem
        yield from ctx.store(b, 2)     # different line: must wait
        return ctx.core.stall_mem - s0

    ctx = m.thread(0)
    p = m.spawn(ctx, prog(ctx))
    m.run()
    assert p.result > 0


def test_fence_waits_for_store_buffer_drain():
    m = make_machine()
    a = m.mem.alloc(1, isolated=True)

    def fenced(ctx):
        yield from ctx.store(a, 1)
        f0 = ctx.core.stall_fence
        yield from ctx.fence()
        return ctx.core.stall_fence - f0

    def unfenced(ctx):
        f0 = ctx.core.stall_fence
        yield from ctx.fence()
        return ctx.core.stall_fence - f0

    m1 = make_machine()
    c1 = m1.thread(0)
    p1 = m1.spawn(c1, fenced(c1))
    m1.run()
    c2 = m.thread(0)
    p2 = m.spawn(c2, unfenced(c2))
    m.run()
    assert p1.result > p2.result == m.cfg.c_fence


def test_buffered_store_eventually_owns_line():
    m = make_machine()
    a = m.mem.alloc(1, isolated=True)

    def prog(ctx):
        yield from ctx.store(a, 1)
        yield from ctx.work(300)
        return None

    ctx = m.thread(0)
    m.spawn(ctx, prog(ctx))
    m.run()
    assert m.mem.cached_state(0, a) == "M"


def test_store_buffer_visibility_to_spinners():
    """A spinner on another core observes a buffered store when the
    background transaction completes (not never, not too early)."""
    m = make_machine()
    a = m.mem.alloc(1, isolated=True)
    t0 = m.thread(0)
    t1 = m.thread(1)

    def spinner(ctx):
        v = yield from ctx.spin_until(a, lambda v: v == 42)
        return v, m.now

    def writer(ctx):
        yield 400
        yield from ctx.store(a, 42)
        return m.now

    p_spin = m.spawn(t0, spinner(t0))
    p_write = m.spawn(t1, writer(t1))
    m.run()
    v, t_seen = p_spin.result
    assert v == 42
    assert t_seen >= p_write.result  # visible at/after the drain, never before issue completes


def test_two_cores_interleaved_buffered_stores_stay_coherent():
    m = make_machine(debug_checks=True)
    a = m.mem.alloc(1, isolated=True)

    def prog(ctx, base):
        for i in range(30):
            yield from ctx.store(a, base + i)
            yield from ctx.work(7)

    for t, base in ((0, 1000), (1, 2000)):
        ctx = m.thread(t)
        m.spawn(ctx, prog(ctx, base))
    m.run()
    m.mem.check_all_swmr()
    assert m.mem.peek(a) in (1029, 2029)


def test_own_load_after_buffered_store_sees_value():
    """Store-to-load forwarding: the issuing core reads its own store."""
    m = make_machine()
    a = m.mem.alloc(1, isolated=True)

    def prog(ctx):
        yield from ctx.store(a, 77)
        v = yield from ctx.load(a)   # immediately, txn still in flight
        return v

    ctx = m.thread(0)
    p = m.spawn(ctx, prog(ctx))
    m.run()
    assert p.result == 77
