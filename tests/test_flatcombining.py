"""Tests for the flat-combining baseline (extension; Hendler et al. [13])."""

import numpy as np
import pytest

from repro.core import CCSynch, FlatCombining, OpTable
from repro.machine import Machine, tile_gx
from repro.objects import LockedCounter


def build(nthreads, scan_rounds=2):
    m = Machine(tile_gx())
    table = OpTable()
    prim = FlatCombining(m, table, scan_rounds=scan_rounds)
    counter = LockedCounter(prim)
    prim.start()
    ctxs = [m.thread(t) for t in range(nthreads)]
    return m, prim, counter, ctxs


def run_counter(m, prim, counter, ctxs, ops_each, seed=1):
    rng = np.random.default_rng(seed)
    tickets = []

    def client(ctx, thinks):
        for k in range(ops_each):
            v = yield from counter.increment(ctx)
            tickets.append(v)
            yield from ctx.work(int(thinks[k]))

    for ctx in ctxs:
        m.spawn(ctx, client(ctx, rng.integers(0, 80, ops_each)))
    m.run()
    return tickets


def test_single_thread():
    m, prim, counter, ctxs = build(1)
    tickets = run_counter(m, prim, counter, ctxs, 20)
    assert tickets == list(range(20))


@pytest.mark.parametrize("nthreads", [2, 6, 12])
def test_linearizable_under_contention(nthreads):
    m, prim, counter, ctxs = build(nthreads)
    tickets = run_counter(m, prim, counter, ctxs, 30)
    assert sorted(tickets) == list(range(nthreads * 30))
    assert counter.value() == nthreads * 30


@pytest.mark.parametrize("seed", [2, 3])
def test_random_schedules(seed):
    m, prim, counter, ctxs = build(7)
    tickets = run_counter(m, prim, counter, ctxs, 25, seed=seed)
    assert sorted(tickets) == list(range(175))


def test_mutual_exclusion():
    m = Machine(tile_gx())
    table = OpTable()
    depth = {"n": 0, "max": 0}

    def body(ctx, arg):
        depth["n"] += 1
        depth["max"] = max(depth["max"], depth["n"])
        yield from ctx.work(4)
        depth["n"] -= 1
        return 0

    op = table.register(body)
    prim = FlatCombining(m, table)
    prim.start()

    def client(ctx):
        for _ in range(15):
            yield from prim.apply_op(ctx, op, 0)
            yield from ctx.work(ctx.tid % 13)

    for t in range(8):
        ctx = m.thread(t)
        m.spawn(ctx, client(ctx))
    m.run()
    assert depth["max"] == 1


def test_publication_list_one_record_per_thread():
    m, prim, counter, ctxs = build(5)
    run_counter(m, prim, counter, ctxs, 20)
    assert len(prim._record) == 5
    # the list links all five records
    seen = []
    rec = m.mem.peek(prim.head_addr)
    while rec != 0:
        seen.append(rec)
        rec = m.mem.peek(rec + 5)
    assert sorted(seen) == sorted(prim._record.values())


def test_combining_actually_happens():
    m, prim, counter, ctxs = build(10)
    run_counter(m, prim, counter, ctxs, 30)
    sessions = [ops for _t, ops in prim.combining_sessions]
    assert max(sessions) > 1, "no combining: every op combined only itself"


def test_scan_rounds_validation():
    with pytest.raises(ValueError):
        FlatCombining(Machine(tile_gx()), OpTable(), scan_rounds=0)


def test_slower_than_ccsynch_under_load():
    """The lineage: CC-SYNCH superseded flat combining.  On identical
    workloads FC's full-list scans cost it throughput."""
    def run(prim_cls):
        m = Machine(tile_gx())
        table = OpTable()
        prim = prim_cls(m, table)
        counter = LockedCounter(prim)
        prim.start()
        ctxs = [m.thread(t) for t in range(16)]
        run_counter(m, prim, counter, ctxs, 40)
        return 16 * 40 * 1200 / m.now

    fc = run(FlatCombining)
    cc = run(CCSynch)
    assert fc < cc
