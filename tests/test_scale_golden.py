"""Golden bit-identity proofs for the big-machine (sparse-directory)
refactor.

The sparse sharer sets, lazy directory entries and analytic mesh
routing introduced for 1024-core machines must not move ONE simulated
number on the 6x6 TILE-Gx.  The fingerprints below were recorded on the
dense reference implementation (plain ``Set[int]`` sharers, eager
``_Line`` entries, precomputed O(n^2) hop table) immediately before the
refactor; the suite re-runs the same mini-figures on the sparse engine
and requires byte-identical fingerprints -- with observability off,
with obs + time-series sampling on, and across every workload family
whose timing touches the refactored paths:

* counter delegation (fig3 family): server RMRs, UDN, combiner spinning;
* variable-length CS (fig4c family): store-buffer overlap, prefetch;
* queue/stack objects (fig5 family): CAS retries, controller atomics;
* spin locks (TTAS/MCS): the farthest-sharer invalidation path and
  invalidation-wakeup conditions, with many sharers on one line;
* x86-like profile: CacheAtomics' sharers.clear() ownership path;
* open-loop overload point: admission + timed dispatch seams.

The pre-v3 explore replay fixture (tests/test_engine_v3.py) rides along
as the schedule-level proof: traces recorded on the dense engine must
replay bit-identically on the sparse one.
"""

from __future__ import annotations

import repro.obs as obs_mod
from repro.analysis.series import FigureData
from repro.experiments.overload import run_overload_point
from repro.machine.config import x86_like
from repro.machine.machine import Machine
from repro.workload.driver import WorkloadSpec, run_workload
from repro.workload.scenarios import (
    run_counter_benchmark,
    run_cs_length_benchmark,
    run_queue_benchmark,
    run_stack_benchmark,
)

#: small windows: every family still crosses its interesting contention
#: regime, but the whole suite stays in seconds
_SPEC = WorkloadSpec(warmup_cycles=10_000, measure_cycles=40_000)

#: FigureData.fingerprint() of _golden_mini() recorded on the dense
#: directory implementation (pre-sparse-refactor).  Must never change.
GOLDEN_MINI_FINGERPRINT = (
    "7c56ff67aeb354b9edeb127114ba9262dd320dd517ee7df4144b262b9ad5a665"
)

#: same suite under an observability session with time-series sampling
#: on: obs adds deterministic per-op register extras to the results, so
#: this pin covers the event-emission paths (cache.inval per sharer,
#: cache.miss transitions) as well
GOLDEN_MINI_OBS_FINGERPRINT = (
    "8a5827411112a6d6bb8282acfd12acf92725e9c45bb9b67619da9f418d7c3af3"
)


def _lock_counter_run(lock_cls, num_threads: int):
    """A contended spin-lock counter (not part of the figure registry).

    TTAS puts every waiter's sharer bit on one flag line and bounces it
    on each release -- the heaviest user of the farthest-sharer-hop and
    invalidation-wakeup paths the refactor replaces.  MCS adds the
    swap/CAS handoff and per-node local spinning.
    """
    machine = Machine()
    lock = lock_cls(machine)
    addr = machine.mem.alloc(1, isolated=True)
    ctxs = [machine.thread(t) for t in range(num_threads)]

    def make_op(ctx):
        def op(k):
            yield from lock.acquire(ctx)
            v = yield from ctx.load(addr)
            yield from ctx.store(addr, v + 1)
            yield from lock.release(ctx)
        return op

    return run_workload(machine, ctxs, make_op, _SPEC, name=lock_cls.name)


def _golden_mini() -> FigureData:
    from repro.core.locks import MCSLock, TTASLock

    fig = FigureData("scale-golden", "dense-vs-sparse mini suite", "x", "y")
    for approach, t in (("mp-server", 12), ("HybComb", 12),
                        ("shm-server", 8), ("CC-Synch", 8)):
        fig.add_point(approach, t,
                      run_counter_benchmark(approach, t, spec=_SPEC))
    fig.add_point("HybComb-cs16", 8,
                  run_cs_length_benchmark("HybComb", 8, 16, spec=_SPEC))
    fig.add_point("mp-server-1-q", 8,
                  run_queue_benchmark("mp-server-1", 8, spec=_SPEC))
    fig.add_point("LCRQ", 8, run_queue_benchmark("LCRQ", 8, spec=_SPEC))
    fig.add_point("Treiber", 8, run_stack_benchmark("Treiber", 8, spec=_SPEC))
    fig.add_point("CC-Synch-x86", 8,
                  run_counter_benchmark("CC-Synch", 8, spec=_SPEC,
                                        cfg=x86_like()))
    fig.add_point("ttas", 10, _lock_counter_run(TTASLock, 10))
    fig.add_point("mcs", 10, _lock_counter_run(MCSLock, 10))
    fig.add_point("overload-drop", 1,
                  run_overload_point("mp-server", 60.0, 1.5, "drop"))
    return fig


def test_dense_golden_fingerprint_obs_off():
    assert _golden_mini().fingerprint() == GOLDEN_MINI_FINGERPRINT


def test_dense_golden_fingerprint_obs_and_sampling_on():
    with obs_mod.observed(timeseries=True, sample_every=512):
        fig = _golden_mini()
    assert fig.fingerprint() == GOLDEN_MINI_OBS_FINGERPRINT
