"""Correctness tests for the queue implementations (MS 1-lock / 2-lock,
LCRQ): FIFO order, element conservation, emptiness semantics."""

import numpy as np
import pytest

from repro.core import CCSynch, HybComb, MPServer, OpTable, ShmServer
from repro.machine import Machine, tile_gx
from repro.objects import EMPTY, LCRQ, OneLockMSQueue, TwoLockMSQueue


def build_onelock(name, machine, num_clients):
    table = OpTable()
    if name == "mp-server":
        prim = MPServer(machine, table, server_tid=0)
        tids = list(range(1, num_clients + 1))
    elif name == "shm-server":
        prim = ShmServer(machine, table, server_tid=0,
                         client_tids=range(1, num_clients + 1))
        tids = list(range(1, num_clients + 1))
    elif name == "HybComb":
        prim = HybComb(machine, table)
        tids = list(range(num_clients))
    else:
        prim = CCSynch(machine, table)
        tids = list(range(num_clients))
    q = OneLockMSQueue(prim)
    prim.start()
    return q, [prim], tids


def build_twolock(machine, num_clients):
    enq_prim = MPServer(machine, OpTable(), server_tid=0, server_core=0)
    deq_prim = MPServer(machine, OpTable(), server_tid=1, server_core=1)
    q = TwoLockMSQueue(enq_prim, deq_prim)
    enq_prim.start()
    deq_prim.start()
    return q, [enq_prim, deq_prim], list(range(2, num_clients + 2))


def build_lcrq(machine, num_clients, **kw):
    q = LCRQ(machine, **kw)
    return q, [], list(range(num_clients))


def run_all(machine, prims, procs):
    def coordinator():
        for p in procs:
            yield from p.join()
        for prim in prims:
            if hasattr(prim, "stop"):
                prim.stop()

    machine.sim.spawn(coordinator(), name="coordinator")
    machine.run()
    for p in procs:
        assert not p.alive


QUEUE_KINDS = ["mp-server", "HybComb", "shm-server", "CC-Synch", "two-lock", "lcrq"]


def build_queue(kind, machine, num_clients):
    if kind == "two-lock":
        return build_twolock(machine, num_clients)
    if kind == "lcrq":
        return build_lcrq(machine, num_clients)
    return build_onelock(kind, machine, num_clients)


@pytest.mark.parametrize("kind", QUEUE_KINDS)
def test_sequential_fifo(kind):
    m = Machine(tile_gx())
    q, prims, tids = build_queue(kind, m, 1)
    ctx = m.thread(tids[0])
    out = []

    def prog():
        for v in range(1, 21):
            yield from q.enqueue(ctx, v)
        for _ in range(20):
            v = yield from q.dequeue(ctx)
            out.append(v)
        empty = yield from q.dequeue(ctx)
        out.append(empty)

    procs = [m.spawn(ctx, prog())]
    run_all(m, prims, procs)
    assert out == list(range(1, 21)) + [EMPTY]


@pytest.mark.parametrize("kind", QUEUE_KINDS)
def test_dequeue_on_empty_returns_empty(kind):
    m = Machine(tile_gx())
    q, prims, tids = build_queue(kind, m, 1)
    ctx = m.thread(tids[0])

    def prog():
        v = yield from q.dequeue(ctx)
        return v

    procs = [m.spawn(ctx, prog())]
    run_all(m, prims, procs)
    assert procs[0].result == EMPTY


@pytest.mark.parametrize("kind", QUEUE_KINDS)
def test_spsc_order_preserved(kind):
    """Single producer, single consumer: strict FIFO."""
    m = Machine(tile_gx())
    q, prims, tids = build_queue(kind, m, 2)
    prod_ctx = m.thread(tids[0])
    cons_ctx = m.thread(tids[1])
    N = 60
    got = []

    def producer():
        for v in range(1, N + 1):
            yield from q.enqueue(prod_ctx, v)
            yield from prod_ctx.work(5)

    def consumer():
        while len(got) < N:
            v = yield from q.dequeue(cons_ctx)
            if v != EMPTY:
                got.append(v)
            else:
                yield from cons_ctx.work(20)

    procs = [m.spawn(prod_ctx, producer()), m.spawn(cons_ctx, consumer())]
    run_all(m, prims, procs)
    assert got == list(range(1, N + 1))


@pytest.mark.parametrize("kind", QUEUE_KINDS)
@pytest.mark.parametrize("seed", [1, 2])
def test_mpmc_conservation_and_per_producer_order(kind, seed):
    """Multi-producer/multi-consumer: every enqueued value is dequeued
    exactly once (plus remainder in the queue), and each producer's
    values come out in its program order."""
    m = Machine(tile_gx())
    nprod, ncons = 3, 3
    q, prims, tids = build_queue(kind, m, nprod + ncons)
    rng = np.random.default_rng(seed)
    N = 40
    streams = [[] for _ in range(ncons)]

    def producer(ctx, pid, thinks):
        for k in range(N):
            # value encodes (producer, sequence) for order checking
            yield from q.enqueue(ctx, pid * 1000 + k)
            yield from ctx.work(int(thinks[k]))

    def consumer(ctx, stream, thinks):
        k = 0
        misses = 0
        while k < N and misses < 10000:
            v = yield from q.dequeue(ctx)
            if v == EMPTY:
                misses += 1
                yield from ctx.work(30)
                continue
            stream.append(v)
            k += 1
            yield from ctx.work(int(thinks[k - 1]))

    procs = []
    for i in range(nprod):
        ctx = m.thread(tids[i])
        procs.append(m.spawn(ctx, producer(ctx, i + 1, rng.integers(0, 60, N))))
    for i in range(ncons):
        ctx = m.thread(tids[nprod + i])
        procs.append(m.spawn(ctx, consumer(ctx, streams[i], rng.integers(0, 60, N))))
    run_all(m, prims, procs)

    remaining = q.drain_to_list()
    consumed = [v for s in streams for v in s]
    all_out = consumed + remaining
    expected = [p * 1000 + k for p in range(1, nprod + 1) for k in range(N)]
    assert sorted(all_out) == sorted(expected), "lost or duplicated elements"
    # FIFO check: within one consumer's stream, each producer's values
    # must appear in that producer's program order.  (The *global*
    # interleaving of two consumers' append times does not reflect
    # linearization order, so it cannot be checked directly.)
    for s in streams:
        for p in range(1, nprod + 1):
            seq = [v % 1000 for v in s if v // 1000 == p]
            assert seq == sorted(seq), f"producer {p} order violated in a consumer stream"


def test_twolock_queue_parallel_enq_deq_make_progress():
    """Enqueues and dequeues run under different locks concurrently."""
    m = Machine(tile_gx())
    q, prims, tids = build_twolock(m, 2)
    pctx = m.thread(tids[0])
    cctx = m.thread(tids[1])
    got = []

    def producer():
        for v in range(1, 31):
            yield from q.enqueue(pctx, v)

    def consumer():
        while len(got) < 30:
            v = yield from q.dequeue(cctx)
            if v != EMPTY:
                got.append(v)
            else:
                yield from cctx.work(10)

    procs = [m.spawn(pctx, producer()), m.spawn(cctx, consumer())]
    run_all(m, prims, procs)
    assert got == list(range(1, 31))


# -- LCRQ specifics --------------------------------------------------------

def test_lcrq_ring_closing_appends_new_crq():
    """Overflowing a tiny ring must close it and link a successor."""
    m = Machine(tile_gx())
    q = LCRQ(m, ring_size=4)
    ctx = m.thread(0)
    out = []

    def prog():
        for v in range(12):  # 3x the ring size, no dequeues
            yield from q.enqueue(ctx, v)
        for _ in range(12):
            v = yield from q.dequeue(ctx)
            out.append(v)

    m.spawn(ctx, prog())
    m.run()
    assert out == list(range(12))
    assert q.crqs_allocated >= 2


def test_lcrq_rejects_oversized_values():
    m = Machine(tile_gx())
    q = LCRQ(m)
    ctx = m.thread(0)
    with pytest.raises(ValueError, match="32-bit"):
        # generator raises at construction time of the first send
        list(q.enqueue(ctx, 1 << 33))


def test_lcrq_many_threads_tiny_ring():
    """Heavy ring churn: conservation must hold across many closings."""
    m = Machine(tile_gx())
    q = LCRQ(m, ring_size=4)
    N = 25
    consumed = []

    def worker(ctx, pid):
        pending = 0
        for k in range(N):
            yield from q.enqueue(ctx, pid * 1000 + k)
            pending += 1
            v = yield from q.dequeue(ctx)
            if v != EMPTY:
                consumed.append(v)
            yield from ctx.work(7 * pid % 13)

    procs = []
    for i in range(6):
        ctx = m.thread(i)
        procs.append(m.spawn(ctx, worker(ctx, i + 1)))
    m.run()
    remaining = q.drain_to_list()
    expected = sorted(p * 1000 + k for p in range(1, 7) for k in range(N))
    assert sorted(consumed + remaining) == expected


def test_lcrq_validates_ring_size():
    with pytest.raises(ValueError):
        LCRQ(Machine(tile_gx()), ring_size=1)


# -- full linearizability on small recorded histories ----------------------
#
# The tests above check cheap necessary conditions (conservation,
# per-producer order); these record a complete concurrent history at a
# size the Wing&Gong checker handles in milliseconds and verify the
# real property.

@pytest.mark.parametrize("kind", QUEUE_KINDS)
def test_small_history_fully_linearizable(kind):
    from repro.analysis.linearizability import (
        History, LCRQSpec, PoolSpec, QueueSpec, check_linearizable)

    m = Machine(tile_gx())
    nthreads, ops_each = 4, 4
    q, prims, tids = build_queue(kind, m, nthreads)
    history = History()
    rng = np.random.default_rng(11)

    def worker(ctx, pid, thinks):
        for k in range(ops_each):
            val = pid * 100 + k
            t0 = m.now
            yield from q.enqueue(ctx, val)
            history.record(ctx.tid, "enq", val, None, t0, m.now)
            yield from ctx.work(int(thinks[2 * k]))
            t0 = m.now
            v = yield from q.dequeue(ctx)
            history.record(ctx.tid, "deq", None, v, t0, m.now)
            yield from ctx.work(int(thinks[2 * k + 1]))

    procs = []
    for i, tid in enumerate(tids):
        ctx = m.thread(tid)
        procs.append(m.spawn(ctx, worker(ctx, i + 1,
                                         rng.integers(0, 60, 2 * ops_each))))
    run_all(m, prims, procs)

    assert len(history) == 2 * nthreads * ops_each
    spec = LCRQSpec() if kind == "lcrq" else QueueSpec()
    assert check_linearizable(history, spec)
    # the FIFO history must also satisfy the weaker pool (bag) oracle
    assert check_linearizable(history, PoolSpec())


def test_lcrq_small_history_linearizable_under_ring_churn():
    """Tiny ring: segment closing/hopping must stay externally FIFO."""
    from repro.analysis.linearizability import (
        History, LCRQSpec, check_linearizable)

    m = Machine(tile_gx())
    q = LCRQ(m, ring_size=4)
    history = History()
    rng = np.random.default_rng(23)

    def worker(ctx, pid, thinks):
        # two enqueues before the dequeues keep up to 8 elements in
        # flight across threads -- enough to overflow the 4-slot ring
        for k in range(3):
            for j in (2 * k, 2 * k + 1):
                val = pid * 100 + j
                t0 = m.now
                yield from q.enqueue(ctx, val)
                history.record(ctx.tid, "enq", val, None, t0, m.now)
            for _ in range(2):
                t0 = m.now
                v = yield from q.dequeue(ctx)
                history.record(ctx.tid, "deq", None, v, t0, m.now)
            yield from ctx.work(int(thinks[k]))

    for i in range(4):
        ctx = m.thread(i)
        m.spawn(ctx, worker(ctx, i + 1, rng.integers(0, 40, 5)))
    m.run()
    assert q.crqs_allocated >= 2, "ring never closed; raise the op count"
    assert check_linearizable(history, LCRQSpec())
