"""Chrome/Perfetto trace export: JSON schema and track-layout checks."""

import json

import repro.obs as obs
from repro.core import MPServer, OpTable
from repro.machine import Machine, tile_gx
from repro.obs.perfetto import TraceCollector


def _run_mpserver(num_clients=4, ops=20):
    m = Machine(tile_gx())
    table = OpTable()
    a = m.mem.alloc(1)

    def body(c, arg):
        v = yield from c.load(a)
        yield from c.store(a, v + arg)
        return v + arg

    op = table.register(body)
    prim = MPServer(m, table, server_tid=0)
    prim.start()

    def client(ctx, n):
        for _ in range(n):
            yield from prim.apply_op(ctx, op, 1)

    for t in range(1, num_clients + 1):
        ctx = m.thread(t)
        m.spawn(ctx, client(ctx, ops))
    return m


def test_chrome_trace_schema(tmp_path):
    with obs.observed(trace=True) as session:
        m = _run_mpserver()
        m.run()
        path = tmp_path / "trace.json"
        n = session.export_chrome_trace(str(path))
    doc = json.loads(path.read_text())
    assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
    events = doc["traceEvents"]
    assert len(events) == n > 0

    meta = [e for e in events if e["ph"] == "M"]
    real = [e for e in events if e["ph"] != "M"]
    # one process per traced machine, named after its label
    procs = [e for e in meta if e["name"] == "process_name"]
    assert len(procs) == 1 and procs[0]["pid"] == 0

    # a thread_name track exists for every core that emitted events
    named = {(e["pid"], e["tid"]): e["args"]["name"]
             for e in meta if e["name"] == "thread_name"}
    used = {(e["pid"], e["tid"]) for e in real}
    assert used <= set(named)
    # the server core and at least one client core have core tracks
    assert named[(0, 0)] == "core 0"
    assert any(nm == "udn" for nm in named.values())

    # every real event: required keys, monotonic ts per track after sort
    for e in real:
        assert e["ph"] in ("X", "i")
        assert isinstance(e["ts"], int) and e["ts"] >= 0
        if e["ph"] == "X":
            assert isinstance(e["dur"], int) and e["dur"] >= 0
        else:
            assert e["s"] == "t"
        assert "name" in e and "cat" in e and "args" in e
    ts = [e["ts"] for e in real]
    assert ts == sorted(ts)


def test_trace_events_per_core_track():
    with obs.observed(trace=True) as session:
        m = _run_mpserver(num_clients=3)
        m.run()
    col = session.machines[0].trace
    events = col.trace_events(pid=0)
    real = [e for e in events if e["ph"] != "M"]
    # clients 1..3 sit on cores 1..3: each core track must carry events
    tids = {e["tid"] for e in real}
    assert {0, 1, 2, 3} <= tids
    names = col.track_names()
    assert names[col.sim_track] == "sim"
    assert names[col.udn_track] == "udn"


def test_trace_limit_counts_drops():
    col = TraceCollector(num_cores=2, limit=3)
    for i in range(10):
        col.on_event(i, "cache.miss",
                     {"core": 0, "line": 1, "op": "load",
                      "transition": "mem->S", "latency": 5})
    assert len(col.records) == 3
    assert col.dropped == 7


def test_merged_export_assigns_one_pid_per_machine(tmp_path):
    with obs.observed(trace=True) as session:
        for _ in range(2):
            m = _run_mpserver(num_clients=2, ops=5)
            m.run()
        path = tmp_path / "merged.json"
        session.export_chrome_trace(str(path))
    doc = json.loads(path.read_text())
    pids = {e["pid"] for e in doc["traceEvents"]}
    assert pids == {0, 1}


def test_export_without_trace_raises(tmp_path):
    with obs.observed(trace=False) as session:
        m = Machine(tile_gx())
        assert m.obs.trace is None
        try:
            session.export_chrome_trace(str(tmp_path / "x.json"))
        except RuntimeError:
            pass
        else:
            raise AssertionError("expected RuntimeError")


def test_combiner_spans_recorded():
    from repro.core import CCSynch
    with obs.observed(trace=True) as session:
        m = Machine(tile_gx())
        table = OpTable()
        a = m.mem.alloc(1)

        def body(c, arg):
            v = yield from c.load(a)
            yield from c.store(a, v + 1)
            return v

        op = table.register(body)
        prim = CCSynch(m, table)

        def client(ctx, n):
            for _ in range(n):
                yield from prim.apply_op(ctx, op, 0)

        for t in range(4):
            ctx = m.thread(t)
            m.spawn(ctx, client(ctx, 10))
        m.run()
    col = session.machines[0].trace
    combines = [r for r in col.records if r[3] == "combine"]
    assert combines
    for ts, dur, _tid, _name, cat, args in combines:
        assert cat == "combiner"
        assert dur >= 0
        assert args["prim"] == "CC-Synch"


def test_export_with_empty_tracks(tmp_path):
    """A machine that never ran still exports a valid, loadable trace:
    process/thread metadata only, no crash on empty per-core tracks."""
    with obs.observed(trace=True) as session:
        Machine(tile_gx())
        path = tmp_path / "empty.json"
        session.export_chrome_trace(str(path))
    doc = json.loads(path.read_text())
    events = doc["traceEvents"]
    assert all(e["ph"] == "M" for e in events)  # metadata records only
    names = {e["name"] for e in events}
    assert "process_name" in names  # no threads ran -> no thread tracks


# -- counter tracks --------------------------------------------------------

def test_counter_events_shape():
    from repro.obs.perfetto import counter_events
    from repro.obs.timeseries import Sampler

    sampler = Sampler(None, every=10, buckets=8)
    sampler.register("goodput", lambda: 3.0, kind="gauge", unit="Mops")
    sampler.register("plain", lambda: 1.0)
    sampler.on_tick(10)
    events = counter_events(7, sampler)
    assert events
    for e in events:
        assert e["ph"] == "C" and e["cat"] == "telemetry"
        assert e["pid"] == 7 and e["tid"] == 0
        assert set(e["args"]) == {"value"}
    names = {e["name"] for e in events}
    assert "goodput (Mops)" in names   # unit folds into the track label
    assert "plain" in names


def test_sampled_series_ride_the_exported_trace(tmp_path):
    with obs.observed(trace=True, timeseries=True,
                      sample_every=256) as session:
        m = _run_mpserver()
        m.run()
        path = tmp_path / "trace.json"
        session.export_chrome_trace(str(path))
    doc = json.loads(path.read_text())
    counters = [e for e in doc["traceEvents"] if e.get("ph") == "C"]
    assert counters
    names = {e["name"] for e in counters}
    assert any(n.startswith("core.busy") for n in names)
    # counter tracks land on the same pid as the machine's span events
    span_pids = {e["pid"] for e in doc["traceEvents"]
                 if e.get("ph") == "X"}
    assert {e["pid"] for e in counters} <= span_pids


def test_unmatched_counter_labels_get_their_own_process(tmp_path):
    from repro.obs.perfetto import write_chrome_trace
    from repro.obs.timeseries import Sampler

    col = TraceCollector(num_cores=1)
    sampler = Sampler(None, every=10, buckets=8)
    sampler.register("g", lambda: 1.0)
    sampler.on_tick(10)
    path = str(tmp_path / "t.json")
    write_chrome_trace([("run-a", col)], path,
                       counters=[("run-a", sampler), ("other", sampler)])
    doc = json.loads((tmp_path / "t.json").read_text())
    meta = {e["args"]["name"]: e["pid"] for e in doc["traceEvents"]
            if e.get("ph") == "M" and e["name"] == "process_name"}
    assert meta["run-a"] == 0
    assert meta["other"] == 1  # fresh pid for the unmatched label
    counter_pids = {e["pid"] for e in doc["traceEvents"]
                    if e.get("ph") == "C"}
    assert counter_pids == {0, 1}
