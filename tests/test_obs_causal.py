"""Tests for per-op causal tracing: CausalCollector + Perfetto flows.

The core guarantee under test is *cycle-exactness*: for every completed
operation, the blame categories painted by the critical-path analysis
partition the op's ``[t0, t1)`` interval, so they sum to the measured
latency with zero slack -- and the latencies reconstructed from the
event stream are the exact multiset the driver itself measured.
"""

import json

import pytest

import repro.obs as obs
from repro.analysis.critpath import CATEGORIES, analyze_collector
from repro.obs.causal import CAUSAL_KINDS, CausalCollector
from repro.workload.driver import WorkloadSpec
from repro.workload.scenarios import run_counter_benchmark

SPEC = WorkloadSpec(warmup_cycles=5_000, measure_cycles=15_000)
APPROACHES = ("mp-server", "shm-server", "HybComb", "CC-Synch")


def _causal_run(approach, threads=5, spec=SPEC, trace=False):
    with obs.observed(causal=True, trace=trace) as session:
        r = run_counter_benchmark(approach, threads, spec=spec)
    (ob,) = session.machines
    return r, ob


# -- cycle-exact blame ------------------------------------------------------

@pytest.mark.parametrize("approach", APPROACHES)
def test_blame_partitions_latency_exactly(approach):
    r, ob = _causal_run(approach)
    rep = analyze_collector(ob.causal, label=approach)
    assert rep.ops, "no completed ops reconstructed"
    for o in rep.ops:
        assert sum(o.blame.values()) == o.latency, (
            f"op {o.op}: blame {o.blame} does not sum to latency {o.latency}"
        )


@pytest.mark.parametrize("approach", APPROACHES)
def test_segments_partition_the_op_interval(approach):
    _r, ob = _causal_run(approach)
    rep = analyze_collector(ob.causal, label=approach)
    for o in rep.ops:
        assert o.segments[0][0] == o.t0
        assert o.segments[-1][1] == o.t1
        for (s0, e0, c0), (s1, _e1, c1) in zip(o.segments, o.segments[1:]):
            assert e0 == s1, "gap or overlap between segments"
            assert c0 != c1, "uncompressed adjacent segments"
        assert all(cat in CATEGORIES for _s, _e, cat in o.segments)


@pytest.mark.parametrize("approach", APPROACHES)
def test_reconstructed_latencies_match_driver_samples(approach):
    r, ob = _causal_run(approach)
    rep = analyze_collector(ob.causal, label=approach)
    got = sorted(o.latency for o in rep.measured_ops)
    want = sorted(r.latency_samples)
    assert got == want, (
        f"causal reconstruction disagrees with the driver: "
        f"{len(got)} vs {len(want)} measured ops"
    )


def test_whole_run_path_exists_and_is_labelled():
    _r, ob = _causal_run("mp-server")
    rep = analyze_collector(ob.causal, label="mp-server")
    assert rep.path, "empty whole-run critical path"
    assert rep.path_cycles > 0
    assert sum(rep.path_blame.values()) == rep.path_cycles
    assert rep.path_dominant in CATEGORIES
    # the path is a forward-in-time chain
    starts = [s for _o, s, _e, _c in rep.path]
    assert starts == sorted(starts)


def test_in_flight_ops_at_window_end_are_counted_incomplete():
    _r, ob = _causal_run("mp-server", threads=4)
    rep = analyze_collector(ob.causal)
    # each app thread has at most one op open when the run stops
    assert 0 <= rep.incomplete_ops <= 4


# -- collector behaviour ----------------------------------------------------

def test_causal_collector_truncates_at_limit_and_flags_it():
    col = CausalCollector(limit=5)
    assert not col.truncated
    for i in range(9):
        col.on_event(i, "op.begin", {"op": i, "core": 0, "tid": 0})
    assert len(col.events) == 5
    assert col.dropped == 4
    assert col.truncated
    rep = analyze_collector(col)
    assert rep.truncated


def test_causal_collector_ignores_irrelevant_kinds():
    col = CausalCollector(limit=10)
    col.on_event(0, "cache.miss", {"core": 0})      # not a causal kind
    col.on_event(1, "noc.link", {"a": 0, "b": 1})   # not a causal kind
    col.on_event(2, "op.begin", {"op": 0, "core": 0, "tid": 0})
    assert [k for _t, k, _f in col.events] == ["op.begin"]
    assert col.dropped == 0
    assert "cache.miss" not in CAUSAL_KINDS


def test_causal_collector_copies_field_dicts():
    col = CausalCollector()
    f = {"op": 1, "core": 0, "tid": 0}
    col.on_event(0, "op.begin", f)
    f["op"] = 999  # emit sites reuse dicts on hot paths
    assert col.events[0][2]["op"] == 1


def test_causal_tracing_is_a_pure_observer():
    base = run_counter_benchmark("HybComb", 5, spec=SPEC)
    traced, _ob = _causal_run("HybComb")
    assert traced.ops == base.ops
    assert traced.per_thread_ops == base.per_thread_ops
    assert traced.latency_samples == base.latency_samples


# -- Perfetto flow events ---------------------------------------------------

def _flow_chains(trace_doc):
    """flow_id -> list of (phase, tid, ts) sorted by ts."""
    chains = {}
    for ev in trace_doc["traceEvents"]:
        if ev.get("ph") in ("s", "t", "f") and ev.get("name") == "op-flow":
            chains.setdefault(ev["id"], []).append(
                (ev["ph"], ev["tid"], ev["ts"]))
    for c in chains.values():
        c.sort(key=lambda x: x[2])
    return chains


@pytest.mark.parametrize("approach", APPROACHES)
def test_trace_contains_complete_flow_chains(approach, tmp_path):
    _r, ob = _causal_run(approach, trace=True)
    path = tmp_path / "trace.json"
    ob.export_chrome_trace(str(path))
    doc = json.loads(path.read_text())
    chains = _flow_chains(doc)
    full = [c for c in chains.values()
            if [p for p, _t, _ts in c][0] == "s" and
            any(p == "t" for p, _t, _ts in c) and
            c[-1][0] == "f"]
    assert full, f"no complete s->t->f flow chain for {approach}"
    # the "f" binding is marked as enclosing-slice per the trace format
    fins = [ev for ev in doc["traceEvents"]
            if ev.get("ph") == "f" and ev.get("name") == "op-flow"]
    assert fins and all(ev.get("bp") == "e" for ev in fins)


@pytest.mark.parametrize("approach", ("mp-server", "shm-server"))
def test_server_flows_cross_cores(approach, tmp_path):
    """For dedicated-server algorithms, an op's flow must hop from the
    client core's track to the server core's track and back."""
    _r, ob = _causal_run(approach, trace=True)
    path = tmp_path / "trace.json"
    ob.export_chrome_trace(str(path))
    chains = _flow_chains(json.loads(path.read_text()))
    crossing = 0
    for c in chains.values():
        tids = {tid for p, tid, _ts in c if p == "t"}
        start = [tid for p, tid, _ts in c if p == "s"]
        if start and tids and tids != set(start):
            crossing += 1
    assert crossing > 0, f"no cross-core flow chains for {approach}"
