"""Unit tests for Resource / Condition / Channel (repro.sim.resources)."""

import pytest

from repro.sim import Channel, Condition, Resource, Simulator


def test_resource_uncontended_acquire_is_immediate():
    sim = Simulator()
    res = Resource(sim)

    def proc():
        yield from res.acquire()
        t = sim.now
        res.release()
        return t

    p = sim.spawn(proc())
    sim.run()
    assert p.result == 0


def test_resource_serializes_fifo():
    sim = Simulator()
    res = Resource(sim)
    order = []

    def proc(name):
        yield from res.acquire()
        order.append((name, sim.now))
        yield 10
        res.release()

    for name in ("a", "b", "c"):
        sim.spawn(proc(name))
    sim.run()
    assert order == [("a", 0), ("b", 10), ("c", 20)]


def test_resource_capacity_two():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    starts = []

    def proc():
        yield from res.use(10)
        starts.append(sim.now)

    for _ in range(4):
        sim.spawn(proc())
    sim.run()
    # two run concurrently, the next two wait one service time
    assert starts == [10, 10, 20, 20]


def test_resource_release_without_acquire_raises():
    sim = Simulator()
    res = Resource(sim)
    with pytest.raises(RuntimeError):
        res.release()


def test_resource_wait_stats():
    sim = Simulator()
    res = Resource(sim)

    def holder():
        yield from res.use(50)

    def waiter():
        yield from res.use(1)

    sim.spawn(holder())
    sim.spawn(waiter())
    sim.run()
    assert res.total_acquisitions == 2
    assert res.total_wait_cycles == 50


def test_resource_invalid_capacity():
    with pytest.raises(ValueError):
        Resource(Simulator(), capacity=0)


def test_condition_wakes_only_current_waiters():
    sim = Simulator()
    cond = Condition(sim)
    woken = []

    def waiter(name, delay):
        yield delay
        yield from cond.wait()
        woken.append((name, sim.now))

    def notifier():
        yield 10
        cond.notify_all()
        yield 10
        cond.notify_all()

    sim.spawn(waiter("early", 0))   # woken by first notify (t=10)
    sim.spawn(waiter("late", 15))   # woken by second notify (t=20)
    sim.spawn(notifier())
    sim.run()
    assert woken == [("early", 10), ("late", 20)]


def test_condition_is_rearmable():
    sim = Simulator()
    cond = Condition(sim)
    count = []

    def waiter():
        for _ in range(3):
            yield from cond.wait()
            count.append(sim.now)

    def notifier():
        for t in (5, 9, 14):
            while sim.now < t:
                yield t - sim.now
            cond.notify_all()

    sim.spawn(waiter())
    sim.spawn(notifier())
    sim.run()
    assert count == [5, 9, 14]


def test_channel_put_then_get():
    sim = Simulator()
    ch = Channel(sim)
    ch.put("x")

    def getter():
        item = yield from ch.get()
        return item

    p = sim.spawn(getter())
    sim.run()
    assert p.result == "x"


def test_channel_get_blocks_until_put():
    sim = Simulator()
    ch = Channel(sim)

    def getter():
        item = yield from ch.get()
        return (item, sim.now)

    def putter():
        yield 30
        ch.put("late")

    g = sim.spawn(getter())
    sim.spawn(putter())
    sim.run()
    assert g.result == ("late", 30)


def test_channel_multiple_getters_fifo():
    sim = Simulator()
    ch = Channel(sim)
    got = []

    def getter(name):
        item = yield from ch.get()
        got.append((name, item))

    def putter():
        yield 1
        ch.put(1)
        yield 1
        ch.put(2)

    sim.spawn(getter("g1"))
    sim.spawn(getter("g2"))
    sim.spawn(putter())
    sim.run()
    assert got == [("g1", 1), ("g2", 2)]


def test_channel_len():
    sim = Simulator()
    ch = Channel(sim)
    assert len(ch) == 0
    ch.put(1)
    ch.put(2)
    assert len(ch) == 2


# -- Semaphore ---------------------------------------------------------------

def test_semaphore_down_with_credit_is_immediate():
    from repro.sim import Semaphore
    sim = Simulator()
    sem = Semaphore(sim, initial=2)

    def proc():
        yield from sem.down()
        yield from sem.down()
        return sim.now

    p = sim.spawn(proc())
    sim.run()
    assert p.result == 0
    assert sem.count == 0


def test_semaphore_blocks_until_up():
    from repro.sim import Semaphore
    sim = Simulator()
    sem = Semaphore(sim)

    def waiter():
        yield from sem.down()
        return sim.now

    def poster():
        yield 40
        sem.up()

    p = sim.spawn(waiter())
    sim.spawn(poster())
    sim.run()
    assert p.result == 40


def test_semaphore_fifo_wakeups():
    from repro.sim import Semaphore
    sim = Simulator()
    sem = Semaphore(sim)
    order = []

    def waiter(name, delay):
        yield delay
        yield from sem.down()
        order.append(name)

    def poster():
        yield 100
        sem.up()
        sem.up()

    sim.spawn(waiter("a", 1))
    sim.spawn(waiter("b", 2))
    sim.spawn(poster())
    sim.run()
    assert order == ["a", "b"]


def test_semaphore_validates_initial():
    from repro.sim import Semaphore
    with pytest.raises(ValueError):
        Semaphore(Simulator(), initial=-1)


# -- Barrier -------------------------------------------------------------------

def test_barrier_releases_all_at_once():
    from repro.sim import Barrier
    sim = Simulator()
    bar = Barrier(sim, parties=3)
    done = []

    def party(delay):
        yield delay
        idx = yield from bar.wait()
        done.append((sim.now, idx))

    for d in (5, 10, 30):
        sim.spawn(party(d))
    sim.run()
    times = [t for t, _ in done]
    assert times == [30, 30, 30]
    assert sorted(idx for _, idx in done) == [0, 1, 2]


def test_barrier_is_reusable():
    from repro.sim import Barrier
    sim = Simulator()
    bar = Barrier(sim, parties=2)
    rounds = []

    def party(name):
        for r in range(3):
            yield 10
            yield from bar.wait()
            rounds.append((name, r, sim.now))

    sim.spawn(party("x"))
    sim.spawn(party("y"))
    sim.run()
    assert len(rounds) == 6
    # both parties finish each round at the same instant
    for r in range(3):
        ts = [t for n, rr, t in rounds if rr == r]
        assert ts[0] == ts[1]


def test_barrier_single_party_never_blocks():
    from repro.sim import Barrier
    sim = Simulator()
    bar = Barrier(sim, parties=1)

    def proc():
        idx = yield from bar.wait()
        return idx, sim.now

    p = sim.spawn(proc())
    sim.run()
    assert p.result == (0, 0)


def test_barrier_validates_parties():
    from repro.sim import Barrier
    with pytest.raises(ValueError):
        Barrier(Simulator(), parties=0)
