"""Fault injection and recovery (repro.faults + the FT protocol layers).

Covers the robustness acceptance criteria: a seeded plan crashing the
MP-SERVER primary mid-run lets clients fail over and the recorded
history stays linearizable; with recovery disabled the deadlock detector
names every blocked client; all injection is deterministic under a fixed
seed; and an empty plan changes nothing.
"""

import pytest

from repro.analysis.linearizability import CounterSpec, History, check_linearizable
from repro.core import HybComb, MPServer, OpTable
from repro.core.mp_server import ServerUnavailable
from repro.faults import (
    CrashThread,
    FaultInjector,
    FaultPlan,
    PreemptThread,
    SlowThread,
    UdnJitter,
)
from repro.machine import Machine
from repro.objects import LockedCounter
from repro.sim.engine import DeadlockError
from repro.workload.driver import WorkloadSpec
from repro.workload.scenarios import (
    run_counter_benchmark,
    run_fault_recovery_benchmark,
)

QUICK = WorkloadSpec.quick()


# ---------------------------------------------------------------------------
# plan validation
# ---------------------------------------------------------------------------

def test_plan_validates_fields():
    with pytest.raises(ValueError):
        CrashThread(tid=0, at_cycle=-1)
    with pytest.raises(ValueError):
        PreemptThread(tid=0, start_cycle=0, run_cycles=0, preempt_cycles=10)
    with pytest.raises(ValueError):
        SlowThread(tid=0, factor=1.0)
    with pytest.raises(ValueError):
        UdnJitter(max_cycles=0)


def test_empty_plan_is_falsy():
    assert not FaultPlan.none()
    assert FaultPlan(faults=(UdnJitter(4),))


def test_injector_install_is_single_shot():
    m = Machine()
    inj = FaultInjector(m, FaultPlan.none()).install()
    with pytest.raises(RuntimeError, match="already installed"):
        inj.install()


# ---------------------------------------------------------------------------
# the headline drill: primary crash -> failover, linearizable history
# ---------------------------------------------------------------------------

def _drill(recovery: bool, num_clients: int = 4, ops: int = 12,
           crash_at: int = 800):
    machine = Machine()
    if recovery:
        prim = MPServer(machine, OpTable(), server_tid=0, server_core=0,
                        backup_tid=1, backup_core=1, request_timeout=2_000)
    else:
        prim = MPServer(machine, OpTable(), server_tid=0, server_core=0)
    counter = LockedCounter(prim)
    prim.start()
    ctxs = [machine.thread(t) for t in range(2, 2 + num_clients)]
    history = History()

    def client(ctx):
        for _ in range(ops):
            t0 = machine.now
            v = yield from counter.increment(ctx)
            history.record(ctx.tid, "inc", None, v, t0, machine.now)
            yield from ctx.work(100)

    for ctx in ctxs:
        machine.spawn(ctx, client(ctx), name=f"client-{ctx.tid}")
    plan = FaultPlan(seed=3, faults=(CrashThread(tid=0, at_cycle=crash_at),))
    FaultInjector(machine, plan).install()
    machine.run()
    return machine, prim, history


def test_primary_crash_fails_over_and_history_linearizes():
    machine, prim, history = _drill(recovery=True)
    assert len(history) == 4 * 12  # every op completed despite the crash
    assert check_linearizable(history, CounterSpec())
    stats = prim.recovery_stats
    assert stats["ops_retried"] >= 1
    assert stats["failovers"] >= 1
    assert stats["time_to_recovery"] is not None
    assert 0 < stats["time_to_recovery"] < 50_000  # finite and bounded


def test_without_recovery_deadlock_detector_names_every_client():
    with pytest.raises(DeadlockError) as ei:
        _drill(recovery=False)
    msg = str(ei.value)
    blocked_names = {p.name for p in ei.value.blocked}
    assert blocked_names == {f"client-{t}" for t in range(2, 6)}
    for t in range(2, 6):
        assert f"client-{t}" in msg
    assert "udn message arrival" in msg  # says WHAT they wait on


def test_crash_recovery_is_deterministic():
    _m1, p1, h1 = _drill(recovery=True)
    _m2, p2, h2 = _drill(recovery=True)
    assert p1.recovery_stats == p2.recovery_stats
    assert [(o.tid, o.retval, o.invoke_t, o.response_t) for o in h1.ops] == \
           [(o.tid, o.retval, o.invoke_t, o.response_t) for o in h2.ops]


def test_client_gives_up_after_max_attempts_when_all_servers_die():
    machine = Machine()
    prim = MPServer(machine, OpTable(), server_tid=0, server_core=0,
                    backup_tid=1, backup_core=1, request_timeout=500,
                    max_attempts=3)
    counter = LockedCounter(prim)
    prim.start()
    ctx = machine.thread(2)

    def client(c):
        for _ in range(50):
            yield from counter.increment(c)

    machine.spawn(ctx, client(ctx), name="client-2")
    plan = FaultPlan(faults=(CrashThread(tid=0, at_cycle=400),
                             CrashThread(tid=1, at_cycle=400)))
    FaultInjector(machine, plan).install()
    with pytest.raises(ServerUnavailable, match="after 3 attempts"):
        machine.run()


def test_backup_requires_timeout():
    m = Machine()
    with pytest.raises(ValueError, match="request_timeout"):
        MPServer(m, OpTable(), server_tid=0, backup_tid=1)


# ---------------------------------------------------------------------------
# benchmark-level: determinism and zero-fault parity
# ---------------------------------------------------------------------------

def _crash_plan(spec):
    at = spec.warmup_cycles + spec.measure_cycles // 3
    return FaultPlan(seed=1, faults=(CrashThread(tid=0, at_cycle=at),))


def test_fault_recovery_benchmark_two_runs_identical():
    r1 = run_fault_recovery_benchmark(4, spec=QUICK, fault_plan=_crash_plan(QUICK))
    r2 = run_fault_recovery_benchmark(4, spec=QUICK, fault_plan=_crash_plan(QUICK))
    assert r1.ops == r2.ops
    assert r1.per_thread_ops == r2.per_thread_ops
    assert r1.mean_latency_cycles == r2.mean_latency_cycles
    assert r1.time_to_recovery_cycles == r2.time_to_recovery_cycles
    assert r1.ops_retried == r2.ops_retried
    assert r1.failovers == r2.failovers


def test_fault_recovery_benchmark_recovers_mid_window():
    r = run_fault_recovery_benchmark(4, spec=QUICK, fault_plan=_crash_plan(QUICK))
    assert r.ops > 0
    assert r.failovers >= 4          # every client switched to the backup
    assert r.time_to_recovery_cycles is not None
    assert r.time_to_recovery_cycles < QUICK.measure_cycles


def test_zero_fault_plan_leaves_fig3a_run_unchanged():
    base = run_counter_benchmark("mp-server", 6, spec=QUICK)
    nofault = run_counter_benchmark("mp-server", 6, spec=QUICK,
                                    fault_plan=FaultPlan.none())
    assert nofault.ops == base.ops
    assert nofault.per_thread_ops == base.per_thread_ops
    assert nofault.mean_latency_cycles == base.mean_latency_cycles


# ---------------------------------------------------------------------------
# preemption, slowdown, jitter
# ---------------------------------------------------------------------------

def test_preempted_server_stalls_clients_but_run_completes():
    spec = WorkloadSpec(warmup_cycles=10_000, measure_cycles=40_000)
    plan = FaultPlan(faults=(
        PreemptThread(tid=0, start_cycle=12_000, run_cycles=500,
                      preempt_cycles=1_500, until_cycle=40_000),
    ))
    healthy = run_counter_benchmark("mp-server", 4, spec=spec)
    bumpy = run_counter_benchmark("mp-server", 4, spec=spec, fault_plan=plan)
    assert bumpy.ops > 0
    # a 25%-duty-cycle server must cost real throughput
    assert bumpy.ops < healthy.ops


def test_slow_thread_dilates_its_progress():
    m = Machine()
    ctx0, ctx1 = m.thread(0), m.thread(1)
    finish = {}

    def worker(ctx, label):
        for _ in range(100):
            yield from ctx.work(100)
        finish[label] = m.now

    m.spawn(ctx0, worker(ctx0, "slow"), name="slow")
    m.spawn(ctx1, worker(ctx1, "fast"), name="fast")
    plan = FaultPlan(faults=(SlowThread(tid=0, factor=3.0, quantum=200),))
    FaultInjector(m, plan).install()
    m.run()
    assert finish["fast"] == 100 * 100
    # the dilated thread takes about factor x as long
    assert finish["slow"] >= 2.5 * finish["fast"]


def test_udn_jitter_is_seeded_and_deterministic():
    def run(seed):
        m = Machine()
        t0, t1 = m.thread(0), m.thread(1)
        arrivals = []

        def sender(ctx):
            for i in range(20):
                yield from ctx.send(1, [i])
                yield from ctx.work(50)

        def receiver(ctx):
            for _ in range(20):
                yield from ctx.receive(1)
                arrivals.append(m.now)

        m.spawn(t0, sender(t0))
        m.spawn(t1, receiver(t1))
        FaultInjector(m, FaultPlan(seed=seed,
                                   faults=(UdnJitter(max_cycles=40),))).install()
        m.run()
        return arrivals

    a = run(5)
    assert a == run(5)       # same seed -> identical delivery times
    assert a != run(6)       # different seed -> different jitter


def test_jitter_requires_udn_profile():
    from repro.machine import x86_like

    m = Machine(x86_like())
    with pytest.raises(ValueError, match="hardware message passing"):
        FaultInjector(m, FaultPlan(faults=(UdnJitter(8),))).install()


# ---------------------------------------------------------------------------
# HybComb combiner lease
# ---------------------------------------------------------------------------

def _hybcomb_crash(fixed: bool):
    m = Machine()
    kwargs = dict(lease_cycles=1_500, request_timeout=1_500)
    if fixed:
        prim = HybComb(m, OpTable(), fixed_combiner_tid=0, **kwargs)
        tids = range(1, 5)
        crash_tid = 0
    else:
        prim = HybComb(m, OpTable(), max_ops=200, **kwargs)
        tids = range(4)
        crash_tid = 2
    counter = LockedCounter(prim)
    prim.start()
    ctxs = [m.thread(t) for t in tids]

    def client(ctx, n):
        for _ in range(n):
            yield from counter.increment(ctx)
            yield from ctx.work(50)

    procs = [m.spawn(c, client(c, 150), name=f"client-{c.tid}") for c in ctxs]
    plan = FaultPlan(seed=1, faults=(CrashThread(tid=crash_tid, at_cycle=6_000),))
    FaultInjector(m, plan).install()
    m.run()
    return prim, procs, crash_tid


def test_hybcomb_combiner_crash_triggers_takeover():
    prim, procs, crash_tid = _hybcomb_crash(fixed=False)
    assert prim.takeovers >= 1
    for p in procs:
        if p.name == f"client-{crash_tid}":
            assert p.killed
        else:
            assert not p.alive and not p.killed  # survivors all finished


def test_hybcomb_fixed_combiner_crash_recovers():
    prim, procs, crash_tid = _hybcomb_crash(fixed=True)
    assert prim.takeovers >= 1
    survivors = [p for p in procs if p.name != f"client-{crash_tid}"]
    assert all(not p.alive and not p.killed for p in survivors)
    assert prim.recovery_stats["time_to_recovery"] is not None


def test_hybcomb_lease_params_must_come_together():
    m = Machine()
    with pytest.raises(ValueError, match="both or neither"):
        HybComb(m, OpTable(), lease_cycles=1000)


def test_hybcomb_without_faults_matches_plain_run_under_lease_off():
    base = run_counter_benchmark("HybComb", 4, spec=QUICK)
    again = run_counter_benchmark("HybComb", 4, spec=QUICK,
                                  fault_plan=FaultPlan.none())
    assert base.ops == again.ops
    assert base.per_thread_ops == again.per_thread_ops
