"""Pytest/hypothesis configuration for the test suite.

Two hypothesis profiles:

* ``default`` (local runs) -- randomized examples; on failure, print the
  reproduction blob (``@reproduce_failure``) so the exact failing input
  can be replayed without guessing seeds.
* ``ci`` -- fully derandomized: hypothesis derives its choices from each
  test's name, so every CI run executes the identical example set and a
  red build always reproduces locally with ``HYPOTHESIS_PROFILE=ci``.

Select with the ``HYPOTHESIS_PROFILE`` environment variable.
"""

import os

from hypothesis import settings

settings.register_profile("default", print_blob=True)
settings.register_profile("ci", derandomize=True, print_blob=True)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))
