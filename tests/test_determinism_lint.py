"""Lint: the simulated world must not read host time or host randomness.

Determinism (same seed => bit-identical FigureData) is what makes the
parallel sweep runner, the golden fingerprints, and the benchmark
regression gate all sound.  It survives only as long as nothing inside
the simulator core (``repro.sim``) or the machine model (``repro.mem``)
consults the host: ``time`` would leak wall-clock into cycle
accounting, ``random`` would leak unseeded host entropy into model
decisions.  This test walks the ASTs of both packages and fails on any
import of either module.  (Host timing for *reporting* lives outside
the model, in ``repro.workload.driver``.)
"""

import ast
import pathlib

import repro.mem
import repro.sim

FORBIDDEN = {"time", "random"}


def _package_sources(pkg):
    root = pathlib.Path(pkg.__file__).parent
    files = sorted(root.rglob("*.py"))
    assert files, f"no sources found under {root}"
    return files


def _forbidden_imports(path):
    tree = ast.parse(path.read_text(), filename=str(path))
    hits = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] in FORBIDDEN:
                    hits.append((node.lineno, alias.name))
        elif isinstance(node, ast.ImportFrom):
            if node.module and node.module.split(".")[0] in FORBIDDEN:
                hits.append((node.lineno, node.module))
    return hits


def test_sim_and_mem_never_import_time_or_random():
    offenders = []
    for pkg in (repro.sim, repro.mem):
        for path in _package_sources(pkg):
            for lineno, name in _forbidden_imports(path):
                offenders.append(f"{path}:{lineno}: imports {name}")
    assert not offenders, (
        "host time/randomness leaked into the simulated world:\n  "
        + "\n  ".join(offenders)
    )
