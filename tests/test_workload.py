"""Tests for the workload driver, metrics, and scenario builders."""

import pytest

from repro.core import MPServer, OpTable
from repro.machine import Machine, tile_gx
from repro.objects import LockedCounter
from repro.workload import (
    WorkloadSpec,
    run_counter_benchmark,
    run_cs_length_benchmark,
    run_queue_benchmark,
    run_stack_benchmark,
    run_workload,
)
from repro.workload.metrics import RunResult


# -- RunResult math ---------------------------------------------------------

def test_throughput_conversion():
    r = RunResult(name="x", num_threads=1, window_cycles=120_000, ops=1200,
                  clock_mhz=1200)
    # 1200 ops in 120k cycles at 1.2GHz = 12 Mops/s
    assert r.throughput_mops == pytest.approx(12.0)


def test_throughput_empty_window():
    r = RunResult(name="x", num_threads=1, window_cycles=0, ops=0, clock_mhz=1200)
    assert r.throughput_mops == 0.0


def test_cycles_per_op():
    r = RunResult(name="x", num_threads=1, window_cycles=1000, ops=50, clock_mhz=1200)
    assert r.cycles_per_op == 20.0
    r0 = RunResult(name="x", num_threads=1, window_cycles=1000, ops=0, clock_mhz=1200)
    assert r0.cycles_per_op == float("inf")


def test_fairness_ratio():
    r = RunResult(name="x", num_threads=3, window_cycles=1, ops=60, clock_mhz=1,
                  per_thread_ops=[10, 20, 30])
    assert r.fairness_ratio == 3.0
    r_ideal = RunResult(name="x", num_threads=2, window_cycles=1, ops=20, clock_mhz=1,
                        per_thread_ops=[10, 10])
    assert r_ideal.fairness_ratio == 1.0
    r_starved = RunResult(name="x", num_threads=2, window_cycles=1, ops=10, clock_mhz=1,
                          per_thread_ops=[10, 0])
    assert r_starved.fairness_ratio == float("inf")


def test_summary_mentions_key_numbers():
    r = RunResult(name="abc", num_threads=4, window_cycles=1000, ops=100,
                  clock_mhz=1200, mean_latency_cycles=55.0)
    s = r.summary()
    assert "abc" in s and "T=4" in s and "120.0" in s


# -- driver ----------------------------------------------------------------

def build_counter(num_clients):
    m = Machine(tile_gx())
    table = OpTable()
    prim = MPServer(m, table, server_tid=0)
    counter = LockedCounter(prim)
    prim.start()
    ctxs = [m.thread(t) for t in range(1, num_clients + 1)]
    return m, prim, counter, ctxs


def make_counter_op(counter):
    def make_op(ctx):
        def op(k):
            yield from counter.increment(ctx)
        return op
    return make_op


def test_driver_counts_only_window_ops():
    m, prim, counter, ctxs = build_counter(4)
    spec = WorkloadSpec(warmup_cycles=10_000, measure_cycles=20_000)
    r = run_workload(m, ctxs, make_counter_op(counter), spec, name="t", prim=prim)
    total_executed = counter.value()
    assert 0 < r.ops < total_executed  # warmup ops excluded


def test_driver_latency_and_per_thread_ops():
    m, prim, counter, ctxs = build_counter(3)
    r = run_workload(m, ctxs, make_counter_op(counter), WorkloadSpec.quick(),
                     name="t", prim=prim)
    assert len(r.per_thread_ops) == 3
    assert sum(r.per_thread_ops) == r.ops
    assert r.mean_latency_cycles > 0
    assert r.p95_latency_cycles >= r.mean_latency_cycles


def test_driver_same_seed_reproduces_exactly():
    def once():
        m, prim, counter, ctxs = build_counter(5)
        return run_workload(m, ctxs, make_counter_op(counter),
                            WorkloadSpec(seed=9), name="t", prim=prim)

    a, b = once(), once()
    assert a.ops == b.ops
    assert a.mean_latency_cycles == b.mean_latency_cycles
    assert a.per_thread_ops == b.per_thread_ops


def test_driver_different_seed_differs():
    def once(seed):
        m, prim, counter, ctxs = build_counter(5)
        return run_workload(m, ctxs, make_counter_op(counter),
                            WorkloadSpec(seed=seed), name="t", prim=prim)

    assert once(1).per_thread_ops != once(2).per_thread_ops


def test_service_stats_for_server():
    m, prim, counter, ctxs = build_counter(6)
    r = run_workload(m, ctxs, make_counter_op(counter), WorkloadSpec.quick(),
                     name="t", prim=prim)
    assert r.service_cycles_per_op > 0
    assert r.service_stall_per_op <= 1.0  # mp-server: no coherence stalls


# -- scenario builders ---------------------------------------------------------

@pytest.mark.parametrize("kw", [
    {"warmup_cycles": -1},
    {"measure_cycles": 0},
    {"measure_cycles": -100},
    {"think_max_iterations": -1},
    {"seed": -1},
    {"seed": 1.5},
    {"seed": "42"},
    {"seed": True},
])
def test_workload_spec_rejects_bad_parameters(kw):
    with pytest.raises(ValueError):
        WorkloadSpec(**kw)


def test_workload_spec_accepts_boundary_values():
    spec = WorkloadSpec(warmup_cycles=0, measure_cycles=1,
                        think_max_iterations=0, seed=0)
    assert spec.measure_cycles == 1


def test_run_workload_rejects_empty_ctxs():
    m = Machine(tile_gx())
    with pytest.raises(ValueError, match="at least one"):
        run_workload(m, [], lambda ctx: None, WorkloadSpec.quick())


def test_counter_benchmark_rejects_too_many_threads():
    with pytest.raises(ValueError, match="exceed"):
        run_counter_benchmark("mp-server", 36)
    with pytest.raises(ValueError, match="exceed"):
        run_counter_benchmark("HybComb", 37)


def test_counter_benchmark_unknown_approach():
    with pytest.raises(ValueError, match="unknown approach"):
        run_counter_benchmark("bogus", 4)


def test_cs_length_benchmark_reports_iterations():
    spec = WorkloadSpec(warmup_cycles=5_000, measure_cycles=20_000)
    r = run_cs_length_benchmark("mp-server", 4, 7, spec=spec)
    assert r.extra["cs_iterations"] == 7
    assert r.ops > 0


@pytest.mark.parametrize("impl", ["mp-server-1", "HybComb-1", "shm-server-1",
                                  "CC-Synch-1", "mp-server-2", "LCRQ"])
def test_queue_benchmark_all_impls_run(impl):
    spec = WorkloadSpec(warmup_cycles=5_000, measure_cycles=20_000)
    r = run_queue_benchmark(impl, 6, spec=spec)
    assert r.ops > 0
    assert "empty_dequeues" in r.extra


@pytest.mark.parametrize("impl", ["mp-server", "HybComb", "shm-server",
                                  "CC-Synch", "Treiber"])
def test_stack_benchmark_all_impls_run(impl):
    spec = WorkloadSpec(warmup_cycles=5_000, measure_cycles=20_000)
    r = run_stack_benchmark(impl, 6, spec=spec)
    assert r.ops > 0
    assert "empty_pops" in r.extra


def test_fixed_combiner_mode_reports_clean_service_stats():
    spec = WorkloadSpec(warmup_cycles=10_000, measure_cycles=30_000)
    r = run_counter_benchmark("HybComb", 10, spec=spec, fixed_combiner=True)
    assert r.service_cycles_per_op > 0
    assert r.service_stall_per_op <= 1.0


def test_queue_benchmark_balanced_load_is_balanced():
    spec = WorkloadSpec(warmup_cycles=5_000, measure_cycles=40_000)
    r = run_queue_benchmark("mp-server-1", 8, spec=spec)
    # alternating enqueue/dequeue keeps the queue near-empty but never
    # starved: a balanced run sees only a small fraction of EMPTY returns
    assert r.extra["empty_dequeues"] <= r.ops * 0.2
