"""Tests for the atomic RMW executors (controller and cache modes)."""

import pytest

from repro.machine import Machine, tile_gx, x86_like


def run_thread(m, tid, gen_fn):
    ctx = m.thread(tid)
    p = m.spawn(ctx, gen_fn(ctx))
    m.run()
    return ctx, p


# -- semantics (both executors) ----------------------------------------------

@pytest.fixture(params=["tile", "x86"])
def machine(request):
    return Machine(tile_gx() if request.param == "tile" else x86_like())


def test_faa_returns_old_value(machine):
    m = machine
    a = m.mem.alloc(1)
    m.mem.poke(a, 10)

    def prog(ctx):
        old = yield from ctx.faa(a, 5)
        return old, m.mem.peek(a)

    _, p = run_thread(m, 0, prog)
    assert p.result == (10, 15)


def test_faa_wraps_at_64_bits(machine):
    m = machine
    a = m.mem.alloc(1)
    m.mem.poke(a, (1 << 64) - 1)

    def prog(ctx):
        old = yield from ctx.faa(a, 1)
        return old, m.mem.peek(a)

    _, p = run_thread(m, 0, prog)
    assert p.result == ((1 << 64) - 1, 0)


def test_swap_returns_old_and_installs_new(machine):
    m = machine
    a = m.mem.alloc(1)
    m.mem.poke(a, 3)

    def prog(ctx):
        old = yield from ctx.swap(a, 9)
        return old, m.mem.peek(a)

    _, p = run_thread(m, 0, prog)
    assert p.result == (3, 9)


def test_cas_success(machine):
    m = machine
    a = m.mem.alloc(1)
    m.mem.poke(a, 4)

    def prog(ctx):
        ok = yield from ctx.cas(a, 4, 8)
        return ok, m.mem.peek(a)

    _, p = run_thread(m, 0, prog)
    assert p.result == (True, 8)


def test_cas_failure_leaves_value(machine):
    m = machine
    a = m.mem.alloc(1)
    m.mem.poke(a, 4)

    def prog(ctx):
        ok = yield from ctx.cas(a, 99, 8)
        return ok, m.mem.peek(a), ctx.core.cas_failures

    _, p = run_thread(m, 0, prog)
    assert p.result == (False, 4, 1)


def test_atomicity_under_contention(machine):
    """N threads x K increments must produce exactly N*K."""
    m = machine
    a = m.mem.alloc(1)
    N, K = 6, 40

    def prog(ctx):
        for _ in range(K):
            yield from ctx.faa(a, 1)

    for i in range(N):
        ctx = m.thread(i)
        m.spawn(ctx, prog(ctx))
    m.run()
    assert m.mem.peek(a) == N * K


def test_cas_loop_counter_is_exact(machine):
    """CAS-retry increments (the Treiber pattern) must never lose updates."""
    m = machine
    a = m.mem.alloc(1)
    N, K = 4, 25

    def prog(ctx):
        for _ in range(K):
            while True:
                v = yield from ctx.load(a)
                ok = yield from ctx.cas(a, v, v + 1)
                if ok:
                    break

    for i in range(N):
        ctx = m.thread(i)
        m.spawn(ctx, prog(ctx))
    m.run()
    assert m.mem.peek(a) == N * K


# -- controller-specific behaviour ---------------------------------------------

def test_controller_atomic_stalls_issuer():
    m = Machine(tile_gx())
    a = m.mem.alloc(1)

    def prog(ctx):
        yield from ctx.faa(a, 1)
        return ctx.core.stall_atomic

    _, p = run_thread(m, 0, prog)
    assert p.result >= m.cfg.c_atomic_service


def test_controller_atomics_invalidate_cached_copies():
    m = Machine(tile_gx())
    a = m.mem.alloc(1, isolated=True)
    t0 = m.thread(0)
    t1 = m.thread(1)

    def reader(ctx):
        yield from ctx.load(a)

    def atomic(ctx):
        yield 300
        yield from ctx.faa(a, 1)

    m.spawn(t0, reader(t0))
    m.spawn(t1, atomic(t1))
    m.run()
    assert m.mem.cached_state(0, a) is None  # invalidated by the controller


def test_controller_address_interleaving():
    m = Machine(tile_gx())
    at = m.mem.atomics
    lw = m.cfg.line_words
    c0 = at.controller_for(0)
    c1 = at.controller_for(lw)  # next line -> other controller
    assert c0 is not c1


def test_false_serialization_cold_lines_slower_than_hot_stream():
    """Section 5.4's false-serialization effect: atomics spraying across
    many lines keep evicting the controller's resident line and pay the
    cold occupancy, so they finish much later than the same number of
    atomics streaming on a single hot word -- even though the sprayed
    data sets are fully independent."""
    def run(addr_fn):
        m = Machine(tile_gx())
        base = m.mem.alloc(512, isolated=True)

        def prog(ctx, i):
            for k in range(30):
                yield from ctx.faa(base + addr_fn(i, k), 1)

        for i in range(4):
            ctx = m.thread(i)
            m.spawn(ctx, prog(ctx, i))
        m.run()
        return m.now

    hot = run(lambda i, k: 0)                       # everyone on one word
    # every access on a different line, alternating between controllers
    sprayed = run(lambda i, k: ((i * 30 + k) * 8) % 512)
    # the sprayed stream is spread over two controllers working in
    # parallel, yet still finishes well behind the hot single-word stream
    assert sprayed > 1.4 * hot


def test_controller_hot_line_tracking():
    m = Machine(tile_gx())
    a = m.mem.alloc(1)

    def prog(ctx):
        yield from ctx.faa(a, 1)  # cold: first touch
        yield from ctx.faa(a, 1)  # hot: same line
        yield from ctx.faa(a, 1)

    ctx = m.thread(0)
    m.spawn(ctx, prog(ctx))
    m.run()
    ctrl = m.mem.atomics.controller_for(a)
    assert ctrl.ops == 3
    assert ctrl.cold_ops == 1


def test_atomics_wake_spinners():
    m = Machine(tile_gx())
    a = m.mem.alloc(1, isolated=True)
    t0 = m.thread(0)
    t1 = m.thread(1)

    def spinner(ctx):
        v = yield from ctx.spin_until(a, lambda v: v == 1)
        return v

    def incrementer(ctx):
        yield 500
        yield from ctx.faa(a, 1)

    p = m.spawn(t0, spinner(t0))
    m.spawn(t1, incrementer(t1))
    m.run()
    assert p.result == 1


# -- cache-mode (x86) specific ---------------------------------------------------

def test_cache_atomic_cheap_when_line_owned():
    m = Machine(x86_like())
    a = m.mem.alloc(1)

    def prog(ctx):
        yield from ctx.faa(a, 1)       # first: acquires the line
        s1 = ctx.core.stall_atomic
        yield from ctx.faa(a, 1)       # second: line-resident
        return s1, ctx.core.stall_atomic - s1

    _, p = run_thread(m, 0, prog)
    first, second = p.result
    assert second < first
    assert second == m.cfg.c_atomic_local


def test_cache_atomic_bounces_line_between_cores():
    m = Machine(x86_like())
    a = m.mem.alloc(1, isolated=True)
    ctxs = [m.thread(i) for i in range(2)]

    def prog(ctx):
        for _ in range(10):
            yield from ctx.faa(a, 1)

    for ctx in ctxs:
        m.spawn(ctx, prog(ctx))
    m.run()
    assert m.mem.peek(a) == 20
    # both cores paid RMRs for the bouncing line
    assert all(ctx.core.rmr > 0 for ctx in ctxs)
